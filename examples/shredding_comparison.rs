//! Compare the object-relational mapping against the generic relational
//! shredding baselines the paper's §1 criticizes — on your machine, with
//! real numbers: INSERT statements, rows, tables, and the join work of the
//! §4.1 path query.
//!
//! ```sh
//! cargo run --release --example shredding_comparison [students]
//! ```

use xml_ordb::dtd::parse_dtd;
use xml_ordb::mapping::ddlgen::create_script;
use xml_ordb::mapping::loader::load_script;
use xml_ordb::mapping::model::MappingOptions;
use xml_ordb::mapping::pathquery::{translate, PathQuery};
use xml_ordb::mapping::schemagen::{generate_schema, IdrefTargets};
use xml_ordb::ordb::{Database, DbMode};
use xml_ordb::shred::Baseline;
use xml_ordb::workload::university::{university_dtd, university_xml, UniversityConfig};

fn main() {
    let students: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25);
    let config = UniversityConfig { students, ..Default::default() };
    let xml = university_xml(&config);
    let dtd = parse_dtd(university_dtd()).expect("DTD parses");
    let doc = xml_ordb::xml::parse(&xml).expect("document parses");
    println!(
        "university document: {students} students, {} elements, {} bytes\n",
        config.element_count(),
        xml.len()
    );
    println!(
        "{:<22} {:>9} {:>8} {:>8} {:>12}",
        "strategy", "INSERTs", "tables", "rows", "join-pairs*"
    );

    // Object-relational (the paper's contribution).
    let schema = generate_schema(
        &dtd,
        "University",
        DbMode::Oracle9,
        MappingOptions { varray_max: 10_000, ..Default::default() },
        &IdrefTargets::new(),
    )
    .expect("schema generates");
    let mut db = Database::new(DbMode::Oracle9);
    db.execute_script(&create_script(&schema).expect("DDL renders")).expect("DDL");
    let statements = load_script(&schema, &dtd, &doc, "d").expect("load");
    for stmt in &statements {
        db.execute(stmt).expect("insert");
    }
    let query = PathQuery::parse("Student/LName")
        .with_predicate("Student/Course/Professor/PName", "Jaeger");
    let translated = translate(&schema, &query).expect("translate");
    let before = db.stats();
    db.query(&translated.sql).expect("query");
    let join_pairs = db.stats().since(&before).join_pairs;
    println!(
        "{:<22} {:>9} {:>8} {:>8} {:>12}",
        "object-relational",
        statements.len(),
        db.catalog().table_count(),
        db.storage().total_rows(),
        join_pairs
    );

    // The generic baselines.
    for baseline in Baseline::ALL {
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(&baseline.ddl(&dtd, "University").unwrap()).expect("DDL");
        let statements = baseline.load(&dtd, "University", &doc).expect("load");
        for stmt in &statements {
            db.execute(stmt).expect("insert");
        }
        let sql = baseline
            .path_query(
                &dtd,
                "University",
                &["Student", "LName"],
                Some((&["Student", "Course", "Professor", "PName"], "Jaeger")),
            )
            .expect("query translates");
        let before = db.stats();
        db.query(&sql).expect("query");
        let join_pairs = db.stats().since(&before).join_pairs;
        println!(
            "{:<22} {:>9} {:>8} {:>8} {:>12}",
            baseline.name(),
            statements.len(),
            db.catalog().table_count(),
            db.storage().total_rows(),
            join_pairs
        );
    }
    println!("\n* join-pairs: row combinations formed while answering the §4.1 query");
    println!("  ('family names of students attending a course of Professor Jaeger').");
}

//! Quickstart: store the paper's Appendix A document in the
//! object-relational database and get it back.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use xml_ordb::mapping::pathquery::PathQuery;
use xml_ordb::mapping::Xml2OrDb;
use xml_ordb::ordb::DbMode;

const UNIVERSITY_DTD: &str = include_str!("../assets/university.dtd");
const UNIVERSITY_XML: &str = include_str!("../assets/university.xml");

fn main() {
    // 1. Create the system — Oracle 9 mode gives the paper's headline
    //    mapping with nested collection types (§4.2).
    let mut system = Xml2OrDb::new(DbMode::Oracle9);

    // 2. Register the DTD: this runs the Fig. 2 mapping algorithm and
    //    executes the generated SQL script.
    let registered = system
        .register_dtd("university", UNIVERSITY_DTD, "University")
        .expect("the Appendix A DTD maps");
    println!("Generated {} lines of DDL, {} object tables, {} types\n",
        registered.create_script.lines().count(),
        registered.schema.generated_table_count(),
        registered.schema.generated_type_count(),
    );

    // 3. Store a document: well-formedness check, validity check, one
    //    nested INSERT (§4.1), meta-data row (§5).
    let doc_id = system
        .store_document_named("university", UNIVERSITY_XML, "university.xml", "assets/university.xml")
        .expect("the Appendix A document stores");
    println!("Stored document: {doc_id}");
    let stats = system.stats();
    println!("Cumulative INSERTs: {} (1 document + 1 metadata)\n", stats.inserts);

    // 4. Query with the §4.1 dot-notation path query: family names of
    //    students who subscribed to a course of Professor Jaeger.
    let query = PathQuery::parse("Student/LName")
        .with_predicate("Student/Course/Professor/PName", "Jaeger");
    let result = system.query_path("university", &query).expect("query runs");
    println!("Students attending a Jaeger course:");
    for row in &result.rows {
        println!("  {}", row[0]);
    }

    // 5. Retrieve the document — entity references restored from the
    //    meta-table (§6.1).
    let restored = system.retrieve_document(&doc_id).expect("retrieval works");
    println!("\nRound-tripped document:\n{restored}");
    assert!(restored.contains("&cs;"), "entity reference restored");
}

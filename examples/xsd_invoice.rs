//! The §7 future-work extension in action: registering an **XML Schema**
//! instead of a DTD gives the mapping real column types — `NUMBER`, `DATE`
//! and length-bounded `VARCHAR` — lifting the paper's "no type concept in
//! DTDs" drawback.
//!
//! ```sh
//! cargo run --example xsd_invoice
//! ```

use xml_ordb::mapping::Xml2OrDb;
use xml_ordb::ordb::DbMode;

const INVOICE_XSD: &str = r#"<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="Invoice">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="Customer" type="xs:string"/>
        <xs:element name="Issued" type="xs:date"/>
        <xs:element name="Line" maxOccurs="unbounded">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="Item" type="SkuType"/>
              <xs:element name="Quantity" type="xs:positiveInteger"/>
              <xs:element name="Price" type="xs:decimal"/>
            </xs:sequence>
            <xs:attribute name="Pos" type="xs:integer" use="required"/>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
      <xs:attribute name="Number" type="xs:string" use="required"/>
    </xs:complexType>
  </xs:element>
  <xs:simpleType name="SkuType">
    <xs:restriction base="xs:string"><xs:maxLength value="12"/></xs:restriction>
  </xs:simpleType>
</xs:schema>"#;

const INVOICE_XML: &str = r#"<Invoice Number="2002-042"><Customer>HTWK Leipzig</Customer>
<Issued>2002-03-25</Issued>
<Line Pos="1"><Item>ANVIL-10T</Item><Quantity>3</Quantity><Price>19.99</Price></Line>
<Line Pos="2"><Item>SKATES-R</Item><Quantity>1</Quantity><Price>149.5</Price></Line>
<Line Pos="3"><Item>MAGNET-XXL</Item><Quantity>2</Quantity><Price>75</Price></Line>
</Invoice>"#;

fn main() {
    let mut system = Xml2OrDb::new(DbMode::Oracle9);
    let registered = system
        .register_xsd("invoice", INVOICE_XSD, "Invoice")
        .expect("XSD analyzes and maps");
    println!("generated DDL (note NUMBER / DATE / VARCHAR(12) columns):\n");
    println!("{}", registered.create_script);

    let doc_id = system.store_document("invoice", INVOICE_XML).expect("stores");

    // Numeric predicates now behave numerically — with a DTD mapping this
    // comparison would be lexical over VARCHAR ('75' > '149.5')!
    let rows = system
        .database()
        .query(
            "SELECT l.attrItem, l.attrPrice FROM TabInvoice i, TABLE(i.attrLine) l \
             WHERE l.attrPrice > 50 ORDER BY l.attrPrice DESC",
        )
        .expect("typed query runs");
    println!("lines over 50 (numeric comparison, descending):");
    for row in &rows.rows {
        println!("  {:<12} {}", row[0], row[1]);
    }

    let restored = system.retrieve_document(&doc_id).expect("retrieves");
    println!("\nround-tripped document:\n{restored}");
}

//! §6.3 — object views over a shredded relational schema.
//!
//! Data arrives in plain relational tables (the "known mapping algorithms
//! [2]" layout with ID/IDParent keys); an object view with nested type
//! constructors and `CAST(MULTISET(…))` superimposes "the correct logical
//! structure on top of a join of … physical tables".
//!
//! ```sh
//! cargo run --example object_views
//! ```

use xml_ordb::dtd::parse_dtd;
use xml_ordb::mapping::ddlgen::types_script;
use xml_ordb::mapping::model::MappingOptions;
use xml_ordb::mapping::schemagen::{generate_schema, IdrefTargets};
use xml_ordb::mapping::views;
use xml_ordb::ordb::{Database, DbMode};

const UNIVERSITY_DTD: &str = include_str!("../assets/university.dtd");
const UNIVERSITY_XML: &str = include_str!("../assets/university.xml");

fn main() {
    let dtd = parse_dtd(UNIVERSITY_DTD).expect("DTD parses");
    let doc = xml_ordb::xml::parse_with_catalog(UNIVERSITY_XML, dtd.entity_catalog())
        .expect("document parses");

    // The §4 methodology gives us the user-defined types…
    let schema = generate_schema(
        &dtd,
        "University",
        DbMode::Oracle9,
        MappingOptions { with_doc_id: false, ..Default::default() },
        &IdrefTargets::new(),
    )
    .expect("schema generates");
    // …and the [2]-style relational schema holds the data.
    let rel = views::relational_schema(&schema);

    let mut db = Database::new(DbMode::Oracle9);
    db.execute_script(&types_script(&schema).expect("types script")).expect("types");
    db.execute_script(&views::relational_ddl(&rel, 4000)).expect("relational DDL");

    let inserts = views::relational_load_script(&schema, &rel, &doc).expect("shredding");
    println!("shredded the document into {} INSERTs across {} tables\n",
        inserts.len(), rel.tables.len());
    for stmt in &inserts {
        db.execute(stmt).expect("insert");
    }

    // The §6.3 object view.
    let view_sql = views::object_view_script(&schema, &rel).expect("view generates");
    println!("generated object view:\n{view_sql}\n");
    db.execute(&view_sql).expect("view creates");

    // Query the view with the object-style access §6.3 promises.
    let rows = db
        .query("SELECT v.University.attrStudyCourse FROM OView_University v")
        .expect("view query");
    println!("study course via the view: {}", rows.rows[0][0]);

    let rows = db
        .query(
            "SELECT s.attrLName, p.attrPName FROM OView_University v, \
             TABLE(v.University.attrStudent) s, TABLE(s.attrCourse) c, \
             TABLE(c.attrProfessor) p",
        )
        .expect("deep view query");
    println!("\nstudent → professor pairs reconstructed by the view:");
    for row in &rows.rows {
        println!("  {} attends a course of {}", row[0], row[1]);
    }
}

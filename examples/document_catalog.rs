//! The §5 meta-database as a document catalog: several documents of several
//! document types coexist in one database, found and managed through
//! `TabMetadata` with ordinary SQL.
//!
//! ```sh
//! cargo run --example document_catalog
//! ```

use xml_ordb::mapping::Xml2OrDb;
use xml_ordb::ordb::DbMode;

const UNIVERSITY_DTD: &str = include_str!("../assets/university.dtd");
const UNIVERSITY_XML: &str = include_str!("../assets/university.xml");
const NOTES_DTD: &str = "<!ELEMENT notes (note*)> <!ELEMENT note (#PCDATA)>";

fn main() {
    // SchemaIDs (§5) let DTDs with overlapping element names coexist.
    let mut system = Xml2OrDb::new(DbMode::Oracle9).with_auto_schema_ids();
    system.register_dtd("uni", UNIVERSITY_DTD, "University").expect("uni registers");
    system.register_dtd("notes", NOTES_DTD, "notes").expect("notes registers");

    system
        .store_document_named("uni", UNIVERSITY_XML, "university.xml", "file:///data/university.xml")
        .expect("stores");
    for i in 1..=3 {
        let xml = format!("<notes><note>entry {i}</note></notes>");
        system
            .store_document_named("notes", &xml, &format!("notes-{i}.xml"), "")
            .expect("stores");
    }

    // The meta-table is a plain object table — query it like the paper's
    // §5 describes, with ordinary SQL.
    println!("document catalog (from TabMetadata):");
    let rows = system
        .database()
        .query(
            "SELECT m.DocID, m.DocName, m.SchemaID, m.XMLVersion FROM TabMetadata m \
             ORDER BY m.DocID",
        )
        .expect("catalog query");
    println!("{:<12} {:<18} {:<9} {:<10}", "DocID", "DocName", "SchemaID", "XMLVersion");
    for row in &rows.rows {
        println!("{:<12} {:<18} {:<9} {:<10}", row[0], row[1], row[2], row[3]);
    }

    // Count documents per schema.
    let count = system
        .database()
        .query_scalar("SELECT COUNT(*) FROM TabMetadata m WHERE m.SchemaID = 'S2'")
        .expect("count query");
    println!("\ndocuments under schema S2 (notes): {count}");

    // Drill into the provenance records of one document.
    let rows = system
        .database()
        .query(
            "SELECT d.XML_Type, d.XML_Name, d.DB_Name FROM TabMetadata m, TABLE(m.DocData) d \
             WHERE m.DocID = 'uni-1' AND d.XML_Type = 'attribute'",
        )
        .expect("provenance query");
    println!("\nattribute-derived columns of uni-1 (element vs attribute is metadata-only):");
    for row in &rows.rows {
        println!("  @{:<10} → {}", row[1], row[2]);
    }

    // Retrieve one of each.
    println!("\nnotes-2 restored: {}", system.retrieve_document("notes-2").expect("retrieve"));
}

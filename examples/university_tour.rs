//! A guided tour of the whole pipeline on the Appendix A example — shows
//! every artifact the paper shows: the DTD tree (Fig. 1), the generated SQL
//! script (§4), the single nested INSERT (§4.2), the dot-notation query
//! (§4.1), the meta-data (§5) and the reconstructed document (§6.1).
//!
//! ```sh
//! cargo run --example university_tour
//! ```

use xml_ordb::dtd::{parse_dtd, DtdTree, ElementGraph};
use xml_ordb::mapping::ddlgen::{create_script, drop_script};
use xml_ordb::mapping::loader::load_script;
use xml_ordb::mapping::metadata::{doc_data_entries, metadata_ddl};
use xml_ordb::mapping::model::MappingOptions;
use xml_ordb::mapping::pathquery::{translate, PathQuery};
use xml_ordb::mapping::schemagen::{generate_schema, IdrefTargets};
use xml_ordb::ordb::{Database, DbMode};

const UNIVERSITY_DTD: &str = include_str!("../assets/university.dtd");
const UNIVERSITY_XML: &str = include_str!("../assets/university.xml");

fn section(title: &str) {
    println!("\n──────────────────────────────────────────────────────────");
    println!("{title}");
    println!("──────────────────────────────────────────────────────────");
}

fn main() {
    // Fig. 1: the two parsers.
    section("Fig. 1 — DTD DOM tree (occurrence and optionality annotated)");
    let dtd = parse_dtd(UNIVERSITY_DTD).expect("DTD parses");
    let tree = DtdTree::build(&dtd, "University");
    print!("{}", tree.root.outline());

    let graph = ElementGraph::build(&dtd);
    println!(
        "graph: {} elements, {} edges, recursive: {:?}, multi-parent: {:?}",
        graph.node_count(),
        graph.edge_count(),
        graph.recursive_elements(),
        graph.multi_parent_elements()
    );

    // §4: the generated SQL script.
    section("§4 — Generated SQL script (executed verbatim)");
    let schema = generate_schema(
        &dtd,
        "University",
        DbMode::Oracle9,
        MappingOptions::default(),
        &IdrefTargets::new(),
    )
    .expect("schema generates");
    let ddl = create_script(&schema).expect("DDL renders");
    println!("{ddl}");

    let mut db = Database::new(DbMode::Oracle9);
    db.execute_script(metadata_ddl()).expect("meta DDL");
    db.execute_script(&ddl).expect("generated DDL executes");

    // §4.2: the single nested INSERT.
    section("§4.2 — The single INSERT for the whole document");
    let doc = xml_ordb::xml::parse_with_catalog(UNIVERSITY_XML, dtd.entity_catalog())
        .expect("document parses");
    let statements = load_script(&schema, &dtd, &doc, "doc1").expect("load script");
    assert_eq!(statements.len(), 1);
    println!("{}", statements[0]);
    for stmt in &statements {
        db.execute(stmt).expect("insert executes");
    }

    // §4.1: the dot-notation query.
    section("§4.1 — Dot-notation path query");
    let query = PathQuery::parse("Student/LName")
        .with_predicate("Student/Course/Professor/PName", "Jaeger");
    let translated = translate(&schema, &query).expect("translates");
    println!("SQL: {}", translated.sql);
    println!("relational joins: {}", translated.relational_joins);
    let result = db.query(&translated.sql).expect("query runs");
    for row in &result.rows {
        println!("→ {}", row[0]);
    }

    // §5: the meta-data the mapping records.
    section("§5 — Meta-data (element vs attribute provenance, excerpt)");
    for (xml_type, xml_name, db_name, db_type) in doc_data_entries(&schema).iter().take(10) {
        println!("{xml_type:<16} {xml_name:<14} → {db_name:<40} {db_type}");
    }

    // Teardown (§6.2 DROP FORCE ordering).
    section("§6.2 — Teardown script");
    println!("{}", drop_script(&schema));
    db.execute_script(&drop_script(&schema)).expect("teardown executes");
    println!("catalog is empty again: {} tables", db.catalog().table_count());
}

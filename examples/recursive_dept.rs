//! §6.2 — recursive element relationships, end to end.
//!
//! The paper's Professor⇄Dept cycle cannot live in a tree: the generated
//! schema breaks it with a forward type declaration, a nested table of REFs
//! (`TabRefProfessor`), and an object table. This example shows the
//! generated DDL, loads a three-level department hierarchy, navigates the
//! REFs, and round-trips the document.
//!
//! ```sh
//! cargo run --example recursive_dept
//! ```

use xml_ordb::dtd::{parse_dtd, ElementGraph};
use xml_ordb::mapping::Xml2OrDb;
use xml_ordb::ordb::DbMode;

const DTD: &str = r#"
<!ELEMENT Professor (PName,Dept)>
<!ELEMENT Dept (DName,Professor*)>
<!ELEMENT PName (#PCDATA)>
<!ELEMENT DName (#PCDATA)>
"#;

const XML: &str = "<Professor><PName>Kudrass</PName><Dept><DName>Computer Science</DName>\
<Professor><PName>Jaeger</PName><Dept><DName>CAD Lab</DName>\
<Professor><PName>Meier</PName><Dept><DName>Graphics Group</DName></Dept></Professor>\
</Dept></Professor>\
<Professor><PName>Richter</PName><Dept><DName>DB Lab</DName></Dept></Professor>\
</Dept></Professor>";

fn main() {
    let dtd = parse_dtd(DTD).expect("DTD parses");
    let graph = ElementGraph::build(&dtd);
    println!("recursive elements detected: {:?}", graph.recursive_elements());
    println!("cycle broken at: {:?}\n", graph.back_edges_from(Some("Professor")));

    let mut system = Xml2OrDb::new(DbMode::Oracle9);
    let registered = system.register_dtd("org", DTD, "Professor").expect("schema generates");
    println!("generated DDL:\n{}", registered.create_script);

    let doc_id = system.store_document("org", XML).expect("document stores");
    println!(
        "stored {} professor rows (each recursion level is a row object)",
        system.database().row_count("TabProfessor")
    );

    // Navigate the REF structure: professors working under Kudrass.
    let rows = system
        .database()
        .query(
            "SELECT r.COLUMN_VALUE.attrPName FROM TabProfessor p, \
             TABLE(p.attrDept.attrProfessor) r WHERE p.attrPName = 'Kudrass'",
        )
        .expect("REF navigation works");
    println!("\nprofessors in Kudrass's department:");
    for row in &rows.rows {
        println!("  {}", row[0]);
    }

    let restored = system.retrieve_document(&doc_id).expect("retrieval works");
    println!("\nround-tripped document:\n{restored}");
}

//! Golden-file snapshots of EXPLAIN output.
//!
//! The plan renderer promises a *stable*, data-independent plan tree; these
//! snapshots pin the concrete text for the two headline query shapes — the
//! E14 REF-chain navigation and the edge-table 7-way self-join — in both
//! engine modes. Any change to plan rendering must update the goldens
//! deliberately: `UPDATE_GOLDEN=1 cargo test -p xmlord-bench --test
//! explain_golden`.

use xmlord_bench::{ref_chain_db, setup, university_doc, Strategy};
use xmlord_ordb::{Database, DbMode};

/// Render `EXPLAIN <sql>` to one newline-joined string.
fn plan_text(db: &mut Database, sql: &str) -> String {
    let result = db.query(&format!("EXPLAIN {sql}")).unwrap();
    assert_eq!(result.columns, vec!["PLAN"]);
    let mut out = String::new();
    for row in &result.rows {
        out.push_str(row[0].as_str().expect("plan rows are text"));
        out.push('\n');
    }
    out
}

fn check(name: &str, actual: &str) {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("missing golden file {path}; regenerate with UPDATE_GOLDEN=1"));
    assert_eq!(actual, expected, "EXPLAIN output drifted from {name}");
}

/// The E14 fixture's schema without its data — plans are data-independent,
/// which `plans_match_with_and_without_rows` below demonstrates.
fn ref_chain_schema(mode: DbMode) -> Database {
    let mut db = Database::new(mode);
    db.execute_script(
        "CREATE TYPE T_Prof AS OBJECT(pname VARCHAR(30), subject VARCHAR(30), boss REF T_Prof);
         CREATE TYPE T_Course AS OBJECT(cname VARCHAR(30), prof REF T_Prof);
         CREATE TABLE TabProf OF T_Prof;
         CREATE TABLE TabCourse OF T_Course;",
    )
    .unwrap();
    db
}

const REF_CHAIN_QUERY: &str = "SELECT c.prof.subject FROM TabCourse c";

#[test]
fn ref_chain_plan_oracle9() {
    let mut db = ref_chain_schema(DbMode::Oracle9);
    check("refchain_oracle9.txt", &plan_text(&mut db, REF_CHAIN_QUERY));
}

#[test]
fn ref_chain_plan_oracle8() {
    let mut db = ref_chain_schema(DbMode::Oracle8);
    check("refchain_oracle8.txt", &plan_text(&mut db, REF_CHAIN_QUERY));
}

#[test]
fn plans_match_with_and_without_rows() {
    let mut empty = ref_chain_schema(DbMode::Oracle9);
    let mut loaded = ref_chain_db(5);
    assert_eq!(
        plan_text(&mut empty, REF_CHAIN_QUERY),
        plan_text(&mut loaded, REF_CHAIN_QUERY)
    );
}

#[test]
fn paper_query_edge_join_plan_oracle9() {
    let mut instance = setup(Strategy::Edge);
    let sql = instance.paper_query();
    check("paperq_edge_oracle9.txt", &plan_text(&mut instance.db, &sql));
}

#[test]
fn paper_query_edge_join_plan_oracle8() {
    // Same edge-table DDL and query text under Oracle 8 rules.
    let instance = setup(Strategy::Edge);
    let mut db = Database::new(DbMode::Oracle8);
    db.execute_script(&instance.ddl).unwrap();
    let sql = instance.paper_query();
    check("paperq_edge_oracle8.txt", &plan_text(&mut db, &sql));
}

/// The REF-chain navigation rewritten as its explicit relational join —
/// the shape secondary indexes accelerate. Pinned twice: scan/hash-join
/// without indexes, index probes + cost-based order with them.
const REF_CHAIN_JOIN_QUERY: &str = "SELECT p.subject FROM TabProf p, TabCourse c \
                                    WHERE c.prof = REF(p) AND p.pname = 'prof3'";

#[test]
fn ref_chain_join_plan_without_indexes() {
    let mut db = ref_chain_db(5);
    check("refchain_join_noindex.txt", &plan_text(&mut db, REF_CHAIN_JOIN_QUERY));
}

#[test]
fn ref_chain_join_plan_with_indexes() {
    let mut db = ref_chain_db(5);
    db.execute_script(
        "CREATE INDEX IxCourseProf ON TabCourse (prof);
         CREATE INDEX IxProfPname ON TabProf (pname);
         ANALYZE TABLE TabProf COMPUTE STATISTICS;
         ANALYZE TABLE TabCourse COMPUTE STATISTICS;",
    )
    .unwrap();
    let plan = plan_text(&mut db, REF_CHAIN_JOIN_QUERY);
    assert!(plan.contains("index probe"), "{plan}");
    check("refchain_join_indexed.txt", &plan);
}

/// The 7-way edge self-join with the secondary indexes and statistics the
/// planner experiment installs: every join edge becomes an index probe and
/// the join order is cost-based. (Statistics live in the catalog, so the
/// plan stays a pure function of DDL + ANALYZE — the fixture document is
/// deterministic.)
#[test]
fn paper_query_edge_join_plan_indexed() {
    let mut instance = setup(Strategy::Edge);
    let (_, doc) = university_doc(10);
    instance.load(&doc);
    instance
        .db
        .execute_script(
            "CREATE INDEX IxEdgeSource ON TabEdge (Source);
             CREATE INDEX IxEdgeName ON TabEdge (Name);
             CREATE INDEX IxValueVID ON TabValue (VID);
             ANALYZE TABLE TabEdge COMPUTE STATISTICS;
             ANALYZE TABLE TabValue COMPUTE STATISTICS;",
        )
        .unwrap();
    let sql = instance.paper_query();
    let plan = plan_text(&mut instance.db, &sql);
    assert!(plan.contains("index probe"), "{plan}");
    assert!(plan.contains("cost-based"), "{plan}");
    check("paperq_edge_indexed.txt", &plan);
}

#[test]
fn nested_loop_ablation_changes_the_plan() {
    let mut instance = setup(Strategy::Edge);
    let sql = instance.paper_query();
    let hash = plan_text(&mut instance.db, &sql);
    instance.db.set_hash_joins(false);
    let nested = plan_text(&mut instance.db, &sql);
    assert!(hash.contains("hash join"), "{hash}");
    assert!(!nested.contains("hash join"), "{nested}");
    assert!(nested.contains("nested-loop join"), "{nested}");
}

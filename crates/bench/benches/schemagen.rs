//! Bench E13 — schema-generation cost as the DTD grows (the contribution's
//! own scaling, Fig. 2 algorithm + DDL rendering).

use xml2ordb::ddlgen::create_script;
use xml2ordb::model::MappingOptions;
use xml2ordb::schemagen::{generate_schema, IdrefTargets};
use xmlord_bench::harness::Harness;
use xmlord_dtd::parse_dtd;
use xmlord_ordb::DbMode;
use xmlord_workload::dtdgen::{generate_dtd, DtdConfig};

fn main() {
    let mut h = Harness::new("schemagen", 20);
    for (depth, fanout) in [(2usize, 2usize), (3, 3), (4, 3)] {
        let generated = generate_dtd(&DtdConfig { depth, fanout, ..Default::default() });
        let dtd = parse_dtd(&generated.dtd_text).unwrap();
        let label = format!("d{depth}f{fanout}_{}el", generated.element_count());
        h.bench("schema_generation", &format!("map/{label}"), || {
            generate_schema(
                &dtd,
                &generated.root,
                DbMode::Oracle9,
                MappingOptions::default(),
                &IdrefTargets::new(),
            )
            .unwrap()
        });
        let schema = generate_schema(
            &dtd,
            &generated.root,
            DbMode::Oracle9,
            MappingOptions::default(),
            &IdrefTargets::new(),
        )
        .unwrap();
        h.bench("schema_generation", &format!("render_ddl/{label}"), || {
            create_script(&schema)
        });
    }
    h.finish();
}

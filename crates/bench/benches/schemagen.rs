//! Bench E13 — schema-generation cost as the DTD grows (the contribution's
//! own scaling, Fig. 2 algorithm + DDL rendering).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xml2ordb::ddlgen::create_script;
use xml2ordb::model::MappingOptions;
use xml2ordb::schemagen::{generate_schema, IdrefTargets};
use xmlord_dtd::parse_dtd;
use xmlord_ordb::DbMode;
use xmlord_workload::dtdgen::{generate_dtd, DtdConfig};

fn bench_schemagen(c: &mut Criterion) {
    let mut group = c.benchmark_group("schema_generation");
    for (depth, fanout) in [(2usize, 2usize), (3, 3), (4, 3)] {
        let generated = generate_dtd(&DtdConfig { depth, fanout, ..Default::default() });
        let dtd = parse_dtd(&generated.dtd_text).unwrap();
        let label = format!("d{depth}f{fanout}_{}el", generated.element_count());
        group.bench_function(BenchmarkId::new("map", &label), |b| {
            b.iter(|| {
                generate_schema(
                    &dtd,
                    &generated.root,
                    DbMode::Oracle9,
                    MappingOptions::default(),
                    &IdrefTargets::new(),
                )
                .unwrap()
            })
        });
        let schema = generate_schema(
            &dtd,
            &generated.root,
            DbMode::Oracle9,
            MappingOptions::default(),
            &IdrefTargets::new(),
        )
        .unwrap();
        group.bench_function(BenchmarkId::new("render_ddl", &label), |b| {
            b.iter(|| create_script(&schema))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schemagen);
criterion_main!(benches);

//! Bench E7 — path-query latency per storage strategy and path depth.
//!
//! §4.1: dot notation "without executing join operations" vs. the join
//! chains of the generic mappings.

use xmlord_bench::harness::Harness;
use xmlord_bench::{setup, university_doc, Instance, Strategy};

fn loaded(strategy: Strategy, students: usize) -> Instance {
    let mut instance = setup(strategy);
    let (_, doc) = university_doc(students);
    instance.load(&doc);
    instance
}

fn main() {
    let mut h = Harness::new("query", 10);
    let students = 25;
    for strategy in Strategy::ALL {
        let mut instance = loaded(strategy, students);
        let sql = instance.paper_query();
        h.bench("paper_query", &format!("{}/{students}", strategy.name()), || {
            instance.run_query(&sql)
        });
    }

    let paths: Vec<(&str, Vec<&str>)> = vec![
        ("d1", vec!["StudyCourse"]),
        ("d2", vec!["Student", "LName"]),
        ("d3", vec!["Student", "Course", "Name"]),
        ("d4", vec!["Student", "Course", "Professor", "PName"]),
    ];
    for strategy in [Strategy::Or9, Strategy::Edge, Strategy::Inline] {
        let mut instance = loaded(strategy, students);
        for (label, steps) in &paths {
            let sql = instance.path_query(steps, None);
            h.bench("query_depth", &format!("{}/{label}", strategy.name()), || {
                instance.run_query(&sql)
            });
        }
    }
    h.finish();
}

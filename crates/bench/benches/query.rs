//! Bench E7 — path-query latency per storage strategy and path depth.
//!
//! §4.1: dot notation "without executing join operations" vs. the join
//! chains of the generic mappings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xmlord_bench::{setup, university_doc, Instance, Strategy};

fn loaded(strategy: Strategy, students: usize) -> Instance {
    let mut instance = setup(strategy);
    let (_, doc) = university_doc(students);
    instance.load(&doc);
    instance
}

fn bench_paper_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_query");
    group.sample_size(10);
    let students = 25;
    for strategy in Strategy::ALL {
        let mut instance = loaded(strategy, students);
        let sql = instance.paper_query();
        group.bench_function(BenchmarkId::new(strategy.name(), students), |b| {
            b.iter(|| instance.run_query(&sql))
        });
    }
    group.finish();
}

fn bench_depth_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_depth");
    group.sample_size(10);
    let students = 25;
    let paths: Vec<(&str, Vec<&str>)> = vec![
        ("d1", vec!["StudyCourse"]),
        ("d2", vec!["Student", "LName"]),
        ("d3", vec!["Student", "Course", "Name"]),
        ("d4", vec!["Student", "Course", "Professor", "PName"]),
    ];
    for strategy in [Strategy::Or9, Strategy::Edge, Strategy::Inline] {
        let mut instance = loaded(strategy, students);
        for (label, steps) in &paths {
            let sql = instance.path_query(steps, None);
            group.bench_function(
                BenchmarkId::new(strategy.name(), label),
                |b| b.iter(|| instance.run_query(&sql)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_paper_query, bench_depth_sweep);
criterion_main!(benches);

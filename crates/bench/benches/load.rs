//! Bench E6 — document load wall time per storage strategy.
//!
//! The paper's §4.1 claim ("a single INSERT query for one document" vs.
//! "a large number of relational insert operations") as a Criterion
//! comparison. Each iteration sets up a fresh schema and loads one
//! generated university document.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xmlord_bench::{setup, university_doc, Strategy};

fn bench_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("load_university");
    group.sample_size(10);
    for students in [10usize, 50] {
        let (_, doc) = university_doc(students);
        for strategy in Strategy::ALL {
            group.bench_with_input(
                BenchmarkId::new(strategy.name(), students),
                &doc,
                |b, doc| {
                    b.iter_batched(
                        || setup(strategy),
                        |mut instance| instance.load(doc),
                        criterion::BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    group.finish();
}

/// Statement *generation* only (no execution) — isolates the mapping cost
/// from the engine cost.
fn bench_statement_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate_inserts");
    group.sample_size(20);
    let (_, doc) = university_doc(50);
    for strategy in Strategy::ALL {
        let instance = setup(strategy);
        group.bench_function(strategy.name(), |b| {
            b.iter(|| instance.load_statements(&doc))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_load, bench_statement_generation);
criterion_main!(benches);

//! Bench E6 — document load wall time per storage strategy.
//!
//! The paper's §4.1 claim ("a single INSERT query for one document" vs.
//! "a large number of relational insert operations") as a wall-time
//! comparison. Each sample sets up a fresh schema and loads one generated
//! university document.

use xmlord_bench::harness::Harness;
use xmlord_bench::{setup, university_doc, Strategy};

fn main() {
    let mut h = Harness::new("load", 10);
    for students in [10usize, 50] {
        let (_, doc) = university_doc(students);
        for strategy in Strategy::ALL {
            h.bench_batched(
                "load_university",
                &format!("{}/{students}", strategy.name()),
                || setup(strategy),
                |mut instance| instance.load(&doc),
            );
        }
    }

    // Statement *generation* only (no execution) — isolates the mapping
    // cost from the engine cost.
    let (_, doc) = university_doc(50);
    for strategy in Strategy::ALL {
        let instance = setup(strategy);
        h.bench("generate_inserts", strategy.name(), || instance.load_statements(&doc));
    }
    h.finish();
}

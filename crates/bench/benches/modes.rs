//! Bench E10 — the §4.2 mode ablation: Oracle 9 nested collections vs. the
//! Oracle 8 REF workaround, on identical documents.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xmlord_bench::{setup, university_doc, Strategy};

fn bench_mode_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("mode_load");
    group.sample_size(10);
    for students in [10usize, 50] {
        let (_, doc) = university_doc(students);
        for strategy in [Strategy::Or9, Strategy::Or8] {
            group.bench_with_input(
                BenchmarkId::new(strategy.name(), students),
                &doc,
                |b, doc| {
                    b.iter_batched(
                        || setup(strategy),
                        |mut instance| instance.load(doc),
                        criterion::BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    group.finish();
}

fn bench_mode_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("mode_query");
    group.sample_size(10);
    let students = 25;
    for strategy in [Strategy::Or9, Strategy::Or8] {
        let mut instance = setup(strategy);
        let (_, doc) = university_doc(students);
        instance.load(&doc);
        let sql = instance.paper_query();
        group.bench_function(strategy.name(), |b| b.iter(|| instance.run_query(&sql)));
    }
    group.finish();
}

criterion_group!(benches, bench_mode_load, bench_mode_query);
criterion_main!(benches);

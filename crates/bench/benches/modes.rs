//! Bench E10 — the §4.2 mode ablation: Oracle 9 nested collections vs. the
//! Oracle 8 REF workaround, on identical documents.

use xmlord_bench::harness::Harness;
use xmlord_bench::{setup, university_doc, Strategy};

fn main() {
    let mut h = Harness::new("modes", 10);
    for students in [10usize, 50] {
        let (_, doc) = university_doc(students);
        for strategy in [Strategy::Or9, Strategy::Or8] {
            h.bench_batched(
                "mode_load",
                &format!("{}/{students}", strategy.name()),
                || setup(strategy),
                |mut instance| instance.load(&doc),
            );
        }
    }

    let students = 25;
    for strategy in [Strategy::Or9, Strategy::Or8] {
        let mut instance = setup(strategy);
        let (_, doc) = university_doc(students);
        instance.load(&doc);
        let sql = instance.paper_query();
        h.bench("mode_query", strategy.name(), || instance.run_query(&sql));
    }
    h.finish();
}

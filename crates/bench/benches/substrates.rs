//! Substrate microbenchmarks: the Fig. 1 front-end (XML parsing, DTD
//! parsing, validation) and the engine's INSERT/SELECT primitives. Not a
//! paper artifact, but the baseline costs every experiment builds on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xmlord_dtd::{parse_dtd, validate};
use xmlord_ordb::{Database, DbMode};
use xmlord_workload::university::{university_dtd, university_xml, UniversityConfig};

fn bench_xml_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("xml_parse");
    for students in [10usize, 100] {
        let xml = university_xml(&UniversityConfig { students, ..Default::default() });
        group.throughput(Throughput::Bytes(xml.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(students), &xml, |b, xml| {
            b.iter(|| xmlord_xml::parse(xml).unwrap())
        });
    }
    group.finish();
}

fn bench_dtd_parse_and_validate(c: &mut Criterion) {
    c.bench_function("dtd_parse_university", |b| {
        b.iter(|| parse_dtd(university_dtd()).unwrap())
    });
    let dtd = parse_dtd(university_dtd()).unwrap();
    let xml = university_xml(&UniversityConfig { students: 100, ..Default::default() });
    let doc = xmlord_xml::parse(&xml).unwrap();
    c.bench_function("validate_university_100", |b| {
        b.iter(|| {
            let report = validate(&doc, &dtd);
            assert!(report.is_valid());
            report
        })
    });
}

fn bench_engine_primitives(c: &mut Criterion) {
    c.bench_function("engine_insert_select", |b| {
        b.iter_batched(
            || {
                let mut db = Database::new(DbMode::Oracle9);
                db.execute_script(
                    "CREATE TYPE T AS OBJECT(a VARCHAR(100), b NUMBER);
                     CREATE TABLE Tab OF T;",
                )
                .unwrap();
                db
            },
            |mut db| {
                for i in 0..100 {
                    db.execute(&format!("INSERT INTO Tab VALUES (T('row{i}', {i}))")).unwrap();
                }
                db.query("SELECT COUNT(*) FROM Tab t WHERE t.b >= 50").unwrap()
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

criterion_group!(benches, bench_xml_parse, bench_dtd_parse_and_validate, bench_engine_primitives);
criterion_main!(benches);

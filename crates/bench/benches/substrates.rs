//! Substrate microbenchmarks: the Fig. 1 front-end (XML parsing, DTD
//! parsing, validation) and the engine's INSERT/SELECT primitives. Not a
//! paper artifact, but the baseline costs every experiment builds on.

use xmlord_bench::harness::Harness;
use xmlord_dtd::{parse_dtd, validate};
use xmlord_ordb::{Database, DbMode};
use xmlord_workload::university::{university_dtd, university_xml, UniversityConfig};

fn main() {
    let mut h = Harness::new("substrates", 20);
    for students in [10usize, 100] {
        let xml = university_xml(&UniversityConfig { students, ..Default::default() });
        h.bench("xml_parse", &format!("{students} ({} bytes)", xml.len()), || {
            xmlord_xml::parse(&xml).unwrap()
        });
    }

    h.bench("dtd", "parse_university", || parse_dtd(university_dtd()).unwrap());
    let dtd = parse_dtd(university_dtd()).unwrap();
    let xml = university_xml(&UniversityConfig { students: 100, ..Default::default() });
    let doc = xmlord_xml::parse(&xml).unwrap();
    h.bench("dtd", "validate_university_100", || {
        let report = validate(&doc, &dtd);
        assert!(report.is_valid());
        report
    });

    h.bench_batched(
        "engine",
        "insert_select",
        || {
            let mut db = Database::new(DbMode::Oracle9);
            db.execute_script(
                "CREATE TYPE T AS OBJECT(a VARCHAR(100), b NUMBER);
                 CREATE TABLE Tab OF T;",
            )
            .unwrap();
            db
        },
        |mut db| {
            for i in 0..100 {
                db.execute(&format!("INSERT INTO Tab VALUES (T('row{i}', {i}))")).unwrap();
            }
            db.query("SELECT COUNT(*) FROM Tab t WHERE t.b >= 50").unwrap()
        },
    );
    h.finish();
}

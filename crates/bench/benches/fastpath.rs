//! Bench for the engine fast paths: indexed OID resolution on REF-chain
//! navigation, and hash equi-joins on the edge-table baseline's multi-way
//! self-joins (the paper query on the edge mapping is a 7-table FROM).
//!
//! The hash-join benches run the identical SQL twice — fast path on, then
//! forced nested loops — so the printed table is its own ablation.

use xmlord_bench::harness::Harness;
use xmlord_bench::{ref_chain_db, setup, university_doc, Strategy};

fn main() {
    let mut h = Harness::new("fastpath", 10);

    // REF-chain navigation: every deref is one OID-directory lookup.
    let mut db = ref_chain_db(500);
    h.bench("ref_chain", "deref_500", || {
        db.query("SELECT c.prof.subject FROM TabCourse c").unwrap()
    });
    h.bench("ref_chain", "boss_hop2_500", || {
        db.query("SELECT p.boss.boss.pname FROM TabProf p WHERE p.boss IS NOT NULL").unwrap()
    });

    // The edge-table paper query: a multi-way self-join over the edge table
    // (7 FROM items for Student/Course/Professor/PName plus the predicate
    // branch). This is where hash equi-joins replace O(n²) pairings.
    let mut instance = setup(Strategy::Edge);
    let (_, doc) = university_doc(25);
    instance.load(&doc);
    let sql = instance.paper_query();
    let joins = sql.matches("Edge").count();
    let before = instance.db.stats();
    instance.run_query(&sql);
    let delta = instance.db.stats().since(&before);
    println!(
        "edge paper query: {} edge-table occurrences, hash builds {}, join pairs {}",
        joins, delta.hash_join_builds, delta.join_pairs
    );
    h.bench("edge_join", "hash", || instance.run_query(&sql));
    instance.db.set_hash_joins(false);
    h.bench("edge_join", "nested_loop", || instance.run_query(&sql));
    instance.db.set_hash_joins(true);
    h.finish();
}

//! # xmlord-bench — shared experiment harness
//!
//! Substrate **S7**: the code both the `benches/` targets (running on the
//! local [`harness`]) and the `experiments` binary run. Each function sets
//! up one storage strategy for
//! the scaled university workload and measures the quantities the paper
//! argues about qualitatively: INSERT-statement counts, table/row
//! fragmentation, join work and wall time.
//!
//! The strategy inventory:
//!
//! | id | strategy | paper role |
//! |----|----------|------------|
//! | `or9` | object-relational mapping, Oracle 9 mode | the contribution (nested collections, §4.2) |
//! | `or8` | object-relational mapping, Oracle 8 mode | the REF workaround (§4.2) |
//! | `rel` | key-based relational shredding | §6.3's "known mapping algorithms \[2\]" |
//! | `edge` | edge table | Florescu/Kossmann \[5\] |
//! | `attr` | attribute tables | Florescu/Kossmann \[5\] |
//! | `inline` | hybrid inlining | Shanmugasundaram et al. \[9\] |

pub mod harness;

use std::time::Instant;

use xml2ordb::ddlgen::{create_script, types_script};
use xml2ordb::loader::load_script;
use xml2ordb::model::{MappedSchema, MappingOptions};
use xml2ordb::pathquery::{translate, PathQuery};
use xml2ordb::schemagen::{generate_schema, IdrefTargets};
use xml2ordb::views;
use xmlord_dtd::ast::Dtd;
use xmlord_dtd::parse_dtd;
use xmlord_ordb::{Database, DbMode};
use xmlord_shred::Baseline;
use xmlord_workload::university::{university_dtd, university_xml, UniversityConfig};
use xmlord_xml::Document;

/// All storage strategies of the comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    Or9,
    Or8,
    Relational,
    Edge,
    AttributeTables,
    Inline,
}

impl Strategy {
    pub const ALL: [Strategy; 6] = [
        Strategy::Or9,
        Strategy::Or8,
        Strategy::Relational,
        Strategy::Edge,
        Strategy::AttributeTables,
        Strategy::Inline,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Strategy::Or9 => "or9",
            Strategy::Or8 => "or8",
            Strategy::Relational => "rel",
            Strategy::Edge => "edge",
            Strategy::AttributeTables => "attr",
            Strategy::Inline => "inline",
        }
    }

    /// The [`DbMode`] whose rules this strategy's generated SQL targets
    /// (what `experiments analyze` lints it under).
    pub fn analyze_mode(self) -> DbMode {
        match self {
            Strategy::Or8 => DbMode::Oracle8,
            _ => DbMode::Oracle9,
        }
    }

    pub fn describe(self) -> &'static str {
        match self {
            Strategy::Or9 => "object-relational (Oracle 9, nested collections)",
            Strategy::Or8 => "object-relational (Oracle 8, REF workaround)",
            Strategy::Relational => "key-based relational shredding [2]",
            Strategy::Edge => "edge table [5]",
            Strategy::AttributeTables => "attribute tables [5]",
            Strategy::Inline => "hybrid inlining [9]",
        }
    }
}

/// One strategy instantiated for the university DTD, ready to load
/// documents and run queries.
pub struct Instance {
    pub strategy: Strategy,
    pub db: Database,
    pub dtd: Dtd,
    /// The DDL script this instance executed at setup (for `sqlcheck`).
    pub ddl: String,
    or_schema: Option<MappedSchema>,
    rel_schema: Option<views::RelationalSchema>,
    inline_schema: Option<xmlord_shred::inline::InlineSchema>,
}

/// Parse the university DTD once.
pub fn parse_university_dtd() -> Dtd {
    parse_dtd(university_dtd()).expect("the Appendix A DTD parses")
}

/// Generate a university document of the given size.
pub fn university_doc(students: usize) -> (String, Document) {
    let config = UniversityConfig { students, ..Default::default() };
    let xml = university_xml(&config);
    let doc = xmlord_xml::parse(&xml).expect("generated documents are well-formed");
    (xml, doc)
}

/// Create the schema for one strategy (DDL executed, nothing loaded).
pub fn setup(strategy: Strategy) -> Instance {
    let dtd = parse_university_dtd();
    let root = "University";
    match strategy {
        Strategy::Or9 | Strategy::Or8 => {
            let mode = if strategy == Strategy::Or9 { DbMode::Oracle9 } else { DbMode::Oracle8 };
            // The paper's example uses VARRAY(100); benchmark sweeps go to
            // 1000 students, so the harness raises the capacity (E6 sweep
            // sizes would otherwise hit the very VarrayLimitExceeded error
            // the engine enforces — itself a §7 finding).
            let schema = generate_schema(
                &dtd,
                root,
                mode,
                MappingOptions { varray_max: 10_000, ..Default::default() },
                &IdrefTargets::new(),
            )
            .expect("university schema generates");
            let mut db = Database::new(mode);
            let ddl = create_script(&schema).expect("generated DDL renders");
            db.execute_script(&ddl).expect("generated DDL executes");
            Instance {
                strategy,
                db,
                dtd,
                ddl,
                or_schema: Some(schema),
                rel_schema: None,
                inline_schema: None,
            }
        }
        Strategy::Relational => {
            // Types are needed only for the §6.3 object view, but creating
            // them keeps the instance view-capable.
            let schema = generate_schema(
                &dtd,
                root,
                DbMode::Oracle9,
                MappingOptions { with_doc_id: false, ..Default::default() },
                &IdrefTargets::new(),
            )
            .expect("university schema generates");
            let rel = views::relational_schema(&schema);
            let mut db = Database::new(DbMode::Oracle9);
            let ddl = format!("{}
{}", types_script(&schema).expect("types script renders"), views::relational_ddl(&rel, 4000));
            db.execute_script(&ddl).expect("relational DDL");
            Instance {
                strategy,
                db,
                dtd,
                ddl,
                or_schema: Some(schema),
                rel_schema: Some(rel),
                inline_schema: None,
            }
        }
        Strategy::Edge | Strategy::AttributeTables => {
            let baseline = if strategy == Strategy::Edge {
                Baseline::Edge
            } else {
                Baseline::AttributeTables
            };
            let mut db = Database::new(DbMode::Oracle9);
            let ddl = baseline.ddl(&dtd, root).unwrap();
            db.execute_script(&ddl).expect("baseline DDL");
            Instance { strategy, db, dtd, ddl, or_schema: None, rel_schema: None, inline_schema: None }
        }
        Strategy::Inline => {
            let schema = xmlord_shred::inline::InlineSchema::build(&dtd, root);
            let mut db = Database::new(DbMode::Oracle9);
            let ddl = schema.ddl();
            db.execute_script(&ddl).expect("inline DDL");
            Instance {
                strategy,
                db,
                dtd,
                ddl,
                or_schema: None,
                rel_schema: None,
                inline_schema: Some(schema),
            }
        }
    }
}

/// Measurements from loading one document.
#[derive(Debug, Clone, Copy)]
pub struct LoadMeasurement {
    pub statements: usize,
    pub rows: usize,
    pub tables: usize,
    pub micros: u128,
}

impl Instance {
    /// The generated object-relational schema (or9/or8/rel instances).
    pub fn or_schema(&self) -> Option<&MappedSchema> {
        self.or_schema.as_ref()
    }

    /// Generate the INSERT statements for `doc` (not executed).
    pub fn load_statements(&self, doc: &Document) -> Vec<String> {
        match self.strategy {
            Strategy::Or9 | Strategy::Or8 => load_script(
                self.or_schema.as_ref().unwrap(),
                &self.dtd,
                doc,
                "doc1",
            )
            .expect("load script generates"),
            Strategy::Relational => views::relational_load_script(
                self.or_schema.as_ref().unwrap(),
                self.rel_schema.as_ref().unwrap(),
                doc,
            )
            .expect("relational load generates"),
            Strategy::Edge => xmlord_shred::edge::load(doc),
            Strategy::AttributeTables => xmlord_shred::attrtab::load(doc),
            Strategy::Inline => self.inline_schema.as_ref().unwrap().load(doc).unwrap(),
        }
    }

    /// Generate + execute the load; returns the measurement.
    pub fn load(&mut self, doc: &Document) -> LoadMeasurement {
        let start = Instant::now();
        let statements = self.load_statements(doc);
        for stmt in &statements {
            self.db
                .execute(stmt)
                .unwrap_or_else(|e| panic!("{}: {e}\n{stmt}", self.strategy.name()));
        }
        LoadMeasurement {
            statements: statements.len(),
            rows: self.db.storage().total_rows(),
            tables: self.db.catalog().table_count(),
            micros: start.elapsed().as_micros(),
        }
    }

    /// The paper's §4.1 query ("family names of students subscribed to a
    /// course of Professor Jaeger") translated for this strategy.
    pub fn paper_query(&self) -> String {
        self.path_query(
            &["Student", "LName"],
            Some((&["Student", "Course", "Professor", "PName"], "Jaeger")),
        )
    }

    /// Translate a path query for this strategy.
    pub fn path_query(&self, steps: &[&str], predicate: Option<(&[&str], &str)>) -> String {
        match self.strategy {
            Strategy::Or9 | Strategy::Or8 => {
                let mut q = PathQuery {
                    steps: steps.iter().map(|s| s.to_string()).collect(),
                    predicate: None,
                };
                if let Some((path, value)) = predicate {
                    q = q.with_predicate(&path.join("/"), value);
                }
                translate(self.or_schema.as_ref().unwrap(), &q).expect("query translates").sql
            }
            Strategy::Relational => {
                // Query through the §6.3 object view would need it created;
                // query the base tables directly like [2]-style systems do.
                relational_path_query(self.rel_schema.as_ref().unwrap(), steps, predicate)
            }
            Strategy::Edge => xmlord_shred::edge::path_query("University", steps, predicate),
            Strategy::AttributeTables => {
                xmlord_shred::attrtab::path_query("University", steps, predicate)
            }
            Strategy::Inline => self
                .inline_schema
                .as_ref()
                .unwrap()
                .path_query(steps, predicate)
                .expect("query translates"),
        }
    }

    /// Run a query, returning (row count, join pairs, wall micros).
    pub fn run_query(&mut self, sql: &str) -> (usize, u64, u128) {
        let before = self.db.stats();
        let start = Instant::now();
        let result = self.db.query(sql).unwrap_or_else(|e| panic!("{e}\n{sql}"));
        let micros = start.elapsed().as_micros();
        let delta = self.db.stats().since(&before);
        (result.rows.len(), delta.join_pairs, micros)
    }
}

/// Path query against the key-based relational schema (joins along the
/// parent keys). Result and predicate paths share their common prefix.
fn relational_path_query(
    rel: &views::RelationalSchema,
    steps: &[&str],
    predicate: Option<(&[&str], &str)>,
) -> String {
    let mut b = RelBuilder { rel, from: Vec::new(), wheres: Vec::new(), next: 0 };
    let root_alias = b.join(&rel.root, None);
    let root_cursor = (root_alias, rel.root.clone());
    let expr = match predicate {
        None => b.descend(root_cursor.clone(), steps),
        Some((path, value)) => {
            let shared = steps
                .iter()
                .zip(path.iter())
                .take_while(|(a, b)| a == b)
                .count()
                .min(steps.len().saturating_sub(1))
                .min(path.len().saturating_sub(1));
            let mut cursor = root_cursor;
            for step in &steps[..shared] {
                cursor = b.advance(cursor, step);
            }
            let expr = b.descend(cursor.clone(), &steps[shared..]);
            let pred_expr = b.descend(cursor, &path[shared..]);
            b.wheres.push(format!("{pred_expr} = '{}'", value.replace('\'', "''")));
            expr
        }
    };
    let mut sql = format!("SELECT DISTINCT {expr} FROM {}", b.from.join(", "));
    if !b.wheres.is_empty() {
        sql.push_str(" WHERE ");
        sql.push_str(&b.wheres.join(" AND "));
    }
    sql
}

struct RelBuilder<'a> {
    rel: &'a views::RelationalSchema,
    from: Vec<String>,
    wheres: Vec<String>,
    next: usize,
}

impl<'a> RelBuilder<'a> {
    fn join(&mut self, element: &str, parent: Option<&(String, String)>) -> String {
        let table = self.rel.table_for(element).expect("relational table exists");
        let alias = format!("r{}", self.next);
        self.next += 1;
        self.from.push(format!("{} {alias}", table.name));
        if let Some((parent_alias, parent_element)) = parent {
            let parent_table = self.rel.table_for(parent_element).expect("parent table");
            self.wheres
                .push(format!("{alias}.IDParent = {parent_alias}.{}", parent_table.id_column));
        }
        alias
    }

    /// Advance one element step; (alias, element) is the current cursor.
    fn advance(&mut self, cursor: (String, String), step: &str) -> (String, String) {
        if self.rel.table_for(step).is_some() {
            let alias = self.join(step, Some(&cursor));
            (alias, step.to_string())
        } else {
            cursor // inlined below the current row; columns carry the name
        }
    }

    fn descend(&mut self, cursor: (String, String), steps: &[&str]) -> String {
        let mut cursor = cursor;
        for step in steps {
            if let Some(attr) = step.strip_prefix('@') {
                return format!("{}.attr{attr}", cursor.0);
            }
            if self.rel.table_for(step).is_some() {
                cursor = self.advance(cursor, step);
            } else if let Some(list) = self.rel.leaf_list_for(step) {
                let list = list.clone();
                let a = format!("r{}", self.next);
                self.next += 1;
                self.from.push(format!("{} {a}", list.name));
                let parent_table = self.rel.table_for(&cursor.1).unwrap();
                self.wheres
                    .push(format!("{a}.IDParent = {}.{}", cursor.0, parent_table.id_column));
                return format!("{a}.{}", list.columns[0].0);
            } else {
                // Inlined simple child: a column on the current table.
                return format!("{}.attr{step}", cursor.0);
            }
        }
        cursor.0
    }
}

/// An object table of `n` professors forming a boss REF chain, plus one
/// course per professor holding a REF to it — the deref-heavy workload for
/// the OID-directory experiments (every navigation step is one OID lookup).
pub fn ref_chain_db(n: usize) -> Database {
    let mut db = Database::new(DbMode::Oracle9);
    db.execute_script(
        "CREATE TYPE T_Prof AS OBJECT(pname VARCHAR(30), subject VARCHAR(30), boss REF T_Prof);
         CREATE TYPE T_Course AS OBJECT(cname VARCHAR(30), prof REF T_Prof);
         CREATE TABLE TabProf OF T_Prof;
         CREATE TABLE TabCourse OF T_Course;",
    )
    .unwrap();
    for i in 0..n {
        db.execute(&format!(
            "INSERT INTO TabProf VALUES (T_Prof('prof{i}', 'subj{}', NULL))",
            i % 7
        ))
        .unwrap();
        if i > 0 {
            db.execute(&format!(
                "UPDATE TabProf SET boss = (SELECT REF(b) FROM TabProf b WHERE b.pname = 'prof{}') \
                 WHERE pname = 'prof{i}'",
                i - 1
            ))
            .unwrap();
        }
        db.execute(&format!(
            "INSERT INTO TabCourse VALUES (T_Course('course{i}',
               (SELECT REF(p) FROM TabProf p WHERE p.pname = 'prof{i}')))"
        ))
        .unwrap();
    }
    db
}

/// One (strategy × document size) measurement row for the E6/E8 tables.
pub fn measure_load(strategy: Strategy, students: usize) -> LoadMeasurement {
    let mut instance = setup(strategy);
    let (_, doc) = university_doc(students);
    instance.load(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_strategy_loads_and_answers_the_paper_query() {
        let (_, doc) = university_doc(4);
        for strategy in Strategy::ALL {
            let mut instance = setup(strategy);
            let m = instance.load(&doc);
            assert!(m.statements >= 1, "{}", strategy.name());
            let sql = instance.paper_query();
            let (rows, _, _) = instance.run_query(&sql);
            // Some generated universities may have no Jaeger course for a
            // student — but with 4 students × 2 courses the name pool makes
            // at least zero rows valid; just assert the query executes.
            let _ = rows;
        }
    }

    #[test]
    fn or9_single_insert_vs_baselines() {
        let (_, doc) = university_doc(3);
        let or9 = setup(Strategy::Or9).load_statements(&doc).len();
        assert_eq!(or9, 1);
        for strategy in [Strategy::Edge, Strategy::AttributeTables, Strategy::Inline, Strategy::Relational] {
            let n = setup(strategy).load_statements(&doc).len();
            assert!(n > 5, "{}: {n}", strategy.name());
        }
    }

    #[test]
    fn or9_query_reports_zero_relational_joins_for_single_valued_paths() {
        let mut instance = setup(Strategy::Or9);
        let (_, doc) = university_doc(2);
        instance.load(&doc);
        let sql = instance.path_query(&["StudyCourse"], None);
        let (_, join_pairs, _) = instance.run_query(&sql);
        assert_eq!(join_pairs, 0);
    }
}

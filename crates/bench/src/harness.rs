//! Minimal benchmark harness used by the `benches/` targets.
//!
//! The build environment has no access to crates.io, so the Criterion-style
//! targets run on this self-contained runner instead: fixed sample counts,
//! per-iteration wall times, and a median/mean/min summary table on stdout.
//! That is all the experiments need — the paper's comparisons are about
//! orders of magnitude (statement counts, join work), not microseconds.
//!
//! Set `BENCH_SAMPLES` to override the per-benchmark sample count (e.g.
//! `BENCH_SAMPLES=3` for a smoke run in CI).

use std::time::Instant;

/// Summary of one benchmark: nanosecond statistics over its samples.
#[derive(Debug, Clone)]
pub struct Summary {
    pub group: String,
    pub name: String,
    pub samples: usize,
    pub min_ns: u128,
    pub median_ns: u128,
    pub mean_ns: u128,
    pub max_ns: u128,
}

/// Collects benchmark results and prints them as a table on `finish`.
pub struct Harness {
    title: String,
    samples: usize,
    results: Vec<Summary>,
}

impl Harness {
    /// `default_samples` applies unless `BENCH_SAMPLES` overrides it.
    pub fn new(title: &str, default_samples: usize) -> Harness {
        let samples = std::env::var("BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n: &usize| n > 0)
            .unwrap_or(default_samples);
        Harness { title: title.to_string(), samples, results: Vec::new() }
    }

    /// Time `routine` directly: one untimed warmup, then `samples` timed
    /// runs.
    pub fn bench<O>(&mut self, group: &str, name: &str, mut routine: impl FnMut() -> O) {
        let mut durations = Vec::with_capacity(self.samples);
        std::hint::black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            durations.push(start.elapsed().as_nanos());
        }
        self.push(group, name, durations);
    }

    /// Time `routine` on a fresh `setup()` product per sample; only the
    /// routine is on the clock (Criterion's `iter_batched`).
    pub fn bench_batched<S, O>(
        &mut self,
        group: &str,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> O,
    ) {
        let mut durations = Vec::with_capacity(self.samples);
        std::hint::black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            durations.push(start.elapsed().as_nanos());
        }
        self.push(group, name, durations);
    }

    fn push(&mut self, group: &str, name: &str, mut durations: Vec<u128>) {
        durations.sort_unstable();
        let samples = durations.len();
        let sum: u128 = durations.iter().sum();
        self.results.push(Summary {
            group: group.to_string(),
            name: name.to_string(),
            samples,
            min_ns: durations[0],
            median_ns: durations[samples / 2],
            mean_ns: sum / samples as u128,
            max_ns: durations[samples - 1],
        });
    }

    /// Print the result table and hand back the raw summaries.
    pub fn finish(self) -> Vec<Summary> {
        println!("\n== {} ({} samples each) ==", self.title, self.samples);
        println!(
            "{:<24} {:<24} {:>12} {:>12} {:>12}",
            "group", "bench", "min", "median", "mean"
        );
        for r in &self.results {
            println!(
                "{:<24} {:<24} {:>12} {:>12} {:>12}",
                r.group,
                r.name,
                format_ns(r.min_ns),
                format_ns(r.median_ns),
                format_ns(r.mean_ns)
            );
        }
        self.results
    }
}

/// Human-readable nanoseconds: `412ns`, `3.1µs`, `27ms`, `1.4s`.
pub fn format_ns(ns: u128) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summaries_are_ordered_and_formatted() {
        let mut h = Harness::new("t", 5);
        let mut n = 0u64;
        h.bench("g", "count", || {
            n += 1;
            n
        });
        let results = h.finish();
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert_eq!(r.samples, 5);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert!(n >= 6, "warmup + samples ran");
    }

    #[test]
    fn batched_runs_setup_per_sample() {
        let mut h = Harness::new("t", 4);
        let mut setups = 0u64;
        h.bench_batched(
            "g",
            "b",
            || {
                setups += 1;
                setups
            },
            |s| s * 2,
        );
        assert_eq!(setups, 5); // warmup + 4 samples
        h.finish();
    }

    #[test]
    fn format_spans_units() {
        assert_eq!(format_ns(999), "999ns");
        assert_eq!(format_ns(1_500), "1.5µs");
        assert_eq!(format_ns(2_000_000), "2.0ms");
        assert_eq!(format_ns(1_400_000_000), "1.40s");
    }
}

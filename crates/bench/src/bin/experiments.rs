//! `experiments` — regenerate every table and figure of the paper (plus the
//! quantified versions of its qualitative claims). See EXPERIMENTS.md for
//! the experiment index.
//!
//! Usage: `experiments [table1|fig2|load|query|shredding|roundtrip|modes|schemagen|drawbacks|fastpath|analyze|faults|all]`
//!
//! `fastpath` writes JSON to stdout (narration goes to stderr), so
//! `experiments fastpath > BENCH_PR1.json` captures the counter deltas.
//!
//! `analyze [oracle8|oracle9|both]` runs the `sqlcheck` static analyzer over
//! every strategy's generated DDL + load scripts and exits non-zero if any
//! script draws an Error-severity diagnostic (CI runs this in both modes).
//!
//! `maplint` sweeps the three-level `maplint` analyzer (DTD lints per
//! strategy, mapping lints, catalog-drift check) over the `dtdgen` corpus
//! and exits non-zero if any loadable DTD draws an Error-severity finding
//! — the differential guarantee reserves Errors for real failures.
//!
//! `trace` writes JSON to stdout (`experiments trace > BENCH_PR4.json`): the
//! per-phase wall-time breakdown of a store + retrieve captured through the
//! structured tracing layer, plus the measured cost of tracing itself.
//!
//! `bulk` writes JSON to stdout (`experiments bulk > BENCH_PR5.json`): the
//! bulk-ingest comparison — per-statement SQL text vs prepared statements
//! vs batched inserts at the engine tier, and 1/2/4-worker parallel
//! shredding at the pipeline tier, with byte-identical state verified
//! across every delivery.
//!
//! `planner` writes JSON to stdout (`experiments planner > BENCH_PR6.json`):
//! the §4.1 paper query on the edge strategy, swept from 100 students to
//! ~10⁶ edge/value rows, with secondary indexes + ANALYZE statistics and
//! the cost-based planner against the planner-disabled baseline on the
//! same database. Results are asserted identical at every scale and the
//! process exits non-zero unless the largest scale clears a 5× speedup.
//!
//! `concurrency` writes JSON to stdout (`experiments concurrency >
//! BENCH_PR9.json`): aggregate snapshot-read throughput at 1/2/4/8 reader
//! threads over one writer, the lock-profile split of reader work, and a
//! differential gate under writer churn — every concurrent read must be
//! byte-identical to a serial replay at its pinned committed epoch. On a
//! multi-core host the process exits non-zero unless 4 readers clear 2×
//! aggregate throughput; on fewer cores the gate falls back to the
//! measured parallel fraction (the Amdahl bound for that speedup).
//!
//! `retrieve` writes JSON to stdout (`experiments retrieve >
//! BENCH_PR10.json`): set-oriented bulk document reconstruction against
//! the naive per-node walker on the same loaded database — the or8
//! inverted mapping swept 100→20 000 students and the edge mapping on a
//! capped sweep (its naive walker is O(nodes × rows)). Byte-identity is
//! asserted at every scale; the process exits non-zero unless at least
//! one mapping's top scale clears a 5× speedup.

use std::collections::BTreeSet;
use std::time::Instant;

use xml2ordb::ddlgen::create_script;
use xml2ordb::model::MappingOptions;
use xml2ordb::naming::{NameGenerator, NameKind};
use xml2ordb::pipeline::Xml2OrDb;
use xml2ordb::roundtrip::{compare, Loss};
use xml2ordb::schemagen::{generate_schema, IdrefTargets};
use xmlord_bench::{measure_load, setup, university_doc, Strategy};
use xmlord_dtd::parse_dtd;
use xmlord_ordb::{Analyzer, Database, DbMode, RecoveryPolicy, Severity};
use xmlord_workload::catalog::{catalog_xml, CatalogConfig, CATALOG_DTD};
use xmlord_workload::dtdgen::{generate_dtd, DtdConfig};

const EXPERIMENTS: &[&str] = &[
    "table1",
    "fig2",
    "load",
    "query",
    "shredding",
    "roundtrip",
    "modes",
    "schemagen",
    "drawbacks",
    "fastpath",
    "analyze",
    "maplint",
    "faults",
    "trace",
    "bulk",
    "planner",
    "durability",
    "concurrency",
    "retrieve",
];

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    if which != "all" && !EXPERIMENTS.contains(&which.as_str()) {
        eprintln!("unknown experiment '{which}'");
        eprintln!("usage: experiments [{}|all]", EXPERIMENTS.join("|"));
        std::process::exit(2);
    }
    let all = which == "all";
    if all || which == "table1" {
        table1();
    }
    if all || which == "fig2" {
        fig2();
    }
    if all || which == "load" {
        load();
    }
    if all || which == "query" {
        query();
    }
    if all || which == "shredding" {
        shredding();
    }
    if all || which == "roundtrip" {
        roundtrip();
    }
    if all || which == "modes" {
        modes();
    }
    if all || which == "schemagen" {
        schemagen_scaling();
    }
    if all || which == "drawbacks" {
        drawbacks();
    }
    if all || which == "fastpath" {
        fastpath();
    }
    if all || which == "faults" {
        faults();
    }
    if all || which == "trace" {
        trace_experiment();
    }
    if all || which == "bulk" {
        bulk();
    }
    if all || which == "planner" {
        planner();
    }
    if all || which == "durability" {
        durability();
    }
    if all || which == "concurrency" {
        concurrency();
    }
    if all || which == "retrieve" {
        retrieve_experiment();
    }
    if all || which == "analyze" {
        let mode_filter = std::env::args().nth(2).unwrap_or_else(|| "both".to_string());
        if !analyze(&mode_filter) {
            eprintln!("analyze: generated scripts drew Error-severity diagnostics");
            std::process::exit(1);
        }
    }
    if (all || which == "maplint") && !maplint_experiment() {
        eprintln!("maplint: loadable DTDs drew Error-severity findings");
        std::process::exit(1);
    }
}

fn heading(title: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}

/// E1 — Table 1: naming conventions, regenerated from the live generator.
fn table1() {
    heading("E1 / Table 1 — Naming Conventions in XML2Oracle (regenerated from code)");
    let mut names = NameGenerator::new();
    let mut scope = BTreeSet::new();
    let rows: Vec<(String, &str)> = vec![
        (names.global(NameKind::Table, "Elementname"), "Name of a table"),
        (
            names.scoped(NameKind::AttrFromElement, "Elementname", &mut scope),
            "DB attribute derived from a simple XML element",
        ),
        (
            names.scoped(NameKind::AttrFromAttribute, "Attributename", &mut scope),
            "DB attribute derived from an XML attribute",
        ),
        (
            names.scoped(NameKind::AttrList, "Elementname", &mut scope),
            "DB attribute that represents an XML attribute list",
        ),
        (
            names.scoped(NameKind::IdAttr, "Elementname", &mut scope),
            "Name of a primary key or foreign key attribute",
        ),
        (
            names.global(NameKind::ObjectType, "Elementname"),
            "Name of an object type derived from an element name",
        ),
        (
            names.global(NameKind::AttrListType, "Elementname"),
            "Name of an object type generated for an attribute list",
        ),
        (names.global(NameKind::VarrayType, "Elementname"), "Name of an array"),
        (names.global(NameKind::ObjectView, "Elementname"), "Name of an object view"),
    ];
    println!("{:<28} Object Semantics", "Naming Convention");
    println!("{:-<28} {:-<50}", "", "");
    for (name, semantics) in rows {
        println!("{name:<28} {semantics}");
    }
}

/// E2 — Fig. 2: one row per leaf of the mapping decision tree, with the DDL
/// the generator actually emits for it.
fn fig2() {
    heading("E2 / Fig. 2 — Mapping decision tree: every case and its generated DDL");
    let cases: &[(&str, &str, &str)] = &[
        ("simple, mandatory", "<!ELEMENT r (a)><!ELEMENT a (#PCDATA)>", "r"),
        ("simple, optional (?)", "<!ELEMENT r (a?)><!ELEMENT a (#PCDATA)>", "r"),
        ("simple, iteration (*)", "<!ELEMENT r (a*)><!ELEMENT a (#PCDATA)>", "r"),
        ("simple, iteration (+)", "<!ELEMENT r (a+)><!ELEMENT a (#PCDATA)>", "r"),
        (
            "complex, mandatory",
            "<!ELEMENT r (a)><!ELEMENT a (b)><!ELEMENT b (#PCDATA)>",
            "r",
        ),
        (
            "complex, iteration (*)",
            "<!ELEMENT r (a*)><!ELEMENT a (b)><!ELEMENT b (#PCDATA)>",
            "r",
        ),
        (
            "attribute IMPLIED",
            "<!ELEMENT r (a)><!ELEMENT a (#PCDATA)><!ATTLIST a x CDATA #IMPLIED>",
            "r",
        ),
        (
            "attribute REQUIRED",
            "<!ELEMENT r (a)><!ELEMENT a (#PCDATA)><!ATTLIST a x CDATA #REQUIRED>",
            "r",
        ),
        (
            "attribute list (>1)",
            "<!ELEMENT r (a)><!ELEMENT a (#PCDATA)><!ATTLIST a x CDATA #IMPLIED y CDATA #IMPLIED>",
            "r",
        ),
    ];
    for (label, dtd_text, root) in cases {
        let dtd = parse_dtd(dtd_text).unwrap();
        let schema = generate_schema(
            &dtd,
            root,
            DbMode::Oracle9,
            MappingOptions { with_doc_id: false, ..Default::default() },
            &IdrefTargets::new(),
        )
        .unwrap();
        let script = create_script(&schema).unwrap();
        println!("\n--- {label}\n    DTD: {dtd_text}");
        for line in script.lines() {
            println!("    {line}");
        }
    }
}

/// E6 — §1/§4.1 claim: statement counts and load time per strategy.
fn load() {
    heading("E6 — Document load: INSERT statements and wall time per strategy");
    println!(
        "{:<8} {:>9} {:>12} {:>10} {:>10} {:>12}",
        "strategy", "students", "elements", "INSERTs", "rows", "load(ms)"
    );
    for students in [10, 100, 1000] {
        let (xml, _) = university_doc(students);
        let elements = xml.matches("</").count();
        for strategy in Strategy::ALL {
            let m = measure_load(strategy, students);
            println!(
                "{:<8} {:>9} {:>12} {:>10} {:>10} {:>12.2}",
                strategy.name(),
                students,
                elements,
                m.statements,
                m.rows,
                m.micros as f64 / 1000.0
            );
        }
        println!();
    }
    println!("Paper claim (§4.1): the OR mapping needs a single INSERT per document,");
    println!("while shredding 'turns the upload of a document into a large number of");
    println!("relational insert operations'.");
}

/// E7 — §4.1 claim: query latency and join work vs path depth.
fn query() {
    heading("E7 — Path queries: latency and join work per strategy");
    let paths: Vec<(&str, Vec<&str>)> = vec![
        ("depth 1", vec!["StudyCourse"]),
        ("depth 2", vec!["Student", "LName"]),
        ("depth 4", vec!["Student", "Course", "Name"]),
        ("depth 5", vec!["Student", "Course", "Professor", "PName"]),
    ];
    let students = 50;
    println!(
        "{:<8} {:<10} {:>8} {:>12} {:>12}",
        "strategy", "path", "rows", "join-pairs", "time(ms)"
    );
    for strategy in Strategy::ALL {
        let mut instance = setup(strategy);
        let (_, doc) = university_doc(students);
        instance.load(&doc);
        for (label, steps) in &paths {
            let sql = instance.path_query(steps, None);
            let (rows, join_pairs, micros) = instance.run_query(&sql);
            println!(
                "{:<8} {:<10} {:>8} {:>12} {:>12.2}",
                instance.strategy.name(),
                label,
                rows,
                join_pairs,
                micros as f64 / 1000.0
            );
        }
        // The paper's predicate query.
        let sql = instance.paper_query();
        let (rows, join_pairs, micros) = instance.run_query(&sql);
        println!(
            "{:<8} {:<10} {:>8} {:>12} {:>12.2}",
            instance.strategy.name(),
            "paper-q",
            rows,
            join_pairs,
            micros as f64 / 1000.0
        );
        println!();
    }
    println!("Paper claim (§4.1): dot notation traverses the object structure 'without");
    println!("executing join operations'; generic shredding joins once per path step.");
}

/// E8 — §1 claim: degree of decomposition.
fn shredding() {
    heading("E8 — Fragmentation: tables and rows per stored document");
    let students = 100;
    let (_, doc) = university_doc(students);
    println!(
        "{:<8} {:>8} {:>8}   description",
        "strategy", "tables", "rows"
    );
    for strategy in Strategy::ALL {
        let mut instance = setup(strategy);
        let m = instance.load(&doc);
        println!(
            "{:<8} {:>8} {:>8}   {}",
            strategy.name(),
            m.tables,
            m.rows,
            strategy.describe()
        );
    }
    println!("\nPaper claim (§1): generic algorithms cause a 'high degree of");
    println!("decomposition of the source documents'; the OR mapping stores one row.");
}

/// E9 — §6.1/§7: round-trip fidelity with and without meta-data.
fn roundtrip() {
    heading("E9 — Round-trip fidelity on a document-centric catalog");
    let xml = catalog_xml(&CatalogConfig { products: 6, ..Default::default() });
    let mut sys = Xml2OrDb::new(DbMode::Oracle9);
    sys.register_dtd("catalog", CATALOG_DTD, "Catalog").unwrap();
    let doc_id = sys.store_document("catalog", &xml).unwrap();

    // With the §5/§6.1 meta-data (entity restoration).
    let restored = sys.retrieve_document(&doc_id).unwrap();
    let dtd = parse_dtd(CATALOG_DTD).unwrap();
    let original = xmlord_xml::parse_with_catalog(&xml, dtd.entity_catalog()).unwrap();
    let restored_doc = xmlord_xml::parse_with_catalog(&restored, dtd.entity_catalog()).unwrap();
    let report = compare(&original, &restored_doc);

    let count = |pred: fn(&Loss) -> bool| report.count(pred);
    println!("losses after store→retrieve (entity references restored from meta-data):");
    println!("  comments lost:            {}", count(|l| matches!(l, Loss::Comment { .. })));
    println!(
        "  processing instr. lost:   {}",
        count(|l| matches!(l, Loss::ProcessingInstruction { .. }))
    );
    println!("  CDATA demoted to text:    {}", count(|l| matches!(l, Loss::CDataDemoted { .. })));
    println!(
        "  mixed interleaving lost:  {}",
        count(|l| matches!(l, Loss::MixedInterleaving { .. }))
    );
    println!("  order changed:            {}", count(|l| matches!(l, Loss::OrderChanged { .. })));
    println!(
        "  DATA DAMAGE (should be 0): {}",
        report.losses.iter().filter(|l| !l.is_expected()).count()
    );
    println!(
        "  entity refs in output:    {}",
        if restored.contains("&vendor;") { "restored (&vendor;)" } else { "EXPANDED (lost)" }
    );
    println!("\nPaper (§7): comments, processing instructions and entity references are");
    println!("lost by the plain mapping; §6.1's meta-data extension restores entities.");
}

/// E10 — §4.2: Oracle 8 vs Oracle 9 ablation.
fn modes() {
    heading("E10 — Oracle 8 (REF workaround) vs Oracle 9 (nested collections)");
    println!(
        "{:<8} {:>9} {:>10} {:>10} {:>12} {:>12}",
        "mode", "students", "INSERTs", "tables", "load(ms)", "query(ms)"
    );
    for students in [10, 100, 500] {
        for strategy in [Strategy::Or9, Strategy::Or8] {
            let mut instance = setup(strategy);
            let (_, doc) = university_doc(students);
            let m = instance.load(&doc);
            let sql = instance.paper_query();
            let (_, _, q_micros) = instance.run_query(&sql);
            println!(
                "{:<8} {:>9} {:>10} {:>10} {:>12.2} {:>12.2}",
                instance.strategy.name(),
                students,
                m.statements,
                m.tables,
                m.micros as f64 / 1000.0,
                q_micros as f64 / 1000.0
            );
        }
    }
    println!("\nPaper (§4.2): Oracle 9's nested collections make the single-INSERT,");
    println!("single-table mapping possible; Oracle 8 needs object tables + REFs.");
}

/// E13 — schema generation cost vs DTD complexity.
fn schemagen_scaling() {
    heading("E13 — Schema generation scaling with DTD size");
    println!(
        "{:<20} {:>10} {:>12} {:>12} {:>12}",
        "DTD shape", "elements", "gen(ms)", "types", "DDL bytes"
    );
    for (depth, fanout) in [(2usize, 2usize), (3, 2), (3, 3), (4, 3), (5, 3)] {
        let generated = generate_dtd(&DtdConfig { depth, fanout, ..Default::default() });
        let dtd = parse_dtd(&generated.dtd_text).unwrap();
        let start = Instant::now();
        let schema = generate_schema(
            &dtd,
            &generated.root,
            DbMode::Oracle9,
            MappingOptions::default(),
            &IdrefTargets::new(),
        )
        .unwrap();
        let script = create_script(&schema).unwrap();
        let elapsed = start.elapsed().as_micros() as f64 / 1000.0;
        println!(
            "{:<20} {:>10} {:>12.2} {:>12} {:>12}",
            format!("depth {depth} fanout {fanout}"),
            generated.element_count(),
            elapsed,
            schema.generated_type_count(),
            script.len()
        );
    }
}

/// E14 — PR-1 fast-path counter deltas: plan-cache hit ratio on the bulk
/// load, hash-join work on the multi-way baselines (with a nested-loop
/// ablation), and OID-index hits on REF-chain navigation. JSON on stdout.
fn fastpath() {
    eprintln!("E14 — fast-path counter deltas (JSON on stdout)");
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"experiment\": \"PR1 fast path: OID index, hash equi-joins, plan cache\",\n",
    );

    // Plan cache across the full bulk load of a 100-student document. The
    // shredded strategies emit thousands of INSERTs that differ only in
    // literals; the parameterized cache turns all but the first of each
    // shape into hits.
    let students = 100;
    out.push_str(&format!("  \"bulk_load_students\": {students},\n"));
    out.push_str("  \"bulk_load\": [\n");
    let (_, doc) = xmlord_bench::university_doc(students);
    for (i, strategy) in Strategy::ALL.iter().enumerate() {
        let mut instance = setup(*strategy);
        let before = instance.db.stats();
        let m = instance.load(&doc);
        let d = instance.db.stats().since(&before);
        let lookups = d.plan_cache_hits + d.plan_cache_misses;
        let ratio =
            if lookups == 0 { 0.0 } else { d.plan_cache_hits as f64 / lookups as f64 };
        out.push_str(&format!(
            "    {{\"strategy\": \"{}\", \"statements\": {}, \"plan_cache_hits\": {}, \
             \"plan_cache_misses\": {}, \"hit_ratio\": {:.3}, \"load_ms\": {:.2}}}{}\n",
            strategy.name(),
            m.statements,
            d.plan_cache_hits,
            d.plan_cache_misses,
            ratio,
            m.micros as f64 / 1000.0,
            if i + 1 == Strategy::ALL.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");

    // The paper query on the generic-shredding baselines: hash equi-joins
    // on, then the same SQL with nested loops forced.
    let q_students = 25;
    out.push_str(&format!("  \"paper_query_students\": {q_students},\n"));
    out.push_str("  \"paper_query\": [\n");
    let (_, qdoc) = xmlord_bench::university_doc(q_students);
    let baselines =
        [Strategy::Edge, Strategy::AttributeTables, Strategy::Relational, Strategy::Inline];
    for (i, strategy) in baselines.iter().enumerate() {
        let mut instance = setup(*strategy);
        instance.load(&qdoc);
        let sql = instance.paper_query();
        let before = instance.db.stats();
        let (rows, hash_pairs, hash_micros) = instance.run_query(&sql);
        let d = instance.db.stats().since(&before);
        instance.db.set_hash_joins(false);
        let (_, nested_pairs, nested_micros) = instance.run_query(&sql);
        instance.db.set_hash_joins(true);
        out.push_str(&format!(
            "    {{\"strategy\": \"{}\", \"rows\": {rows}, \"hash_join_builds\": {}, \
             \"hash_join_probes\": {}, \"join_pairs_hash\": {hash_pairs}, \
             \"join_pairs_nested\": {nested_pairs}, \"hash_ms\": {:.2}, \
             \"nested_loop_ms\": {:.2}}}{}\n",
            strategy.name(),
            d.hash_join_builds,
            d.hash_join_probes,
            hash_micros as f64 / 1000.0,
            nested_micros as f64 / 1000.0,
            if i + 1 == baselines.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");

    // REF-chain navigation: 500 derefs answered by the OID directory while
    // the scan counter stays at the driving table's row count.
    let chain = 500;
    let mut db = xmlord_bench::ref_chain_db(chain);
    let before = db.stats();
    let start = Instant::now();
    let result = db.query("SELECT c.prof.subject FROM TabCourse c").unwrap();
    let micros = start.elapsed().as_micros();
    let d = db.stats().since(&before);
    out.push_str(&format!(
        "  \"ref_chain\": {{\"courses\": {chain}, \"rows\": {}, \"rows_scanned\": {}, \
         \"derefs\": {}, \"oid_index_hits\": {}, \"query_ms\": {:.2}}}\n",
        result.rows.len(),
        d.rows_scanned,
        d.derefs,
        d.oid_index_hits,
        micros as f64 / 1000.0
    ));
    out.push_str("}\n");
    print!("{out}");
}

/// E16 — fault injection: what recovery costs. A document load is executed
/// cleanly and then fully rolled back (measuring the undo log's replay
/// cost), and the same load runs under the `Atomic` policy with a failing
/// statement injected at the end (measuring the worst-case script unwind).
fn faults() {
    heading("E16 — Fault injection: rollback cost vs script size");
    println!(
        "{:<8} {:>9} {:>8} {:>10} {:>10} {:>13} {:>12}",
        "strategy", "students", "stmts", "undo-recs", "load(ms)", "rollback(ms)", "atomic(ms)"
    );
    for students in [5, 25, 100] {
        let (_, doc) = university_doc(students);
        for strategy in [Strategy::Or9, Strategy::Or8, Strategy::Edge] {
            // Clean load, then a full ROLLBACK of everything it wrote.
            let mut instance = setup(strategy);
            instance.db.commit().unwrap(); // seal the DDL; only the load rolls back
            let statements = instance.load_statements(&doc);
            let before = instance.db.stats();
            let start = Instant::now();
            for stmt in &statements {
                instance.db.execute(stmt).unwrap();
            }
            let load_micros = start.elapsed().as_micros();
            let d = instance.db.stats().since(&before);
            let start = Instant::now();
            instance.db.rollback();
            let rollback_micros = start.elapsed().as_micros();

            // The same load under the Atomic policy with a failure injected
            // after the last statement: the engine unwinds the whole script.
            let mut atomic = setup(strategy);
            atomic.db.commit().unwrap();
            let mut script = statements.join(";\n");
            script.push_str(";\nINSERT INTO ZZ_Missing VALUES (1)");
            let start = Instant::now();
            let outcome =
                atomic.db.execute_script_with(&script, RecoveryPolicy::Atomic).unwrap();
            let atomic_micros = start.elapsed().as_micros();
            assert!(outcome.rolled_back, "injected failure must trigger the rollback");
            println!(
                "{:<8} {:>9} {:>8} {:>10} {:>10.2} {:>13.2} {:>12.2}",
                strategy.name(),
                students,
                statements.len(),
                d.undo_records,
                load_micros as f64 / 1000.0,
                rollback_micros as f64 / 1000.0,
                atomic_micros as f64 / 1000.0
            );
        }
        println!();
    }
    println!("Recovery cost is linear in the undo records the load wrote, independent");
    println!("of database size: a failed script never leaves half-applied state.");
}

/// E12 — the §7 drawbacks, demonstrated mechanically.
fn drawbacks() {
    heading("E12 — §7 drawback checklist (each demonstrated by execution)");
    // 1. NOT NULL cannot be expressed for embedded mandatory content.
    let dtd = xmlord_bench::parse_university_dtd();
    let schema = generate_schema(
        &dtd,
        "University",
        DbMode::Oracle9,
        MappingOptions::default(),
        &IdrefTargets::new(),
    )
    .unwrap();
    println!(
        "1. NOT NULL constraints not expressible for embedded content: {} cases,\n   e.g. {}",
        schema.unenforced_not_null.len(),
        schema
            .unenforced_not_null
            .first()
            .map(|u| format!("{}.{}", u.type_name, u.field))
            .unwrap_or_default()
    );
    // 2. VARCHAR length limit.
    let mut sys = Xml2OrDb::new(DbMode::Oracle9);
    sys.register_dtd("t", "<!ELEMENT t (#PCDATA)>", "t").unwrap();
    let long_text = "x".repeat(5000);
    let err = sys.store_document("t", &format!("<t>{long_text}</t>")).unwrap_err();
    println!("2. Restricted VARCHAR length: storing 5000 chars fails with:\n   {err}");
    // 3. Loss of comments / PIs.
    let mut sys2 = Xml2OrDb::new(DbMode::Oracle9);
    sys2.register_dtd("c", "<!ELEMENT c (#PCDATA)>", "c").unwrap();
    let id = sys2.store_document("c", "<c>x<!--gone--><?pi also-gone?></c>").unwrap();
    let restored = sys2.retrieve_document(&id).unwrap();
    println!(
        "3. Comments/PIs lost: stored '<c>x<!--gone--><?pi also-gone?></c>' →\n   '{restored}'"
    );
    // 4. DTD change requires schema adaptation.
    let mut sys3 = Xml2OrDb::new(DbMode::Oracle9);
    sys3.register_dtd("v1", "<!ELEMENT r (a)><!ELEMENT a (#PCDATA)>", "r").unwrap();
    let err = sys3
        .store_document("v1", "<r><a>1</a><b>2</b></r>")
        .unwrap_err();
    println!("4. Little flexibility on DTD change: a document with a new element fails:\n   {err}");
    // 5. No type concept in DTDs.
    println!(
        "5. No type concept in DTDs: every generated scalar column is VARCHAR(4000)\n   (checked by tests/mapping_matrix.rs)"
    );
    // 6. Order across references.
    println!(
        "6. References do not preserve global element order: retriever restores\n   content-model order only (see retriever tests)."
    );
}

/// E15 — `sqlcheck`: static analysis of every generated mapping script.
///
/// Lints each strategy's DDL + one small document load under the mode the
/// strategy targets (`or8` under Oracle 8, everything else under Oracle 9).
/// Returns `false` if any of those scripts draws an Error-severity
/// diagnostic — the differential guarantee means such a script would be
/// rejected by the engine, i.e. the generator emitted broken SQL. Two
/// labeled demos follow (cross-mode nested collections; the §4.3 CHECK
/// quirk); their diagnostics are *expected* and excluded from the verdict.
fn analyze(mode_filter: &str) -> bool {
    heading("E15 — sqlcheck: static analysis of generated mapping scripts");
    let mut ok = true;
    let (_, doc) = university_doc(2);
    for strategy in Strategy::ALL {
        let mode = strategy.analyze_mode();
        let wanted = match mode_filter {
            "oracle8" => mode == DbMode::Oracle8,
            "oracle9" => mode == DbMode::Oracle9,
            _ => true,
        };
        if !wanted {
            continue;
        }
        let instance = setup(strategy);
        let load = instance.load_statements(&doc).join(";\n");
        let script = format!("{}\n{load}", instance.ddl);
        let file = format!("{}.sql", strategy.name());
        let diags = Analyzer::new(mode)
            .analyze_script(&script)
            .unwrap_or_else(|e| panic!("{file} failed to parse: {e}"));
        let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
        let warnings = diags.len() - errors;
        println!(
            "{file:<12} {:<8} {:>5} statements {:>7} bytes   {errors} error(s), {warnings} warning(s)",
            format!("{mode:?}"),
            script.matches(';').count() + 1,
            script.len(),
        );
        if errors > 0 {
            ok = false;
        }
        for d in diags.iter().filter(|d| d.severity == Severity::Error).take(3) {
            println!("{}", d.render(&script, &file));
        }
    }
    if mode_filter != "oracle8" && mode_filter != "oracle9" {
        cross_mode_demo();
        quirk_demo();
    }
    ok
}

/// E20 — maplint: the three-level static analyzer swept over the `dtdgen`
/// corpus. Level 1 lints each generated DTD once per mapping strategy;
/// levels 2+3 register the DTD under Oracle 9, store a generated document,
/// and lint the mapped schema against the live catalog. Every corpus DTD
/// registers and loads successfully, so the differential guarantee demands
/// zero Error-severity findings — the process exits non-zero otherwise.
/// A catalog-drift demo (expected Errors, excluded from the verdict)
/// closes the run.
fn maplint_experiment() -> bool {
    use xmlord_dtd::{lint_dtd, parse_dtd_spanned};

    heading("E20 — maplint: DTD → mapping → catalog static analysis");
    let mut ok = true;
    let shapes = [(2usize, 2usize, 42u64), (3, 2, 7), (3, 3, 99), (4, 3, 1234)];

    println!("{:<22} {:>6}  errors/warnings per strategy", "DTD shape", "decls");
    let mut last_sys: Option<Xml2OrDb> = None;
    for (depth, fanout, seed) in shapes {
        let generated = generate_dtd(&DtdConfig { depth, fanout, seed, ..Default::default() });
        let (dtd, src) = parse_dtd_spanned(&generated.dtd_text)
            .unwrap_or_else(|e| panic!("generated DTD parses: {e}"));
        let verdicts = lint_dtd(&dtd, &src, &generated.root);
        let cells: Vec<String> = verdicts
            .iter()
            .map(|v| format!("{}:{}/{}", v.strategy.label(), v.error_count(), v.warning_count()))
            .collect();
        println!(
            "{:<22} {:>6}  {}",
            format!("depth {depth} fanout {fanout}"),
            dtd.elements.len(),
            cells.join("  ")
        );
        for v in &verdicts {
            if v.error_count() > 0 {
                ok = false;
                for d in v.diagnostics.iter().filter(|d| d.severity == Severity::Error).take(2) {
                    let name = format!("{}.{}.dtd", generated.root, v.strategy.label());
                    println!("{}", d.render(src.text(), &name));
                }
            }
        }

        // Levels 2+3: live registration + load, then schema + drift lints.
        let mut sys = Xml2OrDb::new(DbMode::Oracle9);
        sys.register_dtd("gen", &generated.dtd_text, &generated.root).expect("register");
        sys.store_document("gen", &generated.document(2, seed)).expect("store");
        let report = sys.maplint("gen").expect("maplint");
        println!(
            "    maplint(gen): {} error(s), {} warning(s) over {} bytes of DDL",
            report.error_count(),
            report.warning_count(),
            report.source.len()
        );
        if report.has_errors() {
            ok = false;
            println!("{}", report.render("gen.sql"));
        }
        last_sys = Some(sys);
    }

    // Drift demo (expected Errors; not counted in the verdict): drop a
    // backing table out from under the registered mapping and re-check.
    if let Some(mut sys) = last_sys {
        println!("\n--- catalog-drift demo (expected errors; not counted in the verdict)");
        let table = sys.schema("gen").expect("registered").schema.root_table.clone();
        sys.database().execute(&format!("DROP TABLE {table}")).expect("drop");
        let drifted = sys.maplint("gen").expect("maplint");
        let n = drifted
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error && d.code.starts_with("DRIFT"))
            .count();
        println!("after DROP TABLE {table}: {n} DRIFT error(s)");
        if let Some(d) =
            drifted.diagnostics.iter().find(|d| d.severity == Severity::Error)
        {
            println!("{}", d.render(&drifted.source, "gen-drifted.sql"));
        }
    }
    ok
}

/// The §4.2 mode gate, demonstrated on the real generated schema: the
/// Oracle 9 DDL (nested collections) linted under Oracle 8 rules.
fn cross_mode_demo() {
    println!("\n--- cross-mode demo (expected errors; not counted in the verdict)");
    let or9 = setup(Strategy::Or9);
    let diags = Analyzer::new(DbMode::Oracle8)
        .analyze_script(&or9.ddl)
        .expect("or9 DDL parses");
    let nested: Vec<_> = diags
        .iter()
        .filter(|d| d.severity == Severity::Error && d.code == "nested-collection")
        .collect();
    println!(
        "or9.sql under Oracle8: {} nested-collection error(s) — the §4.2 gate",
        nested.len()
    );
    if let Some(d) = nested.first() {
        println!("{}", d.render(&or9.ddl, "or9-under-oracle8.sql"));
    }
}

/// The §4.3 CHECK-on-nullable-object quirk, rendered with line/column.
fn quirk_demo() {
    println!("\n--- §4.3 quirk demo (expected warning; not counted in the verdict)");
    let script = "\
CREATE TYPE Type_Address AS OBJECT (attrStreet VARCHAR(40), attrCity VARCHAR(40));
CREATE TYPE Type_Course AS OBJECT (attrName VARCHAR(40), attrAddress Type_Address);
CREATE TABLE TabCourse OF Type_Course (CHECK (attrAddress.attrCity = 'Leipzig'));";
    let diags = Analyzer::new(DbMode::Oracle9).analyze_script(script).expect("fixture parses");
    for d in diags.iter().filter(|d| d.code == "check-null-object") {
        println!("{}", d.render(script, "quirk.sql"));
    }
}

/// E17 — the observability layer measuring itself: a full register + store +
/// retrieve pass over the university workload, traced through a ring-buffer
/// sink, broken down per pipeline phase and per statement kind. The same
/// pass runs with tracing disabled to price the instrumentation; the
/// state dumps and counters of both runs are compared to show tracing is
/// observation-only. JSON on stdout.
fn trace_experiment() {
    use xmlord_ordb::{TraceEvent, TraceHandle};
    use xmlord_workload::university::UNIVERSITY_DTD;

    eprintln!("E17 — per-phase trace breakdown and tracing overhead (JSON on stdout)");
    let students = 100;
    let repeats = 15;
    let (xml, _) = xmlord_bench::university_doc(students);

    // One full pipeline pass; returns wall micros, state dump, counters
    // (as their Debug rendering, for equality checks) and drained events.
    let run = |traced: bool| -> (u128, String, String, Vec<TraceEvent>, u64) {
        let mut sys = Xml2OrDb::new(DbMode::Oracle9);
        let ring = if traced {
            let (handle, ring) = TraceHandle::ring(1 << 16);
            sys.database().set_trace_sink(Some(handle));
            Some(ring)
        } else {
            None
        };
        let start = Instant::now();
        sys.register_dtd("uni", UNIVERSITY_DTD, "University").unwrap();
        let doc_id = sys.store_document("uni", &xml).unwrap();
        let restored = sys.retrieve_document(&doc_id).unwrap();
        let micros = start.elapsed().as_micros();
        assert!(restored.contains("University"));
        let dump = sys.database().state_dump();
        let stats = format!("{:?}", sys.stats());
        let (events, dropped) = match ring {
            Some(r) => {
                let mut r = r.lock().unwrap();
                let dropped = r.dropped();
                (r.drain(), dropped)
            }
            None => (Vec::new(), 0),
        };
        (micros, dump, stats, events, dropped)
    };

    fn median(mut xs: Vec<u128>) -> f64 {
        xs.sort_unstable();
        let n = xs.len();
        if n % 2 == 1 {
            xs[n / 2] as f64
        } else {
            (xs[n / 2 - 1] + xs[n / 2]) as f64 / 2.0
        }
    }

    // Warm up both configurations, then interleave the timed repeats so
    // drift hits every series equally. Two independent disabled series act
    // as the noise floor: the disabled path *is* the product path (tracing
    // off = one Option check per statement), so the spread between two
    // disabled medians bounds what the instrumentation can possibly cost
    // when no sink is installed.
    run(false);
    run(true);
    let mut disabled_a_us = Vec::new();
    let mut disabled_b_us = Vec::new();
    let mut traced_us = Vec::new();
    let mut last_disabled = None;
    let mut last_traced = None;
    for _ in 0..repeats {
        disabled_a_us.push(run(false).0);
        let t = run(true);
        traced_us.push(t.0);
        last_traced = Some(t);
        let d = run(false);
        disabled_b_us.push(d.0);
        last_disabled = Some(d);
    }
    let (_, d_dump, d_stats, _, _) = last_disabled.unwrap();
    let (_, t_dump, t_stats, events, dropped) = last_traced.unwrap();

    let disabled_a_ms = median(disabled_a_us) / 1000.0;
    let disabled_b_ms = median(disabled_b_us) / 1000.0;
    let disabled_ms = disabled_a_ms.min(disabled_b_ms);
    let traced_ms = median(traced_us) / 1000.0;
    let disabled_noise_pct = (disabled_a_ms - disabled_b_ms).abs() / disabled_ms * 100.0;
    let overhead_pct = (traced_ms - disabled_ms) / disabled_ms * 100.0;

    // Aggregate the event stream: wall time per phase, and per statement
    // kind within the execute phase.
    let mut phases: std::collections::BTreeMap<&str, (u64, u64)> = Default::default();
    let mut kinds: std::collections::BTreeMap<String, (u64, u64, u64)> = Default::default();
    for e in &events {
        let p = phases.entry(e.phase).or_default();
        p.0 += 1;
        p.1 += e.nanos;
        if e.phase == "execute" {
            let k = kinds.entry(e.detail.clone()).or_default();
            k.0 += 1;
            k.1 += e.nanos;
            k.2 = k.2.max(e.nanos);
        }
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"experiment\": \"PR4 observability: EXPLAIN, structured tracing, \
         per-statement timing\",\n",
    );
    out.push_str(&format!(
        "  \"workload\": {{\"students\": {students}, \"mode\": \"Oracle9\", \
         \"repeats\": {repeats}, \"pass\": \"register_dtd + store_document + \
         retrieve_document\"}},\n"
    ));
    out.push_str(&format!(
        "  \"wall_ms\": {{\"tracing_disabled_a\": {disabled_a_ms:.2}, \
         \"tracing_disabled_b\": {disabled_b_ms:.2}, \"ring_sink\": {traced_ms:.2}}},\n"
    ));
    out.push_str(&format!(
        "  \"overhead_when_disabled_pct\": {disabled_noise_pct:.2},\n  \
         \"overhead_ring_sink_pct\": {overhead_pct:.2},\n  \
         \"overhead_budget_pct\": 5.0,\n"
    ));
    out.push_str(&format!(
        "  \"state_dump_identical\": {},\n  \"exec_counters_identical\": {},\n",
        d_dump == t_dump,
        d_stats == t_stats
    ));
    out.push_str(&format!(
        "  \"trace_events\": {},\n  \"ring_dropped\": {dropped},\n",
        events.len()
    ));

    out.push_str("  \"phases\": [\n");
    let order = ["shred", "generate", "load", "retrieve", "parse", "analyze", "execute"];
    let named: Vec<&str> = order.iter().copied().filter(|p| phases.contains_key(p)).collect();
    for (i, name) in named.iter().enumerate() {
        let (count, nanos) = phases[name];
        out.push_str(&format!(
            "    {{\"phase\": \"{name}\", \"events\": {count}, \"total_ms\": {:.2}}}{}\n",
            nanos as f64 / 1e6,
            if i + 1 == named.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");

    out.push_str("  \"statement_kinds\": [\n");
    for (i, (kind, (n, total, max))) in kinds.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kind\": \"{kind}\", \"n\": {n}, \"mean_us\": {:.1}, \
             \"max_us\": {:.1}}}{}\n",
            *total as f64 / *n as f64 / 1000.0,
            *max as f64 / 1000.0,
            if i + 1 == kinds.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    print!("{out}");
}

/// E18 — the bulk-ingest engine: one corpus, four deliveries.
///
/// Engine tier: the same generated load, executed as per-statement SQL
/// text, as prepared statements (template bound per row), and as
/// consecutive-run batches — the three paths must leave byte-identical
/// state. Pipeline tier: `store_documents` with 1/2/4 shredding workers,
/// which must also agree byte-for-byte. JSON on stdout.
fn bulk() {
    use std::collections::HashMap;
    use xml2ordb::loader::{load_ops, plan_batches, LoadOp, LoadUnit};
    use xmlord_ordb::sql::param::{parameterize, Lit};
    use xmlord_ordb::{Database, PreparedStmt, Value};

    eprintln!("E18 — bulk ingest: text vs prepared vs batched vs parallel (JSON on stdout)");

    // A flat corpus — `db (rec*)` — stored under Oracle 8 rules, where
    // every set-valued complex child is table-rooted: each record is its
    // own INSERT carrying the same parent-REF subquery, the workload §4.2
    // calls "a large number of relational insert operations".
    const FLAT_DTD: &str = "<!ELEMENT db (rec*)>\n\
        <!ELEMENT rec (name, qty, note)>\n\
        <!ELEMENT name (#PCDATA)>\n\
        <!ELEMENT qty (#PCDATA)>\n\
        <!ELEMENT note (#PCDATA)>";
    let documents = 48;
    let records = 128;
    let repeats = 5;
    let corpus: Vec<(String, String)> = (0..documents)
        .map(|d| {
            let mut xml = String::with_capacity(records * 96);
            xml.push_str("<db>");
            for r in 0..records {
                xml.push_str(&format!(
                    "<rec><name>item-{d}-{r}</name><qty>{}</qty>\
                     <note>record {r} of document {d}, batch-ingest corpus</note></rec>",
                    (r * 7 + d) % 100
                ));
            }
            xml.push_str("</db>");
            (format!("doc{d}"), xml)
        })
        .collect();

    fn median(mut xs: Vec<u128>) -> f64 {
        xs.sort_unstable();
        let n = xs.len();
        if n % 2 == 1 {
            xs[n / 2] as f64
        } else {
            (xs[n / 2 - 1] + xs[n / 2]) as f64 / 2.0
        }
    }

    // Shared front half for the engine tier: parse + shred once, keep the
    // ops (for batching) and their printed SQL (for text/prepared).
    let dtd = parse_dtd(FLAT_DTD).unwrap();
    let schema = generate_schema(
        &dtd,
        "db",
        DbMode::Oracle8,
        MappingOptions::default(),
        &IdrefTargets::new(),
    )
    .unwrap();
    let ddl = create_script(&schema).unwrap();
    let per_doc_ops: Vec<Vec<LoadOp>> = corpus
        .iter()
        .enumerate()
        .map(|(i, (_, xml))| {
            let doc = xmlord_xml::parse(xml).unwrap();
            load_ops(&schema, &dtd, &doc, &format!("bulk-{}", i + 1)).unwrap()
        })
        .collect();
    let per_doc_sql: Vec<Vec<String>> =
        per_doc_ops.iter().map(|ops| ops.iter().map(LoadOp::to_sql).collect()).collect();
    let per_doc_units: Vec<Vec<LoadUnit>> =
        per_doc_ops.into_iter().map(plan_batches).collect();
    let total_rows: usize = per_doc_sql.iter().map(Vec::len).sum();

    let fresh = |ddl: &str| -> Database {
        let mut db = Database::new(DbMode::Oracle8);
        db.execute_script(ddl).unwrap();
        db.commit().unwrap();
        db
    };

    let run_text = || -> (Database, u128) {
        let mut db = fresh(&ddl);
        let start = Instant::now();
        for doc in &per_doc_sql {
            for sql in doc {
                db.execute(sql).unwrap();
            }
        }
        (db, start.elapsed().as_micros())
    };
    let run_prepared = || -> (Database, u128) {
        let mut db = fresh(&ddl);
        let start = Instant::now();
        let mut cache: HashMap<String, PreparedStmt> = HashMap::new();
        for doc in &per_doc_sql {
            for sql in doc {
                let Some((key, lits)) = parameterize(sql) else {
                    db.execute(sql).unwrap();
                    continue;
                };
                if !cache.contains_key(&key) {
                    cache.insert(key.clone(), db.prepare(sql).unwrap());
                }
                let prep = &cache[&key];
                if prep.param_count() == lits.len() {
                    let params: Vec<Value> = lits
                        .iter()
                        .map(|l| match l {
                            Lit::Str(s) => Value::Str(s.clone()),
                            Lit::Num(n) => Value::Num(*n),
                        })
                        .collect();
                    db.execute_prepared(prep, &params).unwrap();
                } else {
                    let solo = db.prepare(sql).unwrap();
                    db.execute_prepared(&solo, &[]).unwrap();
                }
            }
        }
        (db, start.elapsed().as_micros())
    };
    let run_batched = || -> (Database, u128) {
        let mut db = fresh(&ddl);
        let start = Instant::now();
        for units in &per_doc_units {
            for unit in units {
                match unit {
                    LoadUnit::Batch(b) => {
                        db.execute_batch(b).unwrap();
                    }
                    LoadUnit::Stmt(s) => {
                        db.execute_stmt(s).unwrap();
                    }
                }
            }
        }
        (db, start.elapsed().as_micros())
    };

    let time_engine = |run: &dyn Fn() -> (Database, u128)| -> (Database, f64) {
        run(); // warm-up
        let mut times = Vec::new();
        let mut last = None;
        for _ in 0..repeats {
            let (db, us) = run();
            times.push(us);
            last = Some(db);
        }
        (last.unwrap(), median(times))
    };

    let (text_db, text_us) = time_engine(&run_text);
    let (prep_db, prep_us) = time_engine(&run_prepared);
    let (batch_db, batch_us) = time_engine(&run_batched);
    let text_dump = text_db.state_dump();
    let engine_identical =
        text_dump == prep_db.state_dump() && text_dump == batch_db.state_dump();
    assert!(engine_identical, "engine deliveries diverged");

    // Pipeline tier: full store (parse + validate + shred + bind + apply +
    // meta-tables) through `store_documents` with 1, 2 and 4 workers.
    let docs_ref: Vec<(&str, &str)> =
        corpus.iter().map(|(n, x)| (n.as_str(), x.as_str())).collect();
    let run_pipeline = |workers: usize| -> (String, u128) {
        let mut sys = Xml2OrDb::new(DbMode::Oracle8);
        sys.register_dtd("bulk", FLAT_DTD, "db").unwrap();
        sys.set_load_workers(workers);
        let start = Instant::now();
        let ids = sys.store_documents("bulk", &docs_ref).unwrap();
        let us = start.elapsed().as_micros();
        assert_eq!(ids.len(), corpus.len());
        (sys.database().state_dump(), us)
    };
    let mut pipeline_ms = Vec::new();
    let mut pipeline_dumps = Vec::new();
    for workers in [1usize, 2, 4] {
        run_pipeline(workers); // warm-up
        let mut times = Vec::new();
        let mut dump = String::new();
        for _ in 0..repeats {
            let (d, us) = run_pipeline(workers);
            times.push(us);
            dump = d;
        }
        pipeline_ms.push((workers, median(times) / 1000.0));
        pipeline_dumps.push(dump);
    }
    let pipeline_identical = pipeline_dumps.windows(2).all(|w| w[0] == w[1]);
    assert!(pipeline_identical, "worker counts diverged");

    // Phase split: how much of a sequential store is parallelizable
    // shredding (parse + validate + bind — what the workers do) versus the
    // serial single-writer apply. The overlap bound is the best any worker
    // count can do; on a single-CPU host the measured wall-clock speedup
    // is overhead-bound regardless of this split.
    let shred_phase = || -> u128 {
        let start = Instant::now();
        for (i, (_, xml)) in corpus.iter().enumerate() {
            let doc = xmlord_xml::parse(xml).unwrap();
            assert!(xmlord_dtd::validate(&doc, &dtd).is_valid());
            let ops = load_ops(&schema, &dtd, &doc, &format!("split-{}", i + 1)).unwrap();
            std::hint::black_box(plan_batches(ops));
        }
        start.elapsed().as_micros()
    };
    shred_phase(); // warm-up
    let shred_ms = median((0..repeats).map(|_| shred_phase()).collect()) / 1000.0;
    let seq_ms = pipeline_ms[0].1;
    let apply_ms = (seq_ms - shred_ms).max(0.0);
    let parallel_fraction = shred_ms / seq_ms;
    let overlap_bound =
        |workers: f64| -> f64 { seq_ms / apply_ms.max(shred_ms / workers).max(f64::EPSILON) };
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let stats = batch_db.stats();
    let (intern_hits, intern_misses) = xmlord_ordb::ident::intern_counters();
    let text_ms = text_us / 1000.0;
    let prep_ms = prep_us / 1000.0;
    let batch_ms = batch_us / 1000.0;
    let rate = |ms: f64| -> (f64, f64) {
        (documents as f64 / (ms / 1000.0), total_rows as f64 / (ms / 1000.0))
    };

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"experiment\": \"PR5 bulk ingest: prepared statements, batched inserts, \
         parallel shredding\",\n",
    );
    out.push_str(&format!(
        "  \"corpus\": {{\"documents\": {documents}, \"records_per_doc\": {records}, \
         \"rows\": {total_rows}, \"mode\": \"Oracle8\", \"repeats\": {repeats}}},\n"
    ));
    out.push_str("  \"engine_tier\": [\n");
    for (i, (name, ms)) in
        [("text", text_ms), ("prepared", prep_ms), ("batched", batch_ms)].iter().enumerate()
    {
        let (dps, rps) = rate(*ms);
        out.push_str(&format!(
            "    {{\"delivery\": \"{name}\", \"ms\": {ms:.2}, \"docs_per_sec\": {dps:.0}, \
             \"rows_per_sec\": {rps:.0}}}{}\n",
            if i == 2 { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"engine_speedup\": {{\"prepared_vs_text\": {:.2}, \"batched_vs_text\": {:.2}}},\n",
        text_ms / prep_ms,
        text_ms / batch_ms
    ));
    out.push_str(&format!(
        "  \"engine_counters\": {{\"batched_rows\": {}, \"batch_subquery_hits\": {}, \
         \"prepared_execs\": {}, \"ident_intern_hits\": {intern_hits}, \
         \"ident_intern_misses\": {intern_misses}}},\n",
        stats.batched_rows,
        stats.batch_subquery_hits,
        prep_db.stats().prepared_execs
    ));
    out.push_str(&format!("  \"engine_state_identical\": {engine_identical},\n"));
    out.push_str("  \"pipeline_tier\": [\n");
    for (i, (workers, ms)) in pipeline_ms.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {workers}, \"ms\": {ms:.2}, \"docs_per_sec\": {:.0}}}{}\n",
            documents as f64 / (ms / 1000.0),
            if i + 1 == pipeline_ms.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"parallel_speedup\": {{\"two_workers\": {:.2}, \"four_workers\": {:.2}}},\n",
        pipeline_ms[0].1 / pipeline_ms[1].1,
        pipeline_ms[0].1 / pipeline_ms[2].1
    ));
    out.push_str(&format!(
        "  \"phase_split\": {{\"shred_ms\": {shred_ms:.2}, \"apply_ms\": {apply_ms:.2}, \
         \"parallel_fraction\": {parallel_fraction:.2}, \
         \"overlap_bound\": {{\"two_workers\": {:.2}, \"four_workers\": {:.2}}}}},\n",
        overlap_bound(2.0),
        overlap_bound(4.0)
    ));
    out.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    out.push_str(&format!("  \"pipeline_state_identical\": {pipeline_identical}\n"));
    out.push_str("}\n");
    print!("{out}");
}

/// E19 — secondary indexes + cost-based join planning on the edge
/// strategy's 7-way self-join, measured against the planner-disabled
/// baseline on the *same* loaded, indexed, analyzed database.
fn planner() {
    eprintln!("E19 — cost-based planner vs full-scan baseline (JSON on stdout)");

    const INDEX_DDL: &str = "CREATE INDEX IxEdgeSrcName ON TabEdge (Source, Name);
         CREATE INDEX IxValueVID ON TabValue (VID);";
    const ANALYZE_DDL: &str = "ANALYZE TABLE TabEdge COMPUTE STATISTICS;
         ANALYZE TABLE TabValue COMPUTE STATISTICS;";
    let scales: &[usize] = &[100, 1_000, 5_000, 20_000];
    let repeats = 3;

    fn median(mut xs: Vec<u128>) -> f64 {
        xs.sort_unstable();
        let n = xs.len();
        if n % 2 == 1 {
            xs[n / 2] as f64
        } else {
            (xs[n / 2 - 1] + xs[n / 2]) as f64 / 2.0
        }
    }
    fn json_str(s: &str) -> String {
        format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
    }

    let mut sweep = Vec::new();
    let mut plan_lines: Vec<String> = Vec::new();
    let mut counters = None;
    for &students in scales {
        // Indexes go in *before* the load, so every INSERT pays (and the
        // counters record) live index maintenance; statistics after.
        let mut instance = setup(Strategy::Edge);
        instance.db.execute_script(INDEX_DDL).unwrap();
        let before = instance.db.stats();
        let (_, doc) = university_doc(students);
        let load = instance.load(&doc);
        instance.db.execute_script(ANALYZE_DDL).unwrap();
        let sql = instance.paper_query();

        let mut planner_times = Vec::new();
        let mut planner_rows = None;
        for _ in 0..repeats {
            let start = Instant::now();
            let result = instance.db.query(&sql).unwrap();
            planner_times.push(start.elapsed().as_micros());
            planner_rows = Some(result);
        }
        let delta = instance.db.stats().since(&before);

        // Baseline: same database, same indexes on disk, planner off — the
        // engine exactly as it stood before this change. One measurement:
        // at the larger scales it is tens of seconds, and the comparison
        // is algorithmic, not noise-bound.
        instance.db.set_cost_planner(false);
        let start = Instant::now();
        let baseline_rows = instance.db.query(&sql).unwrap();
        let baseline_us = start.elapsed().as_micros() as f64;
        instance.db.set_cost_planner(true);

        let planner_rows = planner_rows.unwrap();
        assert_eq!(planner_rows, baseline_rows, "planner changed the answer at {students}");
        let planner_us = median(planner_times);
        let speedup = baseline_us / planner_us.max(1.0);
        eprintln!(
            "  students={students} rows={} planner={:.1}ms baseline={:.1}ms speedup={speedup:.1}x",
            load.rows,
            planner_us / 1000.0,
            baseline_us / 1000.0
        );
        sweep.push((students, load.rows, planner_us, baseline_us, speedup));

        if students == *scales.last().unwrap() {
            let explain = instance.db.query(&format!("EXPLAIN {sql}")).unwrap();
            plan_lines = explain
                .rows
                .iter()
                .map(|r| r[0].as_str().unwrap().to_string())
                .filter(|l| {
                    l.contains("join order")
                        || l.contains("index probe")
                        || l.contains("hash join")
                        || l.contains("scan table")
                })
                .collect();
            counters = Some(delta);
        }
    }

    let plan_text = plan_lines.join("\n");
    assert!(plan_text.contains("index probe"), "largest-scale plan has no index probe");
    assert!(plan_text.contains("cost-based"), "largest-scale plan is not cost-ordered");
    let (_, largest_rows, _, _, largest_speedup) = *sweep.last().unwrap();
    let counters = counters.unwrap();

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"experiment\": \"PR6 secondary indexes + cost-based join planning on the \
         edge 7-way self-join\",\n",
    );
    out.push_str(
        "  \"query\": \"paper §4.1: family names of students subscribed to a course of \
         Professor Jaeger (edge strategy)\",\n",
    );
    out.push_str(&format!(
        "  \"setup\": {{\"indexes\": [\"IxEdgeSrcName(Source, Name)\", \"IxValueVID(VID)\"], \
         \"analyze\": true, \"repeats\": {repeats}}},\n"
    ));
    out.push_str("  \"sweep\": [\n");
    for (i, (students, rows, on_us, off_us, speedup)) in sweep.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"students\": {students}, \"rows\": {rows}, \"planner_ms\": {:.2}, \
             \"baseline_ms\": {:.2}, \"speedup\": {speedup:.1}, \"identical\": true}}{}\n",
            on_us / 1000.0,
            off_us / 1000.0,
            if i + 1 == sweep.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"largest_scale\": {{\"rows\": {largest_rows}, \"speedup\": {largest_speedup:.1}, \
         \"meets_5x\": {}}},\n",
        largest_speedup >= 5.0
    ));
    out.push_str(&format!(
        "  \"largest_scale_counters\": {{\"index_scans\": {}, \"planner_plans_costed\": {}, \
         \"index_maintenance_ops\": {}, \"analyze_runs\": {}}},\n",
        counters.index_scans,
        counters.planner_plans_costed,
        counters.index_maintenance_ops,
        counters.analyze_runs
    ));
    out.push_str("  \"largest_scale_plan\": [\n");
    for (i, line) in plan_lines.iter().enumerate() {
        out.push_str(&format!(
            "    {}{}\n",
            json_str(line.trim()),
            if i + 1 == plan_lines.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    print!("{out}");

    if largest_speedup < 5.0 {
        eprintln!("planner: largest scale speedup {largest_speedup:.1}x is below the 5x bar");
        std::process::exit(1);
    }
}

/// E21 — durability: WAL ingest overhead against the in-memory engine, and
/// snapshot+log recovery time against re-ingesting the documents, on the
/// edge strategy at the E19 scales. Gates: durable ingest ≤ 2× in-memory,
/// recovery faster than re-ingest at every scale, recovered state
/// byte-identical to the live one.
fn durability() {
    eprintln!("E21 — WAL ingest overhead + snapshot recovery vs re-ingest (JSON on stdout)");
    let scales: &[usize] = &[100, 1_000, 5_000, 20_000];
    const COMMIT_EVERY: usize = 10_000;

    fn temp_store(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("xmlord-e21-{tag}-{}", std::process::id()))
    }
    // Shared ingest loop: the transaction discipline (COMMIT every 10k
    // statements) is identical in both runs, so the comparison prices the
    // log, not a different commit pattern.
    fn ingest(db: &mut Database, statements: &[String]) -> u128 {
        let start = Instant::now();
        for (i, stmt) in statements.iter().enumerate() {
            db.execute(stmt).unwrap();
            if (i + 1) % COMMIT_EVERY == 0 {
                db.commit().unwrap();
            }
        }
        db.commit().unwrap();
        start.elapsed().as_micros()
    }

    let mut sweep = Vec::new();
    for &students in scales {
        let instance = setup(Strategy::Edge);
        let ddl = instance.ddl.clone();
        let (_, doc) = university_doc(students);
        let statements = instance.load_statements(&doc);

        // In-memory run — the engine exactly as it stood before this
        // change. Dropped before the durable run so both ingests see the
        // same heap (a resident million-row database would tax the second
        // run's allocator and caches, not its WAL).
        let (mem_us, mem_dump) = {
            let mut mem = Database::new(DbMode::Oracle9);
            mem.execute_script(&ddl).unwrap();
            mem.commit().unwrap();
            let us = ingest(&mut mem, &statements);
            (us, mem.state_dump())
        };

        // Durable run: same DDL and statement stream, WAL on.
        let dir = temp_store(&format!("s{students}"));
        std::fs::remove_dir_all(&dir).ok();
        let mut durable = Database::open(&dir, DbMode::Oracle9).unwrap();
        durable.execute_script(&ddl).unwrap();
        durable.commit().unwrap();
        let durable_us = ingest(&mut durable, &statements);
        assert_eq!(
            durable.state_dump(),
            mem_dump,
            "students={students}: the WAL changed engine state"
        );

        // Snapshot, then recover from a cold start.
        let snap_start = Instant::now();
        durable.snapshot().unwrap();
        let snapshot_us = snap_start.elapsed().as_micros();
        let live_dump = durable.state_dump();
        drop(durable);
        let rec_start = Instant::now();
        let recovered = Database::open(&dir, DbMode::Oracle9).unwrap();
        let recovery_us = rec_start.elapsed().as_micros();
        assert_eq!(
            recovered.state_dump(),
            live_dump,
            "students={students}: recovery diverged from the live state"
        );
        assert!(
            recovered.recovery_report().unwrap().snapshot_loaded,
            "students={students}: recovery did not use the snapshot"
        );
        std::fs::remove_dir_all(&dir).ok();

        let overhead = durable_us as f64 / mem_us.max(1) as f64;
        // Re-ingest cost = re-running the in-memory load.
        let recovery_speedup = mem_us as f64 / recovery_us.max(1) as f64;
        eprintln!(
            "  students={students} stmts={} mem={:.1}ms wal={:.1}ms ({overhead:.2}x) \
             snapshot={:.1}ms recovery={:.1}ms ({recovery_speedup:.1}x faster than re-ingest)",
            statements.len(),
            mem_us as f64 / 1000.0,
            durable_us as f64 / 1000.0,
            snapshot_us as f64 / 1000.0,
            recovery_us as f64 / 1000.0,
        );
        sweep.push((students, statements.len(), mem_us, durable_us, snapshot_us, recovery_us));
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"experiment\": \"PR8 durability: WAL ingest overhead and snapshot recovery vs \
         re-ingest (edge strategy)\",\n",
    );
    out.push_str(&format!(
        "  \"setup\": {{\"strategy\": \"edge\", \"commit_every\": {COMMIT_EVERY}, \
         \"recovery\": \"snapshot + WAL tail\"}},\n"
    ));
    out.push_str("  \"sweep\": [\n");
    let mut worst_overhead = 0.0f64;
    let mut worst_speedup = f64::INFINITY;
    for (i, &(students, stmts, mem_us, durable_us, snapshot_us, recovery_us)) in
        sweep.iter().enumerate()
    {
        let overhead = durable_us as f64 / mem_us.max(1) as f64;
        let speedup = mem_us as f64 / recovery_us.max(1) as f64;
        worst_overhead = worst_overhead.max(overhead);
        worst_speedup = worst_speedup.min(speedup);
        out.push_str(&format!(
            "    {{\"students\": {students}, \"statements\": {stmts}, \
             \"memory_ms\": {:.2}, \"wal_ms\": {:.2}, \"wal_overhead\": {overhead:.2}, \
             \"snapshot_ms\": {:.2}, \"recovery_ms\": {:.2}, \
             \"recovery_vs_reingest\": {speedup:.1}, \"identical\": true}}{}\n",
            mem_us as f64 / 1000.0,
            durable_us as f64 / 1000.0,
            snapshot_us as f64 / 1000.0,
            recovery_us as f64 / 1000.0,
            if i + 1 == sweep.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"gates\": {{\"wal_overhead_max\": {worst_overhead:.2}, \"overhead_below_2x\": {}, \
         \"recovery_vs_reingest_min\": {worst_speedup:.1}, \"recovery_beats_reingest\": {}}}\n",
        worst_overhead <= 2.0,
        worst_speedup > 1.0
    ));
    out.push_str("}\n");
    print!("{out}");

    if worst_overhead > 2.0 {
        eprintln!("durability: WAL ingest overhead {worst_overhead:.2}x exceeds the 2x bar");
        std::process::exit(1);
    }
    if worst_speedup <= 1.0 {
        eprintln!(
            "durability: recovery is not faster than re-ingest ({worst_speedup:.1}x at worst)"
        );
        std::process::exit(1);
    }
}

/// E22 — concurrent snapshot readers over a single writer.
///
/// Three measurements on the E19 workload (edge strategy, secondary
/// indexes, ANALYZE statistics):
///
/// 1. *Read scaling*: 1/2/4/8 reader threads, each with its own
///    [`xmlord_ordb::ReadSession`], hammering the E14/E19 query mix over a
///    static committed database. Every result is compared byte-for-byte
///    against the writer's own serial answer before it counts.
/// 2. *Lock profile*: the per-iteration split between `refresh()` (the
///    only step that touches the shared engine lock) and query execution
///    (runs entirely on the session's private snapshot). The parallel
///    fraction bounds achievable scaling via Amdahl's law — the honest
///    number to report from a single-CPU host.
/// 3. *Churn differential*: a writer replays seeded commit units while
///    reader threads record `(pinned epoch, query, result)`; every
///    observation must equal a serial replay of exactly that many units.
///
/// Gates: the churn differential must hold everywhere; with ≥4 CPUs the
/// 4-reader aggregate throughput must clear 2× the single-session
/// baseline, otherwise the parallel fraction must clear 2/3 (the Amdahl
/// threshold for that same 2×). JSON on stdout.
fn concurrency() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use xmlord_prng::Prng;

    eprintln!("E22 — concurrent snapshot readers vs single-session baseline (JSON on stdout)");
    let students = 300;
    let iters = 40; // per reader thread, round-robin over the query mix
    let thread_counts = [1usize, 2, 4, 8];
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // The E19 setup: edge strategy with its secondary indexes and
    // statistics, one committed document corpus.
    let mut instance = setup(Strategy::Edge);
    instance
        .db
        .execute_script(
            "CREATE INDEX IxEdgeSrcName ON TabEdge (Source, Name);
             CREATE INDEX IxValueVID ON TabValue (VID);",
        )
        .unwrap();
    let (_, doc) = university_doc(students);
    let load = instance.load(&doc);
    instance
        .db
        .execute_script(
            "ANALYZE TABLE TabEdge COMPUTE STATISTICS;
             ANALYZE TABLE TabValue COMPUTE STATISTICS;",
        )
        .unwrap();
    instance.db.commit().unwrap();

    // The query mix: the §4.1 paper query, two path probes, an EXPLAIN.
    let queries: Arc<Vec<String>> = Arc::new(vec![
        instance.paper_query(),
        instance.path_query(&["Student", "LName"], None),
        instance.path_query(&["StudyCourse"], None),
        format!("EXPLAIN {}", instance.paper_query()),
    ]);
    // The writer's serial answers are the truth every concurrent read is
    // held to (the database is static during the sweep, so "serial at the
    // pinned version" is simply this).
    let expected: Arc<Vec<xmlord_ordb::QueryResult>> =
        Arc::new(queries.iter().map(|q| instance.db.query(q).unwrap()).collect());

    let sweep: Vec<(usize, f64, usize)> = thread_counts
        .iter()
        .map(|&threads| {
            // Warm-up pass, then one timed pass (the workload is long
            // enough — thousands of queries — to swamp spawn cost).
            for pass in 0..2 {
                let start = Instant::now();
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        let mut session = instance.db.read_session();
                        let queries = Arc::clone(&queries);
                        let expected = Arc::clone(&expected);
                        std::thread::spawn(move || {
                            for i in 0..iters {
                                let q = (t + i) % queries.len();
                                let result = session.query(&queries[q]).unwrap();
                                assert_eq!(
                                    result, expected[q],
                                    "reader diverged from the serial answer on {:?}",
                                    queries[q]
                                );
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
                if pass == 1 {
                    let wall = start.elapsed().as_micros() as f64 / 1000.0;
                    let total = threads * iters;
                    eprintln!(
                        "  readers={threads} queries={total} wall={wall:.1}ms \
                         agg={:.0} q/s",
                        total as f64 / (wall / 1000.0)
                    );
                    return (threads, wall, total);
                }
            }
            unreachable!()
        })
        .collect();
    let qps = |&(_, wall, total): &(usize, f64, usize)| total as f64 / (wall / 1000.0);
    let base_qps = qps(&sweep[0]);
    let speedup_at_4 = qps(&sweep[2]) / base_qps;

    // Lock profile: how much of one reader iteration holds the shared
    // lock (refresh) versus runs on the private snapshot (execution).
    let mut session = instance.db.read_session();
    session.refresh();
    let mut refresh_ns = 0u128;
    let mut exec_ns = 0u128;
    let profile_iters = 200usize;
    for i in 0..profile_iters {
        let t = Instant::now();
        session.refresh();
        refresh_ns += t.elapsed().as_nanos();
        let t = Instant::now();
        session.query(&queries[i % queries.len()]).unwrap();
        exec_ns += t.elapsed().as_nanos();
    }
    let parallel_fraction = exec_ns as f64 / (exec_ns + refresh_ns) as f64;
    let amdahl_at_4 = 1.0 / ((1.0 - parallel_fraction) + parallel_fraction / 4.0);

    // Churn differential: seeded commit units against a compact Emp/Dept
    // schema; every unit leads with an INSERT, so the storage committed
    // epoch counts units and "serial at the pinned version" is a replay of
    // exactly `epoch - base` units (same protocol as tests/mvcc_prop.rs).
    const CHURN_SETUP: &str =
        "CREATE TYPE Type_Dept AS OBJECT(dname VARCHAR(30), budget NUMBER);
         CREATE TABLE TabDept OF Type_Dept;
         CREATE TYPE Type_Emp AS OBJECT(ename VARCHAR(30), dname VARCHAR(30), sal NUMBER);
         CREATE TABLE TabEmp OF Type_Emp;
         INSERT INTO TabDept VALUES (Type_Dept('d0', 100));
         INSERT INTO TabDept VALUES (Type_Dept('d1', 350));
         INSERT INTO TabEmp VALUES (Type_Emp('seed', 'd0', 400));
         COMMIT;";
    const CHURN_QUERIES: &[&str] = &[
        "SELECT COUNT(*) FROM TabEmp",
        "SELECT e.ename, e.sal FROM TabEmp e WHERE e.sal > 500",
        "SELECT e.ename, d.budget FROM TabEmp e, TabDept d WHERE e.dname = d.dname",
    ];
    let churn_units = 60usize;
    let churn_readers = 4usize;
    let mut rng = Prng::seed_from_u64(0xE22);
    let units: Vec<Vec<String>> = (0..churn_units)
        .map(|n| {
            let mut unit = vec![format!(
                "INSERT INTO TabEmp VALUES (Type_Emp('e{n}', 'd{}', {}))",
                rng.gen_range(0u32..2),
                rng.gen_range(100u32..1000)
            )];
            if rng.gen_bool(0.4) {
                unit.push(format!(
                    "UPDATE TabEmp SET sal = {} WHERE ename = 'e{}'",
                    rng.gen_range(100u32..1000),
                    rng.gen_range(0..(n as u32 + 1))
                ));
            }
            unit
        })
        .collect();
    let setup_churn = || -> Database {
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(CHURN_SETUP).unwrap();
        db
    };
    // Serial oracle: answers after each prefix of units.
    let oracle: Vec<Vec<xmlord_ordb::QueryResult>> = {
        let mut db = setup_churn();
        let mut table = Vec::with_capacity(churn_units + 1);
        let answers = |db: &mut Database| -> Vec<xmlord_ordb::QueryResult> {
            CHURN_QUERIES.iter().map(|q| db.query(q).unwrap()).collect()
        };
        table.push(answers(&mut db));
        for unit in &units {
            for stmt in unit {
                db.execute(stmt).unwrap();
            }
            db.commit().unwrap();
            table.push(answers(&mut db));
        }
        table
    };
    let mut writer = setup_churn();
    let base_epoch = writer.read_session().refresh().0;
    let done = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..churn_readers)
        .map(|r| {
            let mut session = writer.read_session();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut observations = Vec::new();
                let mut spin = true;
                while spin {
                    spin = !done.load(Ordering::Acquire);
                    let q = (observations.len() + r) % CHURN_QUERIES.len();
                    let result = session.query(CHURN_QUERIES[q]).unwrap();
                    observations.push((session.pinned_epochs().0, q, result));
                }
                observations
            })
        })
        .collect();
    for unit in &units {
        for stmt in unit {
            writer.execute(stmt).unwrap();
        }
        writer.commit().unwrap();
    }
    done.store(true, Ordering::Release);
    let mut churn_observations = 0usize;
    let mut distinct_epochs = BTreeSet::new();
    for h in handles {
        for (epoch, q, result) in h.join().unwrap() {
            let k = (epoch - base_epoch) as usize;
            assert!(k < oracle.len(), "pinned epoch {epoch} beyond the committed units");
            assert_eq!(
                result, oracle[k][q],
                "concurrent read at epoch {epoch} diverged from the serial replay"
            );
            distinct_epochs.insert(epoch);
            churn_observations += 1;
        }
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"experiment\": \"PR9 concurrency: MVCC snapshot readers over a single \
         writer\",\n",
    );
    out.push_str(&format!(
        "  \"workload\": {{\"strategy\": \"edge\", \"students\": {students}, \
         \"rows\": {}, \"queries_per_thread\": {iters}, \"mix\": {}}},\n",
        load.rows,
        queries.len()
    ));
    out.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    out.push_str("  \"sweep\": [\n");
    for (i, entry) in sweep.iter().enumerate() {
        let (threads, wall, total) = *entry;
        out.push_str(&format!(
            "    {{\"readers\": {threads}, \"queries\": {total}, \"wall_ms\": {wall:.1}, \
             \"aggregate_qps\": {:.0}, \"speedup_vs_1\": {:.2}, \"identical\": true}}{}\n",
            qps(entry),
            qps(entry) / base_qps,
            if i + 1 == sweep.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"lock_profile\": {{\"iterations\": {profile_iters}, \
         \"refresh_ms_total\": {:.3}, \"exec_ms_total\": {:.2}, \
         \"parallel_fraction\": {parallel_fraction:.4}, \
         \"amdahl_bound_at_4\": {amdahl_at_4:.2}}},\n",
        refresh_ns as f64 / 1e6,
        exec_ns as f64 / 1e6
    ));
    out.push_str(&format!(
        "  \"churn\": {{\"units\": {churn_units}, \"readers\": {churn_readers}, \
         \"observations\": {churn_observations}, \"distinct_epochs\": {}, \
         \"identical\": true}},\n",
        distinct_epochs.len()
    ));
    let multi_core = host_cpus >= 4;
    let gate_ok =
        if multi_core { speedup_at_4 >= 2.0 } else { parallel_fraction >= 2.0 / 3.0 };
    out.push_str(&format!(
        "  \"gates\": {{\"multi_core\": {multi_core}, \"speedup_at_4\": {speedup_at_4:.2}, \
         \"parallel_fraction\": {parallel_fraction:.4}, \"amdahl_threshold\": 0.667, \
         \"throughput_gate\": \"{}\", \"pass\": {gate_ok}}}\n",
        if multi_core { "speedup_at_4 >= 2.0" } else { "parallel_fraction >= 2/3 (1-CPU host)" }
    ));
    out.push_str("}\n");
    print!("{out}");

    if !gate_ok {
        if multi_core {
            eprintln!(
                "concurrency: 4-reader aggregate throughput {speedup_at_4:.2}x is below the \
                 2x bar on a {host_cpus}-CPU host"
            );
        } else {
            eprintln!(
                "concurrency: parallel fraction {parallel_fraction:.4} is below the 2/3 \
                 Amdahl threshold for 2x at 4 readers"
            );
        }
        std::process::exit(1);
    }
}

/// E23 — set-oriented bulk document reconstruction vs the naive per-node
/// walker, on the same loaded database (JSON on stdout → BENCH_PR10.json).
///
/// Two mappings exercise the two bulk access paths: or8 (inverted
/// ParentRef children — the hash-build multimap) swept to 20 000 students,
/// and edge (one KeyedRows map over TabEdge/TabValue) on a capped sweep,
/// because the *naive* edge walker re-scans both tables per node —
/// O(nodes × rows) — and becomes minutes-slow past a few thousand
/// students. Byte-identity is asserted at every scale; at least one
/// mapping's top scale must clear a 5× speedup or the process exits
/// non-zero.
fn retrieve_experiment() {
    use xmlord_shred::retrieve::reconstruct_edge;
    use xmlord_workload::university::university_dtd;
    use xmlord_xml::serializer::{serialize, SerializeOptions};

    eprintln!("E23 — bulk vs naive document reconstruction (JSON on stdout)");

    fn median(mut xs: Vec<u128>) -> f64 {
        xs.sort_unstable();
        let n = xs.len();
        if n % 2 == 1 {
            xs[n / 2] as f64
        } else {
            (xs[n / 2 - 1] + xs[n / 2]) as f64 / 2.0
        }
    }

    let or8_scales: &[usize] = &[100, 1_000, 5_000, 20_000];
    let edge_scales: &[usize] = &[100, 500, 2_500];
    let repeats = 3;
    let opts = SerializeOptions::compact();

    let mut or8_sweep = Vec::new();
    for &students in or8_scales {
        // Load through the pipeline's batched path (PR 5) with load
        // indexes on the synthetic-id columns — without them the inverted
        // mapping's parent-wiring subqueries make ingest quadratic and
        // the 20 000-student setup alone would dwarf the measurement.
        let mut sys = Xml2OrDb::with_options(
            DbMode::Oracle8,
            MappingOptions { varray_max: 100_000, ..Default::default() },
        );
        sys.register_dtd("uni", university_dtd(), "University").unwrap();
        sys.create_load_indexes("uni").unwrap();
        let (xml, _) = university_doc(students);
        let id = sys.store_document("uni", &xml).unwrap();
        let rows = sys.database().storage().total_rows();

        sys.database().set_bulk_retrieval(true);
        let mut bulk_times = Vec::new();
        let mut bulk_text = String::new();
        for _ in 0..repeats {
            let start = Instant::now();
            bulk_text = sys.retrieve_document(&id).unwrap();
            bulk_times.push(start.elapsed().as_micros());
        }
        // Baseline: same database, same rows, valve off — the recursive
        // per-node walker exactly as it stood before this change. One
        // measurement; the comparison is algorithmic, not noise-bound.
        sys.database().set_bulk_retrieval(false);
        let start = Instant::now();
        let naive_text = sys.retrieve_document(&id).unwrap();
        let naive_us = start.elapsed().as_micros() as f64;

        assert_eq!(bulk_text, naive_text, "or8 walkers diverged at {students}");
        let bulk_us = median(bulk_times);
        let speedup = naive_us / bulk_us.max(1.0);
        eprintln!(
            "  or8  students={students} rows={rows} bulk={:.1}ms naive={:.1}ms speedup={speedup:.1}x",
            bulk_us / 1000.0,
            naive_us / 1000.0
        );
        or8_sweep.push((students, rows, bulk_us, naive_us, speedup));
    }

    let mut edge_sweep = Vec::new();
    for &students in edge_scales {
        let mut instance = setup(Strategy::Edge);
        let (_, doc) = university_doc(students);
        let load = instance.load(&doc);
        let storage = instance.db.storage();

        let mut bulk_times = Vec::new();
        let mut bulk_doc = None;
        for _ in 0..repeats {
            let start = Instant::now();
            let d = reconstruct_edge(&storage, true).unwrap();
            bulk_times.push(start.elapsed().as_micros());
            bulk_doc = Some(d);
        }
        let start = Instant::now();
        let naive_doc = reconstruct_edge(&storage, false).unwrap();
        let naive_us = start.elapsed().as_micros() as f64;

        let bulk_text = serialize(&bulk_doc.unwrap(), &opts);
        assert_eq!(bulk_text, serialize(&naive_doc, &opts), "edge walkers diverged at {students}");
        let bulk_us = median(bulk_times);
        let speedup = naive_us / bulk_us.max(1.0);
        eprintln!(
            "  edge students={students} rows={} bulk={:.1}ms naive={:.1}ms speedup={speedup:.1}x",
            load.rows,
            bulk_us / 1000.0,
            naive_us / 1000.0
        );
        edge_sweep.push((students, load.rows, bulk_us, naive_us, speedup));
    }

    let or8_top = or8_sweep.last().unwrap().4;
    let edge_top = edge_sweep.last().unwrap().4;
    let gate_ok = or8_top >= 5.0 || edge_top >= 5.0;

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"experiment\": \"PR10 set-oriented bulk document reconstruction vs the naive \
         per-node walker\",\n",
    );
    out.push_str(&format!(
        "  \"setup\": {{\"workload\": \"university\", \"repeats\": {repeats}, \
         \"baseline\": \"set_bulk_retrieval(false) on the same loaded database\", \
         \"edge_cap\": \"edge sweep capped at 2500 students: the naive edge walker is \
         O(nodes x rows)\"}},\n"
    ));
    for (key, sweep) in [("or8_sweep", &or8_sweep), ("edge_sweep", &edge_sweep)] {
        out.push_str(&format!("  \"{key}\": [\n"));
        for (i, (students, rows, bulk_us, naive_us, speedup)) in sweep.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"students\": {students}, \"rows\": {rows}, \"bulk_ms\": {:.2}, \
                 \"naive_ms\": {:.2}, \"speedup\": {speedup:.1}, \"identical\": true}}{}\n",
                bulk_us / 1000.0,
                naive_us / 1000.0,
                if i + 1 == sweep.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
    }
    out.push_str(&format!(
        "  \"gates\": {{\"or8_top_speedup\": {or8_top:.1}, \"edge_top_speedup\": {edge_top:.1}, \
         \"threshold\": 5.0, \"rule\": \"top scale of edge OR or8 >= 5x\", \"pass\": {gate_ok}}}\n"
    ));
    out.push_str("}\n");
    print!("{out}");

    if !gate_ok {
        eprintln!(
            "retrieve: no mapping cleared the 5x gate (or8 {or8_top:.1}x, edge {edge_top:.1}x)"
        );
        std::process::exit(1);
    }
}

//! A minimal text-protocol front end over the engine.
//!
//! One process owns the single writing [`Database`]; every TCP connection
//! gets its own session. SELECT / EXPLAIN statements run on the
//! connection's private [`ReadSession`] — a committed-state snapshot
//! cache, so queries never block ingest and never observe uncommitted
//! state ([`xmlord_ordb::mvcc`]). Everything else (DDL, DML, COMMIT,
//! ROLLBACK) is serialized through the writer behind a mutex, exactly one
//! statement at a time.
//!
//! # Protocol
//!
//! Line-oriented, UTF-8. The client sends SQL terminated by `;` (possibly
//! spanning multiple lines) or a one-line dot-command. The server answers:
//!
//! ```text
//! | v1 <TAB> v2 ...     one line per result row (SELECT / EXPLAIN)
//! OK <n>                success; n = rows returned (queries) or 0
//! ERR <message>         failure (single line, newlines flattened)
//! # ...                 informational lines (greeting, .stats output)
//! ```
//!
//! Dot-commands: `.help`, `.stats` (the connection's reader statistics and
//! the writer's report), `.epoch` (the reader's pinned committed epochs),
//! `.get <doc-id>` (reconstruct a stored XML document on this connection's
//! snapshot reader and stream it down the wire), `.quit`.
//!
//! Transaction semantics are the engine's: writes become visible to the
//! read sessions of *all* connections at `COMMIT;`, not before.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;

use xml2ordb::pipeline::{retrieval_serialize_options, schema_via_session};
use xml2ordb::retriever::retrieve_via_session;
use xml2ordb::{MappedSchema, MappingOptions};
use xmlord_ordb::mvcc::ReadSession;
use xmlord_ordb::{Database, QueryResult};
use xmlord_xml::serializer::serialize_to;

/// The shared writer handle: every connection's write path funnels
/// through this mutex; read paths never take it (they refresh against the
/// engine's internal lock instead).
pub type SharedWriter = Arc<Mutex<Database>>;

/// A bound, not-yet-serving server. [`Server::bind`] to create,
/// [`Server::run`] to serve forever, or [`Server::spawn`] to serve from a
/// background thread (tests bind port 0 and spawn).
pub struct Server {
    listener: TcpListener,
    writer: SharedWriter,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:7878"`, or port 0 for an ephemeral
    /// port) around an already-constructed database.
    pub fn bind(addr: &str, db: Database) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server { listener, writer: Arc::new(Mutex::new(db)) })
    }

    /// The bound address — the way to learn the real port after binding 0.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared writer handle (for embedding scenarios that pre-load
    /// data or inspect state while the server runs).
    pub fn writer(&self) -> SharedWriter {
        Arc::clone(&self.writer)
    }

    /// Accept loop: one thread per connection, forever. Accept errors on
    /// an individual connection are logged to stderr and skipped.
    pub fn run(self) -> io::Result<()> {
        for stream in self.listener.incoming() {
            match stream {
                Ok(stream) => {
                    let writer = Arc::clone(&self.writer);
                    thread::spawn(move || {
                        let peer = stream.peer_addr().map(|a| a.to_string());
                        if let Err(e) = serve_connection(stream, writer) {
                            eprintln!(
                                "connection {} ended: {e}",
                                peer.as_deref().unwrap_or("?")
                            );
                        }
                    });
                }
                Err(e) => eprintln!("accept failed: {e}"),
            }
        }
        Ok(())
    }

    /// Run the accept loop on a background thread; returns the handle the
    /// caller can use to reach the shared writer. The thread serves until
    /// the process exits.
    pub fn spawn(self) -> SharedWriter {
        let writer = Arc::clone(&self.writer);
        thread::spawn(move || {
            let _ = self.run();
        });
        writer
    }
}

/// Serve one connection to completion: greeting, then a
/// statement/dot-command loop until `.quit` or EOF.
fn serve_connection(stream: TcpStream, writer: SharedWriter) -> io::Result<()> {
    let mut out = stream.try_clone()?;
    let mut reader =
        writer.lock().unwrap_or_else(PoisonError::into_inner).read_session();
    // Per-connection schema cache for `.get`: document-type schemas are
    // rebuilt from the registry rows in this reader's snapshot on first
    // use, then reused for the connection's lifetime.
    let mut schemas: HashMap<String, MappedSchema> = HashMap::new();
    writeln!(out, "# xmlord server ready (statements end with ';', .help for commands)")?;

    let lines = BufReader::new(stream).lines();
    let mut pending = String::new();
    for line in lines {
        let line = line?;
        let trimmed = line.trim();
        if pending.is_empty() && trimmed.starts_with('.') {
            match run_dot_command(trimmed, &mut out, &mut reader, &writer, &mut schemas)? {
                ControlFlow::Continue => continue,
                ControlFlow::Quit => break,
            }
        }
        if !pending.is_empty() {
            pending.push('\n');
        }
        pending.push_str(&line);
        let statement = pending.trim();
        if !statement.ends_with(';') {
            continue;
        }
        let statement = statement.trim_end_matches(';').trim().to_string();
        pending.clear();
        if statement.is_empty() {
            writeln!(out, "OK 0")?;
            continue;
        }
        respond(&mut out, &statement, &mut reader, &writer)?;
    }
    Ok(())
}

enum ControlFlow {
    Continue,
    Quit,
}

fn run_dot_command(
    cmd: &str,
    out: &mut TcpStream,
    reader: &mut ReadSession,
    writer: &SharedWriter,
    schemas: &mut HashMap<String, MappedSchema>,
) -> io::Result<ControlFlow> {
    if let Some(arg) = cmd.strip_prefix(".get") {
        let doc_id = arg.trim();
        if doc_id.is_empty() {
            writeln!(out, "ERR usage: .get <doc-id>")?;
        } else {
            get_document(doc_id, out, reader, schemas)?;
        }
        return Ok(ControlFlow::Continue);
    }
    match cmd {
        ".quit" | ".exit" => {
            writeln!(out, "OK 0")?;
            return Ok(ControlFlow::Quit);
        }
        ".help" => {
            writeln!(out, "# statements: any engine SQL terminated by ';'")?;
            writeln!(out, "# SELECT/EXPLAIN run on this connection's snapshot reader;")?;
            writeln!(out, "# other statements go to the shared writer (COMMIT publishes)")?;
            writeln!(out, "# dot-commands: .help .stats .epoch .get <doc-id> .quit")?;
            writeln!(out, "OK 0")?;
        }
        ".stats" => {
            let stats = reader.stats();
            let (fresh, incremental, full) = reader.refresh_counts();
            writeln!(
                out,
                "# reader: statements={} rows_scanned={} refreshes fresh={fresh} \
                 incremental={incremental} full={full}",
                stats.statements, stats.rows_scanned
            )?;
            let report = writer.lock().unwrap_or_else(PoisonError::into_inner).stats_report();
            for line in report.lines() {
                writeln!(out, "# {line}")?;
            }
            writeln!(out, "OK 0")?;
        }
        ".epoch" => {
            let (storage, catalog) = reader.refresh();
            writeln!(out, "# pinned storage epoch {storage}, catalog epoch {catalog}")?;
            writeln!(out, "OK 0")?;
        }
        other => {
            writeln!(out, "ERR unknown command {other} (try .help)")?;
        }
    }
    Ok(ControlFlow::Continue)
}

/// `.get <doc-id>`: reconstruct a stored XML document on this
/// connection's snapshot reader and stream it straight into the socket —
/// the set-oriented bulk walker feeding [`serialize_to`], no intermediate
/// `String` and no writer lock. The reader refreshes first, so the
/// response reflects the latest *committed* state, like any SELECT.
fn get_document(
    doc_id: &str,
    out: &mut TcpStream,
    reader: &mut ReadSession,
    schemas: &mut HashMap<String, MappedSchema>,
) -> io::Result<()> {
    // DocIDs are `<schema>-<n>` (`Xml2OrDb::store_document`).
    let Some((schema_name, _)) = doc_id.rsplit_once('-') else {
        return write_err(out, &format!("malformed document id '{doc_id}' (want <schema>-<n>)"));
    };
    if !schemas.contains_key(schema_name) {
        match schema_via_session(reader, schema_name, &MappingOptions::default()) {
            Ok(schema) => {
                schemas.insert(schema_name.to_string(), schema);
            }
            Err(e) => return write_err(out, &e.to_string()),
        }
    }
    let schema = &schemas[schema_name];
    match retrieve_via_session(reader, schema, doc_id) {
        Ok((doc, meta)) => {
            serialize_to(&doc, &retrieval_serialize_options(&meta), out)?;
            writeln!(out)?;
            writeln!(out, "OK 1")
        }
        Err(e) => write_err(out, &e.to_string()),
    }
}

/// Execute one statement and write its response. Queries go to the
/// snapshot reader; everything else locks the writer for the duration of
/// the single statement.
fn respond(
    out: &mut TcpStream,
    statement: &str,
    reader: &mut ReadSession,
    writer: &SharedWriter,
) -> io::Result<()> {
    if is_read_only(statement) {
        match reader.query(statement) {
            Ok(result) => write_result(out, &result),
            Err(e) => write_err(out, &e.to_string()),
        }
    } else {
        let outcome =
            writer.lock().unwrap_or_else(PoisonError::into_inner).execute(statement);
        match outcome {
            Ok(Some(result)) => write_result(out, &result),
            Ok(None) => writeln!(out, "OK 0"),
            Err(e) => write_err(out, &e.to_string()),
        }
    }
}

/// Route on the leading keyword: SELECT and EXPLAIN are served by the
/// snapshot reader. The engine re-validates either way — a mis-routed
/// write would be rejected by the read session, never silently applied.
fn is_read_only(statement: &str) -> bool {
    let first = statement.split_whitespace().next().unwrap_or("");
    first.eq_ignore_ascii_case("SELECT") || first.eq_ignore_ascii_case("EXPLAIN")
}

fn write_result(out: &mut TcpStream, result: &QueryResult) -> io::Result<()> {
    for row in &result.rows {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        writeln!(out, "| {}", cells.join("\t"))?;
    }
    writeln!(out, "OK {}", result.rows.len())
}

fn write_err(out: &mut TcpStream, message: &str) -> io::Result<()> {
    writeln!(out, "ERR {}", message.replace('\n', " "))
}

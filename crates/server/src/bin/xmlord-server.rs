//! `xmlord-server` — serve an engine instance over TCP.
//!
//! ```text
//! xmlord-server [--addr HOST:PORT] [--dir PATH] [--mode oracle8|oracle9]
//! ```
//!
//! `--dir` opens (or creates) a durable database in that directory;
//! without it the server is in-memory. The process serves until killed;
//! with `--dir`, Ctrl-C loses nothing that was committed (the WAL replays
//! on the next start).

use std::process::ExitCode;

use xmlord_ordb::{Database, DbMode};
use xmlord_server::Server;

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut dir: Option<String> = None;
    let mut mode = DbMode::Oracle9;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(v) => addr = v,
                None => return usage("--addr needs HOST:PORT"),
            },
            "--dir" => match args.next() {
                Some(v) => dir = Some(v),
                None => return usage("--dir needs a path"),
            },
            "--mode" => match args.next().as_deref() {
                Some("oracle8") => mode = DbMode::Oracle8,
                Some("oracle9") => mode = DbMode::Oracle9,
                _ => return usage("--mode is oracle8 or oracle9"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument {other}")),
        }
    }

    let db = match &dir {
        Some(dir) => match Database::open(dir, mode) {
            Ok(db) => {
                if let Some(r) = db.recovery_report() {
                    eprintln!(
                        "recovered {dir}: snapshot={} entries_replayed={} last_seq={}",
                        r.snapshot_loaded, r.entries_replayed, r.last_seq
                    );
                }
                db
            }
            Err(e) => {
                eprintln!("cannot open {dir}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Database::new(mode),
    };

    let server = match Server::bind(&addr, db) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(bound) => eprintln!("listening on {bound} ({mode:?}, {})",
            if dir.is_some() { "durable" } else { "in-memory" }),
        Err(_) => eprintln!("listening ({mode:?})"),
    }
    if let Err(e) = server.run() {
        eprintln!("server stopped: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("error: {error}");
    }
    eprintln!(
        "usage: xmlord-server [--addr HOST:PORT] [--dir PATH] [--mode oracle8|oracle9]"
    );
    if error.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE }
}

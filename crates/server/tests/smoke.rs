//! In-process smoke test: bind an ephemeral port, speak the wire protocol
//! end to end, and check the MVCC visibility rule — a second connection's
//! snapshot reader sees committed state only.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use xmlord_ordb::{Database, DbMode};
use xmlord_server::Server;

/// One wire client: send a statement (or dot-command), collect response
/// lines through the terminating `OK`/`ERR`.
struct Client {
    out: TcpStream,
    lines: std::io::Lines<BufReader<TcpStream>>,
}

impl Client {
    fn connect(addr: &std::net::SocketAddr) -> Client {
        let out = TcpStream::connect(addr).unwrap();
        let lines = BufReader::new(out.try_clone().unwrap()).lines();
        let mut client = Client { out, lines };
        // Swallow the greeting.
        let greeting = client.next_line();
        assert!(greeting.starts_with("# xmlord server ready"), "{greeting}");
        client
    }

    fn next_line(&mut self) -> String {
        self.lines.next().unwrap().unwrap()
    }

    /// Send one request, return every response line up to and including
    /// the `OK`/`ERR` terminator.
    fn send(&mut self, request: &str) -> Vec<String> {
        writeln!(self.out, "{request}").unwrap();
        let mut response = Vec::new();
        loop {
            let line = self.next_line();
            let done = line.starts_with("OK ") || line.starts_with("ERR ");
            response.push(line);
            if done {
                return response;
            }
        }
    }
}

#[test]
fn wire_protocol_end_to_end() {
    let server = Server::bind("127.0.0.1:0", Database::new(DbMode::Oracle9)).unwrap();
    let addr = server.local_addr().unwrap();
    server.spawn();

    let mut a = Client::connect(&addr);
    assert_eq!(
        a.send("CREATE TYPE Type_P AS OBJECT(name VARCHAR(20), dept VARCHAR(20));"),
        ["OK 0"]
    );
    assert_eq!(a.send("CREATE TABLE TabP OF Type_P;"), ["OK 0"]);
    assert_eq!(a.send("COMMIT;"), ["OK 0"]);
    assert_eq!(a.send("INSERT INTO TabP VALUES (Type_P('Kudrass', 'DB'));"), ["OK 0"]);

    // Connection B's snapshot reader sees the committed (empty) table but
    // must not see A's uncommitted insert.
    let mut b = Client::connect(&addr);
    assert_eq!(b.send("SELECT name FROM TabP;"), ["OK 0"]);

    // COMMIT publishes; now B sees the row.
    assert_eq!(a.send("COMMIT;"), ["OK 0"]);
    assert_eq!(b.send("SELECT name FROM TabP;"), ["| Kudrass", "OK 1"]);

    // Multi-line statement, multi-row ordered result.
    assert_eq!(a.send("INSERT INTO TabP VALUES (Type_P('Conrad', 'DB'));"), ["OK 0"]);
    assert_eq!(a.send("COMMIT;"), ["OK 0"]);
    let rows = b.send("SELECT name, dept FROM TabP\nORDER BY name;");
    assert_eq!(rows, ["| Conrad\tDB", "| Kudrass\tDB", "OK 2"]);

    // EXPLAIN is served read-only too.
    let plan = b.send("EXPLAIN SELECT name FROM TabP;");
    assert!(plan.len() > 1, "{plan:?}");
    assert!(plan.last().unwrap().starts_with("OK "), "{plan:?}");

    // Errors come back as one ERR line; the connection stays usable.
    let err = b.send("SELECT nope FROM TabMissing;");
    assert_eq!(err.len(), 1, "{err:?}");
    assert!(err[0].starts_with("ERR "), "{err:?}");
    assert_eq!(b.send("SELECT COUNT(*) FROM TabP;"), ["| 2", "OK 1"]);

    // A write on a *reader-looking* connection still routes to the writer
    // (routing is by statement kind, not by connection).
    assert_eq!(b.send("DELETE FROM TabP WHERE name = 'Conrad';"), ["OK 0"]);
    assert_eq!(b.send("COMMIT;"), ["OK 0"]);
    assert_eq!(a.send("SELECT COUNT(*) FROM TabP;"), ["| 1", "OK 1"]);

    // Dot-commands.
    let epoch = b.send(".epoch");
    assert!(epoch[0].starts_with("# pinned storage epoch"), "{epoch:?}");
    let stats = b.send(".stats");
    assert!(stats.iter().any(|l| l.starts_with("# reader:")), "{stats:?}");
    assert!(stats.iter().any(|l| l.contains("plan_cache_hits")), "{stats:?}");
    let unknown = b.send(".nonsense");
    assert!(unknown[0].starts_with("ERR unknown command"), "{unknown:?}");
    assert_eq!(b.send(".quit"), ["OK 0"]);
}

/// `.get <doc-id>` streams a stored document back over the wire,
/// byte-identical to what the pipeline's own retrieval produces.
#[test]
fn get_streams_stored_documents() {
    use xml2ordb::pipeline::Xml2OrDb;

    const DTD: &str = "<!ELEMENT University (Student*)>\n\
                       <!ELEMENT Student (Name)>\n\
                       <!ATTLIST Student StudNr CDATA #REQUIRED>\n\
                       <!ELEMENT Name (#PCDATA)>";
    const XML: &str = "<?xml version=\"1.0\"?>\
                       <University><Student StudNr=\"4711\"><Name>Ada</Name></Student>\
                       <Student StudNr=\"4712\"><Name>Grace</Name></Student></University>";

    // Load through the pipeline, remember the expected retrieval bytes,
    // then hand the database to the server.
    let mut sys = Xml2OrDb::new(DbMode::Oracle9);
    sys.register_dtd("uni", DTD, "University").unwrap();
    let doc_id = sys.store_document("uni", XML).unwrap();
    let expected = sys.retrieve_document(&doc_id).unwrap();
    let server = Server::bind("127.0.0.1:0", sys.into_database()).unwrap();
    let addr = server.local_addr().unwrap();
    server.spawn();

    let mut c = Client::connect(&addr);
    let response = c.send(&format!(".get {doc_id}"));
    assert_eq!(response.last().unwrap(), "OK 1", "{response:?}");
    let body = response[..response.len() - 1].join("\n");
    assert_eq!(body, expected);

    // Second fetch reuses the connection's cached schema.
    assert_eq!(c.send(&format!(".get {doc_id}")).last().unwrap(), "OK 1");

    // Errors stay on-protocol: malformed ids and unknown documents are
    // single ERR lines and the connection remains usable.
    let err = c.send(".get nonsense");
    assert!(err[0].starts_with("ERR "), "{err:?}");
    let err = c.send(&format!(".get {doc_id}00"));
    assert!(err[0].starts_with("ERR "), "{err:?}");
    assert_eq!(c.send(".get"), ["ERR usage: .get <doc-id>"]);
    let again = c.send(&format!(".get {doc_id}"));
    assert_eq!(again.last().unwrap(), "OK 1", "{again:?}");
}

//! Property test: every `Value::Num` renders to a SQL literal that the
//! engine re-executes to an `sql_eq`-equal value. A drifting literal would
//! silently corrupt re-generated load scripts, so this holds for the
//! extreme numerics too: `-0.0`, integers at and beyond 2^53, subnormals,
//! huge magnitudes, and the non-finite values a NUMBER overflow produces.

use xmlord_ordb::{Database, DbMode, Value};
use xmlord_prng::Prng;

/// Store `v` through its own SQL literal and compare what comes back.
fn assert_literal_round_trips(v: f64) {
    let value = Value::Num(v);
    let lit = value.to_sql_literal();
    let mut db = Database::new(DbMode::Oracle9);
    db.execute("CREATE TABLE T (x NUMBER)").unwrap();
    db.execute(&format!("INSERT INTO T VALUES ({lit})"))
        .unwrap_or_else(|e| panic!("literal {lit:?} for {v:?} does not execute: {e}"));
    let result = db.query("SELECT * FROM T").unwrap();
    let got = result.rows[0][0].clone();
    if v.is_nan() {
        // There is no NaN literal; the value degrades to NULL rather than
        // to an unparseable `NaN` token.
        assert_eq!(got, Value::Null, "NaN literal {lit:?} stored as {got:?}");
    } else {
        assert_eq!(
            value.sql_eq(&got),
            Some(true),
            "literal {lit:?} for {v:?} re-executed to {got:?}"
        );
    }
}

#[test]
fn extreme_numerics_round_trip_through_their_literals() {
    let two_pow_53 = 9_007_199_254_740_992.0_f64;
    for v in [
        0.0,
        -0.0,
        0.1,
        -2.5,
        1e15,
        -1e15,
        two_pow_53,
        two_pow_53 + 2.0,
        -two_pow_53 - 2.0,
        1e300,
        -1e300,
        f64::MAX,
        f64::MIN,
        f64::MIN_POSITIVE,
        5e-324, // smallest subnormal
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::NAN,
    ] {
        assert_literal_round_trips(v);
    }
}

/// Random bit patterns cover NaN payloads, subnormals and both infinities.
#[test]
fn random_bit_patterns_round_trip_through_their_literals() {
    let mut rng = Prng::seed_from_u64(0x11757A1);
    for _ in 0..128 {
        assert_literal_round_trips(f64::from_bits(rng.next_u64()));
    }
}

/// An overflowing digit literal in a load script must survive script
/// re-generation: it executes to infinity, and infinity's own literal
/// executes back to infinity instead of emitting a bare `inf` token.
#[test]
fn number_overflow_survives_script_regeneration() {
    let mut db = Database::new(DbMode::Oracle9);
    db.execute("CREATE TABLE T (x NUMBER)").unwrap();
    let digits = "9".repeat(400);
    db.execute(&format!("INSERT INTO T VALUES ({digits})")).unwrap();
    let stored = db.query("SELECT * FROM T").unwrap().rows[0][0].clone();
    assert_eq!(stored, Value::Num(f64::INFINITY));
    // Regenerate the INSERT from the stored value, as script re-emission does.
    let regenerated = format!("INSERT INTO T VALUES ({})", stored.to_sql_literal());
    db.execute(&regenerated).unwrap();
    let rows = db.query("SELECT * FROM T").unwrap().rows;
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[1][0], Value::Num(f64::INFINITY));
}

//! Differential property tests for the bulk-ingest engine.
//!
//! One seeded generator produces a random load (two tables, constructor
//! INSERTs, quoted strings, NULLs, scalar subqueries); the load is then
//! delivered three ways:
//!
//! 1. **text** — each statement executed as SQL text,
//! 2. **prepared** — each statement bound through [`Database::prepare`] /
//!    [`Database::execute_prepared`] with its literals as parameters,
//! 3. **batched** — consecutive same-table statements grouped into
//!    [`InsertBatch`]es for [`Database::execute_batch`].
//!
//! All three must leave a byte-identical [`Database::state_dump`]: the fast
//! paths may only change *how fast* rows land, never *which* rows. A second
//! property injects a constraint violation mid-batch and checks the batch
//! (and the equivalent atomic script) leaves the initial state untouched.

use std::collections::HashMap;

use xmlord_ordb::sql::param::{parameterize, Lit};
use xmlord_ordb::sql::{parse_statement, Stmt};
use xmlord_ordb::{Database, DbMode, InsertBatch, RecoveryPolicy, ResultMode, Value};
use xmlord_prng::Prng;

const SCHEMA: &str = "CREATE TYPE Type_A AS OBJECT (K VARCHAR(60), N NUMBER);
CREATE TABLE TabA OF Type_A (K PRIMARY KEY);
CREATE TYPE Type_B AS OBJECT (K VARCHAR(60), T VARCHAR(200));
CREATE TABLE TabB OF Type_B;";

fn fresh_db() -> Database {
    let mut db = Database::new(DbMode::Oracle9);
    db.execute_script(SCHEMA).unwrap();
    db.commit().unwrap();
    db
}

fn rand_text(rng: &mut Prng) -> String {
    let pieces = ["plain", "O'Neil", "x\"y", "Ünïcode", "", "semi;colon", "two  spaces"];
    format!("{}-{}", rng.choose(&pieces), rng.gen_range(0..1000))
}

/// A random load: statement texts in execution order. Consecutive
/// same-table runs make the batched delivery group them; repeated
/// subqueries inside a TabB run make the batch memo measurable.
fn generate_load(seed: u64) -> Vec<String> {
    let mut rng = Prng::seed_from_u64(seed);
    let mut stmts = Vec::new();
    let mut a_count = 0u64;
    for _ in 0..rng.gen_range(8..14) {
        let run_len = rng.gen_range(1..9);
        if a_count == 0 || rng.gen_bool(0.5) {
            for _ in 0..run_len {
                a_count += 1;
                let n = if rng.gen_bool(0.2) {
                    "NULL".to_string()
                } else {
                    Value::Num(rng.gen_range(-40_000i64..40_000) as f64 / 4.0).to_sql_literal()
                };
                stmts.push(format!(
                    "INSERT INTO TabA VALUES (Type_A({}, {n}))",
                    Value::str(&format!("a{a_count}-{}", rand_text(&mut rng))).to_sql_literal()
                ));
            }
        } else {
            // One subquery target for the whole run: within a batch the
            // repeated subquery is evaluated once and memoized.
            let target = rng.gen_range(1..a_count + 1);
            for _ in 0..run_len {
                let t = if rng.gen_bool(0.6) {
                    format!("(SELECT x.K FROM TabA x WHERE x.K LIKE 'a{target}-%')")
                } else {
                    Value::str(&rand_text(&mut rng)).to_sql_literal()
                };
                stmts.push(format!(
                    "INSERT INTO TabB VALUES (Type_B({}, {t}))",
                    Value::str(&rand_text(&mut rng)).to_sql_literal()
                ));
            }
        }
    }
    stmts
}

/// Group parsed single-row INSERTs into consecutive same-table batches —
/// the same run discipline the loader's `plan_batches` uses.
fn to_batches(stmts: &[String]) -> Vec<InsertBatch> {
    let mut batches: Vec<InsertBatch> = Vec::new();
    for sql in stmts {
        let Stmt::Insert { table, columns, values } = parse_statement(sql).unwrap() else {
            panic!("generator emits INSERTs only");
        };
        match batches.last_mut() {
            Some(open) if open.table == table && open.columns == columns => {
                open.rows.push(values);
            }
            _ => batches.push(InsertBatch { table, columns, rows: vec![values] }),
        }
    }
    batches
}

#[test]
fn text_prepared_and_batched_deliveries_are_byte_identical() {
    for seed in [1u64, 0xBEEF, 0x2002_0325] {
        let load = generate_load(seed);

        let mut text_db = fresh_db();
        for sql in &load {
            text_db.execute(sql).unwrap();
        }

        let mut prep_db = fresh_db();
        let mut cache: HashMap<String, xmlord_ordb::PreparedStmt> = HashMap::new();
        for sql in &load {
            let (key, lits) = parameterize(sql).expect("INSERT texts parameterize");
            if !cache.contains_key(&key) {
                cache.insert(key.clone(), prep_db.prepare(sql).unwrap());
            }
            let prep = &cache[&key];
            if prep.param_count() == lits.len() {
                let params: Vec<Value> = lits
                    .iter()
                    .map(|l| match l {
                        Lit::Str(s) => Value::Str(s.clone()),
                        Lit::Num(n) => Value::Num(*n),
                    })
                    .collect();
                prep_db.execute_prepared(prep, &params).unwrap();
            } else {
                // Unbindable shape (e.g. a folded negative literal makes
                // the template verbatim): prepare this exact text instead
                // of replaying the shape's first statement.
                let solo = prep_db.prepare(sql).unwrap();
                prep_db.execute_prepared(&solo, &[]).unwrap();
            }
        }
        assert!(
            prep_db.stats().prepared_execs >= load.len() as u64,
            "seed {seed:#x}: prepared path not exercised"
        );

        let mut batch_db = fresh_db();
        let batches = to_batches(&load);
        assert!(batches.len() < load.len(), "seed {seed:#x}: no grouping happened");
        let total: usize =
            batches.iter().map(|b| batch_db.execute_batch(b).unwrap()).sum();
        assert_eq!(total, load.len());
        assert_eq!(batch_db.stats().batched_rows, load.len() as u64);

        let reference = text_db.state_dump();
        assert_eq!(reference, prep_db.state_dump(), "seed {seed:#x}: prepared diverged");
        assert_eq!(reference, batch_db.state_dump(), "seed {seed:#x}: batched diverged");
    }
}

#[test]
fn repeated_batch_subqueries_are_memoized() {
    let mut db = fresh_db();
    db.execute("INSERT INTO TabA VALUES (Type_A('a1-x', 1))").unwrap();
    let sqls: Vec<String> = (0..6)
        .map(|i| {
            format!(
                "INSERT INTO TabB VALUES (Type_B('b{i}', \
                 (SELECT x.K FROM TabA x WHERE x.K LIKE 'a1-%')))"
            )
        })
        .collect();
    let batches = to_batches(&sqls);
    assert_eq!(batches.len(), 1);
    db.execute_batch(&batches[0]).unwrap();
    // Six identical subqueries in one batch: one evaluation, five memo hits.
    assert_eq!(db.stats().batch_subquery_hits, 5);
}

/// The batch path promotes its uniqueness index into a per-table cache
/// keyed by a storage version counter. Every mutation that bypasses the
/// batch path — single-row INSERT, UPDATE, rollback — must invalidate it,
/// or a later batch would miss (or phantom-detect) collisions.
#[test]
fn interleaved_mutations_invalidate_the_cached_unique_index() {
    let batch_of = |sqls: &[&str]| {
        let owned: Vec<String> = sqls.iter().map(|s| s.to_string()).collect();
        to_batches(&owned)
    };
    let mut db = fresh_db();
    db.execute_batch(
        &batch_of(&[
            "INSERT INTO TabA VALUES (Type_A('a', 1))",
            "INSERT INTO TabA VALUES (Type_A('b', 1))",
        ])[0],
    )
    .unwrap();

    // A single-row INSERT bypasses the batch path; its key must still be
    // visible to the next batch's uniqueness check.
    db.execute("INSERT INTO TabA VALUES (Type_A('c', 1))").unwrap();
    let err = db
        .execute_batch(&batch_of(&["INSERT INTO TabA VALUES (Type_A('c', 2))"])[0])
        .unwrap_err();
    assert!(err.to_string().contains("unique constraint"), "{err}");

    // An UPDATE moves a key: the old key becomes insertable again and the
    // new key collides.
    db.execute("UPDATE TabA SET K = 'renamed' WHERE K = 'a'").unwrap();
    assert_eq!(
        db.execute_batch(&batch_of(&["INSERT INTO TabA VALUES (Type_A('a', 3))"])[0])
            .unwrap(),
        1
    );
    let err = db
        .execute_batch(&batch_of(&["INSERT INTO TabA VALUES (Type_A('renamed', 4))"])[0])
        .unwrap_err();
    assert!(err.to_string().contains("unique constraint"), "{err}");

    // A rolled-back batch leaves no phantom keys behind: re-inserting the
    // same key afterwards must succeed.
    let mark = db.txn_mark();
    db.execute_batch(&batch_of(&["INSERT INTO TabA VALUES (Type_A('r1', 0))"])[0]).unwrap();
    db.rollback_to_mark(mark);
    assert_eq!(
        db.execute_batch(&batch_of(&["INSERT INTO TabA VALUES (Type_A('r1', 0))"])[0])
            .unwrap(),
        1
    );

    // DELETE frees its key for the next batch.
    db.execute("DELETE FROM TabA WHERE K = 'b'").unwrap();
    assert_eq!(
        db.execute_batch(&batch_of(&["INSERT INTO TabA VALUES (Type_A('b', 5))"])[0])
            .unwrap(),
        1
    );
}

#[test]
fn mid_batch_failure_under_atomic_leaves_initial_state() {
    let mut seed_db = fresh_db();
    seed_db.execute("INSERT INTO TabA VALUES (Type_A('dup', 1))").unwrap();
    seed_db.commit().unwrap();
    let before = seed_db.state_dump();

    // Ten rows; row 6 collides with the committed 'dup' key.
    let sqls: Vec<String> = (0..10)
        .map(|i| {
            let key = if i == 6 { "dup".to_string() } else { format!("k{i}") };
            format!("INSERT INTO TabA VALUES (Type_A('{key}', {i}))")
        })
        .collect();

    // Batched delivery: the batch is all-or-nothing.
    let batches = to_batches(&sqls);
    assert_eq!(batches.len(), 1, "one table, one run");
    let err = seed_db.execute_batch(&batches[0]).unwrap_err();
    assert!(err.to_string().contains("unique constraint"), "{err}");
    assert_eq!(seed_db.state_dump(), before, "failed batch left residue");

    // Text delivery under RecoveryPolicy::Atomic must agree.
    let script = sqls.join(";\n");
    let outcome = seed_db
        .execute_script_opts(&script, RecoveryPolicy::Atomic, ResultMode::Discard)
        .unwrap();
    assert!(!outcome.errors.is_empty(), "the duplicate key must fail");
    assert_eq!(seed_db.state_dump(), before, "failed atomic script left residue");

    // A duplicate *within* the batch (nothing committed yet) is also caught.
    let sqls: Vec<String> = ["x", "y", "x"]
        .iter()
        .map(|k| format!("INSERT INTO TabA VALUES (Type_A('{k}', 0))"))
        .collect();
    let err = seed_db.execute_batch(&to_batches(&sqls)[0]).unwrap_err();
    assert!(err.to_string().contains("unique constraint"), "{err}");
    assert_eq!(seed_db.state_dump(), before, "within-batch duplicate left residue");
}

//! Fault-injection property tests for the durability layer (WAL +
//! snapshots + recovery).
//!
//! A seeded generator produces a workload of DDL (types, tables, indexes),
//! DML, ANALYZE, savepoints, rollbacks and batched inserts, partitioned
//! into transactions by COMMIT points. The durable run records a golden
//! `state_dump` at every commit. The properties:
//!
//! * **Crash matrix** — truncating the log at *any* byte (every byte of
//!   the tail record, strided positions across the rest of the file, and
//!   inside the header) and recovering yields a state byte-identical to
//!   the golden dump of the longest wholly-contained commit prefix. The
//!   reported `truncated_bytes` matches the actual cut.
//! * **Double recovery is idempotent** — reopening a recovered store
//!   replays the same entries, truncates nothing, and reproduces the same
//!   bytes.
//! * **Hostile bytes never panic** — flipping any byte of the log or the
//!   snapshot produces either a successful (prefix) recovery or a typed
//!   error, never a panic or a wrong state.
//! * **Snapshot + tail ≡ pure WAL replay** — the same workload recovered
//!   through aggressive auto-snapshots equals a recovery that replays the
//!   log from the beginning.
//! * **Uncommitted work is not durable** — statements after the last
//!   COMMIT vanish on reopen.
//! * **Determinism** — two runs of the same seeded workload produce
//!   byte-identical log files, snapshot files and recovered states.

use std::path::{Path, PathBuf};

use xmlord_ordb::sql::{parse_statement, Stmt};
use xmlord_ordb::wal::HEADER_LEN;
use xmlord_ordb::{Database, DbError, DbMode, InsertBatch};
use xmlord_prng::Prng;

fn temp_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "xmlord-walprop-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One workload step. `Batch` delivers rows through
/// [`Database::execute_batch`] (its own WAL record kind); everything else
/// is SQL text.
enum Action {
    Sql(String),
    Batch(Vec<String>),
    Commit,
}

/// Generator state mirroring what the engine has committed *or* has
/// pending — statements are valid by construction.
#[derive(Default)]
struct Model {
    types: Vec<String>,
    obj_tables: Vec<(String, String)>,
    indexes: Vec<String>,
    savepoints: Vec<(String, usize, usize, usize)>,
}

fn gen_workload(seed: u64) -> Vec<Action> {
    let mut rng = Prng::seed_from_u64(seed);
    let mut m = Model::default();
    let mut acts = Vec::new();
    // Deterministic committed prologue: every workload writes at least one
    // WAL record, so the crash matrix always has a tail record to shred.
    m.types.push("T_Base".into());
    m.obj_tables.push(("TabBase".into(), "T_Base".into()));
    acts.push(Action::Sql("CREATE TYPE T_Base AS OBJECT (k NUMBER, v VARCHAR(20))".into()));
    acts.push(Action::Sql("CREATE TABLE TabBase OF T_Base".into()));
    acts.push(Action::Sql("INSERT INTO TabBase VALUES (T_Base(0, 'seed'))".into()));
    acts.push(Action::Commit);
    let total = rng.gen_range(18usize..30);
    for n in 0..total {
        match rng.gen_range(0u32..14) {
            0 => {
                let name = format!("T_O{n}");
                m.types.push(name.clone());
                acts.push(Action::Sql(format!(
                    "CREATE TYPE {name} AS OBJECT (k NUMBER, v VARCHAR(20))"
                )));
            }
            1 if !m.types.is_empty() => {
                let ty = rng.choose(&m.types).clone();
                let name = format!("Tab{n}");
                m.obj_tables.push((name.clone(), ty.clone()));
                acts.push(Action::Sql(format!("CREATE TABLE {name} OF {ty}")));
            }
            2..=5 if !m.obj_tables.is_empty() => {
                let (t, ty) = rng.choose(&m.obj_tables).clone();
                let k = rng.gen_range(0i64..50);
                acts.push(Action::Sql(format!("INSERT INTO {t} VALUES ({ty}({k}, 'v{k}'))")));
            }
            6 if !m.obj_tables.is_empty() => {
                let (t, _) = rng.choose(&m.obj_tables).clone();
                let lo = rng.gen_range(0i64..40);
                acts.push(Action::Sql(format!(
                    "DELETE FROM {t} WHERE k > {lo} AND k < {}",
                    lo + 8
                )));
            }
            7 if !m.obj_tables.is_empty() => {
                let (t, _) = rng.choose(&m.obj_tables).clone();
                let k = rng.gen_range(0i64..50);
                acts.push(Action::Sql(format!("UPDATE {t} SET v = 'upd' WHERE k = {k}")));
            }
            8 if !m.obj_tables.is_empty() => {
                // Index DDL rides the WAL too; recovery must rebuild the
                // in-memory buckets from the catalog definition.
                let (t, _) = rng.choose(&m.obj_tables).clone();
                let name = format!("Ix{n}");
                m.indexes.push(name.clone());
                acts.push(Action::Sql(format!("CREATE INDEX {name} ON {t} (k)")));
            }
            9 if !m.obj_tables.is_empty() => {
                let (t, _) = rng.choose(&m.obj_tables).clone();
                acts.push(Action::Sql(format!("ANALYZE TABLE {t} COMPUTE STATISTICS")));
            }
            10 if !m.obj_tables.is_empty() => {
                // A batched insert run against one table.
                let (t, ty) = rng.choose(&m.obj_tables).clone();
                let rows = (0..rng.gen_range(2usize..6))
                    .map(|i| {
                        let k = 100 + rng.gen_range(0i64..50) + i as i64;
                        format!("INSERT INTO {t} VALUES ({ty}({k}, 'b{k}'))")
                    })
                    .collect();
                acts.push(Action::Batch(rows));
            }
            11 => {
                let name = format!("sp{n}");
                m.savepoints.push((
                    name.clone(),
                    m.types.len(),
                    m.obj_tables.len(),
                    m.indexes.len(),
                ));
                acts.push(Action::Sql(format!("SAVEPOINT {name}")));
            }
            12 if !m.savepoints.is_empty() => {
                let i = rng.gen_range(0i64..m.savepoints.len() as i64) as usize;
                let (sp, n_ty, n_obj, n_ix) = m.savepoints[i].clone();
                m.types.truncate(n_ty);
                m.obj_tables.truncate(n_obj);
                m.indexes.truncate(n_ix);
                m.savepoints.truncate(i + 1);
                acts.push(Action::Sql(format!("ROLLBACK TO {sp}")));
            }
            13 => {
                m.savepoints.clear();
                acts.push(Action::Commit);
            }
            _ => {}
        }
    }
    acts.push(Action::Commit);
    acts
}

fn to_batch(stmts: &[String]) -> InsertBatch {
    let mut rows = Vec::new();
    let mut tc = None;
    for sql in stmts {
        let Stmt::Insert { table, columns, values } = parse_statement(sql).unwrap() else {
            panic!("batch generator emits INSERTs only");
        };
        tc.get_or_insert((table, columns));
        rows.push(values);
    }
    let (table, columns) = tc.unwrap();
    InsertBatch { table, columns, rows }
}

/// Apply one action. A `ROLLBACK TO` for a savepoint discarded by an
/// earlier COMMIT fails as a statement — that's part of the workload (the
/// failure must roll back only itself, durably too).
fn apply(db: &mut Database, act: &Action) {
    match act {
        Action::Sql(sql) => {
            let _ = db.execute(sql);
        }
        Action::Batch(stmts) => {
            let _ = db.execute_batch(&to_batch(stmts));
        }
        Action::Commit => db.commit().unwrap(),
    }
}

/// Run the workload on a durable store; return the golden dump after each
/// commit (index 0 = the empty pre-workload state).
fn run_durable(dir: &Path, acts: &[Action]) -> Vec<String> {
    let mut db = Database::open(dir, DbMode::Oracle9).unwrap();
    let mut goldens = vec![db.state_dump()];
    for act in acts {
        apply(&mut db, act);
        if matches!(act, Action::Commit) {
            goldens.push(db.state_dump());
        }
    }
    goldens
}

/// Walk the log's framing: return the byte offset just past each complete
/// record — computed independently of `scan_wal`, from the length prefixes
/// alone, so the test does not trust the code under test for geometry.
fn frame_ends(wal: &[u8]) -> Vec<u64> {
    let mut ends = Vec::new();
    let mut p = HEADER_LEN as usize;
    while p + 8 <= wal.len() {
        let len = u32::from_le_bytes(wal[p..p + 4].try_into().unwrap()) as usize;
        let end = p + 8 + len;
        if end > wal.len() {
            break;
        }
        ends.push(end as u64);
        p = end;
    }
    ends
}

/// Write a truncated/mutated copy of a log into a fresh store directory.
fn plant_wal(bytes: &[u8], tag: &str) -> PathBuf {
    let dir = temp_dir(tag);
    std::fs::write(dir.join("wal.log"), bytes).unwrap();
    dir
}

#[test]
fn truncation_at_any_byte_recovers_longest_commit_prefix() {
    for seed in [0xC4A5u64, 0x2002, 0xD00D] {
        let acts = gen_workload(seed);
        let dir = temp_dir("matrix");
        let goldens = run_durable(&dir, &acts);
        let wal = std::fs::read(dir.join("wal.log")).unwrap();
        let ends = frame_ends(&wal);
        assert!(!ends.is_empty(), "seed {seed:#x}: workload committed nothing");
        // Empty commits (all work rolled back / no-op) write no record:
        // there can be fewer frames than COMMITs. Map frame count → the
        // golden of the *last* commit the prefix fully covers. Recovery of
        // i complete frames replays exactly the first i records, which is
        // the state after the i-th record-writing commit; with trailing
        // empty commits the dump is unchanged, so goldens[..] collapse to
        // the same bytes — index by scanning which golden the clean replay
        // of i frames reproduces. Simplest exact oracle: rerun recovery on
        // untruncated prefixes cut exactly at frame ends.
        let oracle: Vec<String> = std::iter::once(goldens[0].clone())
            .chain(ends.iter().map(|&e| {
                let d = plant_wal(&wal[..e as usize], "oracle");
                let db = Database::open(&d, DbMode::Oracle9).unwrap();
                let dump = db.state_dump();
                std::fs::remove_dir_all(&d).ok();
                dump
            }))
            .collect();
        assert_eq!(
            oracle.last().unwrap(),
            goldens.last().unwrap(),
            "seed {seed:#x}: full replay diverges from the live run"
        );

        // Truncation points: every byte of the tail record, every header
        // byte, and strided positions over the rest of the file.
        let tail_start = if ends.len() >= 2 { ends[ends.len() - 2] } else { HEADER_LEN };
        let mut points: Vec<u64> = (tail_start..=wal.len() as u64).collect();
        points.extend(0..=HEADER_LEN.min(wal.len() as u64));
        points.extend((HEADER_LEN..tail_start).step_by(7));
        for cut in points {
            let d = plant_wal(&wal[..cut as usize], "cut");
            let db = Database::open(&d, DbMode::Oracle9).unwrap();
            let complete = ends.iter().filter(|&&e| e <= cut).count();
            assert_eq!(
                db.state_dump(),
                oracle[complete],
                "seed {seed:#x} cut {cut}: recovered state is not the {complete}-record prefix"
            );
            db.storage().check_oid_directory().unwrap();
            let report = *db.recovery_report().unwrap();
            if cut >= HEADER_LEN {
                let prefix_end = if complete == 0 { HEADER_LEN } else { ends[complete - 1] };
                assert_eq!(
                    report.truncated_bytes,
                    cut - prefix_end,
                    "seed {seed:#x} cut {cut}: wrong torn-tail accounting"
                );
            }
            drop(db);

            // Double recovery: the first open truncated the torn tail, so
            // the second sees a clean log and changes nothing.
            let db2 = Database::open(&d, DbMode::Oracle9).unwrap();
            let report2 = *db2.recovery_report().unwrap();
            assert_eq!(report2.truncated_bytes, 0, "seed {seed:#x} cut {cut}");
            assert_eq!(report2.entries_replayed, report.entries_replayed);
            assert_eq!(
                db2.state_dump(),
                oracle[complete],
                "seed {seed:#x} cut {cut}: second recovery diverged"
            );
            std::fs::remove_dir_all(&d).ok();
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn hostile_bytes_never_panic() {
    let acts = gen_workload(0xBAD5EED);
    let dir = temp_dir("hostile");
    let goldens = run_durable(&dir, &acts);
    // Snapshot too, so both files face the fuzz.
    {
        let mut db = Database::open(&dir, DbMode::Oracle9).unwrap();
        db.snapshot().unwrap();
        assert_eq!(db.state_dump(), *goldens.last().unwrap());
    }
    let wal = std::fs::read(dir.join("wal.log")).unwrap();
    let snap = std::fs::read(dir.join("snapshot.db")).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    let mut rng = Prng::seed_from_u64(0xF1A6);
    for (name, clean) in [("wal.log", &wal), ("snapshot.db", &snap)] {
        for i in (0..clean.len()).step_by(3) {
            let mut bytes = clean.clone();
            bytes[i] ^= 1u8 << (rng.gen_range(0i64..8) as u32);
            let d = temp_dir("flip");
            std::fs::write(d.join(name), &bytes).unwrap();
            // Recovery must classify the damage: Ok (a prefix survives or
            // the damaged snapshot/WAL is rejected wholesale via its CRC)
            // or a typed error — never a panic, never garbage state.
            match Database::open(&d, DbMode::Oracle9) {
                Ok(db) => {
                    db.storage().check_oid_directory().unwrap();
                }
                Err(DbError::CorruptDurableState(_)) | Err(DbError::Io(_)) => {}
                Err(e) => panic!("{name} flip at {i}: unexpected error kind {e:?}"),
            }
            std::fs::remove_dir_all(&d).ok();
        }
    }
}

#[test]
fn snapshot_plus_tail_equals_pure_wal_replay() {
    for seed in [7u64, 0xABCD] {
        let acts = gen_workload(seed);

        // Pure WAL: default cadence never triggers in a short workload.
        let wal_dir = temp_dir("pure");
        let wal_goldens = run_durable(&wal_dir, &acts);

        // Aggressive snapshots: every two commits, plus a final manual one.
        let snap_dir = temp_dir("snappy");
        let mut db = Database::open(&snap_dir, DbMode::Oracle9).unwrap();
        db.set_snapshot_every(2);
        for act in &acts {
            apply(&mut db, act);
        }
        db.snapshot().unwrap();
        let live = db.state_dump();
        drop(db);

        let recovered_snap = Database::open(&snap_dir, DbMode::Oracle9).unwrap();
        let recovered_wal = Database::open(&wal_dir, DbMode::Oracle9).unwrap();
        assert_eq!(live, *wal_goldens.last().unwrap(), "seed {seed:#x}: cadence changed state");
        assert_eq!(
            recovered_snap.state_dump(),
            live,
            "seed {seed:#x}: snapshot+tail recovery diverged"
        );
        assert_eq!(
            recovered_wal.state_dump(),
            live,
            "seed {seed:#x}: pure-WAL recovery diverged"
        );
        assert!(
            recovered_snap.recovery_report().unwrap().snapshot_loaded,
            "seed {seed:#x}: snapshot was not actually used"
        );
        std::fs::remove_dir_all(&wal_dir).ok();
        std::fs::remove_dir_all(&snap_dir).ok();
    }
}

#[test]
fn uncommitted_work_is_not_durable() {
    let dir = temp_dir("uncommitted");
    let mut db = Database::open(&dir, DbMode::Oracle9).unwrap();
    db.execute("CREATE TYPE T_U AS OBJECT (k NUMBER, v VARCHAR(10))").unwrap();
    db.execute("CREATE TABLE TabU OF T_U").unwrap();
    db.execute("INSERT INTO TabU VALUES (T_U(1, 'kept'))").unwrap();
    db.commit().unwrap();
    let committed = db.state_dump();
    // Work past the commit — including DDL — must vanish on reopen.
    db.execute("INSERT INTO TabU VALUES (T_U(2, 'lost'))").unwrap();
    db.execute("CREATE TABLE TabU2 OF T_U").unwrap();
    drop(db);

    let mut db = Database::open(&dir, DbMode::Oracle9).unwrap();
    assert_eq!(db.state_dump(), committed, "uncommitted work leaked to disk");
    // And the recovered store accepts new work under the recovered schema.
    db.execute("INSERT INTO TabU VALUES (T_U(3, 'new'))").unwrap();
    db.commit().unwrap();
    assert_eq!(db.query("SELECT u.k FROM TabU u").unwrap().rows.len(), 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn explicit_rollback_discards_the_pending_wal_entry() {
    let dir = temp_dir("rollback");
    let mut db = Database::open(&dir, DbMode::Oracle9).unwrap();
    db.execute("CREATE TYPE T_R AS OBJECT (k NUMBER)").unwrap();
    db.execute("CREATE TABLE TabR OF T_R").unwrap();
    db.commit().unwrap();
    db.execute("INSERT INTO TabR VALUES (T_R(1))").unwrap();
    db.execute("ROLLBACK").unwrap();
    db.execute("INSERT INTO TabR VALUES (T_R(2))").unwrap();
    db.commit().unwrap();
    let live = db.state_dump();
    drop(db);

    let mut db = Database::open(&dir, DbMode::Oracle9).unwrap();
    assert_eq!(db.state_dump(), live);
    let rows = db.query("SELECT r.k FROM TabR r").unwrap();
    assert_eq!(rows.rows.len(), 1, "rolled-back insert replayed from the WAL");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovered_indexes_serve_queries_identically() {
    let dir = temp_dir("index");
    let mut db = Database::open(&dir, DbMode::Oracle9).unwrap();
    db.execute("CREATE TABLE Tab (k NUMBER, grp VARCHAR(5))").unwrap();
    for k in 0..200 {
        db.execute(&format!("INSERT INTO Tab VALUES ({k}, 'g{}')", k % 7)).unwrap();
    }
    db.execute("CREATE INDEX IxK ON Tab (k)").unwrap();
    db.execute("ANALYZE TABLE Tab COMPUTE STATISTICS").unwrap();
    db.commit().unwrap();
    let live = db.state_dump();
    drop(db);

    let mut db = Database::open(&dir, DbMode::Oracle9).unwrap();
    assert_eq!(db.state_dump(), live, "index DDL did not recover");
    let rows = db.query("SELECT t.grp FROM Tab t WHERE t.k = 137").unwrap();
    assert_eq!(rows.rows.len(), 1);
    // The rebuilt secondary index actually serves the probe.
    assert!(db.stats().index_scans > 0, "recovered index unused by the planner");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn same_seed_produces_byte_identical_stores() {
    let acts = gen_workload(0x5EED);
    let (d1, d2) = (temp_dir("det1"), temp_dir("det2"));
    let g1 = run_durable(&d1, &acts);
    let g2 = run_durable(&d2, &acts);
    assert_eq!(g1, g2, "state dumps diverged between identical runs");
    assert_eq!(
        std::fs::read(d1.join("wal.log")).unwrap(),
        std::fs::read(d2.join("wal.log")).unwrap(),
        "WAL files are not byte-deterministic"
    );
    for d in [&d1, &d2] {
        let mut db = Database::open(d, DbMode::Oracle9).unwrap();
        db.snapshot().unwrap();
    }
    assert_eq!(
        std::fs::read(d1.join("snapshot.db")).unwrap(),
        std::fs::read(d2.join("snapshot.db")).unwrap(),
        "snapshot encoding is not canonical"
    );
    std::fs::remove_dir_all(&d1).ok();
    std::fs::remove_dir_all(&d2).ok();
}

#[test]
fn mode_mismatch_is_a_typed_error() {
    let dir = temp_dir("mode");
    {
        let mut db = Database::open(&dir, DbMode::Oracle9).unwrap();
        db.execute("CREATE TYPE T_M AS OBJECT (k NUMBER)").unwrap();
        db.commit().unwrap();
    }
    let err = Database::open(&dir, DbMode::Oracle8).unwrap_err();
    assert!(
        matches!(err, DbError::CorruptDurableState(_)),
        "opening with the wrong mode must be rejected, got {err:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

//! Fault-injection property tests for the undo log and recovery policies.
//!
//! A seeded generator produces scripts of valid DDL/DML over a small,
//! flat (Oracle-8-compatible) schema, then a failing statement is injected
//! at position *k*. The properties:
//!
//! * **Statement-level atomicity** — after the failure, the database state
//!   (catalog + heaps + OID directory + OID allocator) is byte-identical
//!   to a clean run of the *k*-statement prefix on a fresh database.
//! * **Atomic policy** — the whole script rolls back, leaving the state
//!   byte-identical to the pre-script state, even when that state itself
//!   came from committed earlier work.
//! * The OID directory invariant (`check_oid_directory`) holds after
//!   every rollback.
//!
//! Both `DbMode`s run with the inline analyzer enabled (`set_analyze`), so
//! every generated script also exercises the analyzer's handling of the
//! transaction statements.

use xmlord_ordb::{Database, DbMode, RecoveryPolicy};
use xmlord_prng::Prng;

/// Generator state: what the script has created so far, so every generated
/// statement is valid by construction.
#[derive(Default)]
struct Model {
    types: Vec<String>,
    obj_tables: Vec<(String, String)>, // (table, of_type)
    rel_tables: Vec<String>,
    // (name, #types, #obj_tables, #rel_tables at the time of SAVEPOINT) —
    // the schema lists are append-only, so rolling back to a savepoint is
    // a truncation to the recorded lengths.
    savepoints: Vec<(String, usize, usize, usize)>,
}

fn gen_stmt(rng: &mut Prng, m: &mut Model, case: u64, n: usize) -> String {
    loop {
        match rng.gen_range(0u32..12) {
            0 => {
                let name = format!("T_Obj{case}_{n}");
                m.types.push(name.clone());
                return format!("CREATE TYPE {name} AS OBJECT (k NUMBER, v VARCHAR(20))");
            }
            1 if !m.types.is_empty() => {
                let ty = m.types[rng.gen_range(0i64..m.types.len() as i64) as usize].clone();
                let name = format!("Tab{case}_{n}");
                m.obj_tables.push((name.clone(), ty.clone()));
                return format!("CREATE TABLE {name} OF {ty}");
            }
            2 => {
                let name = format!("Rel{case}_{n}");
                m.rel_tables.push(name.clone());
                return format!("CREATE TABLE {name} (k NUMBER NOT NULL, v VARCHAR(5))");
            }
            3..=6 if !m.obj_tables.is_empty() => {
                let (t, ty) =
                    m.obj_tables[rng.gen_range(0i64..m.obj_tables.len() as i64) as usize].clone();
                let k = rng.gen_range(0i64..50);
                return format!("INSERT INTO {t} VALUES ({ty}({k}, 'v{k}'))");
            }
            7 if !m.rel_tables.is_empty() => {
                let t = m.rel_tables[rng.gen_range(0i64..m.rel_tables.len() as i64) as usize]
                    .clone();
                let k = rng.gen_range(0i64..50);
                return format!("INSERT INTO {t} VALUES ({k}, 's{}')", k % 10);
            }
            8 if !m.obj_tables.is_empty() => {
                let (t, _) =
                    m.obj_tables[rng.gen_range(0i64..m.obj_tables.len() as i64) as usize].clone();
                let lo = rng.gen_range(0i64..40);
                return format!("DELETE FROM {t} WHERE k > {lo} AND k < {}", lo + 10);
            }
            9 if !m.obj_tables.is_empty() => {
                let (t, _) =
                    m.obj_tables[rng.gen_range(0i64..m.obj_tables.len() as i64) as usize].clone();
                let k = rng.gen_range(0i64..50);
                return format!("UPDATE {t} SET v = 'upd' WHERE k = {k}");
            }
            10 => {
                let name = format!("sp{n}");
                m.savepoints.push((
                    name.clone(),
                    m.types.len(),
                    m.obj_tables.len(),
                    m.rel_tables.len(),
                ));
                return format!("SAVEPOINT {name}");
            }
            11 if !m.savepoints.is_empty() => {
                let i = rng.gen_range(0i64..m.savepoints.len() as i64) as usize;
                let (sp, n_types, n_obj, n_rel) = m.savepoints[i].clone();
                // Rolling back undoes the schema objects created after the
                // savepoint and discards the savepoints established after
                // the target (the target itself survives) — the model must
                // mirror both, or it would later reference a type/table the
                // engine has correctly rolled away.
                m.types.truncate(n_types);
                m.obj_tables.truncate(n_obj);
                m.rel_tables.truncate(n_rel);
                m.savepoints.truncate(i + 1);
                return format!("ROLLBACK TO {sp}");
            }
            _ => continue,
        }
    }
}

/// A statement guaranteed to fail, covering several distinct error paths.
fn gen_failing_stmt(rng: &mut Prng, m: &Model) -> String {
    match rng.gen_range(0u32..5) {
        0 => "INSERT INTO ZZ_Missing VALUES (1)".into(),
        1 if !m.rel_tables.is_empty() => {
            // NOT NULL violation.
            format!("INSERT INTO {} VALUES (NULL, 'x')", m.rel_tables[0])
        }
        2 if !m.rel_tables.is_empty() => {
            // VARCHAR(5) overflow.
            format!("INSERT INTO {} VALUES (1, 'far too long')", m.rel_tables[0])
        }
        3 => "ROLLBACK TO zz_never_established".into(),
        _ => "DROP TABLE ZZ_Missing".into(),
    }
}

fn fresh(mode: DbMode) -> Database {
    let mut db = Database::new(mode);
    db.set_analyze(true);
    db
}

#[test]
fn failure_at_statement_k_equals_clean_prefix_run() {
    for mode in [DbMode::Oracle8, DbMode::Oracle9] {
        for case in 0..60u64 {
            let mut rng = Prng::seed_from_u64(0xFA17 + case);
            let mut model = Model::default();
            let total = rng.gen_range(3usize..15);
            let stmts: Vec<String> =
                (0..total).map(|n| gen_stmt(&mut rng, &mut model, case, n)).collect();
            let k = rng.gen_range(0i64..total as i64) as usize + 1;
            let failing = gen_failing_stmt(&mut rng, &model);

            // Faulty run: the k-statement prefix, then the failing statement.
            let mut script: Vec<String> = stmts[..k].to_vec();
            script.push(failing);
            let mut faulty = fresh(mode);
            let outcome = faulty
                .execute_script_with(&script.join(";\n"), RecoveryPolicy::AbortOnError)
                .unwrap();
            assert_eq!(outcome.errors.len(), 1, "mode {mode:?} case {case}: {outcome:?}");
            assert_eq!(
                outcome.errors[0].statement,
                k,
                "mode {mode:?} case {case}: {:?}\nscript:\n{}",
                outcome.errors[0],
                script.join(";\n")
            );
            assert_eq!(outcome.executed, k);

            // Clean run of exactly the prefix.
            let mut clean = fresh(mode);
            clean.execute_script(&stmts[..k].join(";\n")).unwrap();

            assert_eq!(
                faulty.state_dump(),
                clean.state_dump(),
                "mode {mode:?} case {case}: statement-level rollback diverged from the \
                 clean {k}-statement prefix"
            );
            faulty.storage().check_oid_directory().unwrap();
        }
    }
}

#[test]
fn atomic_failure_restores_initial_state_byte_identically() {
    for mode in [DbMode::Oracle8, DbMode::Oracle9] {
        for case in 0..60u64 {
            let mut rng = Prng::seed_from_u64(0xA70 + case);
            let mut db = fresh(mode);

            // Committed base state the rollback must not disturb.
            let mut base_model = Model::default();
            let base: Vec<String> =
                (0..rng.gen_range(0usize..6)).map(|n| gen_stmt(&mut rng, &mut base_model, case + 1000, n)).collect();
            if !base.is_empty() {
                db.execute_script(&base.join(";\n")).unwrap();
            }
            db.commit().unwrap();
            let initial = db.state_dump();

            // A script that fails at a random point.
            let mut model = Model::default();
            let total = rng.gen_range(2usize..12);
            let mut script: Vec<String> =
                (0..total).map(|n| gen_stmt(&mut rng, &mut model, case, n)).collect();
            let k = rng.gen_range(0i64..total as i64) as usize + 1;
            script.truncate(k);
            script.push(gen_failing_stmt(&mut rng, &model));

            let outcome = db
                .execute_script_with(&script.join(";\n"), RecoveryPolicy::Atomic)
                .unwrap();
            assert!(outcome.rolled_back, "mode {mode:?} case {case}");
            assert_eq!(outcome.errors.len(), 1);
            assert_eq!(
                db.state_dump(),
                initial,
                "mode {mode:?} case {case}: atomic rollback left residue"
            );
            db.storage().check_oid_directory().unwrap();

            // The database stays fully usable after the rollback.
            db.execute_script(&script[..k].join(";\n")).unwrap();
            db.storage().check_oid_directory().unwrap();
        }
    }
}

/// Deleting a referenced row object makes DEREF surface
/// [`xmlord_ordb::DbError::DanglingRef`] — and rolling the DELETE back
/// makes the same REF live again, pointing at the same row.
#[test]
fn rollback_revives_dangling_refs() {
    for mode in [DbMode::Oracle8, DbMode::Oracle9] {
        let mut db = fresh(mode);
        db.execute_script(
            "CREATE TYPE T_P AS OBJECT (pname VARCHAR(20));
             CREATE TABLE TabP OF T_P;
             CREATE TABLE Holder (who VARCHAR(20), r REF T_P);",
        )
        .unwrap();
        for name in ["alice", "bob", "carol"] {
            db.execute(&format!("INSERT INTO TabP VALUES (T_P('{name}'))")).unwrap();
            db.execute(&format!(
                "INSERT INTO Holder VALUES ('{name}', \
                 (SELECT REF(p) FROM TabP p WHERE p.pname = '{name}'))"
            ))
            .unwrap();
        }
        db.commit().unwrap();

        // Delete the middle row: its REF dangles, survivors re-slot but
        // stay reachable.
        db.execute("DELETE FROM TabP WHERE pname = 'bob'").unwrap();
        let err = db
            .query("SELECT DEREF(h.r) FROM Holder h WHERE h.who = 'bob'")
            .unwrap_err();
        assert!(matches!(err, xmlord_ordb::DbError::DanglingRef), "{mode:?}: {err}");
        for name in ["alice", "carol"] {
            let rows = db
                .query(&format!("SELECT DEREF(h.r) FROM Holder h WHERE h.who = '{name}'"))
                .unwrap();
            assert_eq!(rows.rows.len(), 1, "{mode:?}: survivor '{name}' must stay reachable");
        }
        db.storage().check_oid_directory().unwrap();

        // Roll the DELETE back: the REF is live again.
        db.execute("ROLLBACK").unwrap();
        let rows = db.query("SELECT DEREF(h.r) FROM Holder h WHERE h.who = 'bob'").unwrap();
        assert_eq!(rows.rows.len(), 1, "{mode:?}: rollback revives the REF");
        db.storage().check_oid_directory().unwrap();
    }
}

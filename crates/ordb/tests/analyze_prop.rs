//! Differential property test for the static analyzer's severity contract:
//!
//! * executor accepts a statement ⇒ the analyzer emitted **no**
//!   `Error`-severity diagnostic for it (zero false positives), and
//! * the analyzer emitted an `Error` ⇒ the executor **rejects** the
//!   statement.
//!
//! Statements are generated from a seeded PRNG over a small universe of
//! type/table names, deliberately mixing valid DDL/DML with unknown names,
//! wrong arities, over-long and mistyped literals, NULLs into NOT NULL
//! columns, nested-collection DDL (legal on Oracle 9, illegal on Oracle 8),
//! dangling dot paths and misplaced COUNT(*). Both modes run the same
//! generator; per statement the analyzer gets a fresh shadow catalog cloned
//! from the live database, so it sees exactly what the executor sees.

use std::collections::BTreeSet;
use xmlord_ordb::{Analyzer, Database, DbMode, Severity};
use xmlord_prng::Prng;

fn obj_type(rng: &mut Prng) -> String {
    format!("TO{}", rng.gen_range(0i64..3))
}

fn coll_type(rng: &mut Prng) -> String {
    format!("TV{}", rng.gen_range(0i64..3))
}

fn table(rng: &mut Prng) -> String {
    format!("TB{}", rng.gen_range(0i64..4))
}

/// A type/table name that sometimes does not exist.
fn maybe_missing(rng: &mut Prng, gen: fn(&mut Prng) -> String) -> String {
    let known = gen(rng);
    if rng.gen_bool(0.2) {
        "ZZ_MISSING".into()
    } else {
        known
    }
}

/// Random literal: strings (some too long for VARCHAR(5), some numeric,
/// some not), numbers, NULLs.
fn lit(rng: &mut Prng) -> String {
    match rng.gen_range(0u32..8) {
        0 => "NULL".into(),
        1 | 2 => format!("'s{}'", rng.gen_range(0i64..4)),
        3 => "'way too long for varchar five'".into(),
        4 => format!("{}", rng.gen_range(0i64..100)),
        5 => format!("'{}'", rng.gen_range(0i64..100)), // numeric string
        6 => "'abc'".into(),
        _ => format!("'x{}'", rng.gen_range(0i64..9)),
    }
}

fn lits(rng: &mut Prng, n: usize) -> String {
    (0..n).map(|_| lit(rng)).collect::<Vec<_>>().join(", ")
}

/// One random statement. Object types are always created with the shape
/// `(a VARCHAR(5), b NUMBER)` and relational tables with
/// `(x NUMBER NOT NULL, y VARCHAR(5))`, so later statements can be right or
/// wrong about arity, types and column names in interesting ways.
fn gen_stmt(rng: &mut Prng) -> String {
    match rng.gen_range(0u32..16) {
        0 => {
            let name = obj_type(rng);
            match rng.gen_range(0u32..4) {
                // Plain scalar attributes.
                0 | 1 => format!("CREATE TYPE {name} AS OBJECT (a VARCHAR(5), b NUMBER)"),
                // Attribute of a (maybe missing) collection or REF type.
                2 => {
                    let elem = maybe_missing(rng, coll_type);
                    format!("CREATE TYPE {name} AS OBJECT (a VARCHAR(5), b NUMBER, c {elem})")
                }
                _ => {
                    let target = maybe_missing(rng, obj_type);
                    format!("CREATE TYPE {name} AS OBJECT (a VARCHAR(5), b NUMBER, r REF {target})")
                }
            }
        }
        1 | 2 => {
            let name = coll_type(rng);
            let elem = match rng.gen_range(0u32..5) {
                0 | 1 => "VARCHAR(10)".into(),
                2 => maybe_missing(rng, obj_type),
                // Collection of collection: fine on Oracle 9, DDL error on 8.
                _ => maybe_missing(rng, coll_type),
            };
            if rng.gen_bool(0.7) {
                format!("CREATE TYPE {name} AS VARRAY({}) OF {elem}", rng.gen_range(1i64..4))
            } else {
                format!("CREATE TYPE {name} AS TABLE OF {elem}")
            }
        }
        3 => {
            let of = maybe_missing(rng, obj_type);
            let constraint = match rng.gen_range(0u32..4) {
                0 => " (a NOT NULL)",
                1 => " (a PRIMARY KEY)",
                2 => " (CHECK (b > 0))",
                _ => "",
            };
            format!("CREATE TABLE {} OF {of}{constraint}", table(rng))
        }
        4 => format!(
            "CREATE TABLE {} (x NUMBER NOT NULL, y VARCHAR(5))",
            table(rng)
        ),
        // INSERT with positional values of random arity.
        5 | 6 => {
            let t = maybe_missing(rng, table);
            let n = rng.gen_range(1usize..4);
            format!("INSERT INTO {t} VALUES ({})", lits(rng, n))
        }
        // INSERT through an object constructor of random arity.
        7 | 8 => {
            let t = maybe_missing(rng, table);
            let ctor = maybe_missing(rng, obj_type);
            let n = rng.gen_range(0usize..4);
            format!("INSERT INTO {t} VALUES ({ctor}({}))", lits(rng, n))
        }
        // INSERT with a column list (column names right or wrong).
        9 => {
            let cols = ["a", "b", "x", "y", "zz"];
            let n = rng.gen_range(1usize..3);
            let picked: Vec<&str> =
                (0..n).map(|_| *rng.choose(&cols)).collect();
            let t = maybe_missing(rng, table);
            let vals = rng.gen_range(1usize..4);
            format!(
                "INSERT INTO {t} ({}) VALUES ({})",
                picked.join(", "),
                lits(rng, vals)
            )
        }
        10 | 11 => {
            let t = maybe_missing(rng, table);
            let item = *rng.choose(&["COUNT(*)", "t.a", "t.x", "t.zz", "t.a.b"]);
            let mut sql = format!("SELECT {item} FROM {t} t");
            if rng.gen_bool(0.3) {
                sql.push_str(&format!(", {} u", maybe_missing(rng, table)));
            }
            if rng.gen_bool(0.4) {
                sql.push_str(&format!(" WHERE t.a = {}", lit(rng)));
            }
            sql
        }
        // COUNT(*) combined with another item: rejected after FROM binds.
        12 => format!("SELECT COUNT(*), t.a FROM {} t", maybe_missing(rng, table)),
        13 => format!(
            "DELETE FROM {}{}",
            maybe_missing(rng, table),
            if rng.gen_bool(0.5) { " WHERE x = 1" } else { "" }
        ),
        14 => format!(
            "UPDATE {} SET {} = {}",
            maybe_missing(rng, table),
            *rng.choose(&["a", "x", "zz"]),
            lit(rng)
        ),
        _ => {
            if rng.gen_bool(0.5) {
                let force = if rng.gen_bool(0.5) { " FORCE" } else { "" };
                format!("DROP TYPE {}{force}", maybe_missing(rng, obj_type))
            } else {
                format!("DROP TABLE {}", maybe_missing(rng, table))
            }
        }
    }
}

struct Tally {
    statements: u64,
    accepted: u64,
    rejected: u64,
    analyzer_errors: u64,
    error_codes: BTreeSet<&'static str>,
}

fn run_mode(mode: DbMode) -> Tally {
    let mut tally = Tally {
        statements: 0,
        accepted: 0,
        rejected: 0,
        analyzer_errors: 0,
        error_codes: BTreeSet::new(),
    };
    for case in 0..60u64 {
        let mut rng = Prng::seed_from_u64(0xA11A + case);
        let mut db = Database::new(mode);
        for _ in 0..12 {
            let sql = gen_stmt(&mut rng);
            tally.statements += 1;

            // Fresh analyzer per statement, shadow catalog = live catalog.
            let analysis =
                Analyzer::with_catalog(db.catalog().clone(), mode).analyze_script(&sql);
            let outcome = db.execute(&sql);

            let errors: Vec<_> = match &analysis {
                Ok(diags) => {
                    diags.iter().filter(|d| d.severity == Severity::Error).collect()
                }
                Err(_) => {
                    // Parse failure: the executor must fail on the same text.
                    assert!(outcome.is_err(), "parse disagreement on: {sql}");
                    tally.rejected += 1;
                    continue;
                }
            };
            for e in &errors {
                tally.error_codes.insert(e.code);
            }
            tally.analyzer_errors += errors.len() as u64;

            match outcome {
                Ok(_) => {
                    tally.accepted += 1;
                    assert!(
                        errors.is_empty(),
                        "FALSE POSITIVE ({mode:?}): executor accepted but analyzer \
                         errored on: {sql}\n{errors:#?}"
                    );
                }
                Err(err) => {
                    tally.rejected += 1;
                    // One-directional: an executor rejection without an
                    // analyzer error is fine (data-dependent failures), but
                    // an analyzer error must always mean rejection — which
                    // this branch is.
                    let _ = err;
                }
            }
        }
    }
    tally
}

#[test]
fn analyzer_errors_and_executor_rejections_agree() {
    for mode in [DbMode::Oracle8, DbMode::Oracle9] {
        let tally = run_mode(mode);
        assert!(tally.statements >= 500, "{mode:?}: only {} statements", tally.statements);
        // The generator must exercise both sides of the contract.
        assert!(tally.accepted > 100, "{mode:?}: only {} accepted", tally.accepted);
        assert!(tally.rejected > 100, "{mode:?}: only {} rejected", tally.rejected);
        assert!(
            tally.analyzer_errors > 100,
            "{mode:?}: only {} analyzer errors",
            tally.analyzer_errors
        );
        // A spread of distinct failure classes, not one dominant code.
        assert!(
            tally.error_codes.len() >= 5,
            "{mode:?}: too few distinct error codes: {:?}",
            tally.error_codes
        );
        // Mode gating: nested-collection DDL errors exist on Oracle 8 only.
        assert_eq!(
            tally.error_codes.contains("nested-collection"),
            mode == DbMode::Oracle8,
            "{mode:?}: {:?}",
            tally.error_codes
        );
    }
}

/// The other half of the §2.2 gate: the exact same nested-collection script
/// is clean under Oracle 9 and an `Error` under Oracle 8.
#[test]
fn nested_collection_script_differs_by_mode_only() {
    let script = "CREATE TYPE TV_In AS VARRAY(3) OF VARCHAR(10);\n\
                  CREATE TYPE TV_Out AS VARRAY(3) OF TV_In;";
    let d8 = Analyzer::new(DbMode::Oracle8).analyze_script(script).unwrap();
    assert!(d8.iter().any(|d| d.severity == Severity::Error && d.code == "nested-collection"));
    let d9 = Analyzer::new(DbMode::Oracle9).analyze_script(script).unwrap();
    assert!(d9.iter().all(|d| d.severity != Severity::Error), "{d9:?}");
}

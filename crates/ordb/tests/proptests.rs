//! Differential property tests: the SQL engine against a naive in-memory
//! model, on random relational workloads (INSERT / DELETE / UPDATE / COUNT
//! with NULLs and three-valued comparisons). Any divergence is an engine
//! bug.

use proptest::prelude::*;
use xmlord_ordb::{Database, DbMode, Value};

/// One random operation over a fixed 3-integer-column table.
#[derive(Debug, Clone)]
enum Op {
    Insert([Option<i64>; 3]),
    Delete { col: usize, cmp: Cmp, k: i64 },
    Update { set_col: usize, set_val: Option<i64>, where_col: usize, cmp: Cmp, k: i64 },
    Count { col: usize, cmp: Cmp, k: i64 },
    CountNull { col: usize, negated: bool },
}

#[derive(Debug, Clone, Copy)]
enum Cmp {
    Eq,
    Lt,
    Gt,
}

impl Cmp {
    fn sql(self) -> &'static str {
        match self {
            Cmp::Eq => "=",
            Cmp::Lt => "<",
            Cmp::Gt => ">",
        }
    }

    /// SQL three-valued semantics: NULL never matches.
    fn matches(self, v: Option<i64>, k: i64) -> bool {
        match (self, v) {
            (_, None) => false,
            (Cmp::Eq, Some(v)) => v == k,
            (Cmp::Lt, Some(v)) => v < k,
            (Cmp::Gt, Some(v)) => v > k,
        }
    }
}

const COLS: [&str; 3] = ["a", "b", "c"];

fn arb_op() -> impl Strategy<Value = Op> {
    let val = prop_oneof![Just(None), (-5i64..20).prop_map(Some)];
    let cmp = prop_oneof![Just(Cmp::Eq), Just(Cmp::Lt), Just(Cmp::Gt)];
    prop_oneof![
        4 => [val.clone(), val.clone(), val.clone()].prop_map(Op::Insert),
        1 => (0usize..3, cmp.clone(), -5i64..20)
            .prop_map(|(col, cmp, k)| Op::Delete { col, cmp, k }),
        2 => (0usize..3, val, 0usize..3, cmp.clone(), -5i64..20).prop_map(
            |(set_col, set_val, where_col, cmp, k)| Op::Update {
                set_col,
                set_val,
                where_col,
                cmp,
                k
            }
        ),
        2 => (0usize..3, cmp, -5i64..20).prop_map(|(col, cmp, k)| Op::Count { col, cmp, k }),
        1 => (0usize..3, proptest::bool::ANY)
            .prop_map(|(col, negated)| Op::CountNull { col, negated }),
    ]
}

fn lit(v: Option<i64>) -> String {
    match v {
        None => "NULL".to_string(),
        Some(n) => n.to_string(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn engine_matches_naive_model(ops in proptest::collection::vec(arb_op(), 1..40)) {
        let mut db = Database::new(DbMode::Oracle9);
        db.execute("CREATE TABLE T (a NUMBER, b NUMBER, c NUMBER)").unwrap();
        let mut model: Vec<[Option<i64>; 3]> = Vec::new();

        for op in &ops {
            match op {
                Op::Insert(row) => {
                    db.execute(&format!(
                        "INSERT INTO T VALUES ({}, {}, {})",
                        lit(row[0]), lit(row[1]), lit(row[2])
                    )).unwrap();
                    model.push(*row);
                }
                Op::Delete { col, cmp, k } => {
                    db.execute(&format!(
                        "DELETE FROM T WHERE {} {} {k}", COLS[*col], cmp.sql()
                    )).unwrap();
                    model.retain(|row| !cmp.matches(row[*col], *k));
                }
                Op::Update { set_col, set_val, where_col, cmp, k } => {
                    db.execute(&format!(
                        "UPDATE T SET {} = {} WHERE {} {} {k}",
                        COLS[*set_col], lit(*set_val), COLS[*where_col], cmp.sql()
                    )).unwrap();
                    for row in &mut model {
                        if cmp.matches(row[*where_col], *k) {
                            row[*set_col] = *set_val;
                        }
                    }
                }
                Op::Count { col, cmp, k } => {
                    let got = db.query_scalar(&format!(
                        "SELECT COUNT(*) FROM T t WHERE t.{} {} {k}", COLS[*col], cmp.sql()
                    )).unwrap();
                    let want = model.iter().filter(|row| cmp.matches(row[*col], *k)).count();
                    prop_assert_eq!(got, Value::Num(want as f64), "after {:?}", op);
                }
                Op::CountNull { col, negated } => {
                    let not = if *negated { "NOT " } else { "" };
                    let got = db.query_scalar(&format!(
                        "SELECT COUNT(*) FROM T t WHERE t.{} IS {not}NULL", COLS[*col]
                    )).unwrap();
                    let want = model
                        .iter()
                        .filter(|row| row[*col].is_none() != *negated)
                        .count();
                    prop_assert_eq!(got, Value::Num(want as f64), "after {:?}", op);
                }
            }
        }

        // Final state comparison: full scan in insertion order.
        let result = db.query("SELECT * FROM T").unwrap();
        prop_assert_eq!(result.rows.len(), model.len());
        for (got, want) in result.rows.iter().zip(&model) {
            for (g, w) in got.iter().zip(want) {
                match w {
                    None => prop_assert_eq!(g, &Value::Null),
                    Some(n) => prop_assert_eq!(g, &Value::Num(*n as f64)),
                }
            }
        }
    }

    /// print∘parse is the identity on every statement the engine's own
    /// generated scripts contain (sampled via random university-ish DDL).
    #[test]
    fn printer_round_trips_random_inserts(
        strings in proptest::collection::vec("[a-zA-Z0-9 '%_-]{0,12}", 1..5),
        nums in proptest::collection::vec(-1000i64..1000, 1..5),
    ) {
        use xmlord_ordb::sql::{parse_statement, print_stmt};
        let mut args: Vec<String> = Vec::new();
        for s in &strings {
            args.push(format!("'{}'", s.replace('\'', "''")));
        }
        for n in &nums {
            args.push(n.to_string());
        }
        let sql = format!("INSERT INTO T VALUES ({})", args.join(", "));
        let ast = parse_statement(&sql).unwrap();
        let printed = print_stmt(&ast);
        let reparsed = parse_statement(&printed).unwrap();
        prop_assert_eq!(ast, reparsed, "printed: {}", printed);
    }
}

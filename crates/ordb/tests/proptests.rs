//! Differential property tests: the SQL engine against a naive in-memory
//! model, on random relational workloads (INSERT / DELETE / UPDATE / COUNT
//! with NULLs and three-valued comparisons). Any divergence is an engine
//! bug.

use xmlord_ordb::{Database, DbMode, Value};
use xmlord_prng::Prng;

/// One random operation over a fixed 3-integer-column table.
#[derive(Debug, Clone)]
enum Op {
    Insert([Option<i64>; 3]),
    Delete { col: usize, cmp: Cmp, k: i64 },
    Update { set_col: usize, set_val: Option<i64>, where_col: usize, cmp: Cmp, k: i64 },
    Count { col: usize, cmp: Cmp, k: i64 },
    CountNull { col: usize, negated: bool },
}

#[derive(Debug, Clone, Copy)]
enum Cmp {
    Eq,
    Lt,
    Gt,
}

impl Cmp {
    fn sql(self) -> &'static str {
        match self {
            Cmp::Eq => "=",
            Cmp::Lt => "<",
            Cmp::Gt => ">",
        }
    }

    /// SQL three-valued semantics: NULL never matches.
    fn matches(self, v: Option<i64>, k: i64) -> bool {
        match (self, v) {
            (_, None) => false,
            (Cmp::Eq, Some(v)) => v == k,
            (Cmp::Lt, Some(v)) => v < k,
            (Cmp::Gt, Some(v)) => v > k,
        }
    }
}

const COLS: [&str; 3] = ["a", "b", "c"];

fn gen_val(rng: &mut Prng) -> Option<i64> {
    if rng.gen_bool(0.2) {
        None
    } else {
        Some(rng.gen_range(-5i64..20))
    }
}

fn gen_cmp(rng: &mut Prng) -> Cmp {
    match rng.gen_range(0u32..3) {
        0 => Cmp::Eq,
        1 => Cmp::Lt,
        _ => Cmp::Gt,
    }
}

fn gen_op(rng: &mut Prng) -> Op {
    // Weights mirror the old proptest strategy: inserts dominate so tables
    // actually fill up.
    match rng.gen_range(0u32..10) {
        0..=3 => Op::Insert([gen_val(rng), gen_val(rng), gen_val(rng)]),
        4 => Op::Delete { col: rng.gen_range(0usize..3), cmp: gen_cmp(rng), k: rng.gen_range(-5i64..20) },
        5 | 6 => Op::Update {
            set_col: rng.gen_range(0usize..3),
            set_val: gen_val(rng),
            where_col: rng.gen_range(0usize..3),
            cmp: gen_cmp(rng),
            k: rng.gen_range(-5i64..20),
        },
        7 | 8 => Op::Count { col: rng.gen_range(0usize..3), cmp: gen_cmp(rng), k: rng.gen_range(-5i64..20) },
        _ => Op::CountNull { col: rng.gen_range(0usize..3), negated: rng.gen_bool(0.5) },
    }
}

fn lit(v: Option<i64>) -> String {
    match v {
        None => "NULL".to_string(),
        Some(n) => n.to_string(),
    }
}

#[test]
fn engine_matches_naive_model() {
    for case in 0..128u64 {
        let mut rng = Prng::seed_from_u64(0xD1F7 + case);
        let op_count = rng.gen_range(1usize..40);
        let ops: Vec<Op> = (0..op_count).map(|_| gen_op(&mut rng)).collect();

        let mut db = Database::new(DbMode::Oracle9);
        db.execute("CREATE TABLE T (a NUMBER, b NUMBER, c NUMBER)").unwrap();
        let mut model: Vec<[Option<i64>; 3]> = Vec::new();

        for op in &ops {
            match op {
                Op::Insert(row) => {
                    db.execute(&format!(
                        "INSERT INTO T VALUES ({}, {}, {})",
                        lit(row[0]),
                        lit(row[1]),
                        lit(row[2])
                    ))
                    .unwrap();
                    model.push(*row);
                }
                Op::Delete { col, cmp, k } => {
                    db.execute(&format!("DELETE FROM T WHERE {} {} {k}", COLS[*col], cmp.sql()))
                        .unwrap();
                    model.retain(|row| !cmp.matches(row[*col], *k));
                }
                Op::Update { set_col, set_val, where_col, cmp, k } => {
                    db.execute(&format!(
                        "UPDATE T SET {} = {} WHERE {} {} {k}",
                        COLS[*set_col],
                        lit(*set_val),
                        COLS[*where_col],
                        cmp.sql()
                    ))
                    .unwrap();
                    for row in &mut model {
                        if cmp.matches(row[*where_col], *k) {
                            row[*set_col] = *set_val;
                        }
                    }
                }
                Op::Count { col, cmp, k } => {
                    let got = db
                        .query_scalar(&format!(
                            "SELECT COUNT(*) FROM T t WHERE t.{} {} {k}",
                            COLS[*col],
                            cmp.sql()
                        ))
                        .unwrap();
                    let want = model.iter().filter(|row| cmp.matches(row[*col], *k)).count();
                    assert_eq!(got, Value::Num(want as f64), "case {case} after {op:?}");
                }
                Op::CountNull { col, negated } => {
                    let not = if *negated { "NOT " } else { "" };
                    let got = db
                        .query_scalar(&format!(
                            "SELECT COUNT(*) FROM T t WHERE t.{} IS {not}NULL",
                            COLS[*col]
                        ))
                        .unwrap();
                    let want =
                        model.iter().filter(|row| row[*col].is_none() != *negated).count();
                    assert_eq!(got, Value::Num(want as f64), "case {case} after {op:?}");
                }
            }
        }

        // Final state comparison: full scan in insertion order.
        let result = db.query("SELECT * FROM T").unwrap();
        assert_eq!(result.rows.len(), model.len(), "case {case}");
        for (got, want) in result.rows.iter().zip(&model) {
            for (g, w) in got.iter().zip(want) {
                match w {
                    None => assert_eq!(g, &Value::Null, "case {case}"),
                    Some(n) => assert_eq!(g, &Value::Num(*n as f64), "case {case}"),
                }
            }
        }

        // The storage layer's OID directory must stay consistent across the
        // whole op sequence (relational rows carry no OIDs, so this is the
        // degenerate invariant — dedicated coverage is in oid_directory.rs).
        db.storage().check_oid_directory().unwrap();
    }
}

/// print∘parse is the identity on every statement the engine's own
/// generated scripts contain (sampled via random INSERT literal soups).
#[test]
fn printer_round_trips_random_inserts() {
    use xmlord_ordb::sql::{parse_statement, print_stmt};
    const CHARSET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 '%_-";
    for case in 0..256u64 {
        let mut rng = Prng::seed_from_u64(0xB00C + case);
        let mut args: Vec<String> = Vec::new();
        for _ in 0..rng.gen_range(1usize..5) {
            let len = rng.gen_range(0usize..12);
            let s: String = (0..len).map(|_| *rng.choose(CHARSET) as char).collect();
            args.push(format!("'{}'", s.replace('\'', "''")));
        }
        for _ in 0..rng.gen_range(1usize..5) {
            args.push(rng.gen_range(-1000i64..1000).to_string());
        }
        let sql = format!("INSERT INTO T VALUES ({})", args.join(", "));
        let ast = parse_statement(&sql).unwrap();
        let printed = print_stmt(&ast);
        let reparsed = parse_statement(&printed).unwrap();
        assert_eq!(ast, reparsed, "case {case} printed: {printed}");
    }
}

//! Differential property tests for secondary indexes and the cost-based
//! planner.
//!
//! Three databases execute the same seeded stream of DML, transaction
//! control, and ANALYZE statements:
//!
//! * `indexed`     — secondary indexes installed, cost planner on,
//! * `planner_off` — the same indexes, `set_cost_planner(false)`,
//! * `bare`        — no indexes at all.
//!
//! The properties:
//!
//! * every SELECT (point lookups and an equi-join) returns byte-identical
//!   results on all three databases — index probes and join reordering
//!   are pure access-path changes;
//! * after every ROLLBACK / ROLLBACK TO SAVEPOINT, `state_dump()` is
//!   byte-identical across all three — index maintenance rides the undo
//!   log without perturbing replay (indexes and statistics are access
//!   structures, deliberately outside the dump);
//! * the indexed database actually *uses* the indexes: EXPLAIN pins an
//!   `index probe` access path for the point query.
//!
//! The indexed databases additionally churn CREATE INDEX / DROP INDEX
//! mid-transaction so undo replay also covers index DDL.

use xmlord_ordb::{Database, DbMode};
use xmlord_prng::Prng;

const SCHEMA: &str = "CREATE TABLE Tab (k NUMBER, grp NUMBER, v VARCHAR(20));
CREATE TABLE Lnk (k NUMBER, tag VARCHAR(10));";

const INDEXES: &str = "CREATE INDEX IxTabK ON Tab (k);
CREATE INDEX IxTabGrp ON Tab (grp);
CREATE INDEX IxLnkK ON Lnk (k);";

/// Savepoint bookkeeping so every generated ROLLBACK TO names a live
/// savepoint. COMMIT and full ROLLBACK both discard the stack; rolling
/// back to a savepoint keeps the target but discards later ones.
#[derive(Default)]
struct Model {
    savepoints: Vec<String>,
}

enum Step {
    /// Applied to all three databases; must succeed.
    All(String),
    /// Index DDL, applied only to the two index-bearing databases; may
    /// fail (e.g. DROP of an index a rollback already retired) — both
    /// receivers are in identical states, so they fail identically.
    IndexDdl(String),
    Commit,
    Rollback,
    Compare,
}

fn gen_step(rng: &mut Prng, m: &mut Model, n: usize) -> Step {
    match rng.gen_range(0u32..16) {
        0..=4 => {
            let k = rng.gen_range(0i64..25);
            let g = rng.gen_range(0i64..5);
            Step::All(format!("INSERT INTO Tab VALUES ({k}, {g}, 'v{n}')"))
        }
        5..=6 => {
            let k = rng.gen_range(0i64..25);
            Step::All(format!("INSERT INTO Lnk VALUES ({k}, 't{}')", k % 7))
        }
        7 => {
            let k = rng.gen_range(0i64..25);
            Step::All(format!("UPDATE Tab SET v = 'u{n}' WHERE k = {k}"))
        }
        8 => {
            // Key update: forces index maintenance to move entries.
            let k = rng.gen_range(0i64..25);
            let k2 = rng.gen_range(0i64..25);
            Step::All(format!("UPDATE Tab SET k = {k2} WHERE k = {k}"))
        }
        9 => {
            let g = rng.gen_range(0i64..5);
            Step::All(format!("DELETE FROM Tab WHERE grp = {g}"))
        }
        10 => {
            let t = if rng.gen_bool(0.5) { "Tab" } else { "Lnk" };
            Step::All(format!("ANALYZE TABLE {t} COMPUTE STATISTICS"))
        }
        11 => {
            let name = format!("sp{n}");
            m.savepoints.push(name.clone());
            Step::All(format!("SAVEPOINT {name}"))
        }
        12 if !m.savepoints.is_empty() => {
            let i = rng.gen_range(0i64..m.savepoints.len() as i64) as usize;
            let sp = m.savepoints[i].clone();
            m.savepoints.truncate(i + 1);
            Step::All(format!("ROLLBACK TO {sp}"))
        }
        12 => {
            m.savepoints.clear();
            Step::Commit
        }
        13 => {
            m.savepoints.clear();
            Step::Rollback
        }
        14 => Step::IndexDdl(if rng.gen_bool(0.5) {
            "CREATE INDEX IxDyn ON Tab (v)".into()
        } else {
            "DROP INDEX IxDyn".into()
        }),
        _ => Step::Compare,
    }
}

fn queries(rng: &mut Prng) -> Vec<String> {
    let k = rng.gen_range(0i64..25);
    let g = rng.gen_range(0i64..5);
    vec![
        format!("SELECT t.k, t.v FROM Tab t WHERE t.k = {k}"),
        format!(
            "SELECT t.k, t.v, l.tag FROM Tab t, Lnk l \
             WHERE t.k = l.k AND t.grp = {g}"
        ),
    ]
}

fn assert_identical(dbs: &mut [&mut Database], sql: &str, ctx: &str) {
    let expect = dbs[0].query(sql).unwrap();
    for db in dbs[1..].iter_mut() {
        assert_eq!(db.query(sql).unwrap(), expect, "{ctx}: divergent results for {sql}");
    }
}

fn assert_same_dump(indexed: &Database, planner_off: &Database, bare: &Database, ctx: &str) {
    let dump = indexed.state_dump();
    assert_eq!(planner_off.state_dump(), dump, "{ctx}: planner-off dump diverged");
    assert_eq!(bare.state_dump(), dump, "{ctx}: bare dump diverged");
}

#[test]
fn index_backed_execution_is_differentially_identical() {
    for mode in [DbMode::Oracle8, DbMode::Oracle9] {
        for case in 0..40u64 {
            let mut rng = Prng::seed_from_u64(0x1DE7 + case);
            let mut indexed = Database::new(mode);
            let mut planner_off = Database::new(mode);
            let mut bare = Database::new(mode);
            for db in [&mut indexed, &mut planner_off, &mut bare] {
                db.execute_script(SCHEMA).unwrap();
                db.commit().unwrap();
            }
            for db in [&mut indexed, &mut planner_off] {
                db.execute_script(INDEXES).unwrap();
            }
            planner_off.set_cost_planner(false);

            let mut model = Model::default();
            let total = rng.gen_range(20usize..60);
            for n in 0..total {
                let ctx = format!("mode {mode:?} case {case} step {n}");
                match gen_step(&mut rng, &mut model, n) {
                    Step::All(sql) => {
                        for db in [&mut indexed, &mut planner_off, &mut bare] {
                            db.execute(&sql).unwrap_or_else(|e| panic!("{ctx}: {sql}: {e}"));
                        }
                    }
                    Step::IndexDdl(sql) => {
                        let a = indexed.execute(&sql).is_ok();
                        let b = planner_off.execute(&sql).is_ok();
                        assert_eq!(a, b, "{ctx}: index DDL outcome diverged for {sql}");
                    }
                    Step::Commit => {
                        for db in [&mut indexed, &mut planner_off, &mut bare] {
                            db.commit().unwrap();
                        }
                    }
                    Step::Rollback => {
                        for db in [&mut indexed, &mut planner_off, &mut bare] {
                            db.execute("ROLLBACK").unwrap();
                        }
                        assert_same_dump(&indexed, &planner_off, &bare, &ctx);
                    }
                    Step::Compare => {
                        for sql in queries(&mut rng) {
                            assert_identical(
                                &mut [&mut indexed, &mut planner_off, &mut bare],
                                &sql,
                                &ctx,
                            );
                        }
                    }
                }
            }

            // Final differential sweep + undo replay of everything still
            // uncommitted.
            let ctx = format!("mode {mode:?} case {case} final");
            for sql in queries(&mut rng) {
                assert_identical(&mut [&mut indexed, &mut planner_off, &mut bare], &sql, &ctx);
            }
            for db in [&mut indexed, &mut planner_off, &mut bare] {
                db.execute("ROLLBACK").unwrap();
            }
            assert_same_dump(&indexed, &planner_off, &bare, &ctx);
            indexed.storage().check_oid_directory().unwrap();
        }
    }
}

/// The indexed database must actually take the index path: EXPLAIN pins
/// `index probe` for the point query, and the executor's counters agree.
#[test]
fn explain_pins_index_probe_and_counters_move() {
    let mut db = Database::new(DbMode::Oracle8);
    db.execute_script(SCHEMA).unwrap();
    db.execute_script(INDEXES).unwrap();
    for k in 0..20 {
        db.execute(&format!("INSERT INTO Tab VALUES ({k}, {}, 'v{k}')", k % 4)).unwrap();
        db.execute(&format!("INSERT INTO Lnk VALUES ({k}, 't{}')", k % 7)).unwrap();
    }
    db.execute("ANALYZE TABLE Tab COMPUTE STATISTICS").unwrap();
    db.execute("ANALYZE TABLE Lnk COMPUTE STATISTICS").unwrap();

    let plan = db.query("EXPLAIN SELECT t.v FROM Tab t WHERE t.k = 7").unwrap();
    let text: Vec<String> =
        plan.rows.iter().map(|r| r[0].as_str().unwrap().to_string()).collect();
    assert!(text.iter().any(|l| l.contains("index probe")), "{text:#?}");

    db.query("SELECT t.v FROM Tab t WHERE t.k = 7").unwrap();
    let report = db.stats_report();
    assert!(report.contains("index_scans"), "{report}");
    let scans: u64 = report
        .lines()
        .filter_map(|l| {
            let mut parts = l.split_whitespace();
            (parts.next() == Some("index_scans")).then(|| parts.next())?
        })
        .find_map(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no index_scans line in:\n{report}"));
    assert!(scans >= 1, "index_scans stayed at zero:\n{report}");
}

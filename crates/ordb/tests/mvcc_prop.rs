//! Concurrency property tests for MVCC snapshot reads.
//!
//! A seeded generator produces a deterministic stream of *commit units*
//! (a few DML statements followed by COMMIT). The writer thread replays
//! the stream while N reader threads hammer a fixed query mix through
//! [`ReadSession`]s, each recording `(pinned storage epoch, query index,
//! result)` triples. The property:
//!
//! * **Serial equivalence at the pinned epoch** — every concurrent read
//!   is byte-identical (`QueryResult` equality: column names, row values,
//!   row order) to the same query run serially on a fresh database that
//!   replayed exactly the units committed up to that epoch. Readers never
//!   observe uncommitted, torn, or otherwise intermediate state.
//!
//! Epoch → unit-count mapping: every unit contains at least one INSERT,
//! so every COMMIT moves data and bumps the storage committed epoch by
//! exactly 1. Setup commits once, so storage epoch `base + k` ⇔ "the
//! first `k` units are committed".
//!
//! Readers run with cost planner and hash joins at their defaults and the
//! oracle runs the identical configuration, so plan choice cannot mask a
//! visibility bug.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use xmlord_ordb::{Database, DbMode, QueryResult};
use xmlord_prng::Prng;

/// Schema plus seed rows; committed once by `setup` (one storage epoch).
const SETUP: &str = "CREATE TYPE Type_Dept AS OBJECT(dname VARCHAR(30), budget NUMBER);
CREATE TABLE TabDept OF Type_Dept;
CREATE TYPE Type_Emp AS OBJECT(ename VARCHAR(30), dname VARCHAR(30), sal NUMBER);
CREATE TABLE TabEmp OF Type_Emp;
CREATE INDEX IxEmpDept ON TabEmp (dname);
INSERT INTO TabDept VALUES (Type_Dept('d0', 100));
INSERT INTO TabDept VALUES (Type_Dept('d1', 350));
INSERT INTO TabDept VALUES (Type_Dept('d2', 900));
INSERT INTO TabEmp VALUES (Type_Emp('seed0', 'd0', 400));
INSERT INTO TabEmp VALUES (Type_Emp('seed1', 'd1', 800));
COMMIT;";

/// The concurrent query mix (E14/E19 flavour: scans, an indexable
/// predicate, a join, an aggregate, EXPLAIN). Every query is answered
/// deterministically from a given state, so serial replay reproduces the
/// concurrent answer byte for byte.
const QUERIES: &[&str] = &[
    "SELECT COUNT(*) FROM TabEmp",
    "SELECT e.ename, e.sal FROM TabEmp e WHERE e.sal > 500",
    "SELECT e.ename FROM TabEmp e WHERE e.dname = 'd1'",
    "SELECT e.ename, d.budget FROM TabEmp e, TabDept d WHERE e.dname = d.dname",
    "SELECT d.dname FROM TabDept d WHERE d.budget > 300",
    "EXPLAIN SELECT e.ename FROM TabEmp e WHERE e.dname = 'd2'",
];

fn setup(mode: DbMode) -> Database {
    let mut db = Database::new(mode);
    db.execute_script(SETUP).unwrap();
    db
}

/// One deterministic commit unit. The leading INSERT guarantees the
/// commit is effective (bumps the storage epoch); the rest is a seeded
/// mix of UPDATE / DELETE / extra INSERTs, some of which may touch zero
/// rows — exactly the kind of no-op the epoch accounting must survive.
fn gen_unit(rng: &mut Prng, n: usize) -> Vec<String> {
    let mut unit = vec![format!(
        "INSERT INTO TabEmp VALUES (Type_Emp('e{n}', 'd{}', {}))",
        rng.gen_range(0u32..3),
        rng.gen_range(100u32..1000)
    )];
    for _ in 0..rng.gen_range(0u32..3) {
        match rng.gen_range(0u32..4) {
            0 => unit.push(format!(
                "UPDATE TabEmp SET sal = {} WHERE ename = 'e{}'",
                rng.gen_range(100u32..1000),
                rng.gen_range(0..(n as u32 + 1))
            )),
            1 => unit.push(format!(
                "DELETE FROM TabEmp WHERE ename = 'e{}'",
                rng.gen_range(0..(n as u32 + 1))
            )),
            2 => unit.push(format!(
                "UPDATE TabDept SET budget = {} WHERE dname = 'd{}'",
                rng.gen_range(100u32..1000),
                rng.gen_range(0u32..3)
            )),
            _ => unit.push(format!(
                "INSERT INTO TabEmp VALUES (Type_Emp('x{n}_{}', 'd{}', {}))",
                rng.gen_range(0u32..100),
                rng.gen_range(0u32..3),
                rng.gen_range(100u32..1000)
            )),
        }
    }
    unit
}

/// Serial oracle: replay `units[..k]` on a fresh database and answer
/// every query — the expected result table, indexed `[k][query]`.
fn oracle_table(mode: DbMode, units: &[Vec<String>]) -> Vec<Vec<QueryResult>> {
    let mut db = setup(mode);
    let mut table = Vec::with_capacity(units.len() + 1);
    let answers = |db: &mut Database| -> Vec<QueryResult> {
        QUERIES.iter().map(|q| db.query(q).unwrap()).collect()
    };
    table.push(answers(&mut db));
    for unit in units {
        for stmt in unit {
            db.execute(stmt).unwrap();
        }
        db.commit().unwrap();
        table.push(answers(&mut db));
    }
    table
}

fn run_concurrent(mode: DbMode, seed: u64, readers: usize, units_n: usize) {
    let mut rng = Prng::seed_from_u64(seed);
    let units: Vec<Vec<String>> = (0..units_n).map(|n| gen_unit(&mut rng, n)).collect();
    let expected = oracle_table(mode, &units);

    let mut writer = setup(mode);
    // Setup commits exactly once (its script ends in COMMIT); whatever
    // epoch that leaves us at is the base the unit count is relative to.
    let base_epoch = writer.read_session().refresh().0;

    let done = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for r in 0..readers {
        let mut session = writer.read_session();
        let done = Arc::clone(&done);
        let reader_seed = seed ^ (r as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
        handles.push(std::thread::spawn(move || {
            let mut rng = Prng::seed_from_u64(reader_seed);
            let mut observations: Vec<(u64, usize, QueryResult)> = Vec::new();
            let mut spin = true;
            while spin {
                // One more sweep after the writer finishes, so every
                // reader also validates the final state.
                spin = !done.load(Ordering::Acquire);
                let q = rng.gen_range(0u32..QUERIES.len() as u32) as usize;
                let (epoch, _) = session.refresh();
                let result = session.query(QUERIES[q]).unwrap();
                // The query ran on the cache pinned at `epoch`: refresh()
                // inside query() found the same committed state or a newer
                // one; re-read the actual pinned epoch afterwards.
                let after = session.pinned_epochs().0;
                assert!(after >= epoch);
                observations.push((after, q, result));
            }
            observations
        }));
    }

    // The writer replays the units, committing one unit at a time, while
    // the readers run. No artificial delays: the interleaving is whatever
    // the scheduler produces.
    for unit in &units {
        for stmt in unit {
            writer.execute(stmt).unwrap();
        }
        writer.commit().unwrap();
    }
    done.store(true, Ordering::Release);

    let mut total = 0usize;
    for handle in handles {
        for (epoch, q, result) in handle.join().unwrap() {
            let k = (epoch - base_epoch) as usize;
            assert!(
                k < expected.len(),
                "reader pinned epoch {epoch} beyond the {} committed units",
                units_n
            );
            assert_eq!(
                result, expected[k][q],
                "concurrent read of {:?} at epoch {epoch} diverged from serial replay of \
                 {k} units",
                QUERIES[q]
            );
            total += 1;
        }
    }
    assert!(total >= readers, "each reader must observe at least once");
}

#[test]
fn concurrent_reads_match_serial_replay_oracle9() {
    run_concurrent(DbMode::Oracle9, 0xC0FFEE, 4, 40);
}

#[test]
fn concurrent_reads_match_serial_replay_oracle8() {
    run_concurrent(DbMode::Oracle8, 0xBEEF, 2, 25);
}

#[test]
fn concurrent_reads_survive_committed_ddl() {
    // Mixed DDL + DML stream: every unit still leads with an INSERT (so
    // the storage epoch still counts units), but some units also CREATE /
    // DROP an index or create a table — forcing full cache re-derives
    // while readers are mid-flight.
    let mode = DbMode::Oracle9;
    let mut rng = Prng::seed_from_u64(0xDD1);
    let mut units: Vec<Vec<String>> = Vec::new();
    for n in 0..20usize {
        let mut unit = gen_unit(&mut rng, n);
        match n % 5 {
            1 => unit.push(format!("CREATE INDEX IxSal{n} ON TabEmp (sal)")),
            3 => unit.push(format!(
                "CREATE TABLE TabScratch{n} OF Type_Dept"
            )),
            _ => {}
        }
        units.push(unit);
    }
    let expected = oracle_table(mode, &units);

    let mut writer = setup(mode);
    let base_epoch = writer.read_session().refresh().0;
    let done = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for r in 0..3usize {
        let mut session = writer.read_session();
        let done = Arc::clone(&done);
        handles.push(std::thread::spawn(move || {
            let mut rng = Prng::seed_from_u64(0x5EED ^ r as u64);
            let mut observations = Vec::new();
            let mut spin = true;
            while spin {
                spin = !done.load(Ordering::Acquire);
                let q = rng.gen_range(0u32..QUERIES.len() as u32) as usize;
                let result = session.query(QUERIES[q]).unwrap();
                observations.push((session.pinned_epochs().0, q, result));
            }
            (observations, session.refresh_counts())
        }));
    }
    for unit in &units {
        for stmt in unit {
            writer.execute(stmt).unwrap();
        }
        writer.commit().unwrap();
    }
    done.store(true, Ordering::Release);

    let mut full_refreshes = 0;
    for handle in handles {
        let (observations, (_, _, full)) = handle.join().unwrap();
        full_refreshes += full;
        for (epoch, q, result) in observations {
            let k = (epoch - base_epoch) as usize;
            assert!(k < expected.len());
            assert_eq!(result, expected[k][q], "query {:?} at epoch {epoch}", QUERIES[q]);
        }
    }
    // Every reader's first refresh is full; the committed DDL should have
    // forced at least one more somewhere.
    assert!(full_refreshes >= 3, "expected full re-derives, saw {full_refreshes}");
}

/// Readers pinned at an old epoch keep answering from it: a session that
/// never refreshes between writer commits serves repeatable reads.
#[test]
fn repeatable_reads_within_a_pin() {
    let mut writer = setup(DbMode::Oracle9);
    let mut reader = writer.read_session();
    let before = reader.query("SELECT COUNT(*) FROM TabEmp").unwrap();
    let pinned = reader.pinned_epochs();

    writer.execute("INSERT INTO TabEmp VALUES (Type_Emp('late', 'd0', 50))").unwrap();
    writer.commit().unwrap();

    // Same pin → same answer, even though the writer has moved on. (query
    // refreshes, so use the low-level path: the cache serves without
    // copying when epochs match, and matching is what we're *not* doing
    // here — so check via a second session pinned late instead.)
    let mut late = writer.read_session();
    let after = late.query("SELECT COUNT(*) FROM TabEmp").unwrap();
    assert_ne!(before, after, "the committed insert must be visible to a fresh session");
    assert!(late.pinned_epochs().0 > pinned.0);
}

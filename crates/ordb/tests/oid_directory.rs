//! Invariant tests for the OID directory that backs O(1) REF resolution:
//! interleaved inserts, predicate deletes, and table drops must keep every
//! directory entry pointing at the row that carries its OID, and
//! deref-heavy queries must resolve REFs without any extra row scans.

use xmlord_ordb::{Database, DbMode, Value};
use xmlord_prng::Prng;

/// Random churn over two object tables: inserts, deletes on a key range,
/// and full drop/recreate cycles. After every operation the directory is
/// validated slot by slot.
#[test]
fn directory_survives_interleaved_insert_delete_drop() {
    for case in 0..40u64 {
        let mut rng = Prng::seed_from_u64(0x01D + case);
        let mut db = Database::new(DbMode::Oracle9);
        db.execute("CREATE TYPE T_Obj AS OBJECT(k NUMBER, v VARCHAR(20))").unwrap();
        for t in ["Tab0", "Tab1"] {
            db.execute(&format!("CREATE TABLE {t} OF T_Obj")).unwrap();
        }

        for _ in 0..rng.gen_range(10usize..60) {
            let table = if rng.gen_bool(0.5) { "Tab0" } else { "Tab1" };
            match rng.gen_range(0u32..10) {
                // Inserts dominate so the tables keep refilling.
                0..=5 => {
                    let k = rng.gen_range(0i64..20);
                    db.execute(&format!(
                        "INSERT INTO {table} VALUES (T_Obj({k}, 'v{k}'))"
                    ))
                    .unwrap();
                }
                // Predicate delete: removes an interior slice of the heap,
                // forcing compaction to re-slot the survivors.
                6..=8 => {
                    let lo = rng.gen_range(0i64..20);
                    db.execute(&format!(
                        "DELETE FROM {table} WHERE k > {lo} AND k < {}",
                        lo + rng.gen_range(1i64..8)
                    ))
                    .unwrap();
                }
                // Drop and recreate: every OID of the table must vanish.
                _ => {
                    db.execute(&format!("DROP TABLE {table}")).unwrap();
                    db.execute(&format!("CREATE TABLE {table} OF T_Obj")).unwrap();
                }
            }
            db.storage().check_oid_directory().unwrap_or_else(|e| {
                panic!("case {case}: directory corrupt: {e}");
            });
        }

        // Every surviving row must still be reachable through a REF.
        let live = db.storage().oid_directory_len();
        let rows0 = db.row_count("Tab0");
        let rows1 = db.row_count("Tab1");
        assert_eq!(live, rows0 + rows1, "case {case}");
    }
}

/// REFs stored before a delete must dangle afterwards, while survivors keep
/// resolving to their (re-slotted) rows.
#[test]
fn refs_track_rows_across_compaction() {
    let mut db = Database::new(DbMode::Oracle9);
    db.execute_script(
        "CREATE TYPE T_P AS OBJECT(name VARCHAR(20));
         CREATE TABLE TabP OF T_P;
         CREATE TABLE Holder (who VARCHAR(20), r REF T_P);",
    )
    .unwrap();
    for name in ["a", "b", "c", "d", "e"] {
        db.execute(&format!("INSERT INTO TabP VALUES (T_P('{name}'))")).unwrap();
        db.execute(&format!(
            "INSERT INTO Holder VALUES ('{name}', (SELECT REF(p) FROM TabP p WHERE p.name = '{name}'))"
        ))
        .unwrap();
    }
    // Delete the interior rows; 'a' and 'e' shift slots.
    db.execute("DELETE FROM TabP WHERE name = 'b' OR name = 'c' OR name = 'd'").unwrap();
    db.storage().check_oid_directory().unwrap();

    for (name, alive) in [("a", true), ("b", false), ("c", false), ("d", false), ("e", true)] {
        let result = db.query(&format!(
            "SELECT h.r.name FROM Holder h WHERE h.who = '{name}'"
        ));
        if alive {
            assert_eq!(result.unwrap().rows, vec![vec![Value::str(name)]]);
        } else {
            // The deleted rows' REFs dangle, and navigation says so.
            assert!(
                matches!(result, Err(xmlord_ordb::DbError::DanglingRef)),
                "{name} should dangle"
            );
        }
    }
}

/// The acceptance check from the fast-path work: a deref-heavy query scans
/// each table exactly once — REF resolution itself adds no row scans — and
/// every successful deref goes through the directory index.
#[test]
fn deref_heavy_query_does_not_rescan() {
    const N: usize = 50;
    let mut db = Database::new(DbMode::Oracle9);
    db.execute_script(
        "CREATE TYPE T_Prof AS OBJECT(pname VARCHAR(30), subject VARCHAR(30));
         CREATE TYPE T_Course AS OBJECT(cname VARCHAR(30), prof REF T_Prof);
         CREATE TABLE TabProf OF T_Prof;
         CREATE TABLE TabCourse OF T_Course;",
    )
    .unwrap();
    for i in 0..N {
        db.execute(&format!(
            "INSERT INTO TabProf VALUES (T_Prof('prof{i}', 'subj{i}'))"
        ))
        .unwrap();
        db.execute(&format!(
            "INSERT INTO TabCourse VALUES (T_Course('course{i}',
               (SELECT REF(p) FROM TabProf p WHERE p.pname = 'prof{i}')))"
        ))
        .unwrap();
    }

    let before = db.stats();
    let rows = db.query("SELECT c.prof.subject FROM TabCourse c").unwrap();
    let delta = db.stats().since(&before);
    assert_eq!(rows.rows.len(), N);
    // One scan of TabCourse; the N REF hops hit the directory instead.
    assert_eq!(delta.rows_scanned, N as u64);
    assert_eq!(delta.oid_index_hits, N as u64);
    assert_eq!(delta.derefs, N as u64);
}

//! Differential property test for the hash equi-join fast path: every
//! randomized equi-join query must return exactly the same rows with hash
//! joins enabled (the default) and disabled (pure nested loops).
//!
//! The value pool is built to stress the prefilter's weak spot — SQL's
//! numeric string coercion. `'04' = 4` is TRUE but `'04' = '4'` is FALSE,
//! so equal hash keys must never be trusted without re-running the real
//! predicate, and NULLs must never match anything.

use xmlord_ordb::{Database, DbMode};
use xmlord_prng::Prng;

/// VARCHAR literal: numeric strings (padded and zero-prefixed variants that
/// collide with numbers under coercion), plain text, or NULL.
fn str_lit(rng: &mut Prng) -> String {
    match rng.gen_range(0u32..7) {
        0 => "NULL".into(),
        1 | 2 => format!("'{}'", rng.gen_range(0i64..6)),
        3 => format!("'0{}'", rng.gen_range(0i64..6)),
        4 | 5 => format!("'s{}'", rng.gen_range(0i64..4)),
        _ => format!("' {} '", rng.gen_range(0i64..6)),
    }
}

/// NUMBER literal drawn from the same small span so joins actually match.
fn num_lit(rng: &mut Prng) -> String {
    if rng.gen_bool(0.15) {
        "NULL".into()
    } else {
        rng.gen_range(0i64..6).to_string()
    }
}

fn col(rng: &mut Prng) -> &'static str {
    if rng.gen_bool(0.5) {
        "s"
    } else {
        "n"
    }
}

fn setup(rng: &mut Prng) -> Database {
    let mut db = Database::new(DbMode::Oracle9);
    db.execute_script(
        "CREATE TABLE A (s VARCHAR(10), n NUMBER);
         CREATE TABLE B (s VARCHAR(10), n NUMBER);
         CREATE TABLE C (s VARCHAR(10), n NUMBER);",
    )
    .unwrap();
    for table in ["A", "B", "C"] {
        for _ in 0..rng.gen_range(0usize..10) {
            db.execute(&format!(
                "INSERT INTO {table} VALUES ({}, {})",
                str_lit(rng),
                num_lit(rng)
            ))
            .unwrap();
        }
    }
    db
}

fn random_query(rng: &mut Prng) -> String {
    match rng.gen_range(0u32..4) {
        // Plain binary equi-join, random column pairing.
        0 => format!(
            "SELECT a.s, a.n, b.s, b.n FROM A a, B b WHERE a.{} = b.{}",
            col(rng),
            col(rng)
        ),
        // Two conjuncts on the same item: only the first can be hashed, the
        // second must still filter candidates.
        1 => format!(
            "SELECT a.s, b.n FROM A a, B b WHERE a.{} = b.{} AND a.{} = b.{}",
            col(rng),
            col(rng),
            col(rng),
            col(rng)
        ),
        // Constant "probe": the first scheduled conjunct compares the new
        // item against a literal.
        2 => format!(
            "SELECT a.s, b.s FROM A a, B b WHERE b.{} = {} AND a.{} = b.{}",
            col(rng),
            num_lit(rng),
            col(rng),
            col(rng)
        ),
        // Three-way chain: each later item hashes against an earlier one.
        _ => format!(
            "SELECT a.s, b.n, c.s FROM A a, B b, C c WHERE a.{} = b.{} AND b.{} = c.{}",
            col(rng),
            col(rng),
            col(rng),
            col(rng)
        ),
    }
}

#[test]
fn hash_join_agrees_with_nested_loop() {
    let mut total_builds = 0u64;
    for case in 0..200u64 {
        let mut rng = Prng::seed_from_u64(0x4A5B + case);
        let mut hashed = setup(&mut rng);
        let mut looped = hashed.clone();
        looped.set_hash_joins(false);

        for _ in 0..4 {
            let sql = random_query(&mut rng);
            let before = hashed.stats();
            let via_hash = hashed.query(&sql).unwrap();
            total_builds += hashed.stats().since(&before).hash_join_builds;
            let via_loop = looped.query(&sql).unwrap();
            // Bucket candidates keep the build side's row order, so the two
            // strategies agree on the exact row sequence, not just the
            // multiset.
            assert_eq!(via_hash, via_loop, "case {case}: {sql}");
        }
    }
    // The generator must actually have exercised the fast path.
    assert!(total_builds > 0, "no query ever took the hash path");
}

/// The nested-loop toggle itself: the same query flips the counters.
#[test]
fn set_hash_joins_controls_the_strategy() {
    let mut rng = Prng::seed_from_u64(9);
    let mut db = setup(&mut rng);
    let before = db.stats();
    db.query("SELECT a.s FROM A a, B b WHERE a.n = b.n").unwrap();
    let delta = db.stats().since(&before);
    assert_eq!(delta.hash_join_builds, 1);
    assert!(delta.hash_join_probes > 0);

    db.set_hash_joins(false);
    let before = db.stats();
    db.query("SELECT a.s FROM A a, B b WHERE a.n = b.n").unwrap();
    let delta = db.stats().since(&before);
    assert_eq!(delta.hash_join_builds, 0);
    assert_eq!(delta.hash_join_probes, 0);
}

//! The §4.3 CHECK quirk, end to end: a CHECK constraint over an attribute
//! of a *nullable* object column executes fine in both modes and rejects
//! rows whose attribute is definitely wrong — but a row whose whole object
//! column is NULL makes the condition UNKNOWN, and UNKNOWN passes, so the
//! row slips in silently. The static analyzer flags exactly this gap as the
//! `check-null-object` warning, with a line/column anchored at the CHECK.

use xmlord_ordb::{Database, DbError, DbMode, Severity};

const SCRIPT: &str = "\
CREATE TYPE Type_Address AS OBJECT (attrStreet VARCHAR(40), attrCity VARCHAR(40));
CREATE TYPE Type_Course AS OBJECT (attrName VARCHAR(40), attrAddress Type_Address);
CREATE TABLE TabCourse OF Type_Course (CHECK (attrAddress.attrCity = 'Leipzig'));";

#[test]
fn null_object_row_slips_past_the_check_in_both_modes() {
    for mode in [DbMode::Oracle8, DbMode::Oracle9] {
        let mut db = Database::new(mode);
        db.set_analyze(true);
        db.execute_script(SCRIPT).unwrap();

        // A definitely-wrong city is rejected — the CHECK works as written …
        let err = db
            .execute(
                "INSERT INTO TabCourse VALUES \
                 (Type_Course('CAD', Type_Address('Main St', 'Dresden')))",
            )
            .unwrap_err();
        assert!(matches!(err, DbError::CheckViolation { .. }), "{mode:?}: {err}");

        // … but a NULL address makes the condition UNKNOWN, which passes:
        // the fixture row the constraint author thought impossible.
        db.execute("INSERT INTO TabCourse VALUES (Type_Course('DBS', NULL))").unwrap();
        assert_eq!(db.row_count("TabCourse"), 1, "{mode:?}: NULL row should have slipped past");

        // The inline analyzer saw the quirk (warning, never an error).
        assert!(db.stats().analyzer_warnings >= 1, "{mode:?}");
        assert_eq!(db.stats().analyzer_errors, 0, "{mode:?}");
    }
}

#[test]
fn analyzer_pins_the_quirk_to_the_check_keyword() {
    let db = Database::new(DbMode::Oracle9);
    let diags = db.check(SCRIPT).unwrap();
    let quirk: Vec<_> = diags.iter().filter(|d| d.code == "check-null-object").collect();
    assert_eq!(quirk.len(), 1, "{diags:?}");
    assert_eq!(quirk[0].severity, Severity::Warning);
    // Line 3, column of the CHECK keyword inside the table definition.
    assert_eq!(quirk[0].line_col(SCRIPT), (3, 40));
    let rendered = quirk[0].render(SCRIPT, "mapping.sql");
    assert!(rendered.contains("--> mapping.sql:3:40"), "{rendered}");
    assert!(rendered.contains("CREATE TABLE TabCourse"), "{rendered}");
    assert!(rendered.contains("^^^^^"), "{rendered}");
}

#[test]
fn not_null_on_the_object_column_silences_the_quirk() {
    let script = format!(
        "{}\n{}",
        &SCRIPT[..SCRIPT.rfind("CREATE TABLE").unwrap()],
        "CREATE TABLE TabCourse OF Type_Course \
         (attrAddress NOT NULL, CHECK (attrAddress.attrCity = 'Leipzig'));"
    );
    let db = Database::new(DbMode::Oracle9);
    let diags = db.check(&script).unwrap();
    assert!(
        !diags.iter().any(|d| d.code == "check-null-object"),
        "NOT NULL closes the gap, no warning expected: {diags:?}"
    );
}

//! Engine compatibility modes.
//!
//! The paper evaluates its mapping on both Oracle 8i and Oracle 9i and its
//! §4.2 algorithm *branches* on which one is available: 9i's arbitrarily
//! nestable collection types enable the natural nested-VARRAY mapping, while
//! 8i's restriction forces the REF-plus-synthetic-ID workaround. The mode
//! enum makes that restriction a first-class engine property so the mapping
//! layer and the E10 ablation benchmark can switch it.

use std::fmt;

/// Which Oracle release the engine emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DbMode {
    /// Oracle 8i semantics: a collection's element type "must not be another
    /// collection type (array or nested table) or a large object type"
    /// (§2.2). Matches SQL:1999, which "excludes the nesting of arrays".
    Oracle8,
    /// Oracle 9i semantics: "eliminates this restriction and accepts any
    /// element type in a collection" (§2.2).
    Oracle9,
}

impl DbMode {
    /// May a collection type's element be another collection or a LOB?
    pub fn allows_nested_collections(self) -> bool {
        matches!(self, DbMode::Oracle9)
    }
}

impl fmt::Display for DbMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbMode::Oracle8 => write!(f, "Oracle8"),
            DbMode::Oracle9 => write!(f, "Oracle9"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_oracle9_nests_collections() {
        assert!(!DbMode::Oracle8.allows_nested_collections());
        assert!(DbMode::Oracle9.allows_nested_collections());
    }
}

//! Runtime values: scalars, object instances, collections and REFs.

use std::fmt;

use crate::ident::Ident;

/// Object identifier of a row object (§2.3: "Oracle supports the concept of
/// object identifiers that are managed for row objects"). Globally unique
/// within one [`crate::Database`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid(pub u64);

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OID#{}", self.0)
    }
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Str(String),
    Num(f64),
    /// DATE values carried as ISO-8601 strings (sufficient for the paper's
    /// meta-table `Date` column).
    Date(String),
    /// An instance of an object type: type name + attribute values in
    /// declaration order.
    Obj { type_name: Ident, attrs: Vec<Value> },
    /// An instance of a collection type (VARRAY or nested table).
    Coll { type_name: Ident, elements: Vec<Value> },
    /// Reference to a row object.
    Ref(Oid),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn str(s: &str) -> Value {
        Value::Str(s.to_string())
    }

    /// String content, if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) | Value::Date(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content, coercing numeric-looking strings like SQL does.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            Value::Str(s) => s.trim().parse().ok(),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<(&Ident, &[Value])> {
        match self {
            Value::Obj { type_name, attrs } => Some((type_name, attrs)),
            _ => None,
        }
    }

    pub fn as_coll(&self) -> Option<(&Ident, &[Value])> {
        match self {
            Value::Coll { type_name, elements } => Some((type_name, elements)),
            _ => None,
        }
    }

    /// SQL equality: NULL compares equal to nothing (three-valued logic is
    /// applied by the expression evaluator; this is the TRUE case only).
    /// Numeric comparison applies string→number coercion on mixed operands.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Num(_), _) | (_, Value::Num(_)) => {
                match (self.as_num(), other.as_num()) {
                    (Some(a), Some(b)) => Some(a == b),
                    _ => Some(false),
                }
            }
            (Value::Str(a), Value::Str(b)) => Some(a == b),
            (Value::Date(a), Value::Date(b)) => Some(a == b),
            (Value::Ref(a), Value::Ref(b)) => Some(a == b),
            (a, b) => Some(a == b),
        }
    }

    /// SQL ordering comparison; `None` when either side is NULL or the
    /// values are not comparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<std::cmp::Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Num(_), _) | (_, Value::Num(_)) => {
                let (a, b) = (self.as_num()?, other.as_num()?);
                a.partial_cmp(&b)
            }
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Date(a), Value::Date(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// The bucket this value hashes into for equi-joins, or `None` when
    /// the value cannot be hashed (NULL never matches anything; objects and
    /// collections compare structurally and fall back to the nested loop).
    ///
    /// The key respects [`Value::sql_eq`]'s numeric coercion: any value
    /// that *parses* as a number buckets by its numeric value, so
    /// `Num(4)`, `Str("4")` and `Str("04")` land together. `sql_eq` is not
    /// transitive across those (`'04' = 4` but `'04' <> '4'`), so the hash
    /// is a prefilter only — probers must re-verify candidates with the
    /// real predicate. The guarantee this key gives is *no false
    /// negatives*: `sql_eq(a, b) == Some(true)` implies equal keys.
    pub fn join_key(&self) -> Option<JoinKey> {
        match self {
            Value::Null => None,
            Value::Num(n) => Some(JoinKey::Num(canonical_num_bits(*n))),
            Value::Str(s) => match self.as_num() {
                Some(n) => Some(JoinKey::Num(canonical_num_bits(n))),
                None => Some(JoinKey::Str(s.clone())),
            },
            Value::Date(s) => Some(JoinKey::Date(s.clone())),
            Value::Ref(oid) => Some(JoinKey::Ref(oid.0)),
            Value::Obj { .. } | Value::Coll { .. } => None,
        }
    }

    /// Feed this value's [`Value::join_key`] identity into `h` without
    /// materializing the key (no clone, no allocation); returns `false`
    /// when the value has no join key (NULL / object / collection). Kept
    /// in sync with `join_key` — equal join keys must produce equal hash
    /// input, variant by variant.
    pub fn hash_join_key<H: std::hash::Hasher>(&self, h: &mut H) -> bool {
        match self {
            Value::Null => false,
            Value::Num(n) => {
                h.write_u8(0);
                h.write_u64(canonical_num_bits(*n));
                true
            }
            Value::Str(s) => {
                match self.as_num() {
                    Some(n) => {
                        h.write_u8(0);
                        h.write_u64(canonical_num_bits(n));
                    }
                    None => {
                        h.write_u8(1);
                        h.write(s.as_bytes());
                    }
                }
                true
            }
            Value::Date(s) => {
                h.write_u8(2);
                h.write(s.as_bytes());
                true
            }
            Value::Ref(oid) => {
                h.write_u8(3);
                h.write_u64(oid.0);
                true
            }
            Value::Obj { .. } | Value::Coll { .. } => false,
        }
    }

    /// Render as a SQL literal (for script/debug output).
    pub fn to_sql_literal(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
            Value::Num(n) => num_sql_literal(*n),
            Value::Date(s) => format!("DATE '{s}'"),
            Value::Obj { type_name, attrs } => {
                let inner: Vec<String> = attrs.iter().map(Value::to_sql_literal).collect();
                format!("{type_name}({})", inner.join(", "))
            }
            Value::Coll { type_name, elements } => {
                let inner: Vec<String> = elements.iter().map(Value::to_sql_literal).collect();
                format!("{type_name}({})", inner.join(", "))
            }
            Value::Ref(oid) => format!("{oid}"),
        }
    }
}

/// Hashable equality bucket for equi-join keys — see [`Value::join_key`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum JoinKey {
    Num(u64),
    Str(String),
    Date(String),
    Ref(u64),
}

/// Render an f64 as a SQL numeric literal the lexer reads back to an
/// `sql_eq`-equal value. The default float formatting would print `inf` /
/// `NaN`, which lex as identifiers and corrupt re-generated scripts (a
/// NUMBER column can overflow to infinity when a load script carries a
/// digit string beyond f64 range). Infinities print as an overflowing
/// digit literal that parses straight back to the same infinity; NaN — not
/// producible by the lexer at all — degrades to `NULL`.
fn num_sql_literal(n: f64) -> String {
    if n.is_nan() {
        return "NULL".to_string();
    }
    if n.is_infinite() {
        // 1 followed by 309 zeros overflows f64 (max ~1.8e308).
        let digits = format!("1{}", "0".repeat(309));
        return if n < 0.0 { format!("-{digits}") } else { digits };
    }
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Bit pattern of a float with `-0.0` folded into `0.0` so both hash alike.
fn canonical_num_bits(n: f64) -> u64 {
    if n == 0.0 {
        0f64.to_bits()
    } else {
        n.to_bits()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `pad` honours width/alignment flags, so values line up in the
        // table output of examples and the experiments binary.
        match self {
            Value::Null => f.pad("NULL"),
            Value::Str(s) | Value::Date(s) => f.pad(s),
            Value::Num(n) => f.pad(&num_sql_literal(*n)),
            other => f.pad(&other.to_sql_literal()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(s: &str) -> Ident {
        Ident::new(s).unwrap()
    }

    #[test]
    fn null_equality_is_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::str("x")), None);
        assert_eq!(Value::str("x").sql_eq(&Value::Null), None);
        assert_eq!(Value::str("x").sql_eq(&Value::str("x")), Some(true));
        assert_eq!(Value::str("x").sql_eq(&Value::str("y")), Some(false));
    }

    #[test]
    fn numeric_coercion_in_comparisons() {
        assert_eq!(Value::Num(4.0).sql_eq(&Value::str("4")), Some(true));
        assert_eq!(Value::str("4").sql_eq(&Value::Num(4.0)), Some(true));
        assert_eq!(Value::str("abc").sql_eq(&Value::Num(4.0)), Some(false));
        assert_eq!(
            Value::Num(3.0).sql_cmp(&Value::str("10")),
            Some(std::cmp::Ordering::Less)
        );
    }

    #[test]
    fn string_comparison_is_lexical() {
        assert_eq!(Value::str("abc").sql_cmp(&Value::str("abd")), Some(std::cmp::Ordering::Less));
    }

    #[test]
    fn sql_literal_escapes_quotes() {
        assert_eq!(Value::str("O'Hara").to_sql_literal(), "'O''Hara'");
    }

    #[test]
    fn object_literal_renders_constructor_syntax() {
        let v = Value::Obj {
            type_name: id("Type_Professor"),
            attrs: vec![Value::str("Jaeger"), Value::str("CAD")],
        };
        assert_eq!(v.to_sql_literal(), "Type_Professor('Jaeger', 'CAD')");
    }

    #[test]
    fn whole_numbers_render_without_fraction() {
        assert_eq!(Value::Num(4.0).to_string(), "4");
        assert_eq!(Value::Num(4.5).to_string(), "4.5");
    }

    #[test]
    fn as_num_parses_strings() {
        assert_eq!(Value::str(" 42 ").as_num(), Some(42.0));
        assert_eq!(Value::str("x").as_num(), None);
        assert_eq!(Value::Null.as_num(), None);
    }

    /// `sql_eq == Some(true)` must imply equal join keys (no false
    /// negatives in the hash-join prefilter).
    #[test]
    fn join_keys_never_split_sql_equal_values() {
        let equal_pairs = [
            (Value::Num(4.0), Value::str("4")),
            (Value::str("04"), Value::Num(4.0)),
            (Value::str("x"), Value::str("x")),
            (Value::Num(0.0), Value::Num(-0.0)),
            (Value::Date("2002-01-01".into()), Value::Date("2002-01-01".into())),
            (Value::Ref(Oid(7)), Value::Ref(Oid(7))),
        ];
        for (a, b) in equal_pairs {
            assert_eq!(a.sql_eq(&b), Some(true), "{a:?} vs {b:?}");
            assert_eq!(a.join_key(), b.join_key(), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn null_and_composites_have_no_join_key() {
        assert_eq!(Value::Null.join_key(), None);
        let obj = Value::Obj { type_name: id("T"), attrs: vec![] };
        assert_eq!(obj.join_key(), None);
        let coll = Value::Coll { type_name: id("T"), elements: vec![] };
        assert_eq!(coll.join_key(), None);
    }
}

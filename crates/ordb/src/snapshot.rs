//! Snapshot files: a canonical, checksummed image of [`Catalog`] +
//! [`Storage`] taken at a commit point.
//!
//! A snapshot bounds recovery time — on open, the engine restores the
//! latest snapshot and replays only the WAL entries past the snapshot's
//! recorded sequence number, instead of the whole log from genesis.
//!
//! ## Canonical encoding
//!
//! The encoding is *byte-reproducible*: equivalent database states encode
//! to identical bytes. Every map travels in `BTreeMap` (name) order, rows
//! in heap order, floats as raw bits. Two structures are deliberately NOT
//! serialized and are rebuilt deterministically on restore:
//!
//! * the OID directory — derived from the heaps by
//!   [`Storage::from_parts`], which also re-proves the directory invariant
//!   on hostile input instead of trusting serialized slots;
//! * secondary-index buckets (`HashMap`s with nondeterministic iteration
//!   order) — rebuilt from catalog [`IndexDef`]s over the restored heaps.
//!
//! ## Format
//!
//! ```text
//! file    := magic[8] crc[u32 le] payload
//! magic   := b"XORDSNP\x01"
//! payload := mode[1] last_seq[u64] next_oid[u64]
//!            types tables views indexes stats heaps
//! ```
//!
//! The CRC covers the whole payload; a torn or corrupted snapshot fails the
//! checksum and recovery reports [`DbError::CorruptDurableState`] rather
//! than loading half a database. Files are written to a temp name, fsynced,
//! then atomically renamed — a crash mid-write leaves the previous snapshot
//! intact.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

use crate::catalog::{
    Catalog, ColumnDef, Constraint, IndexDef, TableDef, TableStats, TypeDef, ViewDef,
};
use crate::error::DbError;
use crate::ident::Ident;
use crate::mode::DbMode;
use crate::storage::{Row, Storage, TableData};
use crate::value::Oid;
use crate::wal::{self, crc32};

/// Snapshot file magic: "XORDSNP" + format version 1.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"XORDSNP\x01";

fn corrupt(msg: impl Into<String>) -> DbError {
    DbError::CorruptDurableState(msg.into())
}

fn io_err(context: &str, e: std::io::Error) -> DbError {
    DbError::Io(format!("{context}: {e}"))
}

// ---------------------------------------------------------------------------
// Catalog-definition codec (builds on the WAL's AST codec)
// ---------------------------------------------------------------------------

fn encode_type_def(e: &mut wal::Enc, def: &TypeDef) {
    match def {
        TypeDef::Object { name, attrs, incomplete } => {
            e.u8(0);
            e.ident(name);
            e.bool(*incomplete);
            e.u32(attrs.len() as u32);
            for (a, t) in attrs {
                e.ident(a);
                wal::encode_sql_type(e, t);
            }
        }
        TypeDef::Varray { name, elem, max } => {
            e.u8(1);
            e.ident(name);
            e.u32(*max);
            wal::encode_sql_type(e, elem);
        }
        TypeDef::NestedTable { name, elem } => {
            e.u8(2);
            e.ident(name);
            wal::encode_sql_type(e, elem);
        }
    }
}

fn decode_type_def(d: &mut wal::Dec) -> Result<TypeDef, DbError> {
    match d.u8()? {
        0 => {
            let name = d.ident()?;
            let incomplete = d.bool()?;
            let n = d.len()?;
            let mut attrs = Vec::with_capacity(n);
            for _ in 0..n {
                let a = d.ident()?;
                let t = wal::decode_sql_type(d)?;
                attrs.push((a, t));
            }
            Ok(TypeDef::Object { name, attrs, incomplete })
        }
        1 => {
            let name = d.ident()?;
            let max = d.u32()?;
            let elem = wal::decode_sql_type(d)?;
            Ok(TypeDef::Varray { name, elem, max })
        }
        2 => {
            let name = d.ident()?;
            let elem = wal::decode_sql_type(d)?;
            Ok(TypeDef::NestedTable { name, elem })
        }
        t => Err(corrupt(format!("invalid TypeDef tag {t}"))),
    }
}

fn encode_constraints(e: &mut wal::Enc, cs: &[Constraint]) {
    e.u32(cs.len() as u32);
    for c in cs {
        match c {
            Constraint::PrimaryKey(cols) => {
                e.u8(0);
                encode_ident_list(e, cols);
            }
            Constraint::NotNull(col) => {
                e.u8(1);
                e.ident(col);
            }
            Constraint::Check(x) => {
                e.u8(2);
                wal::encode_expr(e, x);
            }
            Constraint::Unique(cols) => {
                e.u8(3);
                encode_ident_list(e, cols);
            }
        }
    }
}

fn decode_constraints(d: &mut wal::Dec) -> Result<Vec<Constraint>, DbError> {
    let n = d.len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(match d.u8()? {
            0 => Constraint::PrimaryKey(decode_ident_list(d)?),
            1 => Constraint::NotNull(d.ident()?),
            2 => Constraint::Check(wal::decode_expr(d, 0)?),
            3 => Constraint::Unique(decode_ident_list(d)?),
            t => return Err(corrupt(format!("invalid Constraint tag {t}"))),
        });
    }
    Ok(out)
}

fn encode_ident_list(e: &mut wal::Enc, ids: &[Ident]) {
    e.u32(ids.len() as u32);
    for id in ids {
        e.ident(id);
    }
}

fn decode_ident_list(d: &mut wal::Dec) -> Result<Vec<Ident>, DbError> {
    let n = d.len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(d.ident()?);
    }
    Ok(out)
}

fn encode_table_def(e: &mut wal::Enc, def: &TableDef) {
    match def {
        TableDef::Object { name, of_type, constraints } => {
            e.u8(0);
            e.ident(name);
            e.ident(of_type);
            encode_constraints(e, constraints);
        }
        TableDef::Relational { name, columns, constraints, nested_table_stores } => {
            e.u8(1);
            e.ident(name);
            e.u32(columns.len() as u32);
            for c in columns {
                e.ident(&c.name);
                wal::encode_sql_type(e, &c.sql_type);
            }
            encode_constraints(e, constraints);
            e.u32(nested_table_stores.len() as u32);
            for (col, store) in nested_table_stores {
                e.ident(col);
                e.ident(store);
            }
        }
    }
}

fn decode_table_def(d: &mut wal::Dec) -> Result<TableDef, DbError> {
    match d.u8()? {
        0 => {
            let name = d.ident()?;
            let of_type = d.ident()?;
            let constraints = decode_constraints(d)?;
            Ok(TableDef::Object { name, of_type, constraints })
        }
        1 => {
            let name = d.ident()?;
            let n = d.len()?;
            let mut columns = Vec::with_capacity(n);
            for _ in 0..n {
                let cname = d.ident()?;
                let sql_type = wal::decode_sql_type(d)?;
                columns.push(ColumnDef { name: cname, sql_type });
            }
            let constraints = decode_constraints(d)?;
            let n = d.len()?;
            let mut nested_table_stores = Vec::with_capacity(n);
            for _ in 0..n {
                let col = d.ident()?;
                let store = d.ident()?;
                nested_table_stores.push((col, store));
            }
            Ok(TableDef::Relational { name, columns, constraints, nested_table_stores })
        }
        t => Err(corrupt(format!("invalid TableDef tag {t}"))),
    }
}

// ---------------------------------------------------------------------------
// Whole-database encode / decode
// ---------------------------------------------------------------------------

/// Decoded contents of a snapshot file.
#[derive(Debug)]
pub struct SnapshotData {
    pub mode: DbMode,
    /// WAL sequence number of the last entry folded into this snapshot;
    /// recovery replays only entries strictly above it.
    pub last_seq: u64,
    pub catalog: Catalog,
    pub storage: Storage,
}

/// Encode the full database image (checksummed, magic-prefixed — ready to
/// write to disk).
pub fn encode_snapshot(
    mode: DbMode,
    last_seq: u64,
    catalog: &Catalog,
    storage: &Storage,
) -> Vec<u8> {
    let mut e = wal::Enc::new();
    e.u8(match mode {
        DbMode::Oracle8 => 0,
        DbMode::Oracle9 => 1,
    });
    e.u64(last_seq);
    e.u64(storage.next_oid());

    let (types, tables, views, indexes, stats) = catalog.snapshot_parts();
    e.u32(types.len() as u32);
    for def in types.values() {
        encode_type_def(&mut e, def);
    }
    e.u32(tables.len() as u32);
    for def in tables.values() {
        encode_table_def(&mut e, def);
    }
    e.u32(views.len() as u32);
    for def in views.values() {
        e.ident(&def.name);
        wal::encode_select(&mut e, &def.query);
    }
    e.u32(indexes.len() as u32);
    for def in indexes.values() {
        e.ident(&def.name);
        e.ident(&def.table);
        encode_ident_list(&mut e, &def.columns);
        e.bool(def.unique);
    }
    e.u32(stats.len() as u32);
    for (table, st) in stats {
        e.ident(table);
        e.u64(st.rows);
        e.u32(st.distinct.len() as u32);
        for (col, ndv) in &st.distinct {
            e.ident(col);
            e.u64(*ndv);
        }
    }

    let heaps: Vec<_> = storage.heaps().collect();
    e.u32(heaps.len() as u32);
    for (name, data) in heaps {
        e.ident(name);
        e.u32(data.rows.len() as u32);
        for row in &data.rows {
            match row.oid {
                None => e.u8(0),
                Some(Oid(o)) => {
                    e.u8(1);
                    e.u64(o);
                }
            }
            e.u32(row.values.len() as u32);
            for v in &row.values {
                wal::encode_value(&mut e, v);
            }
        }
    }

    let payload = e.out;
    let mut file = Vec::with_capacity(12 + payload.len());
    file.extend_from_slice(&SNAPSHOT_MAGIC);
    file.extend_from_slice(&crc32(&payload).to_le_bytes());
    file.extend_from_slice(&payload);
    file
}

/// Decode and validate a snapshot image. All failure modes — wrong magic,
/// checksum mismatch, undecodable payload, invariant-violating contents —
/// are typed errors; hostile bytes can never panic this path.
pub fn decode_snapshot(bytes: &[u8]) -> Result<SnapshotData, DbError> {
    if bytes.len() < 12 {
        return Err(corrupt(format!("snapshot too short: {} bytes", bytes.len())));
    }
    if bytes[..8] != SNAPSHOT_MAGIC {
        return Err(corrupt("snapshot file has wrong magic bytes"));
    }
    let crc = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    let payload = &bytes[12..];
    if crc32(payload) != crc {
        return Err(corrupt("snapshot checksum mismatch"));
    }
    let mut d = wal::Dec::new(payload);
    let mode = match d.u8()? {
        0 => DbMode::Oracle8,
        1 => DbMode::Oracle9,
        t => return Err(corrupt(format!("invalid mode byte {t} in snapshot"))),
    };
    let last_seq = d.u64()?;
    let next_oid = d.u64()?;

    let mut types = BTreeMap::new();
    for _ in 0..d.len()? {
        let def = decode_type_def(&mut d)?;
        types.insert(def.name().clone(), def);
    }
    let mut tables = BTreeMap::new();
    for _ in 0..d.len()? {
        let def = decode_table_def(&mut d)?;
        tables.insert(def.name().clone(), def);
    }
    let mut views = BTreeMap::new();
    for _ in 0..d.len()? {
        let name = d.ident()?;
        let query = wal::decode_select(&mut d, 0)?;
        views.insert(name.clone(), ViewDef { name, query });
    }
    let mut indexes = BTreeMap::new();
    for _ in 0..d.len()? {
        let name = d.ident()?;
        let table = d.ident()?;
        let columns = decode_ident_list(&mut d)?;
        let unique = d.bool()?;
        indexes.insert(name.clone(), IndexDef { name, table, columns, unique });
    }
    let mut stats = BTreeMap::new();
    for _ in 0..d.len()? {
        let table = d.ident()?;
        let rows = d.u64()?;
        let mut distinct = BTreeMap::new();
        for _ in 0..d.len()? {
            let col = d.ident()?;
            let ndv = d.u64()?;
            distinct.insert(col, ndv);
        }
        stats.insert(table, TableStats { rows, distinct });
    }

    let mut heaps = BTreeMap::new();
    for _ in 0..d.len()? {
        let name = d.ident()?;
        let row_count = d.len()?;
        let mut data = TableData::default();
        data.rows.reserve(row_count);
        for _ in 0..row_count {
            let oid = match d.u8()? {
                0 => None,
                1 => Some(Oid(d.u64()?)),
                t => return Err(corrupt(format!("invalid Option tag {t}"))),
            };
            let n = d.len()?;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(wal::decode_value(&mut d, 0)?);
            }
            data.rows.push(Row { oid, values });
        }
        heaps.insert(name, data);
    }
    if !d.is_empty() {
        return Err(corrupt(format!("{} trailing bytes after snapshot", d.remaining())));
    }

    let catalog = Catalog::from_parts(types, tables, views, indexes, stats);
    let storage = Storage::from_parts(heaps, next_oid)?;
    Ok(SnapshotData { mode, last_seq, catalog, storage })
}

// ---------------------------------------------------------------------------
// File I/O
// ---------------------------------------------------------------------------

/// Write `bytes` to `dir/name` atomically: temp file, fsync, rename, then
/// fsync the directory so the rename itself is durable. A crash at any
/// point leaves either the old file or the new one — never a mix.
pub fn write_atomic(dir: &Path, name: &str, bytes: &[u8]) -> Result<(), DbError> {
    let tmp = dir.join(format!("{name}.tmp"));
    let dst = dir.join(name);
    let mut f = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)
        .map_err(|e| io_err("create snapshot temp file", e))?;
    f.write_all(bytes).map_err(|e| io_err("write snapshot", e))?;
    f.sync_all().map_err(|e| io_err("fsync snapshot", e))?;
    drop(f);
    std::fs::rename(&tmp, &dst).map_err(|e| io_err("rename snapshot into place", e))?;
    if let Ok(d) = File::open(dir) {
        // Directory fsync can fail on exotic filesystems; the rename is
        // already visible, so best-effort is acceptable here.
        let _ = d.sync_all();
    }
    Ok(())
}

/// Read a snapshot file fully; `Ok(None)` when it does not exist (fresh
/// database or WAL-only recovery).
pub fn read_snapshot_file(path: &Path) -> Result<Option<Vec<u8>>, DbError> {
    match File::open(path) {
        Ok(mut f) => {
            let mut buf = Vec::new();
            f.read_to_end(&mut buf).map_err(|e| io_err("read snapshot", e))?;
            Ok(Some(buf))
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(io_err("open snapshot", e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn id(s: &str) -> Ident {
        Ident::new(s).unwrap()
    }

    fn sample_state() -> (Catalog, Storage) {
        let mut cat = Catalog::new();
        cat.create_type(
            TypeDef::Object {
                name: id("T"),
                attrs: vec![(id("A"), crate::types::SqlType::Varchar(10))],
                incomplete: false,
            },
            DbMode::Oracle9,
        )
        .unwrap();
        cat.create_table(TableDef::Object {
            name: id("Tab"),
            of_type: id("T"),
            constraints: vec![Constraint::PrimaryKey(vec![id("A")])],
        })
        .unwrap();
        cat.create_index(IndexDef {
            name: id("Ix"),
            table: id("Tab"),
            columns: vec![id("A")],
            unique: true,
        })
        .unwrap();
        cat.set_table_stats(
            id("Tab"),
            TableStats { rows: 2, distinct: [(id("A"), 2u64)].into_iter().collect() },
        );
        cat.commit();
        let mut st = Storage::new();
        st.create_table(id("Tab"));
        st.insert_row(&id("Tab"), vec![Value::str("x")], true).unwrap();
        st.insert_row(&id("Tab"), vec![Value::Num(0.1 + 0.2)], true).unwrap();
        st.commit();
        (cat, st)
    }

    #[test]
    fn snapshot_roundtrips_catalog_and_storage() {
        let (cat, st) = sample_state();
        let bytes = encode_snapshot(DbMode::Oracle9, 7, &cat, &st);
        let snap = decode_snapshot(&bytes).unwrap();
        assert_eq!(snap.mode, DbMode::Oracle9);
        assert_eq!(snap.last_seq, 7);
        assert_eq!(snap.catalog.state_dump(), cat.state_dump());
        assert_eq!(snap.storage.state_dump(), st.state_dump());
        assert_eq!(snap.catalog.index_count(), 1);
        assert_eq!(snap.catalog.table_stats(&id("Tab")).unwrap().rows, 2);
        snap.storage.check_oid_directory().unwrap();
    }

    #[test]
    fn snapshot_encoding_is_byte_reproducible() {
        // Two independently-built equivalent states must encode identically
        // (the determinism regression the differential gates rely on).
        let (cat_a, st_a) = sample_state();
        let (cat_b, st_b) = sample_state();
        let a = encode_snapshot(DbMode::Oracle9, 3, &cat_a, &st_a);
        let b = encode_snapshot(DbMode::Oracle9, 3, &cat_b, &st_b);
        assert_eq!(a, b);
    }

    #[test]
    fn corrupted_snapshots_are_rejected_not_misread() {
        let (cat, st) = sample_state();
        let good = encode_snapshot(DbMode::Oracle8, 1, &cat, &st);
        // Flip each byte in turn: decode must fail cleanly or (for the
        // checksum's own bytes) still never panic.
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x5A;
            assert!(decode_snapshot(&bad).is_err(), "flip at {i} must be rejected");
        }
        // Truncations at every length.
        for cut in 0..good.len() {
            assert!(decode_snapshot(&good[..cut]).is_err(), "truncation at {cut}");
        }
    }

    #[test]
    fn hostile_duplicate_oids_are_rejected() {
        let mut heaps = BTreeMap::new();
        let mut data = TableData::default();
        data.rows.push(Row { oid: Some(Oid(1)), values: vec![] });
        data.rows.push(Row { oid: Some(Oid(1)), values: vec![] });
        heaps.insert(id("T"), data);
        assert!(matches!(
            Storage::from_parts(heaps, 5),
            Err(DbError::CorruptDurableState(_))
        ));
        // And OIDs beyond the allocator position.
        let mut heaps = BTreeMap::new();
        let mut data = TableData::default();
        data.rows.push(Row { oid: Some(Oid(9)), values: vec![] });
        heaps.insert(id("T"), data);
        assert!(matches!(
            Storage::from_parts(heaps, 5),
            Err(DbError::CorruptDurableState(_))
        ));
    }

    #[test]
    fn atomic_write_and_read_back() {
        let dir = std::env::temp_dir().join(format!(
            "xmlord-snap-unit-{}-{}",
            std::process::id(),
            line!()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let (cat, st) = sample_state();
        let bytes = encode_snapshot(DbMode::Oracle9, 2, &cat, &st);
        write_atomic(&dir, "snapshot.db", &bytes).unwrap();
        let back = read_snapshot_file(&dir.join("snapshot.db")).unwrap().unwrap();
        assert_eq!(back, bytes);
        assert!(read_snapshot_file(&dir.join("missing.db")).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}

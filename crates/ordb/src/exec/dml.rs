//! INSERT and DELETE execution, including constraint enforcement.
//!
//! Constraint semantics follow §4.3 of the paper exactly: NOT NULL and
//! CHECK constraints live on *tables* (never on type definitions), and a
//! CHECK over an inner attribute of a NULL object attribute evaluates to
//! FALSE and rejects the row — the paper's "non-desired error message".

use std::collections::HashMap;

use crate::catalog::{Catalog, Constraint, TableDef};
use crate::error::DbError;
use crate::exec::eval::{coerce, eval_bool, eval_expr, ExecCtx};
use crate::exec::{Env, Frame};
use crate::ident::Ident;
use crate::mode::DbMode;
use crate::sql::ast::{Expr, SelectStmt};
use crate::stats::ExecStats;
use crate::storage::Storage;
use crate::value::Value;

/// Execute `INSERT INTO table [cols] VALUES (exprs)`.
pub fn execute_insert(
    catalog: &Catalog,
    storage: &mut Storage,
    stats: &mut ExecStats,
    mode: DbMode,
    table_name: &Ident,
    columns: &Option<Vec<Ident>>,
    value_exprs: &[Expr],
) -> Result<(), DbError> {
    let table = catalog
        .get_table(table_name)
        .ok_or_else(|| DbError::UnknownTable(table_name.as_str().to_string()))?
        .clone();
    let table_columns = catalog.table_columns(&table);

    // Evaluate the VALUES expressions (read-only phase: subqueries may scan).
    let mut provided = Vec::with_capacity(value_exprs.len());
    {
        let mut ctx = ExecCtx { catalog, storage, stats, mode, hash_joins: true, cost_planner: true };
        for expr in value_exprs {
            provided.push(eval_expr(&mut ctx, &Env::EMPTY, expr)?);
        }
    }

    let row_values = shape_row(table_name, &table, &table_columns, columns, provided)?;
    finish_insert(catalog, storage, stats, table_name, &table, &table_columns, row_values, mode)
}

/// Map the evaluated VALUES onto the table's full column list. Object
/// tables accept `VALUES (Type_T(...))` — one constructor for the whole row
/// object (the form §2.1's examples use) — which is exploded into the
/// attribute values; otherwise values are matched positionally or through
/// the explicit column list.
fn shape_row(
    table_name: &Ident,
    table: &TableDef,
    table_columns: &[(Ident, crate::types::SqlType)],
    columns: &Option<Vec<Ident>>,
    provided: Vec<Value>,
) -> Result<Vec<Value>, DbError> {
    if columns.is_none() && provided.len() == 1 {
        if let TableDef::Object { of_type, .. } = table {
            if let Value::Obj { type_name, attrs } = &provided[0] {
                if type_name == of_type {
                    return Ok(attrs.clone());
                }
            }
        }
    }

    let mut row_values: Vec<Value> = vec![Value::Null; table_columns.len()];
    match columns {
        Some(cols) => {
            if cols.len() != provided.len() {
                return Err(DbError::Execution(format!(
                    "INSERT column list has {} names but {} values",
                    cols.len(),
                    provided.len()
                )));
            }
            for (col, value) in cols.iter().zip(provided) {
                let idx = table_columns
                    .iter()
                    .position(|(name, _)| name == col)
                    .ok_or_else(|| DbError::UnknownColumn(col.as_str().to_string()))?;
                row_values[idx] = value;
            }
        }
        None => {
            if provided.len() != table_columns.len() {
                return Err(DbError::Execution(format!(
                    "table {} has {} columns but {} values were supplied",
                    table_name.as_str(),
                    table_columns.len(),
                    provided.len()
                )));
            }
            row_values = provided;
        }
    }
    Ok(row_values)
}

/// Shared tail of INSERT: coercion, constraint checks, materialization.
#[allow(clippy::too_many_arguments)]
fn finish_insert(
    catalog: &Catalog,
    storage: &mut Storage,
    stats: &mut ExecStats,
    table_name: &Ident,
    table: &TableDef,
    table_columns: &[(Ident, crate::types::SqlType)],
    mut row_values: Vec<Value>,
    mode: DbMode,
) -> Result<(), DbError> {
    // Coerce to the declared column types.
    {
        let mut ctx = ExecCtx { catalog, storage, stats, mode, hash_joins: true, cost_planner: true };
        for (value, (col_name, col_type)) in row_values.iter_mut().zip(table_columns) {
            let taken = std::mem::replace(value, Value::Null);
            *value = coerce(&mut ctx, taken, col_type, col_name.as_str())?;
        }
    }

    // Enforce constraints.
    enforce_constraints(catalog, storage, stats, mode, table, table_columns, &row_values, None)?;

    // Materialize. Rows of object tables receive OIDs.
    let with_oid = table.is_object_table();
    storage.insert_row(table_name, row_values, with_oid)?;
    stats.rows_inserted += 1;
    Ok(())
}

/// A batch of bound single-row INSERTs targeting one table: the per-row
/// VALUES expressions of statements that all read
/// `INSERT INTO table [cols] VALUES (…)`. Built by the bulk loader
/// (`xml2ordb`) or by hand; executed by
/// [`crate::Database::execute_batch`].
#[derive(Debug, Clone, PartialEq)]
pub struct InsertBatch {
    pub table: Ident,
    /// Shared explicit column list (`None` = positional / constructor form).
    pub columns: Option<Vec<Ident>>,
    /// One entry per row: the VALUES expressions of that row's INSERT.
    pub rows: Vec<Vec<Expr>>,
}

/// Uniqueness accelerator for batched inserts: one hash prefilter per
/// PRIMARY KEY / UNIQUE constraint, covering the stored rows and extended
/// with every validated batch row, so checking n batch rows costs
/// O(stored + n) probes instead of n full-table scans. Buckets are keyed
/// by a hash of the row's [`Value::join_key`] identity (computed without
/// materializing the key), whose contract has no false negatives
/// (`sql_eq == Some(true)` implies equal keys), so an empty bucket proves
/// uniqueness; probe hits are re-verified with the real [`Value::sql_eq`].
///
/// After a successful batch the index is promoted into the session's
/// [`UniqueIndexCache`], tagged with the table's
/// [`Storage::table_version`]; the next batch against an untouched table
/// reuses it and only hashes its own rows, making a multi-batch bulk load
/// O(total rows) instead of O(batches × stored rows).
#[derive(Debug, Clone)]
struct UniqueIndex {
    /// [`Storage::table_version`] at which `rows_covered` was valid.
    version: u64,
    /// Prefix of the table's row heap covered by `Stored` refs.
    rows_covered: usize,
    /// One entry per PK/UNIQUE constraint, in `table.constraints()` order.
    constraints: Vec<ConstraintIndex>,
}

/// Where a bucket entry's key values live.
#[derive(Debug, Copy, Clone)]
enum KeyRef {
    /// Row slot in the table heap.
    Stored(usize),
    /// Index into [`ConstraintIndex::pending`] (a not-yet-inserted batch
    /// row).
    Batch(usize),
}

/// A validated batch row's key, held until the batch lands and the entry
/// can be re-pointed at the row's final heap slot.
#[derive(Debug, Clone)]
struct PendingKey {
    hash: u64,
    bucket_pos: usize,
    /// Position of the owning row within the batch's validated rows.
    ordinal: usize,
    key: Vec<Value>,
}

#[derive(Debug, Clone)]
struct ConstraintIndex {
    /// join-key hash → entries sharing it (collisions are re-verified).
    buckets: HashMap<u64, Vec<KeyRef>>,
    pending: Vec<PendingKey>,
    /// Validated batch keys without a join key (object-valued key
    /// columns); scanned on every probe and practically always empty. A
    /// batch that produces any of these is not promoted into the cache.
    slow: Vec<Vec<Value>>,
}

/// Session-lived cache of promoted `UniqueIndex`es, keyed by table. An
/// entry is only reused while the table's version still matches — any
/// intervening mutation (single-row insert, update, delete, rollback)
/// invalidates it and the next batch rebuilds from the heap.
#[derive(Debug, Clone, Default)]
pub struct UniqueIndexCache {
    entries: HashMap<Ident, UniqueIndex>,
}

/// Hash a candidate key's join-key identity; `None` when any component is
/// NULL or has no join key. Shared with the secondary-index machinery so
/// constraint probes and index probes agree on key identity.
use crate::storage::key_hash;

/// Build the uniqueness index over the rows already in storage. Returns
/// `None` — meaning "fall back to per-row scans" — when a stored non-NULL
/// key value has no join key (object/collection-typed key columns) or a
/// constraint names an unknown column (the per-row path then raises the
/// proper error).
fn build_unique_index(
    table: &TableDef,
    table_columns: &[(Ident, crate::types::SqlType)],
    storage: &Storage,
) -> Option<UniqueIndex> {
    use std::hash::Hasher;
    let version = storage.table_version(table.name());
    let data = storage.table(table.name());
    let rows_covered = data.map_or(0, |d| d.rows.len());
    let mut constraints = Vec::new();
    for constraint in table.constraints() {
        let (Constraint::PrimaryKey(cols) | Constraint::Unique(cols)) = constraint else {
            continue;
        };
        let indices: Vec<usize> = cols
            .iter()
            .map(|col| table_columns.iter().position(|(name, _)| name == col))
            .collect::<Option<_>>()?;
        let mut buckets: HashMap<u64, Vec<KeyRef>> = HashMap::new();
        if let Some(data) = data {
            'rows: for (slot, row) in data.rows.iter().enumerate() {
                let mut h = std::collections::hash_map::DefaultHasher::new();
                for &i in &indices {
                    let v = &row.values[i];
                    // NULLs never collide for UNIQUE — leave the row out.
                    if v.is_null() {
                        continue 'rows;
                    }
                    if !v.hash_join_key(&mut h) {
                        return None;
                    }
                }
                buckets.entry(h.finish()).or_default().push(KeyRef::Stored(slot));
            }
        }
        constraints.push(ConstraintIndex { buckets, pending: Vec::new(), slow: Vec::new() });
    }
    Some(UniqueIndex { version, rows_covered, constraints })
}

/// One row's view into the batch uniqueness index: which index to probe
/// and the row's ordinal within the batch (its eventual heap slot offset).
struct BatchProbe<'a> {
    index: &'a mut UniqueIndex,
    ordinal: usize,
}

/// Execute a whole [`InsertBatch`]: resolve the catalog once, evaluate and
/// validate every row against the pre-batch storage snapshot, then append
/// all rows in one [`Storage::insert_rows`] call (one undo record, block
/// OID reservation). Returns the number of rows inserted.
///
/// Semantics vs. running the statements one at a time:
///
/// * Storage is frozen during evaluation, so scalar subqueries see the
///   *pre-batch* state. Callers must not batch a row together with rows it
///   reads (the loader's batcher splits batches on such dependencies); in
///   exchange, identical subqueries within a batch are evaluated once and
///   memoized (`batch_subquery_hits`).
/// * PRIMARY KEY / UNIQUE checks run against stored rows *and* the earlier
///   rows of the same batch, so duplicates inside one batch are still
///   rejected — through a hash index built once per batch (`UniqueIndex`),
///   not a per-row table scan.
/// * Any row failing evaluation or a constraint fails the whole batch
///   before anything is written — the batch is all-or-nothing even without
///   an enclosing transaction bracket.
pub fn execute_insert_batch(
    catalog: &Catalog,
    storage: &mut Storage,
    stats: &mut ExecStats,
    mode: DbMode,
    batch: &InsertBatch,
    cache: &mut UniqueIndexCache,
) -> Result<usize, DbError> {
    let table = catalog
        .get_table(&batch.table)
        .ok_or_else(|| DbError::UnknownTable(batch.table.as_str().to_string()))?
        .clone();
    let table_columns = catalog.table_columns(&table);
    // Reuse the cached index if the table is untouched since it was built;
    // otherwise build it fresh from the heap. (A failed batch never puts
    // its index back, so an entry found here has no pending state.)
    let mut unique_index: Option<UniqueIndex> = match cache.entries.remove(&batch.table) {
        Some(ix) if ix.version == storage.table_version(&batch.table) => {
            debug_assert_eq!(
                ix.rows_covered,
                storage.table(&batch.table).map_or(0, |d| d.rows.len()),
                "unchanged version implies unchanged heap"
            );
            Some(ix)
        }
        _ => build_unique_index(&table, &table_columns, storage),
    };

    let mut memo: Vec<(SelectStmt, Value)> = Vec::new();
    let mut validated: Vec<Vec<Value>> = Vec::with_capacity(batch.rows.len());
    for value_exprs in &batch.rows {
        let mut provided = Vec::with_capacity(value_exprs.len());
        {
            let mut ctx = ExecCtx { catalog, storage, stats, mode, hash_joins: true, cost_planner: true };
            for expr in value_exprs {
                provided.push(eval_batch_expr(&mut ctx, expr, &mut memo)?);
            }
        }
        let mut row_values =
            shape_row(&batch.table, &table, &table_columns, &batch.columns, provided)?;
        {
            let mut ctx = ExecCtx { catalog, storage, stats, mode, hash_joins: true, cost_planner: true };
            for (value, (col_name, col_type)) in row_values.iter_mut().zip(&table_columns) {
                let taken = std::mem::replace(value, Value::Null);
                *value = coerce(&mut ctx, taken, col_type, col_name.as_str())?;
            }
        }
        // The index absorbs each validated row, so this also rejects key
        // collisions with the earlier rows of this same batch.
        let probe = unique_index
            .as_mut()
            .map(|index| BatchProbe { index, ordinal: validated.len() });
        enforce_constraints(
            catalog,
            storage,
            stats,
            mode,
            &table,
            &table_columns,
            &row_values,
            probe,
        )?;
        validated.push(row_values);
    }

    let with_oid = table.is_object_table();
    let base_slot = unique_index.as_ref().map_or(0, |ix| ix.rows_covered);
    let count = storage.insert_rows(&batch.table, validated, with_oid)?;
    stats.rows_inserted += count as u64;
    stats.batched_rows += count as u64;

    // Promote the index for the next batch: re-point the batch rows' bucket
    // entries at their now-final heap slots and tag with the post-insert
    // version. Keys without a join key (`slow`) cannot be found by later
    // hash probes, so such an index is discarded instead of promoted.
    if let Some(mut ix) = unique_index {
        if ix.constraints.iter().all(|ci| ci.slow.is_empty()) {
            for ci in &mut ix.constraints {
                for p in std::mem::take(&mut ci.pending) {
                    let bucket = ci.buckets.get_mut(&p.hash).expect("pending entry has bucket");
                    bucket[p.bucket_pos] = KeyRef::Stored(base_slot + p.ordinal);
                }
            }
            ix.rows_covered = base_slot + count;
            ix.version = storage.table_version(&batch.table);
            cache.entries.insert(batch.table.clone(), ix);
        }
    }
    Ok(count)
}

/// Evaluate one VALUES expression during batch execution, answering scalar
/// subqueries from `memo` when the identical subquery was already run in
/// this batch (sound because storage does not change mid-batch).
fn eval_batch_expr(
    ctx: &mut ExecCtx,
    expr: &Expr,
    memo: &mut Vec<(SelectStmt, Value)>,
) -> Result<Value, DbError> {
    if !contains_subquery(expr) {
        return eval_expr(ctx, &Env::EMPTY, expr);
    }
    let resolved = resolve_subqueries(ctx, expr, memo)?;
    eval_expr(ctx, &Env::EMPTY, &resolved)
}

/// Does the expression contain a scalar `(SELECT …)` node? (The memo only
/// targets `Expr::Subquery`; `EXISTS` / `CAST(MULTISET …)` run normally.)
fn contains_subquery(expr: &Expr) -> bool {
    match expr {
        Expr::Subquery(_) => true,
        Expr::Call { args, .. } => args.iter().any(contains_subquery),
        Expr::Binary { lhs, rhs, .. } => contains_subquery(lhs) || contains_subquery(rhs),
        Expr::Not(e) | Expr::Deref(e) => contains_subquery(e),
        Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => contains_subquery(expr),
        _ => false,
    }
}

/// Clone `expr` with every scalar subquery replaced by its (memoized)
/// value as a literal.
fn resolve_subqueries(
    ctx: &mut ExecCtx,
    expr: &Expr,
    memo: &mut Vec<(SelectStmt, Value)>,
) -> Result<Expr, DbError> {
    Ok(match expr {
        Expr::Subquery(query) => {
            if let Some((_, value)) = memo.iter().find(|(q, _)| q == query.as_ref()) {
                ctx.stats.batch_subquery_hits += 1;
                Expr::Literal(value.clone())
            } else {
                let value = eval_expr(ctx, &Env::EMPTY, expr)?;
                memo.push((query.as_ref().clone(), value.clone()));
                Expr::Literal(value)
            }
        }
        Expr::Call { name, args } => Expr::Call {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| resolve_subqueries(ctx, a, memo))
                .collect::<Result<_, _>>()?,
        },
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(resolve_subqueries(ctx, lhs, memo)?),
            rhs: Box::new(resolve_subqueries(ctx, rhs, memo)?),
        },
        Expr::Not(e) => Expr::Not(Box::new(resolve_subqueries(ctx, e, memo)?)),
        Expr::Deref(e) => Expr::Deref(Box::new(resolve_subqueries(ctx, e, memo)?)),
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(resolve_subqueries(ctx, expr, memo)?),
            negated: *negated,
        },
        Expr::Like { expr, pattern, negated } => Expr::Like {
            expr: Box::new(resolve_subqueries(ctx, expr, memo)?),
            pattern: pattern.clone(),
            negated: *negated,
        },
        other => other.clone(),
    })
}

/// Check every table constraint against a candidate row. With
/// `unique_probe: None` (single-row INSERT), PRIMARY KEY / UNIQUE scan the
/// stored rows directly; with a probe (batch path) the scan becomes a hash
/// probe, and the validated key is added to the index so later rows of the
/// same batch see it.
#[allow(clippy::too_many_arguments)]
fn enforce_constraints(
    catalog: &Catalog,
    storage: &Storage,
    stats: &mut ExecStats,
    mode: DbMode,
    table: &TableDef,
    table_columns: &[(Ident, crate::types::SqlType)],
    row_values: &[Value],
    mut unique_probe: Option<BatchProbe<'_>>,
) -> Result<(), DbError> {
    let mut uc_idx = 0usize;
    let col_index = |name: &Ident| -> Result<usize, DbError> {
        table_columns
            .iter()
            .position(|(c, _)| c == name)
            .ok_or_else(|| DbError::UnknownColumn(name.as_str().to_string()))
    };

    for constraint in table.constraints() {
        match constraint {
            Constraint::NotNull(col) => {
                let idx = col_index(col)?;
                if row_values[idx].is_null() {
                    return Err(DbError::NotNullViolation {
                        column: format!("{}.{}", table.name().as_str(), col.as_str()),
                    });
                }
            }
            Constraint::PrimaryKey(cols) | Constraint::Unique(cols) => {
                let is_pk = matches!(constraint, Constraint::PrimaryKey(_));
                let indices: Vec<usize> =
                    cols.iter().map(&col_index).collect::<Result<_, _>>()?;
                if is_pk {
                    for &idx in &indices {
                        if row_values[idx].is_null() {
                            return Err(DbError::NotNullViolation {
                                column: format!(
                                    "{}.{}",
                                    table.name().as_str(),
                                    table_columns[idx].0.as_str()
                                ),
                            });
                        }
                    }
                }
                let key: Vec<&Value> = indices.iter().map(|&i| &row_values[i]).collect();
                let violation = || DbError::UniqueViolation {
                    constraint: format!(
                        "{}({})",
                        table.name().as_str(),
                        cols.iter().map(|c| c.as_str()).collect::<Vec<_>>().join(",")
                    ),
                };
                // NULLs never collide for UNIQUE.
                if key.iter().any(|v| v.is_null()) {
                    uc_idx += 1;
                    continue;
                }
                match unique_probe.as_mut() {
                    Some(probe) => {
                        let ordinal = probe.ordinal;
                        let ci = &mut probe.index.constraints[uc_idx];
                        let stored = storage.table(table.name());
                        let collides_with = |kr: KeyRef, pending: &[PendingKey]| -> bool {
                            match kr {
                                KeyRef::Stored(slot) => stored.is_some_and(|data| {
                                    let row = &data.rows[slot];
                                    key.iter()
                                        .zip(&indices)
                                        .all(|(a, &i)| a.sql_eq(&row.values[i]) == Some(true))
                                }),
                                KeyRef::Batch(p) => key
                                    .iter()
                                    .zip(&pending[p].key)
                                    .all(|(a, b)| a.sql_eq(b) == Some(true)),
                            }
                        };
                        if ci.slow.iter().any(|existing| {
                            key.iter().zip(existing).all(|(a, b)| a.sql_eq(b) == Some(true))
                        }) {
                            return Err(violation());
                        }
                        let owned = || key.iter().map(|&v| v.clone()).collect::<Vec<Value>>();
                        match key_hash(&key) {
                            Some(hash) => {
                                if let Some(bucket) = ci.buckets.get(&hash) {
                                    if bucket.iter().any(|&kr| collides_with(kr, &ci.pending))
                                    {
                                        return Err(violation());
                                    }
                                }
                                let pending_idx = ci.pending.len();
                                let bucket = ci.buckets.entry(hash).or_default();
                                let bucket_pos = bucket.len();
                                bucket.push(KeyRef::Batch(pending_idx));
                                ci.pending.push(PendingKey {
                                    hash,
                                    bucket_pos,
                                    ordinal,
                                    key: owned(),
                                });
                            }
                            None => {
                                // No join key (object-valued column): linear
                                // check against everything seen so far.
                                if ci
                                    .buckets
                                    .values()
                                    .flatten()
                                    .any(|&kr| collides_with(kr, &ci.pending))
                                {
                                    return Err(violation());
                                }
                                ci.slow.push(owned());
                            }
                        }
                    }
                    None => {
                        if let Some(data) = storage.table(table.name()) {
                            for row in &data.rows {
                                let existing: Vec<&Value> =
                                    indices.iter().map(|&i| &row.values[i]).collect();
                                let all_equal = key
                                    .iter()
                                    .zip(&existing)
                                    .all(|(a, b)| a.sql_eq(b) == Some(true));
                                if all_equal {
                                    return Err(violation());
                                }
                            }
                        }
                    }
                }
                uc_idx += 1;
            }
            Constraint::Check(expr) => {
                // The candidate row is visible both under the table name and
                // unqualified (Oracle exposes columns directly in CHECK).
                let frame = Frame {
                    binding: table.name().clone(),
                    columns: table_columns.iter().map(|(c, _)| c.clone()).collect(),
                    values: row_values.to_vec(),
                    oid: None,
                    object_type: match table {
                        TableDef::Object { of_type, .. } => Some(of_type.clone()),
                        _ => None,
                    },
                };
                let frames = [std::rc::Rc::new(frame)];
                let env = Env::new(&frames);
                let mut ctx = ExecCtx { catalog, storage, stats, mode, hash_joins: true, cost_planner: true };
                // Oracle semantics: the row is rejected only when the
                // condition is definitely FALSE (UNKNOWN passes).
                if eval_bool(&mut ctx, &env, expr)? == Some(false) {
                    return Err(DbError::CheckViolation {
                        constraint: format!("CHECK on {}", table.name().as_str()),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Execute `UPDATE table SET path = expr, … [WHERE pred]`; returns the
/// number of rows updated. SET paths may navigate into embedded object
/// attributes (`attrList.attrBoss = …`); the right-hand sides are evaluated
/// against the *old* row, and all constraints are re-checked before any row
/// is written (statement-level atomicity).
pub fn execute_update(
    catalog: &Catalog,
    storage: &mut Storage,
    stats: &mut ExecStats,
    mode: DbMode,
    table_name: &Ident,
    sets: &[(Vec<Ident>, Expr)],
    where_clause: &Option<Expr>,
) -> Result<usize, DbError> {
    let table = catalog
        .get_table(table_name)
        .ok_or_else(|| DbError::UnknownTable(table_name.as_str().to_string()))?
        .clone();
    let table_columns = catalog.table_columns(&table);
    let columns: Vec<Ident> = table_columns.iter().map(|(c, _)| c.clone()).collect();
    let object_type = match &table {
        TableDef::Object { of_type, .. } => Some(of_type.clone()),
        _ => None,
    };

    // Phase 1 (read-only): compute the new values of every affected row.
    // The table is read in place — no up-front clone of every row; each
    // row's values are copied once into the evaluation frame, and only
    // matching rows pay for a second, writable copy.
    let mut updated: Vec<(usize, Vec<Value>)> = Vec::new();
    {
        let data = storage
            .table(table_name)
            .ok_or_else(|| DbError::UnknownTable(table_name.as_str().to_string()))?;
        let mut ctx =
            ExecCtx { catalog, storage: &*storage, stats: &mut *stats, mode, hash_joins: true, cost_planner: true };
        for (idx, row) in data.rows.iter().enumerate() {
            let frame = Frame {
                binding: table_name.clone(),
                columns: columns.clone(),
                values: row.values.clone(),
                oid: row.oid,
                object_type: object_type.clone(),
            };
            let frames = [std::rc::Rc::new(frame)];
            let env = Env::new(&frames);
            let hit = match where_clause {
                None => true,
                Some(pred) => eval_bool(&mut ctx, &env, pred)? == Some(true),
            };
            if !hit {
                continue;
            }
            let mut new_values = row.values.clone();
            for (path, rhs) in sets {
                let value = eval_expr(&mut ctx, &env, rhs)?;
                set_path(&mut ctx, &table_columns, &mut new_values, path, value)?;
            }
            updated.push((idx, new_values));
        }
        // Constraint re-check on the new rows (NOT NULL + CHECK; key
        // constraints are validated against the untouched rows only — a
        // simplification documented by the tests).
        for (_, new_values) in &updated {
            enforce_non_key_constraints(
                catalog, storage, stats, mode, &table, &table_columns, new_values,
            )?;
        }
    }

    // Phase 2: write (undo-logged, so a rollback restores the old values).
    let count = updated.len();
    for (idx, new_values) in updated {
        storage.write_row_values(table_name, idx, new_values)?;
    }
    Ok(count)
}

/// Assign `value` at `path` within a row: `path[0]` names a column, further
/// parts navigate into embedded object attributes.
fn set_path(
    ctx: &mut ExecCtx,
    table_columns: &[(Ident, crate::types::SqlType)],
    row_values: &mut [Value],
    path: &[Ident],
    value: Value,
) -> Result<(), DbError> {
    let col_idx = table_columns
        .iter()
        .position(|(c, _)| c == &path[0])
        .ok_or_else(|| DbError::UnknownColumn(path[0].as_str().to_string()))?;
    if path.len() == 1 {
        let coerced = coerce(ctx, value, &table_columns[col_idx].1, path[0].as_str())?;
        row_values[col_idx] = coerced;
        return Ok(());
    }
    // Navigate object attributes; the leaf is coerced to its declared type.
    let mut slot: &mut Value = &mut row_values[col_idx];
    for (depth, part) in path[1..].iter().enumerate() {
        let is_leaf = depth == path.len() - 2;
        let (type_name, attrs) = match slot {
            Value::Obj { type_name, attrs } => (type_name.clone(), attrs),
            Value::Null => {
                return Err(DbError::Execution(format!(
                    "cannot SET through NULL object attribute '{}'",
                    path[depth].as_str()
                )))
            }
            other => {
                return Err(DbError::Execution(format!(
                    "cannot SET through non-object value {}",
                    other.to_sql_literal()
                )))
            }
        };
        let def = ctx
            .catalog
            .get_type(&type_name)
            .ok_or_else(|| DbError::UnknownType(type_name.as_str().to_string()))?;
        let attr_idx = def
            .object_attrs()
            .iter()
            .position(|(n, _)| n == part)
            .ok_or_else(|| {
                DbError::UnknownColumn(format!("{}.{}", type_name.as_str(), part.as_str()))
            })?;
        if is_leaf {
            let attr_type = def.object_attrs()[attr_idx].1.clone();
            let coerced = coerce(ctx, value, &attr_type, part.as_str())?;
            attrs[attr_idx] = coerced;
            return Ok(());
        }
        slot = &mut attrs[attr_idx];
    }
    // The caller splits off a non-empty path, so the loop always reaches
    // `is_leaf` and returns; surface a typed error rather than panicking
    // if that invariant is ever broken.
    Err(DbError::Execution(format!(
        "SET path '{}' ended without reaching a leaf attribute",
        path.iter().map(|p| p.as_str()).collect::<Vec<_>>().join(".")
    )))
}

/// NOT NULL and CHECK constraints only (used by UPDATE, which does not
/// re-validate keys).
fn enforce_non_key_constraints(
    catalog: &Catalog,
    storage: &Storage,
    stats: &mut ExecStats,
    mode: DbMode,
    table: &TableDef,
    table_columns: &[(Ident, crate::types::SqlType)],
    row_values: &[Value],
) -> Result<(), DbError> {
    for constraint in table.constraints() {
        match constraint {
            Constraint::NotNull(col) => {
                let idx = table_columns
                    .iter()
                    .position(|(c, _)| c == col)
                    .ok_or_else(|| DbError::UnknownColumn(col.as_str().to_string()))?;
                if row_values[idx].is_null() {
                    return Err(DbError::NotNullViolation {
                        column: format!("{}.{}", table.name().as_str(), col.as_str()),
                    });
                }
            }
            Constraint::Check(expr) => {
                let frame = Frame {
                    binding: table.name().clone(),
                    columns: table_columns.iter().map(|(c, _)| c.clone()).collect(),
                    values: row_values.to_vec(),
                    oid: None,
                    object_type: match table {
                        TableDef::Object { of_type, .. } => Some(of_type.clone()),
                        _ => None,
                    },
                };
                let frames = [std::rc::Rc::new(frame)];
                let env = Env::new(&frames);
                let mut ctx = ExecCtx { catalog, storage, stats, mode, hash_joins: true, cost_planner: true };
                if eval_bool(&mut ctx, &env, expr)? == Some(false) {
                    return Err(DbError::CheckViolation {
                        constraint: format!("CHECK on {}", table.name().as_str()),
                    });
                }
            }
            Constraint::PrimaryKey(_) | Constraint::Unique(_) => {}
        }
    }
    Ok(())
}

/// Execute `DELETE FROM table [WHERE pred]`; returns the number of rows
/// deleted.
pub fn execute_delete(
    catalog: &Catalog,
    storage: &mut Storage,
    stats: &mut ExecStats,
    mode: DbMode,
    table_name: &Ident,
    where_clause: &Option<Expr>,
) -> Result<usize, DbError> {
    let table = catalog
        .get_table(table_name)
        .ok_or_else(|| DbError::UnknownTable(table_name.as_str().to_string()))?
        .clone();
    let table_columns = catalog.table_columns(&table);
    let columns: Vec<Ident> = table_columns.iter().map(|(c, _)| c.clone()).collect();
    let object_type = match &table {
        TableDef::Object { of_type, .. } => Some(of_type.clone()),
        _ => None,
    };

    // Decide which rows go (read-only phase), then delete by position.
    let mut doomed: Vec<usize> = Vec::new();
    {
        let data = storage
            .table(table_name)
            .ok_or_else(|| DbError::UnknownTable(table_name.as_str().to_string()))?;
        let mut ctx = ExecCtx { catalog, storage, stats, mode, hash_joins: true, cost_planner: true };
        for (idx, row) in data.rows.iter().enumerate() {
            let keep = match where_clause {
                None => false,
                Some(pred) => {
                    let frame = Frame {
                        binding: table_name.clone(),
                        columns: columns.clone(),
                        values: row.values.clone(),
                        oid: row.oid,
                        object_type: object_type.clone(),
                    };
                    let frames = [std::rc::Rc::new(frame)];
                    let env = Env::new(&frames);
                    eval_bool(&mut ctx, &env, pred)? != Some(true)
                }
            };
            if !keep {
                doomed.push(idx);
            }
        }
    }
    let doomed_set: std::collections::BTreeSet<usize> = doomed.into_iter().collect();
    let mut position = 0usize;
    let removed = storage.delete_rows(table_name, |_row| {
        let hit = doomed_set.contains(&position);
        position += 1;
        hit
    });
    Ok(removed)
}

//! INSERT and DELETE execution, including constraint enforcement.
//!
//! Constraint semantics follow §4.3 of the paper exactly: NOT NULL and
//! CHECK constraints live on *tables* (never on type definitions), and a
//! CHECK over an inner attribute of a NULL object attribute evaluates to
//! FALSE and rejects the row — the paper's "non-desired error message".

use crate::catalog::{Catalog, Constraint, TableDef};
use crate::error::DbError;
use crate::exec::eval::{coerce, eval_bool, eval_expr, ExecCtx};
use crate::exec::{Env, Frame};
use crate::ident::Ident;
use crate::mode::DbMode;
use crate::sql::ast::Expr;
use crate::stats::ExecStats;
use crate::storage::Storage;
use crate::value::Value;

/// Execute `INSERT INTO table [cols] VALUES (exprs)`.
pub fn execute_insert(
    catalog: &Catalog,
    storage: &mut Storage,
    stats: &mut ExecStats,
    mode: DbMode,
    table_name: &Ident,
    columns: &Option<Vec<Ident>>,
    value_exprs: &[Expr],
) -> Result<(), DbError> {
    let table = catalog
        .get_table(table_name)
        .ok_or_else(|| DbError::UnknownTable(table_name.as_str().to_string()))?
        .clone();
    let table_columns = catalog.table_columns(&table);

    // Evaluate the VALUES expressions (read-only phase: subqueries may scan).
    let mut provided = Vec::with_capacity(value_exprs.len());
    {
        let mut ctx = ExecCtx { catalog, storage, stats, mode, hash_joins: true };
        for expr in value_exprs {
            provided.push(eval_expr(&mut ctx, &Env::EMPTY, expr)?);
        }
    }

    // Object tables accept `VALUES (Type_T(...))` — one constructor for the
    // whole row object (the form §2.1's examples use). Explode it into the
    // attribute values.
    if columns.is_none() && provided.len() == 1 {
        if let TableDef::Object { of_type, .. } = &table {
            if let Value::Obj { type_name, attrs } = &provided[0] {
                if type_name == of_type {
                    let attrs = attrs.clone();
                    return finish_insert(
                        catalog, storage, stats, table_name, &table, &table_columns, attrs,
                        mode,
                    );
                }
            }
        }
    }

    // Map provided values onto the full column list.
    let mut row_values: Vec<Value> = vec![Value::Null; table_columns.len()];
    match columns {
        Some(cols) => {
            if cols.len() != provided.len() {
                return Err(DbError::Execution(format!(
                    "INSERT column list has {} names but {} values",
                    cols.len(),
                    provided.len()
                )));
            }
            for (col, value) in cols.iter().zip(provided) {
                let idx = table_columns
                    .iter()
                    .position(|(name, _)| name == col)
                    .ok_or_else(|| DbError::UnknownColumn(col.as_str().to_string()))?;
                row_values[idx] = value;
            }
        }
        None => {
            if provided.len() != table_columns.len() {
                return Err(DbError::Execution(format!(
                    "table {} has {} columns but {} values were supplied",
                    table_name.as_str(),
                    table_columns.len(),
                    provided.len()
                )));
            }
            row_values = provided;
        }
    }

    finish_insert(catalog, storage, stats, table_name, &table, &table_columns, row_values, mode)
}

/// Shared tail of INSERT: coercion, constraint checks, materialization.
#[allow(clippy::too_many_arguments)]
fn finish_insert(
    catalog: &Catalog,
    storage: &mut Storage,
    stats: &mut ExecStats,
    table_name: &Ident,
    table: &TableDef,
    table_columns: &[(Ident, crate::types::SqlType)],
    mut row_values: Vec<Value>,
    mode: DbMode,
) -> Result<(), DbError> {
    // Coerce to the declared column types.
    {
        let mut ctx = ExecCtx { catalog, storage, stats, mode, hash_joins: true };
        for (value, (col_name, col_type)) in row_values.iter_mut().zip(table_columns) {
            let taken = std::mem::replace(value, Value::Null);
            *value = coerce(&mut ctx, taken, col_type, col_name.as_str())?;
        }
    }

    // Enforce constraints.
    enforce_constraints(catalog, storage, stats, mode, table, table_columns, &row_values)?;

    // Materialize. Rows of object tables receive OIDs.
    let with_oid = table.is_object_table();
    storage.insert_row(table_name, row_values, with_oid)?;
    stats.rows_inserted += 1;
    Ok(())
}

fn enforce_constraints(
    catalog: &Catalog,
    storage: &Storage,
    stats: &mut ExecStats,
    mode: DbMode,
    table: &TableDef,
    table_columns: &[(Ident, crate::types::SqlType)],
    row_values: &[Value],
) -> Result<(), DbError> {
    let col_index = |name: &Ident| -> Result<usize, DbError> {
        table_columns
            .iter()
            .position(|(c, _)| c == name)
            .ok_or_else(|| DbError::UnknownColumn(name.as_str().to_string()))
    };

    for constraint in table.constraints() {
        match constraint {
            Constraint::NotNull(col) => {
                let idx = col_index(col)?;
                if row_values[idx].is_null() {
                    return Err(DbError::NotNullViolation {
                        column: format!("{}.{}", table.name().as_str(), col.as_str()),
                    });
                }
            }
            Constraint::PrimaryKey(cols) | Constraint::Unique(cols) => {
                let is_pk = matches!(constraint, Constraint::PrimaryKey(_));
                let indices: Vec<usize> =
                    cols.iter().map(&col_index).collect::<Result<_, _>>()?;
                if is_pk {
                    for &idx in &indices {
                        if row_values[idx].is_null() {
                            return Err(DbError::NotNullViolation {
                                column: format!(
                                    "{}.{}",
                                    table.name().as_str(),
                                    table_columns[idx].0.as_str()
                                ),
                            });
                        }
                    }
                }
                let key: Vec<&Value> = indices.iter().map(|&i| &row_values[i]).collect();
                // NULLs never collide for UNIQUE.
                if key.iter().any(|v| v.is_null()) {
                    continue;
                }
                if let Some(data) = storage.table(table.name()) {
                    for row in &data.rows {
                        let existing: Vec<&Value> =
                            indices.iter().map(|&i| &row.values[i]).collect();
                        let all_equal = key
                            .iter()
                            .zip(&existing)
                            .all(|(a, b)| a.sql_eq(b) == Some(true));
                        if all_equal {
                            return Err(DbError::UniqueViolation {
                                constraint: format!(
                                    "{}({})",
                                    table.name().as_str(),
                                    cols.iter()
                                        .map(|c| c.as_str())
                                        .collect::<Vec<_>>()
                                        .join(",")
                                ),
                            });
                        }
                    }
                }
            }
            Constraint::Check(expr) => {
                // The candidate row is visible both under the table name and
                // unqualified (Oracle exposes columns directly in CHECK).
                let frame = Frame {
                    binding: table.name().clone(),
                    columns: table_columns.iter().map(|(c, _)| c.clone()).collect(),
                    values: row_values.to_vec(),
                    oid: None,
                    object_type: match table {
                        TableDef::Object { of_type, .. } => Some(of_type.clone()),
                        _ => None,
                    },
                };
                let frames = [std::rc::Rc::new(frame)];
                let env = Env::new(&frames);
                let mut ctx = ExecCtx { catalog, storage, stats, mode, hash_joins: true };
                // Oracle semantics: the row is rejected only when the
                // condition is definitely FALSE (UNKNOWN passes).
                if eval_bool(&mut ctx, &env, expr)? == Some(false) {
                    return Err(DbError::CheckViolation {
                        constraint: format!("CHECK on {}", table.name().as_str()),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Execute `UPDATE table SET path = expr, … [WHERE pred]`; returns the
/// number of rows updated. SET paths may navigate into embedded object
/// attributes (`attrList.attrBoss = …`); the right-hand sides are evaluated
/// against the *old* row, and all constraints are re-checked before any row
/// is written (statement-level atomicity).
pub fn execute_update(
    catalog: &Catalog,
    storage: &mut Storage,
    stats: &mut ExecStats,
    mode: DbMode,
    table_name: &Ident,
    sets: &[(Vec<Ident>, Expr)],
    where_clause: &Option<Expr>,
) -> Result<usize, DbError> {
    let table = catalog
        .get_table(table_name)
        .ok_or_else(|| DbError::UnknownTable(table_name.as_str().to_string()))?
        .clone();
    let table_columns = catalog.table_columns(&table);
    let columns: Vec<Ident> = table_columns.iter().map(|(c, _)| c.clone()).collect();
    let object_type = match &table {
        TableDef::Object { of_type, .. } => Some(of_type.clone()),
        _ => None,
    };

    // Phase 1 (read-only): compute the new values of every affected row.
    // The table is read in place — no up-front clone of every row; each
    // row's values are copied once into the evaluation frame, and only
    // matching rows pay for a second, writable copy.
    let mut updated: Vec<(usize, Vec<Value>)> = Vec::new();
    {
        let data = storage
            .table(table_name)
            .ok_or_else(|| DbError::UnknownTable(table_name.as_str().to_string()))?;
        let mut ctx =
            ExecCtx { catalog, storage: &*storage, stats: &mut *stats, mode, hash_joins: true };
        for (idx, row) in data.rows.iter().enumerate() {
            let frame = Frame {
                binding: table_name.clone(),
                columns: columns.clone(),
                values: row.values.clone(),
                oid: row.oid,
                object_type: object_type.clone(),
            };
            let frames = [std::rc::Rc::new(frame)];
            let env = Env::new(&frames);
            let hit = match where_clause {
                None => true,
                Some(pred) => eval_bool(&mut ctx, &env, pred)? == Some(true),
            };
            if !hit {
                continue;
            }
            let mut new_values = row.values.clone();
            for (path, rhs) in sets {
                let value = eval_expr(&mut ctx, &env, rhs)?;
                set_path(&mut ctx, &table_columns, &mut new_values, path, value)?;
            }
            updated.push((idx, new_values));
        }
        // Constraint re-check on the new rows (NOT NULL + CHECK; key
        // constraints are validated against the untouched rows only — a
        // simplification documented by the tests).
        for (_, new_values) in &updated {
            enforce_non_key_constraints(
                catalog, storage, stats, mode, &table, &table_columns, new_values,
            )?;
        }
    }

    // Phase 2: write (undo-logged, so a rollback restores the old values).
    let count = updated.len();
    for (idx, new_values) in updated {
        storage.write_row_values(table_name, idx, new_values)?;
    }
    Ok(count)
}

/// Assign `value` at `path` within a row: `path[0]` names a column, further
/// parts navigate into embedded object attributes.
fn set_path(
    ctx: &mut ExecCtx,
    table_columns: &[(Ident, crate::types::SqlType)],
    row_values: &mut [Value],
    path: &[Ident],
    value: Value,
) -> Result<(), DbError> {
    let col_idx = table_columns
        .iter()
        .position(|(c, _)| c == &path[0])
        .ok_or_else(|| DbError::UnknownColumn(path[0].as_str().to_string()))?;
    if path.len() == 1 {
        let coerced = coerce(ctx, value, &table_columns[col_idx].1, path[0].as_str())?;
        row_values[col_idx] = coerced;
        return Ok(());
    }
    // Navigate object attributes; the leaf is coerced to its declared type.
    let mut slot: &mut Value = &mut row_values[col_idx];
    for (depth, part) in path[1..].iter().enumerate() {
        let is_leaf = depth == path.len() - 2;
        let (type_name, attrs) = match slot {
            Value::Obj { type_name, attrs } => (type_name.clone(), attrs),
            Value::Null => {
                return Err(DbError::Execution(format!(
                    "cannot SET through NULL object attribute '{}'",
                    path[depth].as_str()
                )))
            }
            other => {
                return Err(DbError::Execution(format!(
                    "cannot SET through non-object value {}",
                    other.to_sql_literal()
                )))
            }
        };
        let def = ctx
            .catalog
            .get_type(&type_name)
            .ok_or_else(|| DbError::UnknownType(type_name.as_str().to_string()))?;
        let attr_idx = def
            .object_attrs()
            .iter()
            .position(|(n, _)| n == part)
            .ok_or_else(|| {
                DbError::UnknownColumn(format!("{}.{}", type_name.as_str(), part.as_str()))
            })?;
        if is_leaf {
            let attr_type = def.object_attrs()[attr_idx].1.clone();
            let coerced = coerce(ctx, value, &attr_type, part.as_str())?;
            attrs[attr_idx] = coerced;
            return Ok(());
        }
        slot = &mut attrs[attr_idx];
    }
    // The caller splits off a non-empty path, so the loop always reaches
    // `is_leaf` and returns; surface a typed error rather than panicking
    // if that invariant is ever broken.
    Err(DbError::Execution(format!(
        "SET path '{}' ended without reaching a leaf attribute",
        path.iter().map(|p| p.as_str()).collect::<Vec<_>>().join(".")
    )))
}

/// NOT NULL and CHECK constraints only (used by UPDATE, which does not
/// re-validate keys).
fn enforce_non_key_constraints(
    catalog: &Catalog,
    storage: &Storage,
    stats: &mut ExecStats,
    mode: DbMode,
    table: &TableDef,
    table_columns: &[(Ident, crate::types::SqlType)],
    row_values: &[Value],
) -> Result<(), DbError> {
    for constraint in table.constraints() {
        match constraint {
            Constraint::NotNull(col) => {
                let idx = table_columns
                    .iter()
                    .position(|(c, _)| c == col)
                    .ok_or_else(|| DbError::UnknownColumn(col.as_str().to_string()))?;
                if row_values[idx].is_null() {
                    return Err(DbError::NotNullViolation {
                        column: format!("{}.{}", table.name().as_str(), col.as_str()),
                    });
                }
            }
            Constraint::Check(expr) => {
                let frame = Frame {
                    binding: table.name().clone(),
                    columns: table_columns.iter().map(|(c, _)| c.clone()).collect(),
                    values: row_values.to_vec(),
                    oid: None,
                    object_type: match table {
                        TableDef::Object { of_type, .. } => Some(of_type.clone()),
                        _ => None,
                    },
                };
                let frames = [std::rc::Rc::new(frame)];
                let env = Env::new(&frames);
                let mut ctx = ExecCtx { catalog, storage, stats, mode, hash_joins: true };
                if eval_bool(&mut ctx, &env, expr)? == Some(false) {
                    return Err(DbError::CheckViolation {
                        constraint: format!("CHECK on {}", table.name().as_str()),
                    });
                }
            }
            Constraint::PrimaryKey(_) | Constraint::Unique(_) => {}
        }
    }
    Ok(())
}

/// Execute `DELETE FROM table [WHERE pred]`; returns the number of rows
/// deleted.
pub fn execute_delete(
    catalog: &Catalog,
    storage: &mut Storage,
    stats: &mut ExecStats,
    mode: DbMode,
    table_name: &Ident,
    where_clause: &Option<Expr>,
) -> Result<usize, DbError> {
    let table = catalog
        .get_table(table_name)
        .ok_or_else(|| DbError::UnknownTable(table_name.as_str().to_string()))?
        .clone();
    let table_columns = catalog.table_columns(&table);
    let columns: Vec<Ident> = table_columns.iter().map(|(c, _)| c.clone()).collect();
    let object_type = match &table {
        TableDef::Object { of_type, .. } => Some(of_type.clone()),
        _ => None,
    };

    // Decide which rows go (read-only phase), then delete by position.
    let mut doomed: Vec<usize> = Vec::new();
    {
        let data = storage
            .table(table_name)
            .ok_or_else(|| DbError::UnknownTable(table_name.as_str().to_string()))?;
        let mut ctx = ExecCtx { catalog, storage, stats, mode, hash_joins: true };
        for (idx, row) in data.rows.iter().enumerate() {
            let keep = match where_clause {
                None => false,
                Some(pred) => {
                    let frame = Frame {
                        binding: table_name.clone(),
                        columns: columns.clone(),
                        values: row.values.clone(),
                        oid: row.oid,
                        object_type: object_type.clone(),
                    };
                    let frames = [std::rc::Rc::new(frame)];
                    let env = Env::new(&frames);
                    eval_bool(&mut ctx, &env, pred)? != Some(true)
                }
            };
            if !keep {
                doomed.push(idx);
            }
        }
    }
    let doomed_set: std::collections::BTreeSet<usize> = doomed.into_iter().collect();
    let mut position = 0usize;
    let removed = storage.delete_rows(table_name, |_row| {
        let hit = doomed_set.contains(&position);
        position += 1;
        hit
    });
    Ok(removed)
}

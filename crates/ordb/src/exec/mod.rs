//! Statement execution: DDL, DML and queries.
//!
//! The executor is a set of free functions over `(Catalog, Storage,
//! ExecStats, DbMode)` so the [`crate::Database`] façade can split its
//! mutable borrows cleanly.

pub mod ddl;
pub mod dml;
pub mod eval;
pub mod explain;
pub mod select;

use std::rc::Rc;

use crate::ident::Ident;
use crate::value::{Oid, Value};

/// One row binding visible during evaluation: `binding.column` paths resolve
/// against `columns`/`values`; `oid` is set for rows of object tables so
/// `REF(binding)` works.
#[derive(Debug, Clone)]
pub struct Frame {
    pub binding: Ident,
    pub columns: Vec<Ident>,
    pub values: Vec<Value>,
    pub oid: Option<Oid>,
    /// Set when the row is an instance of an object type (object-table rows
    /// and object-valued collection elements): a bare `binding` reference in
    /// an expression then denotes the whole object.
    pub object_type: Option<Ident>,
}

impl Frame {
    pub fn column_value(&self, name: &Ident) -> Option<&Value> {
        self.columns.iter().position(|c| c == name).map(|i| &self.values[i])
    }
}

/// Evaluation environment: the current row combination plus (for correlated
/// subqueries) the enclosing query's environment.
///
/// Frames are reference-counted so join machinery can extend combinations
/// without deep-copying row payloads.
#[derive(Debug, Clone, Copy)]
pub struct Env<'a> {
    pub frames: &'a [Rc<Frame>],
    pub parent: Option<&'a Env<'a>>,
}

impl<'a> Env<'a> {
    pub const EMPTY: Env<'static> = Env { frames: &[], parent: None };

    pub fn new(frames: &'a [Rc<Frame>]) -> Env<'a> {
        Env { frames, parent: None }
    }

    pub fn with_parent(frames: &'a [Rc<Frame>], parent: &'a Env<'a>) -> Env<'a> {
        Env { frames, parent: Some(parent) }
    }

    /// Find a frame by binding name, innermost first.
    pub fn frame(&self, binding: &Ident) -> Option<&Frame> {
        self.frames
            .iter()
            .find(|f| &f.binding == binding)
            .map(Rc::as_ref)
            .or_else(|| self.parent.and_then(|p| p.frame(binding)))
    }

    /// Find the unique frame containing a column of this name (for
    /// unqualified column references). Searches the innermost scope first;
    /// ambiguity within one scope resolves to the first FROM item, like
    /// Oracle resolves unqualified names positionally.
    pub fn frame_with_column(&self, column: &Ident) -> Option<&Frame> {
        self.frames
            .iter()
            .find(|f| f.columns.iter().any(|c| c == column))
            .map(Rc::as_ref)
            .or_else(|| self.parent.and_then(|p| p.frame_with_column(column)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(s: &str) -> Ident {
        Ident::internal(s)
    }

    fn frame(binding: &str, cols: &[(&str, Value)]) -> Rc<Frame> {
        Rc::new(Frame {
            binding: id(binding),
            columns: cols.iter().map(|(c, _)| id(c)).collect(),
            values: cols.iter().map(|(_, v)| v.clone()).collect(),
            oid: None,
            object_type: None,
        })
    }

    #[test]
    fn frame_lookup_by_binding_and_column() {
        let frames = vec![
            frame("a", &[("x", Value::Num(1.0))]),
            frame("b", &[("y", Value::Num(2.0))]),
        ];
        let env = Env::new(&frames);
        assert!(env.frame(&id("b")).is_some());
        assert!(env.frame(&id("zz")).is_none());
        assert_eq!(
            env.frame_with_column(&id("y")).unwrap().binding.as_str(),
            "b"
        );
    }

    #[test]
    fn parent_scopes_are_searched_outward() {
        let outer_frames = vec![frame("o", &[("deep", Value::str("v"))])];
        let outer = Env::new(&outer_frames);
        let inner_frames = vec![frame("i", &[("x", Value::Null)])];
        let inner = Env::with_parent(&inner_frames, &outer);
        assert!(inner.frame(&id("o")).is_some());
        assert!(inner.frame_with_column(&id("deep")).is_some());
    }

    #[test]
    fn inner_scope_shadows_outer() {
        let outer_frames = vec![frame("t", &[("x", Value::str("outer"))])];
        let outer = Env::new(&outer_frames);
        let inner_frames = vec![frame("t", &[("x", Value::str("inner"))])];
        let inner = Env::with_parent(&inner_frames, &outer);
        let f = inner.frame(&id("t")).unwrap();
        assert_eq!(f.values[0], Value::str("inner"));
    }
}

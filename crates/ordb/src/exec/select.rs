//! SELECT execution: FROM evaluation with hash equi-joins and a nested-loop
//! fallback (with lateral visibility for `TABLE(...)` un-nesting), WHERE
//! filtering, projection, DISTINCT and ORDER BY. Views — object views
//! included (§6.3) — expand inline.
//!
//! ## Join strategy selection
//!
//! Each FROM item beyond the first is joined to the accumulated row
//! combinations one of two ways:
//!
//! * **Hash equi-join** — when the first WHERE conjunct scheduled at this
//!   item is an equality whose one side references only this item's binding
//!   and whose other side is bound by earlier items (or constant), the
//!   item's rows are hashed once on the join key ([`Value::join_key`]) and
//!   each combination probes the table. Because SQL's numeric string
//!   coercion makes `sql_eq` non-transitive (`'04' = 4` but `'04' <> '4'`),
//!   the hash is a *prefilter*: every candidate is re-checked with the real
//!   predicate, so results are identical to the nested loop — the
//!   edge-table baseline's 7-way self-joins just stop being O(n²) per step.
//! * **Nested loop** — everything else, including all lateral
//!   `TABLE(expr)` items (their rows depend on the current combination).
//!
//! Non-lateral items are expanded exactly once and their frames shared via
//! `Rc` across all combinations, so a table joined against a thousand
//! combos no longer clones its rows a thousand times.

use crate::catalog::{Catalog, TableDef};
use crate::error::DbError;
use crate::exec::eval::{eval_bool, eval_expr, ExecCtx};
use crate::exec::{Env, Frame};
use crate::ident::Ident;
use crate::sql::ast::{BinOp, Expr, FromItem, SelectStmt};
use crate::storage::key_hash;
use crate::value::{JoinKey, Value};
use std::collections::HashMap;
use std::rc::Rc;

/// A query result: column names and rows.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

impl QueryResult {
    /// Index of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.eq_ignore_ascii_case(name))
    }

    /// Single-value convenience accessor.
    pub fn scalar(&self) -> Option<&Value> {
        match (self.rows.len(), self.rows.first()) {
            (1, Some(row)) if row.len() == 1 => Some(&row[0]),
            _ => None,
        }
    }
}

/// Execute a SELECT. `outer` carries the enclosing environment for
/// correlated subqueries.
pub fn execute_select(
    ctx: &mut ExecCtx,
    stmt: &SelectStmt,
    outer: Option<&Env>,
) -> Result<QueryResult, DbError> {
    // 0. Plan: split + schedule WHERE conjuncts, choose the join order and
    //    one access path per FROM item — from the catalog alone, so the
    //    plan is exactly what EXPLAIN predicts.
    let plan = plan_select(ctx.catalog, ctx.hash_joins, ctx.cost_planner, stmt);
    let bindings: Vec<Ident> =
        plan.order.iter().map(|&i| FromItem::binding(&stmt.from[i])).collect();
    let scheduled = &plan.scheduled;
    if plan.costed || plan.paths.iter().any(|p| matches!(p, AccessPath::IndexProbe { .. })) {
        ctx.stats.planner_plans_costed += 1;
    }

    // 1. FROM: build row combinations in execution order. Later items see
    //    earlier bindings (needed by TABLE(t.attr) un-nesting), and
    //    conjuncts filter as soon as their inputs are bound. When the
    //    planner reordered, each frame's heap slot is recorded so step 1b
    //    can restore the naive enumeration order.
    let mut combos: Vec<Vec<Rc<Frame>>> = vec![Vec::new()];
    if stmt.from.len() > 1 {
        ctx.stats.join_queries += 1;
    }
    let mut slot_maps: Vec<HashMap<usize, usize>> = Vec::new();
    for (item_idx, &orig_idx) in plan.order.iter().enumerate() {
        let item = &stmt.from[orig_idx];
        let mut slot_map: HashMap<usize, usize> = HashMap::new();
        if combos.is_empty() {
            // An earlier item produced no combinations; nothing to extend
            // (and nothing further should be scanned).
            break;
        }
        let applicable: Vec<&Expr> = scheduled
            .iter()
            .filter(|(pos, _)| *pos == item_idx)
            .map(|(_, e)| e)
            .collect();

        // Lateral items depend on the current combination and must be
        // re-expanded per combo; everything else (tables, views) expands
        // once and shares its frames across combos via Rc.
        if matches!(item, FromItem::CollectionTable { .. }) {
            let mut next: Vec<Vec<Rc<Frame>>> = Vec::new();
            for combo in &combos {
                let frames = expand_from_item(ctx, item, combo, outer)?;
                ctx.stats.rows_scanned += frames.len() as u64;
                if item_idx > 0 {
                    ctx.stats.join_pairs += frames.len() as u64;
                }
                for frame in frames {
                    extend_combo(ctx, combo, Rc::new(frame), &applicable, outer, &mut next)?;
                }
            }
            combos = next;
            slot_maps.push(slot_map);
            continue;
        }

        // Index probe: no expansion at all — per combination, hash the key
        // and fetch candidate slots. The freshness check is the safety
        // valve: a stale index (impossible under eager maintenance, but
        // never trusted) silently degrades to the scan/hash path below.
        let index_path = match &plan.paths[item_idx] {
            AccessPath::IndexProbe { index, keys } if ctx.storage.index_is_fresh(index) => {
                Some((index, keys))
            }
            _ => None,
        };
        if let Some((index_name, key_exprs)) = index_path {
            combos = probe_index_item(
                ctx, item, index_name, key_exprs, &combos, &applicable, outer, item_idx,
                &mut slot_map,
            )?;
            slot_maps.push(slot_map);
            continue;
        }

        let frames: Vec<Rc<Frame>> = expand_from_item(ctx, item, &[], outer)?
            .into_iter()
            .map(Rc::new)
            .collect();
        ctx.stats.rows_scanned += frames.len() as u64;
        if plan.reordered {
            // Plain-table frames expand in heap-slot order.
            for (slot, frame) in frames.iter().enumerate() {
                slot_map.insert(Rc::as_ptr(frame) as usize, slot);
            }
        }

        // Hash path only for the *first* applicable conjunct: the nested
        // loop evaluates conjuncts in scheduled order, so hashing the first
        // one preserves which expression gets evaluated against every row.
        // (A planned hash join whose index-probe sibling went stale also
        // lands here via `AccessPath::Scan`-equivalent replanning.)
        let hash_plan = match &plan.paths[item_idx] {
            AccessPath::HashJoin { probe, build } => Some((probe, build)),
            AccessPath::IndexProbe { .. } if ctx.hash_joins && item_idx > 0 => {
                applicable.first().and_then(|c| plan_hash_join(c, &bindings, item_idx))
            }
            _ => None,
        };

        let mut next: Vec<Vec<Rc<Frame>>> = Vec::new();
        if let Some((probe_expr, build_expr)) = hash_plan {
            // Build: hash the new item's frames on the join key. NULL keys
            // can never satisfy the equality and are dropped; values
            // without a hashable key (objects, collections) fall into a
            // linear bucket probed only by composite probe values.
            ctx.stats.hash_join_builds += 1;
            let mut table: HashMap<JoinKey, Vec<usize>> = HashMap::new();
            let mut composites: Vec<usize> = Vec::new();
            for (i, frame) in frames.iter().enumerate() {
                let env = make_env(std::slice::from_ref(frame), outer);
                let value = eval_expr(ctx, &env, build_expr)?;
                if value.is_null() {
                    continue;
                }
                match value.join_key() {
                    Some(key) => table.entry(key).or_default().push(i),
                    None => composites.push(i),
                }
            }
            // Probe: one lookup per combination; candidates re-verified
            // with the full conjunct list (hash equality is a prefilter).
            for combo in &combos {
                ctx.stats.hash_join_probes += 1;
                let env = make_env(combo, outer);
                let probe = eval_expr(ctx, &env, probe_expr)?;
                if probe.is_null() {
                    continue;
                }
                let candidates: &[usize] = match probe.join_key() {
                    Some(key) => table.get(&key).map(Vec::as_slice).unwrap_or(&[]),
                    // A composite probe value can only equal composite
                    // build values (scalars compare false against them).
                    None => &composites,
                };
                ctx.stats.join_pairs += candidates.len() as u64;
                for &i in candidates {
                    extend_combo(ctx, combo, frames[i].clone(), &applicable, outer, &mut next)?;
                }
            }
        } else {
            for combo in &combos {
                if item_idx > 0 {
                    ctx.stats.join_pairs += frames.len() as u64;
                }
                for frame in &frames {
                    extend_combo(ctx, combo, frame.clone(), &applicable, outer, &mut next)?;
                }
            }
        }
        combos = next;
        slot_maps.push(slot_map);
    }

    // 1b. Restore the naive enumeration: the original plan visits plain
    //     tables in FROM order, which enumerates combinations in
    //     lexicographic heap-slot order — so after a reorder, sorting by
    //     the original-order slot tuple and un-permuting each combination's
    //     frames makes output byte-identical to the unplanned execution.
    if plan.reordered && !combos.is_empty() {
        let n = stmt.from.len();
        let mut exec_pos_of = vec![0usize; n];
        for (pos, &orig) in plan.order.iter().enumerate() {
            exec_pos_of[orig] = pos;
        }
        let mut keyed: Vec<(Vec<usize>, Vec<Rc<Frame>>)> = combos
            .into_iter()
            .map(|combo| {
                let key: Vec<usize> = (0..n)
                    .map(|i| {
                        let pos = exec_pos_of[i];
                        slot_maps[pos][&(Rc::as_ptr(&combo[pos]) as usize)]
                    })
                    .collect();
                let restored: Vec<Rc<Frame>> =
                    (0..n).map(|i| combo[exec_pos_of[i]].clone()).collect();
                (key, restored)
            })
            .collect();
        keyed.sort_by(|a, b| a.0.cmp(&b.0));
        combos = keyed.into_iter().map(|(_, combo)| combo).collect();
    }

    // 2. Residual WHERE conjuncts (those deferred to the end).
    let final_pos = stmt.from.len().saturating_sub(1);
    let residual: Vec<&Expr> = scheduled
        .iter()
        .filter(|(pos, _)| *pos > final_pos)
        .map(|(_, e)| e)
        .collect();
    let mut surviving: Vec<Vec<Rc<Frame>>> = Vec::new();
    for combo in combos {
        let mut keep = true;
        for conjunct in &residual {
            let env = make_env(&combo, outer);
            if eval_bool(ctx, &env, conjunct)? != Some(true) {
                keep = false;
                break;
            }
        }
        if keep {
            surviving.push(combo);
        }
    }

    // 3. Aggregate shortcut: COUNT(*) queries.
    if !stmt.star && stmt.items.iter().any(|i| matches!(i.expr, Expr::CountStar)) {
        if stmt.items.len() != 1 {
            return Err(DbError::Execution(
                "COUNT(*) cannot be combined with other select items".into(),
            ));
        }
        let name = stmt.items[0]
            .alias
            .as_ref()
            .map(|a| a.as_str().to_string())
            .unwrap_or_else(|| "COUNT(*)".to_string());
        return Ok(QueryResult {
            columns: vec![name],
            rows: vec![vec![Value::Num(surviving.len() as f64)]],
        });
    }

    // 4. Projection.
    let mut columns: Vec<String> = Vec::new();
    let mut rows: Vec<Vec<Value>> = Vec::new();
    let mut order_keys: Vec<Vec<Value>> = Vec::new();
    for (row_idx, combo) in surviving.iter().enumerate() {
        let env = make_env(combo, outer);
        let mut row = Vec::new();
        if stmt.star {
            for frame in combo {
                for (col, val) in frame.columns.iter().zip(&frame.values) {
                    if row_idx == 0 {
                        columns.push(col.as_str().to_string());
                    }
                    row.push(val.clone());
                }
            }
        } else {
            for (i, item) in stmt.items.iter().enumerate() {
                if row_idx == 0 {
                    columns.push(item_column_name(item, i));
                }
                row.push(eval_expr(ctx, &env, &item.expr)?);
            }
        }
        if !stmt.order_by.is_empty() {
            let mut keys = Vec::new();
            for (expr, _) in &stmt.order_by {
                keys.push(eval_expr(ctx, &env, expr)?);
            }
            order_keys.push(keys);
        }
        rows.push(row);
    }
    if columns.is_empty() {
        // No rows: still report column names.
        if stmt.star {
            columns = star_columns(ctx, stmt)?;
        } else {
            columns = stmt
                .items
                .iter()
                .enumerate()
                .map(|(i, item)| item_column_name(item, i))
                .collect();
        }
    }

    // 5. ORDER BY (stable sort on the precomputed keys).
    if !stmt.order_by.is_empty() {
        let mut indexed: Vec<usize> = (0..rows.len()).collect();
        indexed.sort_by(|&a, &b| {
            for (k, (_, asc)) in stmt.order_by.iter().enumerate() {
                let ord = order_keys[a][k]
                    .sql_cmp(&order_keys[b][k])
                    .unwrap_or(std::cmp::Ordering::Equal);
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        // `indexed` is a permutation, so each row is taken exactly once.
        rows = indexed.into_iter().map(|i| std::mem::take(&mut rows[i])).collect();
    }

    // 6. DISTINCT.
    if stmt.distinct {
        let mut seen: Vec<Vec<Value>> = Vec::new();
        rows.retain(|row| {
            if seen.contains(row) {
                false
            } else {
                seen.push(row.clone());
                true
            }
        });
    }

    Ok(QueryResult { columns, rows })
}

/// Join one FROM item to the accumulated combinations through a secondary
/// index: per combination, evaluate the key expressions, hash, fetch
/// candidate slots, and materialize frames only for candidates (cached per
/// slot, shared via `Rc`). Candidates are re-verified against every
/// applicable conjunct in [`extend_combo`], so a hash collision or SQL's
/// non-transitive numeric-string equality can never leak a wrong row.
#[allow(clippy::too_many_arguments)]
fn probe_index_item(
    ctx: &mut ExecCtx,
    item: &FromItem,
    index_name: &Ident,
    key_exprs: &[Expr],
    combos: &[Vec<Rc<Frame>>],
    applicable: &[&Expr],
    outer: Option<&Env>,
    item_idx: usize,
    slot_map: &mut HashMap<usize, usize>,
) -> Result<Vec<Vec<Rc<Frame>>>, DbError> {
    let FromItem::Table { name, alias } = item else {
        return Err(DbError::Execution("index probe planned for a non-table FROM item".into()));
    };
    let binding = alias.clone().unwrap_or_else(|| name.clone());
    // The planner only picks an index probe for a cataloged plain table.
    let table = ctx
        .catalog
        .get_table(name)
        .cloned()
        .ok_or_else(|| DbError::UnknownTable(name.as_str().to_string()))?;
    let columns: Vec<Ident> =
        ctx.catalog.table_columns(&table).into_iter().map(|(c, _)| c).collect();
    let object_type = match &table {
        TableDef::Object { of_type, .. } => Some(of_type.clone()),
        _ => None,
    };
    // Copy the shared storage reference out of the context so probe results
    // (borrowed from storage) stay usable while `ctx` is mutably borrowed
    // for expression evaluation.
    let storage = ctx.storage;
    let data = storage
        .table(name)
        .ok_or_else(|| DbError::UnknownTable(name.as_str().to_string()))?;
    ctx.stats.index_scans += 1;

    let mut cache: HashMap<usize, Rc<Frame>> = HashMap::new();
    let mut next: Vec<Vec<Rc<Frame>>> = Vec::new();
    for combo in combos {
        let env = make_env(combo, outer);
        let mut key_values = Vec::with_capacity(key_exprs.len());
        for expr in key_exprs {
            key_values.push(eval_expr(ctx, &env, expr)?);
        }
        // A NULL key component can never satisfy the equality; a composite
        // (object/collection) probe value can never equal the scalar/REF
        // values an index is allowed to hold. Either way: no matches.
        let key_refs: Vec<&Value> = key_values.iter().collect();
        let Some(hash) = key_hash(&key_refs) else {
            continue;
        };
        let Some(slots) = storage.index_probe(index_name, hash) else {
            // Freshness was checked before entering; storage is immutable
            // for the duration of the SELECT.
            return Err(DbError::Execution(format!(
                "index '{index_name}' disappeared mid-statement"
            )));
        };
        ctx.stats.rows_scanned += slots.len() as u64;
        if item_idx > 0 {
            ctx.stats.join_pairs += slots.len() as u64;
        }
        for &slot in slots {
            let frame = cache
                .entry(slot)
                .or_insert_with(|| {
                    let row = &data.rows[slot];
                    let frame = Rc::new(Frame {
                        binding: binding.clone(),
                        columns: columns.clone(),
                        values: row.values.clone(),
                        oid: row.oid,
                        object_type: object_type.clone(),
                    });
                    slot_map.insert(Rc::as_ptr(&frame) as usize, slot);
                    frame
                })
                .clone();
            extend_combo(ctx, combo, frame, applicable, outer, &mut next)?;
        }
    }
    Ok(next)
}

/// How one FROM item is matched against the accumulated combinations.
/// Chosen by [`plan_select`] from the catalog alone (indexes + ANALYZE
/// statistics), so EXPLAIN and execution agree on every plan.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum AccessPath {
    /// Expand every row; nested-loop against the combinations.
    Scan,
    /// Expand every row, hash on `build`, probe once per combination.
    HashJoin { probe: Expr, build: Expr },
    /// Skip expansion entirely: per combination, evaluate `keys` (in the
    /// index's column order), hash, and fetch candidate slots from the
    /// named secondary index. Candidates are re-verified against the real
    /// conjuncts — the index is a prefilter, exactly like the hash join.
    IndexProbe { index: Ident, keys: Vec<Expr> },
}

/// The cost-based plan for one SELECT: join order, per-item access paths,
/// scheduled conjuncts — everything both the executor and EXPLAIN need.
pub(crate) struct SelectPlan {
    /// Execution order as original FROM indices (`order[pos]` = which
    /// original item runs at position `pos`).
    pub order: Vec<usize>,
    /// True when `order` differs from FROM-clause order. The executor then
    /// restores the original combination enumeration order afterwards, so
    /// results stay byte-identical to the naive plan.
    pub reordered: bool,
    /// True when the planner priced the join order from ANALYZE statistics.
    pub costed: bool,
    /// WHERE conjuncts with the execution position each is scheduled at
    /// (`usize::MAX` = deferred to the residual filter).
    pub scheduled: Vec<(usize, Expr)>,
    /// Access path per execution position.
    pub paths: Vec<AccessPath>,
    /// Estimated rows this item contributes per execution position, from
    /// ANALYZE statistics (`None` when the table was never analyzed).
    pub est_rows: Vec<Option<u64>>,
}

/// Plan a SELECT from the catalog alone — no storage access, so plans are
/// data-independent (EXPLAIN's contract) and identical between EXPLAIN and
/// execution.
pub(crate) fn plan_select(
    catalog: &Catalog,
    hash_joins: bool,
    cost_planner: bool,
    stmt: &SelectStmt,
) -> SelectPlan {
    let n = stmt.from.len();
    let orig_bindings: Vec<Ident> = stmt.from.iter().map(FromItem::binding).collect();
    let mut conjuncts: Vec<Expr> = Vec::new();
    if let Some(pred) = &stmt.where_clause {
        split_and(pred, &mut conjuncts);
    }

    // Join order: System-R-style greedy — ascending local-cardinality
    // estimate, but never introducing a cross product: after the seed item,
    // each pick must share a join conjunct with the chosen prefix (a
    // disconnected low-estimate item placed early multiplies every prefix
    // combo by its full row count). Only when every FROM item is a
    // distinct-binding plain table with ANALYZE statistics (lateral
    // TABLE(...) items and views pin FROM order, and without statistics
    // there is nothing to cost).
    let mut order: Vec<usize> = (0..n).collect();
    let mut costed = false;
    if cost_planner && n > 1 && reorderable(catalog, stmt, &orig_bindings) {
        let est: Vec<u64> = (0..n)
            .map(|i| local_estimate(catalog, stmt, &orig_bindings, i, &conjuncts))
            .collect();
        // Join graph: i ~ j when some conjunct references both bindings.
        let mut adjacent = vec![vec![false; n]; n];
        for conjunct in &conjuncts {
            if let Some(positions) = side_positions(conjunct, &orig_bindings) {
                for &i in &positions {
                    for &j in &positions {
                        adjacent[i][j] = true;
                    }
                }
            }
        }
        let mut chosen = vec![false; n];
        order.clear();
        while order.len() < n {
            let connected = |i: usize| order.iter().any(|&j| adjacent[i][j]);
            let pick = (0..n)
                .filter(|&i| !chosen[i] && (order.is_empty() || connected(i)))
                .min_by_key(|&i| (est[i], i))
                // Disconnected remainder (a genuine cross product in the
                // query): fall back to the cheapest item.
                .unwrap_or_else(|| {
                    (0..n).filter(|&i| !chosen[i]).min_by_key(|&i| (est[i], i)).unwrap()
                });
            chosen[pick] = true;
            order.push(pick);
        }
        costed = true;
    }
    let reordered = order.iter().enumerate().any(|(pos, &i)| pos != i);

    // Schedule conjuncts at the earliest *execution* position where all
    // their bindings are bound.
    let bindings: Vec<Ident> = order.iter().map(|&i| orig_bindings[i].clone()).collect();
    let mut scheduled: Vec<(usize, Expr)> = Vec::new();
    for conjunct in conjuncts {
        let position = conjunct_position(&conjunct, &bindings);
        scheduled.push((position, conjunct));
    }

    let mut paths = Vec::with_capacity(n);
    let mut est_rows = Vec::with_capacity(n);
    for (pos, &orig) in order.iter().enumerate() {
        let item = &stmt.from[orig];
        let applicable: Vec<&Expr> =
            scheduled.iter().filter(|(p, _)| *p == pos).map(|(_, e)| e).collect();
        let (path, est) =
            plan_item_path(catalog, hash_joins, cost_planner, &bindings, pos, item, &applicable);
        paths.push(path);
        est_rows.push(est);
    }
    SelectPlan { order, reordered, costed, scheduled, paths, est_rows }
}

/// Can this FROM clause be reordered? Requires all plain analyzed tables
/// with pairwise-distinct bindings (enumeration-order restoration maps each
/// frame back to its heap slot, which only plain tables make possible).
fn reorderable(catalog: &Catalog, stmt: &SelectStmt, bindings: &[Ident]) -> bool {
    let all_plain = stmt.from.iter().all(|item| match item {
        FromItem::Table { name, .. } => {
            catalog.get_table(name).is_some() && catalog.table_stats(name).is_some()
        }
        FromItem::CollectionTable { .. } => false,
    });
    let distinct = bindings.iter().all(|b| bindings.iter().filter(|o| *o == b).count() == 1);
    all_plain && distinct
}

/// Cardinality estimate for one FROM item considering only its *local*
/// predicates (equality against constants): `rows / ndv(col)`, or 1 for a
/// UNIQUE-indexed key — the ordering key for the greedy join order.
fn local_estimate(
    catalog: &Catalog,
    stmt: &SelectStmt,
    bindings: &[Ident],
    item: usize,
    conjuncts: &[Expr],
) -> u64 {
    let FromItem::Table { name, .. } = &stmt.from[item] else {
        return u64::MAX;
    };
    let Some(stats) = catalog.table_stats(name) else {
        return u64::MAX;
    };
    let mut est = stats.rows;
    for conjunct in conjuncts {
        let Some((col, other)) = equality_key(conjunct, bindings, item) else {
            continue;
        };
        // Local predicate = constant other side (no FROM references).
        if side_positions(other, bindings) != Some(Vec::new()) {
            continue;
        }
        let unique = catalog
            .indexes_on(name)
            .any(|idx| idx.unique && idx.columns.len() == 1 && idx.columns[0] == col);
        let sel = if unique { 1 } else { (stats.rows / stats.ndv(&col)).max(1) };
        est = est.min(sel);
    }
    est
}

/// If `conjunct` is `binding.col = expr` (or mirrored) where `binding` is
/// the FROM item at `item_idx` and `expr` references only earlier items or
/// constants, return the column and the probe-side expression.
fn equality_key<'a>(
    conjunct: &'a Expr,
    bindings: &[Ident],
    item_idx: usize,
) -> Option<(Ident, &'a Expr)> {
    let Expr::Binary { op: BinOp::Eq, lhs, rhs } = conjunct else {
        return None;
    };
    let as_key = |side: &'a Expr, other: &'a Expr| -> Option<(Ident, &'a Expr)> {
        let Expr::Path(parts) = side else { return None };
        let [binding, col] = parts.as_slice() else { return None };
        if binding != &bindings[item_idx] {
            return None;
        }
        let other_pos = side_positions(other, bindings)?;
        if other_pos.iter().all(|&p| p < item_idx) {
            Some((col.clone(), other))
        } else {
            None
        }
    };
    as_key(lhs, rhs).or_else(|| as_key(rhs, lhs))
}

/// Choose the access path for the item at execution position `pos`:
/// a secondary-index probe when one covers the available equality keys
/// (cost: `rows/ndv` candidates per probe, always ≤ a scan), else the hash
/// equi-join, else a scan.
fn plan_item_path(
    catalog: &Catalog,
    hash_joins: bool,
    cost_planner: bool,
    bindings: &[Ident],
    pos: usize,
    item: &FromItem,
    applicable: &[&Expr],
) -> (AccessPath, Option<u64>) {
    let table_name = match item {
        FromItem::Table { name, .. } if catalog.get_table(name).is_some() => Some(name),
        _ => None,
    };
    let stats = table_name.and_then(|t| catalog.table_stats(t));
    let mut est = stats.map(|s| s.rows);
    if cost_planner {
        if let Some(table) = table_name {
            let keyed: Vec<(Ident, &Expr)> =
                applicable.iter().filter_map(|c| equality_key(c, bindings, pos)).collect();
            // Widest covered index wins (name order breaks ties — the
            // iterator is name-ordered and `>` keeps the first).
            let mut best: Option<(&crate::catalog::IndexDef, Vec<Expr>)> = None;
            for idx in catalog.indexes_on(table) {
                let covered = idx
                    .columns
                    .iter()
                    .all(|ic| keyed.iter().any(|(col, _)| col == ic));
                if !covered {
                    continue;
                }
                let wider = best.as_ref().is_none_or(|(b, _)| idx.columns.len() > b.columns.len());
                if wider {
                    let keys = idx
                        .columns
                        .iter()
                        .map(|ic| keyed.iter().find(|(col, _)| col == ic).unwrap().1.clone())
                        .collect();
                    best = Some((idx, keys));
                }
            }
            if let Some((idx, keys)) = best {
                if let Some(s) = stats {
                    est = Some(if idx.unique {
                        1
                    } else {
                        let ndv = idx.columns.iter().map(|c| s.ndv(c)).max().unwrap_or(1).max(1);
                        (s.rows / ndv).max(1)
                    });
                }
                return (AccessPath::IndexProbe { index: idx.name.clone(), keys }, est);
            }
        }
    }
    if hash_joins && pos > 0 {
        if let Some((probe, build)) =
            applicable.first().and_then(|c| plan_hash_join(c, bindings, pos))
        {
            return (AccessPath::HashJoin { probe: probe.clone(), build: build.clone() }, est);
        }
    }
    (AccessPath::Scan, est)
}

/// Append `frame` to `combo` and keep the result in `next` iff every
/// applicable conjunct evaluates to TRUE. Shared by the nested-loop and
/// hash-probe paths so filtering (and error surfacing) is identical.
fn extend_combo(
    ctx: &mut ExecCtx,
    combo: &[Rc<Frame>],
    frame: Rc<Frame>,
    applicable: &[&Expr],
    outer: Option<&Env>,
    next: &mut Vec<Vec<Rc<Frame>>>,
) -> Result<(), DbError> {
    let mut extended = combo.to_vec();
    extended.push(frame);
    for conjunct in applicable {
        let env = make_env(&extended, outer);
        if eval_bool(ctx, &env, conjunct)? != Some(true) {
            return Ok(());
        }
    }
    next.push(extended);
    Ok(())
}

/// If `conjunct` is an equality between an expression bound solely by the
/// FROM item at `item_idx` and an expression bound only by earlier items
/// (or constant), return `(probe_expr, build_expr)`: probe is evaluated
/// against each accumulated combination, build against the new item's rows.
pub(crate) fn plan_hash_join<'a>(
    conjunct: &'a Expr,
    bindings: &[Ident],
    item_idx: usize,
) -> Option<(&'a Expr, &'a Expr)> {
    let Expr::Binary { op: BinOp::Eq, lhs, rhs } = conjunct else {
        return None;
    };
    let lhs_pos = side_positions(lhs, bindings)?;
    let rhs_pos = side_positions(rhs, bindings)?;
    let is_build = |pos: &[usize]| pos == [item_idx];
    let is_probe = |pos: &[usize]| pos.iter().all(|&p| p < item_idx);
    if is_build(&lhs_pos) && is_probe(&rhs_pos) {
        Some((rhs, lhs))
    } else if is_build(&rhs_pos) && is_probe(&lhs_pos) {
        Some((lhs, rhs))
    } else {
        None
    }
}

/// FROM positions one side of a conjunct references, or `None` when it
/// references anything not attributable to a binding (unqualified columns,
/// outer scopes) or contains a subquery.
fn side_positions(expr: &Expr, bindings: &[Ident]) -> Option<Vec<usize>> {
    if has_subquery(expr) {
        return None;
    }
    let mut positions: Vec<usize> = Vec::new();
    let mut unresolved = false;
    visit_refs(expr, &mut |head| match bindings.iter().position(|b| b == head) {
        Some(pos) => {
            if !positions.contains(&pos) {
                positions.push(pos);
            }
        }
        None => unresolved = true,
    });
    if unresolved {
        None
    } else {
        Some(positions)
    }
}

/// Flatten nested ANDs into a conjunct list.
pub(crate) fn split_and(expr: &Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::Binary { op: crate::sql::ast::BinOp::And, lhs, rhs } => {
            split_and(lhs, out);
            split_and(rhs, out);
        }
        other => out.push(other.clone()),
    }
}

/// Earliest FROM index after which a conjunct can be evaluated: the maximum
/// position of any binding it references. Conjuncts referencing anything we
/// cannot attribute to a binding (unqualified columns, subqueries, outer
/// scopes) are deferred (`usize::MAX`).
pub(crate) fn conjunct_position(expr: &Expr, bindings: &[Ident]) -> usize {
    let mut max_pos = 0usize;
    let mut deferred = false;
    visit_refs(expr, &mut |head| {
        match bindings.iter().position(|b| b == head) {
            Some(pos) => max_pos = max_pos.max(pos),
            None => deferred = true,
        }
    });
    if has_subquery(expr) {
        deferred = true;
    }
    if deferred {
        usize::MAX
    } else {
        max_pos
    }
}

fn visit_refs(expr: &Expr, visit: &mut impl FnMut(&Ident)) {
    match expr {
        Expr::Path(parts) => {
            if let Some(head) = parts.first() {
                visit(head);
            }
        }
        Expr::RefOf(alias) => visit(alias),
        Expr::Call { args, .. } => {
            for arg in args {
                visit_refs(arg, visit);
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            visit_refs(lhs, visit);
            visit_refs(rhs, visit);
        }
        Expr::Not(inner) | Expr::Deref(inner) => visit_refs(inner, visit),
        Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => visit_refs(expr, visit),
        Expr::Literal(_) | Expr::CountStar => {}
        // Subqueries handled by `has_subquery`.
        Expr::Subquery(_) | Expr::CastMultiset { .. } | Expr::Exists(_) => {}
    }
}

fn has_subquery(expr: &Expr) -> bool {
    match expr {
        Expr::Subquery(_) | Expr::CastMultiset { .. } | Expr::Exists(_) => true,
        Expr::Call { args, .. } => args.iter().any(has_subquery),
        Expr::Binary { lhs, rhs, .. } => has_subquery(lhs) || has_subquery(rhs),
        Expr::Not(inner) | Expr::Deref(inner) => has_subquery(inner),
        Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => has_subquery(expr),
        _ => false,
    }
}

fn make_env<'a>(frames: &'a [Rc<Frame>], outer: Option<&'a Env<'a>>) -> Env<'a> {
    match outer {
        Some(parent) => Env::with_parent(frames, parent),
        None => Env::new(frames),
    }
}

fn item_column_name(item: &crate::sql::ast::SelectItem, index: usize) -> String {
    if let Some(alias) = &item.alias {
        return alias.as_str().to_string();
    }
    match &item.expr {
        // invariant: the parser never produces an empty dot path.
        Expr::Path(parts) => parts.last().unwrap().as_str().to_string(),
        _ => format!("COL{}", index + 1),
    }
}

/// Column names a `SELECT *` would produce when there are no rows.
fn star_columns(ctx: &ExecCtx, stmt: &SelectStmt) -> Result<Vec<String>, DbError> {
    let mut out = Vec::new();
    for item in &stmt.from {
        if let FromItem::Table { name, .. } = item {
            if let Some(table) = ctx.catalog.get_table(name) {
                for (col, _) in ctx.catalog.table_columns(table) {
                    out.push(col.as_str().to_string());
                }
            }
        }
    }
    Ok(out)
}

/// Produce the frames of one FROM item given the already-bound combo.
fn expand_from_item(
    ctx: &mut ExecCtx,
    item: &FromItem,
    combo: &[Rc<Frame>],
    outer: Option<&Env>,
) -> Result<Vec<Frame>, DbError> {
    match item {
        FromItem::Table { name, alias } => {
            let binding = alias.clone().unwrap_or_else(|| name.clone());
            // A real table?
            if let Some(table) = ctx.catalog.get_table(name).cloned() {
                let columns: Vec<Ident> =
                    ctx.catalog.table_columns(&table).into_iter().map(|(c, _)| c).collect();
                let object_type = match &table {
                    TableDef::Object { of_type, .. } => Some(of_type.clone()),
                    _ => None,
                };
                let data = ctx
                    .storage
                    .table(name)
                    .ok_or_else(|| DbError::UnknownTable(name.as_str().to_string()))?;
                return Ok(data
                    .rows
                    .iter()
                    .map(|row| Frame {
                        binding: binding.clone(),
                        columns: columns.clone(),
                        values: row.values.clone(),
                        oid: row.oid,
                        object_type: object_type.clone(),
                    })
                    .collect());
            }
            // A view? Execute its stored query (no outer env: views are
            // self-contained).
            if let Some(view) = ctx.catalog.get_view(name).cloned() {
                let result = execute_select(ctx, &view.query, None)?;
                let columns: Vec<Ident> =
                    result.columns.iter().map(|c| Ident::internal(c)).collect();
                return Ok(result
                    .rows
                    .into_iter()
                    .map(|values| Frame {
                        binding: binding.clone(),
                        columns: columns.clone(),
                        values,
                        oid: None,
                        object_type: None,
                    })
                    .collect());
            }
            Err(DbError::UnknownTable(name.as_str().to_string()))
        }
        FromItem::CollectionTable { expr, alias } => {
            let binding = alias.clone().unwrap_or_else(|| Ident::internal("COLLECTION"));
            let env = make_env(combo, outer);
            let value = eval_expr(ctx, &env, expr)?;
            let elements = match value {
                Value::Null => Vec::new(),
                Value::Coll { elements, .. } => elements,
                other => {
                    return Err(DbError::TypeMismatch {
                        expected: "collection".into(),
                        found: other.to_sql_literal(),
                    })
                }
            };
            let mut frames = Vec::with_capacity(elements.len());
            for element in elements {
                frames.push(collection_element_frame(ctx, &binding, element)?);
            }
            Ok(frames)
        }
    }
}

/// Build the frame for one un-nested collection element: object elements
/// expose their attributes; scalar elements appear as Oracle's
/// `COLUMN_VALUE` pseudo-column.
fn collection_element_frame(
    ctx: &ExecCtx,
    binding: &Ident,
    element: Value,
) -> Result<Frame, DbError> {
    match element {
        Value::Obj { type_name, attrs } => {
            let def = ctx
                .catalog
                .get_type(&type_name)
                .ok_or_else(|| DbError::UnknownType(type_name.as_str().to_string()))?;
            let columns: Vec<Ident> =
                def.object_attrs().iter().map(|(n, _)| n.clone()).collect();
            Ok(Frame {
                binding: binding.clone(),
                columns,
                values: attrs,
                oid: None,
                object_type: Some(type_name),
            })
        }
        scalar => Ok(Frame {
            binding: binding.clone(),
            columns: vec![Ident::internal("COLUMN_VALUE")],
            values: vec![scalar],
            oid: None,
            object_type: None,
        }),
    }
}

//! SELECT execution: nested-loop FROM evaluation (with lateral visibility
//! for `TABLE(...)` un-nesting), WHERE filtering, projection, DISTINCT and
//! ORDER BY. Views — object views included (§6.3) — expand inline.

use crate::catalog::TableDef;
use crate::error::DbError;
use crate::exec::eval::{eval_bool, eval_expr, ExecCtx};
use crate::exec::{Env, Frame};
use crate::ident::Ident;
use crate::sql::ast::{Expr, FromItem, SelectStmt};
use crate::value::Value;
use std::rc::Rc;

/// A query result: column names and rows.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

impl QueryResult {
    /// Index of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.eq_ignore_ascii_case(name))
    }

    /// Single-value convenience accessor.
    pub fn scalar(&self) -> Option<&Value> {
        match (self.rows.len(), self.rows.first()) {
            (1, Some(row)) if row.len() == 1 => Some(&row[0]),
            _ => None,
        }
    }
}

/// Execute a SELECT. `outer` carries the enclosing environment for
/// correlated subqueries.
pub fn execute_select(
    ctx: &mut ExecCtx,
    stmt: &SelectStmt,
    outer: Option<&Env>,
) -> Result<QueryResult, DbError> {
    // 0. Split the WHERE clause into AND-conjuncts and schedule each at the
    //    earliest FROM position where all bindings it references are bound —
    //    without this pushdown, self-join chains (the edge-table baseline
    //    runs 7-way joins) materialize the full cross product.
    let bindings: Vec<Ident> = stmt.from.iter().map(FromItem::binding).collect();
    let mut conjuncts: Vec<Expr> = Vec::new();
    if let Some(pred) = &stmt.where_clause {
        split_and(pred, &mut conjuncts);
    }
    let mut scheduled: Vec<(usize, Expr)> = Vec::new();
    for conjunct in conjuncts {
        let position = conjunct_position(&conjunct, &bindings);
        scheduled.push((position, conjunct));
    }

    // 1. FROM: build row combinations left to right (nested loops). Later
    //    items see earlier bindings (needed by TABLE(t.attr) un-nesting),
    //    and conjuncts filter as soon as their inputs are bound.
    let mut combos: Vec<Vec<Rc<Frame>>> = vec![Vec::new()];
    if stmt.from.len() > 1 {
        ctx.stats.join_queries += 1;
    }
    for (item_idx, item) in stmt.from.iter().enumerate() {
        let applicable: Vec<&Expr> = scheduled
            .iter()
            .filter(|(pos, _)| *pos == item_idx)
            .map(|(_, e)| e)
            .collect();
        let mut next: Vec<Vec<Rc<Frame>>> = Vec::new();
        for combo in &combos {
            let frames = expand_from_item(ctx, item, combo, outer)?;
            ctx.stats.rows_scanned += frames.len() as u64;
            if item_idx > 0 {
                ctx.stats.join_pairs += frames.len() as u64;
            }
            for frame in frames {
                let mut extended = combo.clone();
                extended.push(Rc::new(frame));
                let mut keep = true;
                for conjunct in &applicable {
                    let env = make_env(&extended, outer);
                    if eval_bool(ctx, &env, conjunct)? != Some(true) {
                        keep = false;
                        break;
                    }
                }
                if keep {
                    next.push(extended);
                }
            }
        }
        combos = next;
    }

    // 2. Residual WHERE conjuncts (those deferred to the end).
    let final_pos = stmt.from.len().saturating_sub(1);
    let residual: Vec<&Expr> = scheduled
        .iter()
        .filter(|(pos, _)| *pos > final_pos)
        .map(|(_, e)| e)
        .collect();
    let mut surviving: Vec<Vec<Rc<Frame>>> = Vec::new();
    for combo in combos {
        let mut keep = true;
        for conjunct in &residual {
            let env = make_env(&combo, outer);
            if eval_bool(ctx, &env, conjunct)? != Some(true) {
                keep = false;
                break;
            }
        }
        if keep {
            surviving.push(combo);
        }
    }

    // 3. Aggregate shortcut: COUNT(*) queries.
    if !stmt.star && stmt.items.iter().any(|i| matches!(i.expr, Expr::CountStar)) {
        if stmt.items.len() != 1 {
            return Err(DbError::Execution(
                "COUNT(*) cannot be combined with other select items".into(),
            ));
        }
        let name = stmt.items[0]
            .alias
            .as_ref()
            .map(|a| a.as_str().to_string())
            .unwrap_or_else(|| "COUNT(*)".to_string());
        return Ok(QueryResult {
            columns: vec![name],
            rows: vec![vec![Value::Num(surviving.len() as f64)]],
        });
    }

    // 4. Projection.
    let mut columns: Vec<String> = Vec::new();
    let mut rows: Vec<Vec<Value>> = Vec::new();
    let mut order_keys: Vec<Vec<Value>> = Vec::new();
    for (row_idx, combo) in surviving.iter().enumerate() {
        let env = make_env(combo, outer);
        let mut row = Vec::new();
        if stmt.star {
            for frame in combo {
                for (col, val) in frame.columns.iter().zip(&frame.values) {
                    if row_idx == 0 {
                        columns.push(col.as_str().to_string());
                    }
                    row.push(val.clone());
                }
            }
        } else {
            for (i, item) in stmt.items.iter().enumerate() {
                if row_idx == 0 {
                    columns.push(item_column_name(item, i));
                }
                row.push(eval_expr(ctx, &env, &item.expr)?);
            }
        }
        if !stmt.order_by.is_empty() {
            let mut keys = Vec::new();
            for (expr, _) in &stmt.order_by {
                keys.push(eval_expr(ctx, &env, expr)?);
            }
            order_keys.push(keys);
        }
        rows.push(row);
    }
    if columns.is_empty() {
        // No rows: still report column names.
        if stmt.star {
            columns = star_columns(ctx, stmt)?;
        } else {
            columns = stmt
                .items
                .iter()
                .enumerate()
                .map(|(i, item)| item_column_name(item, i))
                .collect();
        }
    }

    // 5. ORDER BY (stable sort on the precomputed keys).
    if !stmt.order_by.is_empty() {
        let mut indexed: Vec<usize> = (0..rows.len()).collect();
        indexed.sort_by(|&a, &b| {
            for (k, (_, asc)) in stmt.order_by.iter().enumerate() {
                let ord = order_keys[a][k]
                    .sql_cmp(&order_keys[b][k])
                    .unwrap_or(std::cmp::Ordering::Equal);
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        rows = indexed.into_iter().map(|i| rows[i].clone()).collect();
    }

    // 6. DISTINCT.
    if stmt.distinct {
        let mut seen: Vec<Vec<Value>> = Vec::new();
        rows.retain(|row| {
            if seen.contains(row) {
                false
            } else {
                seen.push(row.clone());
                true
            }
        });
    }

    Ok(QueryResult { columns, rows })
}

/// Flatten nested ANDs into a conjunct list.
fn split_and(expr: &Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::Binary { op: crate::sql::ast::BinOp::And, lhs, rhs } => {
            split_and(lhs, out);
            split_and(rhs, out);
        }
        other => out.push(other.clone()),
    }
}

/// Earliest FROM index after which a conjunct can be evaluated: the maximum
/// position of any binding it references. Conjuncts referencing anything we
/// cannot attribute to a binding (unqualified columns, subqueries, outer
/// scopes) are deferred (`usize::MAX`).
fn conjunct_position(expr: &Expr, bindings: &[Ident]) -> usize {
    let mut max_pos = 0usize;
    let mut deferred = false;
    visit_refs(expr, &mut |head| {
        match bindings.iter().position(|b| b == head) {
            Some(pos) => max_pos = max_pos.max(pos),
            None => deferred = true,
        }
    });
    if has_subquery(expr) {
        deferred = true;
    }
    if deferred {
        usize::MAX
    } else {
        max_pos
    }
}

fn visit_refs(expr: &Expr, visit: &mut impl FnMut(&Ident)) {
    match expr {
        Expr::Path(parts) => {
            if let Some(head) = parts.first() {
                visit(head);
            }
        }
        Expr::RefOf(alias) => visit(alias),
        Expr::Call { args, .. } => {
            for arg in args {
                visit_refs(arg, visit);
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            visit_refs(lhs, visit);
            visit_refs(rhs, visit);
        }
        Expr::Not(inner) | Expr::Deref(inner) => visit_refs(inner, visit),
        Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => visit_refs(expr, visit),
        Expr::Literal(_) | Expr::CountStar => {}
        // Subqueries handled by `has_subquery`.
        Expr::Subquery(_) | Expr::CastMultiset { .. } | Expr::Exists(_) => {}
    }
}

fn has_subquery(expr: &Expr) -> bool {
    match expr {
        Expr::Subquery(_) | Expr::CastMultiset { .. } | Expr::Exists(_) => true,
        Expr::Call { args, .. } => args.iter().any(has_subquery),
        Expr::Binary { lhs, rhs, .. } => has_subquery(lhs) || has_subquery(rhs),
        Expr::Not(inner) | Expr::Deref(inner) => has_subquery(inner),
        Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => has_subquery(expr),
        _ => false,
    }
}

fn make_env<'a>(frames: &'a [Rc<Frame>], outer: Option<&'a Env<'a>>) -> Env<'a> {
    match outer {
        Some(parent) => Env::with_parent(frames, parent),
        None => Env::new(frames),
    }
}

fn item_column_name(item: &crate::sql::ast::SelectItem, index: usize) -> String {
    if let Some(alias) = &item.alias {
        return alias.as_str().to_string();
    }
    match &item.expr {
        Expr::Path(parts) => parts.last().unwrap().as_str().to_string(),
        _ => format!("COL{}", index + 1),
    }
}

/// Column names a `SELECT *` would produce when there are no rows.
fn star_columns(ctx: &ExecCtx, stmt: &SelectStmt) -> Result<Vec<String>, DbError> {
    let mut out = Vec::new();
    for item in &stmt.from {
        if let FromItem::Table { name, .. } = item {
            if let Some(table) = ctx.catalog.get_table(name) {
                for (col, _) in ctx.catalog.table_columns(table) {
                    out.push(col.as_str().to_string());
                }
            }
        }
    }
    Ok(out)
}

/// Produce the frames of one FROM item given the already-bound combo.
fn expand_from_item(
    ctx: &mut ExecCtx,
    item: &FromItem,
    combo: &[Rc<Frame>],
    outer: Option<&Env>,
) -> Result<Vec<Frame>, DbError> {
    match item {
        FromItem::Table { name, alias } => {
            let binding = alias.clone().unwrap_or_else(|| name.clone());
            // A real table?
            if let Some(table) = ctx.catalog.get_table(name).cloned() {
                let columns: Vec<Ident> =
                    ctx.catalog.table_columns(&table).into_iter().map(|(c, _)| c).collect();
                let object_type = match &table {
                    TableDef::Object { of_type, .. } => Some(of_type.clone()),
                    _ => None,
                };
                let data = ctx
                    .storage
                    .table(name)
                    .ok_or_else(|| DbError::UnknownTable(name.as_str().to_string()))?;
                return Ok(data
                    .rows
                    .iter()
                    .map(|row| Frame {
                        binding: binding.clone(),
                        columns: columns.clone(),
                        values: row.values.clone(),
                        oid: row.oid,
                        object_type: object_type.clone(),
                    })
                    .collect());
            }
            // A view? Execute its stored query (no outer env: views are
            // self-contained).
            if let Some(view) = ctx.catalog.get_view(name).cloned() {
                let result = execute_select(ctx, &view.query, None)?;
                let columns: Vec<Ident> =
                    result.columns.iter().map(|c| Ident::internal(c)).collect();
                return Ok(result
                    .rows
                    .into_iter()
                    .map(|values| Frame {
                        binding: binding.clone(),
                        columns: columns.clone(),
                        values,
                        oid: None,
                        object_type: None,
                    })
                    .collect());
            }
            Err(DbError::UnknownTable(name.as_str().to_string()))
        }
        FromItem::CollectionTable { expr, alias } => {
            let binding = alias.clone().unwrap_or_else(|| Ident::internal("COLLECTION"));
            let env = make_env(combo, outer);
            let value = eval_expr(ctx, &env, expr)?;
            let elements = match value {
                Value::Null => Vec::new(),
                Value::Coll { elements, .. } => elements,
                other => {
                    return Err(DbError::TypeMismatch {
                        expected: "collection".into(),
                        found: other.to_sql_literal(),
                    })
                }
            };
            let mut frames = Vec::with_capacity(elements.len());
            for element in elements {
                frames.push(collection_element_frame(ctx, &binding, element)?);
            }
            Ok(frames)
        }
    }
}

/// Build the frame for one un-nested collection element: object elements
/// expose their attributes; scalar elements appear as Oracle's
/// `COLUMN_VALUE` pseudo-column.
fn collection_element_frame(
    ctx: &ExecCtx,
    binding: &Ident,
    element: Value,
) -> Result<Frame, DbError> {
    match element {
        Value::Obj { type_name, attrs } => {
            let def = ctx
                .catalog
                .get_type(&type_name)
                .ok_or_else(|| DbError::UnknownType(type_name.as_str().to_string()))?;
            let columns: Vec<Ident> =
                def.object_attrs().iter().map(|(n, _)| n.clone()).collect();
            Ok(Frame {
                binding: binding.clone(),
                columns,
                values: attrs,
                oid: None,
                object_type: Some(type_name),
            })
        }
        scalar => Ok(Frame {
            binding: binding.clone(),
            columns: vec![Ident::internal("COLUMN_VALUE")],
            values: vec![scalar],
            oid: None,
            object_type: None,
        }),
    }
}

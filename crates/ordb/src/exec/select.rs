//! SELECT execution: FROM evaluation with hash equi-joins and a nested-loop
//! fallback (with lateral visibility for `TABLE(...)` un-nesting), WHERE
//! filtering, projection, DISTINCT and ORDER BY. Views — object views
//! included (§6.3) — expand inline.
//!
//! ## Join strategy selection
//!
//! Each FROM item beyond the first is joined to the accumulated row
//! combinations one of two ways:
//!
//! * **Hash equi-join** — when the first WHERE conjunct scheduled at this
//!   item is an equality whose one side references only this item's binding
//!   and whose other side is bound by earlier items (or constant), the
//!   item's rows are hashed once on the join key ([`Value::join_key`]) and
//!   each combination probes the table. Because SQL's numeric string
//!   coercion makes `sql_eq` non-transitive (`'04' = 4` but `'04' <> '4'`),
//!   the hash is a *prefilter*: every candidate is re-checked with the real
//!   predicate, so results are identical to the nested loop — the
//!   edge-table baseline's 7-way self-joins just stop being O(n²) per step.
//! * **Nested loop** — everything else, including all lateral
//!   `TABLE(expr)` items (their rows depend on the current combination).
//!
//! Non-lateral items are expanded exactly once and their frames shared via
//! `Rc` across all combinations, so a table joined against a thousand
//! combos no longer clones its rows a thousand times.

use crate::catalog::TableDef;
use crate::error::DbError;
use crate::exec::eval::{eval_bool, eval_expr, ExecCtx};
use crate::exec::{Env, Frame};
use crate::ident::Ident;
use crate::sql::ast::{BinOp, Expr, FromItem, SelectStmt};
use crate::value::{JoinKey, Value};
use std::collections::HashMap;
use std::rc::Rc;

/// A query result: column names and rows.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

impl QueryResult {
    /// Index of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.eq_ignore_ascii_case(name))
    }

    /// Single-value convenience accessor.
    pub fn scalar(&self) -> Option<&Value> {
        match (self.rows.len(), self.rows.first()) {
            (1, Some(row)) if row.len() == 1 => Some(&row[0]),
            _ => None,
        }
    }
}

/// Execute a SELECT. `outer` carries the enclosing environment for
/// correlated subqueries.
pub fn execute_select(
    ctx: &mut ExecCtx,
    stmt: &SelectStmt,
    outer: Option<&Env>,
) -> Result<QueryResult, DbError> {
    // 0. Split the WHERE clause into AND-conjuncts and schedule each at the
    //    earliest FROM position where all bindings it references are bound —
    //    without this pushdown, self-join chains (the edge-table baseline
    //    runs 7-way joins) materialize the full cross product.
    let bindings: Vec<Ident> = stmt.from.iter().map(FromItem::binding).collect();
    let mut conjuncts: Vec<Expr> = Vec::new();
    if let Some(pred) = &stmt.where_clause {
        split_and(pred, &mut conjuncts);
    }
    let mut scheduled: Vec<(usize, Expr)> = Vec::new();
    for conjunct in conjuncts {
        let position = conjunct_position(&conjunct, &bindings);
        scheduled.push((position, conjunct));
    }

    // 1. FROM: build row combinations left to right. Later items see
    //    earlier bindings (needed by TABLE(t.attr) un-nesting), and
    //    conjuncts filter as soon as their inputs are bound.
    let mut combos: Vec<Vec<Rc<Frame>>> = vec![Vec::new()];
    if stmt.from.len() > 1 {
        ctx.stats.join_queries += 1;
    }
    for (item_idx, item) in stmt.from.iter().enumerate() {
        if combos.is_empty() {
            // An earlier item produced no combinations; nothing to extend
            // (and nothing further should be scanned).
            break;
        }
        let applicable: Vec<&Expr> = scheduled
            .iter()
            .filter(|(pos, _)| *pos == item_idx)
            .map(|(_, e)| e)
            .collect();

        // Lateral items depend on the current combination and must be
        // re-expanded per combo; everything else (tables, views) expands
        // once and shares its frames across combos via Rc.
        if matches!(item, FromItem::CollectionTable { .. }) {
            let mut next: Vec<Vec<Rc<Frame>>> = Vec::new();
            for combo in &combos {
                let frames = expand_from_item(ctx, item, combo, outer)?;
                ctx.stats.rows_scanned += frames.len() as u64;
                if item_idx > 0 {
                    ctx.stats.join_pairs += frames.len() as u64;
                }
                for frame in frames {
                    extend_combo(ctx, combo, Rc::new(frame), &applicable, outer, &mut next)?;
                }
            }
            combos = next;
            continue;
        }

        let frames: Vec<Rc<Frame>> = expand_from_item(ctx, item, &[], outer)?
            .into_iter()
            .map(Rc::new)
            .collect();
        ctx.stats.rows_scanned += frames.len() as u64;

        // Hash path only for the *first* applicable conjunct: the nested
        // loop evaluates conjuncts in scheduled order, so hashing the first
        // one preserves which expression gets evaluated against every row.
        let hash_plan = if ctx.hash_joins && item_idx > 0 {
            applicable
                .first()
                .and_then(|c| plan_hash_join(c, &bindings, item_idx))
        } else {
            None
        };

        let mut next: Vec<Vec<Rc<Frame>>> = Vec::new();
        if let Some((probe_expr, build_expr)) = hash_plan {
            // Build: hash the new item's frames on the join key. NULL keys
            // can never satisfy the equality and are dropped; values
            // without a hashable key (objects, collections) fall into a
            // linear bucket probed only by composite probe values.
            ctx.stats.hash_join_builds += 1;
            let mut table: HashMap<JoinKey, Vec<usize>> = HashMap::new();
            let mut composites: Vec<usize> = Vec::new();
            for (i, frame) in frames.iter().enumerate() {
                let env = make_env(std::slice::from_ref(frame), outer);
                let value = eval_expr(ctx, &env, build_expr)?;
                if value.is_null() {
                    continue;
                }
                match value.join_key() {
                    Some(key) => table.entry(key).or_default().push(i),
                    None => composites.push(i),
                }
            }
            // Probe: one lookup per combination; candidates re-verified
            // with the full conjunct list (hash equality is a prefilter).
            for combo in &combos {
                ctx.stats.hash_join_probes += 1;
                let env = make_env(combo, outer);
                let probe = eval_expr(ctx, &env, probe_expr)?;
                if probe.is_null() {
                    continue;
                }
                let candidates: &[usize] = match probe.join_key() {
                    Some(key) => table.get(&key).map(Vec::as_slice).unwrap_or(&[]),
                    // A composite probe value can only equal composite
                    // build values (scalars compare false against them).
                    None => &composites,
                };
                ctx.stats.join_pairs += candidates.len() as u64;
                for &i in candidates {
                    extend_combo(ctx, combo, frames[i].clone(), &applicable, outer, &mut next)?;
                }
            }
        } else {
            for combo in &combos {
                if item_idx > 0 {
                    ctx.stats.join_pairs += frames.len() as u64;
                }
                for frame in &frames {
                    extend_combo(ctx, combo, frame.clone(), &applicable, outer, &mut next)?;
                }
            }
        }
        combos = next;
    }

    // 2. Residual WHERE conjuncts (those deferred to the end).
    let final_pos = stmt.from.len().saturating_sub(1);
    let residual: Vec<&Expr> = scheduled
        .iter()
        .filter(|(pos, _)| *pos > final_pos)
        .map(|(_, e)| e)
        .collect();
    let mut surviving: Vec<Vec<Rc<Frame>>> = Vec::new();
    for combo in combos {
        let mut keep = true;
        for conjunct in &residual {
            let env = make_env(&combo, outer);
            if eval_bool(ctx, &env, conjunct)? != Some(true) {
                keep = false;
                break;
            }
        }
        if keep {
            surviving.push(combo);
        }
    }

    // 3. Aggregate shortcut: COUNT(*) queries.
    if !stmt.star && stmt.items.iter().any(|i| matches!(i.expr, Expr::CountStar)) {
        if stmt.items.len() != 1 {
            return Err(DbError::Execution(
                "COUNT(*) cannot be combined with other select items".into(),
            ));
        }
        let name = stmt.items[0]
            .alias
            .as_ref()
            .map(|a| a.as_str().to_string())
            .unwrap_or_else(|| "COUNT(*)".to_string());
        return Ok(QueryResult {
            columns: vec![name],
            rows: vec![vec![Value::Num(surviving.len() as f64)]],
        });
    }

    // 4. Projection.
    let mut columns: Vec<String> = Vec::new();
    let mut rows: Vec<Vec<Value>> = Vec::new();
    let mut order_keys: Vec<Vec<Value>> = Vec::new();
    for (row_idx, combo) in surviving.iter().enumerate() {
        let env = make_env(combo, outer);
        let mut row = Vec::new();
        if stmt.star {
            for frame in combo {
                for (col, val) in frame.columns.iter().zip(&frame.values) {
                    if row_idx == 0 {
                        columns.push(col.as_str().to_string());
                    }
                    row.push(val.clone());
                }
            }
        } else {
            for (i, item) in stmt.items.iter().enumerate() {
                if row_idx == 0 {
                    columns.push(item_column_name(item, i));
                }
                row.push(eval_expr(ctx, &env, &item.expr)?);
            }
        }
        if !stmt.order_by.is_empty() {
            let mut keys = Vec::new();
            for (expr, _) in &stmt.order_by {
                keys.push(eval_expr(ctx, &env, expr)?);
            }
            order_keys.push(keys);
        }
        rows.push(row);
    }
    if columns.is_empty() {
        // No rows: still report column names.
        if stmt.star {
            columns = star_columns(ctx, stmt)?;
        } else {
            columns = stmt
                .items
                .iter()
                .enumerate()
                .map(|(i, item)| item_column_name(item, i))
                .collect();
        }
    }

    // 5. ORDER BY (stable sort on the precomputed keys).
    if !stmt.order_by.is_empty() {
        let mut indexed: Vec<usize> = (0..rows.len()).collect();
        indexed.sort_by(|&a, &b| {
            for (k, (_, asc)) in stmt.order_by.iter().enumerate() {
                let ord = order_keys[a][k]
                    .sql_cmp(&order_keys[b][k])
                    .unwrap_or(std::cmp::Ordering::Equal);
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        // `indexed` is a permutation, so each row is taken exactly once.
        rows = indexed.into_iter().map(|i| std::mem::take(&mut rows[i])).collect();
    }

    // 6. DISTINCT.
    if stmt.distinct {
        let mut seen: Vec<Vec<Value>> = Vec::new();
        rows.retain(|row| {
            if seen.contains(row) {
                false
            } else {
                seen.push(row.clone());
                true
            }
        });
    }

    Ok(QueryResult { columns, rows })
}

/// Append `frame` to `combo` and keep the result in `next` iff every
/// applicable conjunct evaluates to TRUE. Shared by the nested-loop and
/// hash-probe paths so filtering (and error surfacing) is identical.
fn extend_combo(
    ctx: &mut ExecCtx,
    combo: &[Rc<Frame>],
    frame: Rc<Frame>,
    applicable: &[&Expr],
    outer: Option<&Env>,
    next: &mut Vec<Vec<Rc<Frame>>>,
) -> Result<(), DbError> {
    let mut extended = combo.to_vec();
    extended.push(frame);
    for conjunct in applicable {
        let env = make_env(&extended, outer);
        if eval_bool(ctx, &env, conjunct)? != Some(true) {
            return Ok(());
        }
    }
    next.push(extended);
    Ok(())
}

/// If `conjunct` is an equality between an expression bound solely by the
/// FROM item at `item_idx` and an expression bound only by earlier items
/// (or constant), return `(probe_expr, build_expr)`: probe is evaluated
/// against each accumulated combination, build against the new item's rows.
pub(crate) fn plan_hash_join<'a>(
    conjunct: &'a Expr,
    bindings: &[Ident],
    item_idx: usize,
) -> Option<(&'a Expr, &'a Expr)> {
    let Expr::Binary { op: BinOp::Eq, lhs, rhs } = conjunct else {
        return None;
    };
    let lhs_pos = side_positions(lhs, bindings)?;
    let rhs_pos = side_positions(rhs, bindings)?;
    let is_build = |pos: &[usize]| pos == [item_idx];
    let is_probe = |pos: &[usize]| pos.iter().all(|&p| p < item_idx);
    if is_build(&lhs_pos) && is_probe(&rhs_pos) {
        Some((rhs, lhs))
    } else if is_build(&rhs_pos) && is_probe(&lhs_pos) {
        Some((lhs, rhs))
    } else {
        None
    }
}

/// FROM positions one side of a conjunct references, or `None` when it
/// references anything not attributable to a binding (unqualified columns,
/// outer scopes) or contains a subquery.
fn side_positions(expr: &Expr, bindings: &[Ident]) -> Option<Vec<usize>> {
    if has_subquery(expr) {
        return None;
    }
    let mut positions: Vec<usize> = Vec::new();
    let mut unresolved = false;
    visit_refs(expr, &mut |head| match bindings.iter().position(|b| b == head) {
        Some(pos) => {
            if !positions.contains(&pos) {
                positions.push(pos);
            }
        }
        None => unresolved = true,
    });
    if unresolved {
        None
    } else {
        Some(positions)
    }
}

/// Flatten nested ANDs into a conjunct list.
pub(crate) fn split_and(expr: &Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::Binary { op: crate::sql::ast::BinOp::And, lhs, rhs } => {
            split_and(lhs, out);
            split_and(rhs, out);
        }
        other => out.push(other.clone()),
    }
}

/// Earliest FROM index after which a conjunct can be evaluated: the maximum
/// position of any binding it references. Conjuncts referencing anything we
/// cannot attribute to a binding (unqualified columns, subqueries, outer
/// scopes) are deferred (`usize::MAX`).
pub(crate) fn conjunct_position(expr: &Expr, bindings: &[Ident]) -> usize {
    let mut max_pos = 0usize;
    let mut deferred = false;
    visit_refs(expr, &mut |head| {
        match bindings.iter().position(|b| b == head) {
            Some(pos) => max_pos = max_pos.max(pos),
            None => deferred = true,
        }
    });
    if has_subquery(expr) {
        deferred = true;
    }
    if deferred {
        usize::MAX
    } else {
        max_pos
    }
}

fn visit_refs(expr: &Expr, visit: &mut impl FnMut(&Ident)) {
    match expr {
        Expr::Path(parts) => {
            if let Some(head) = parts.first() {
                visit(head);
            }
        }
        Expr::RefOf(alias) => visit(alias),
        Expr::Call { args, .. } => {
            for arg in args {
                visit_refs(arg, visit);
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            visit_refs(lhs, visit);
            visit_refs(rhs, visit);
        }
        Expr::Not(inner) | Expr::Deref(inner) => visit_refs(inner, visit),
        Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => visit_refs(expr, visit),
        Expr::Literal(_) | Expr::CountStar => {}
        // Subqueries handled by `has_subquery`.
        Expr::Subquery(_) | Expr::CastMultiset { .. } | Expr::Exists(_) => {}
    }
}

fn has_subquery(expr: &Expr) -> bool {
    match expr {
        Expr::Subquery(_) | Expr::CastMultiset { .. } | Expr::Exists(_) => true,
        Expr::Call { args, .. } => args.iter().any(has_subquery),
        Expr::Binary { lhs, rhs, .. } => has_subquery(lhs) || has_subquery(rhs),
        Expr::Not(inner) | Expr::Deref(inner) => has_subquery(inner),
        Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => has_subquery(expr),
        _ => false,
    }
}

fn make_env<'a>(frames: &'a [Rc<Frame>], outer: Option<&'a Env<'a>>) -> Env<'a> {
    match outer {
        Some(parent) => Env::with_parent(frames, parent),
        None => Env::new(frames),
    }
}

fn item_column_name(item: &crate::sql::ast::SelectItem, index: usize) -> String {
    if let Some(alias) = &item.alias {
        return alias.as_str().to_string();
    }
    match &item.expr {
        // invariant: the parser never produces an empty dot path.
        Expr::Path(parts) => parts.last().unwrap().as_str().to_string(),
        _ => format!("COL{}", index + 1),
    }
}

/// Column names a `SELECT *` would produce when there are no rows.
fn star_columns(ctx: &ExecCtx, stmt: &SelectStmt) -> Result<Vec<String>, DbError> {
    let mut out = Vec::new();
    for item in &stmt.from {
        if let FromItem::Table { name, .. } = item {
            if let Some(table) = ctx.catalog.get_table(name) {
                for (col, _) in ctx.catalog.table_columns(table) {
                    out.push(col.as_str().to_string());
                }
            }
        }
    }
    Ok(out)
}

/// Produce the frames of one FROM item given the already-bound combo.
fn expand_from_item(
    ctx: &mut ExecCtx,
    item: &FromItem,
    combo: &[Rc<Frame>],
    outer: Option<&Env>,
) -> Result<Vec<Frame>, DbError> {
    match item {
        FromItem::Table { name, alias } => {
            let binding = alias.clone().unwrap_or_else(|| name.clone());
            // A real table?
            if let Some(table) = ctx.catalog.get_table(name).cloned() {
                let columns: Vec<Ident> =
                    ctx.catalog.table_columns(&table).into_iter().map(|(c, _)| c).collect();
                let object_type = match &table {
                    TableDef::Object { of_type, .. } => Some(of_type.clone()),
                    _ => None,
                };
                let data = ctx
                    .storage
                    .table(name)
                    .ok_or_else(|| DbError::UnknownTable(name.as_str().to_string()))?;
                return Ok(data
                    .rows
                    .iter()
                    .map(|row| Frame {
                        binding: binding.clone(),
                        columns: columns.clone(),
                        values: row.values.clone(),
                        oid: row.oid,
                        object_type: object_type.clone(),
                    })
                    .collect());
            }
            // A view? Execute its stored query (no outer env: views are
            // self-contained).
            if let Some(view) = ctx.catalog.get_view(name).cloned() {
                let result = execute_select(ctx, &view.query, None)?;
                let columns: Vec<Ident> =
                    result.columns.iter().map(|c| Ident::internal(c)).collect();
                return Ok(result
                    .rows
                    .into_iter()
                    .map(|values| Frame {
                        binding: binding.clone(),
                        columns: columns.clone(),
                        values,
                        oid: None,
                        object_type: None,
                    })
                    .collect());
            }
            Err(DbError::UnknownTable(name.as_str().to_string()))
        }
        FromItem::CollectionTable { expr, alias } => {
            let binding = alias.clone().unwrap_or_else(|| Ident::internal("COLLECTION"));
            let env = make_env(combo, outer);
            let value = eval_expr(ctx, &env, expr)?;
            let elements = match value {
                Value::Null => Vec::new(),
                Value::Coll { elements, .. } => elements,
                other => {
                    return Err(DbError::TypeMismatch {
                        expected: "collection".into(),
                        found: other.to_sql_literal(),
                    })
                }
            };
            let mut frames = Vec::with_capacity(elements.len());
            for element in elements {
                frames.push(collection_element_frame(ctx, &binding, element)?);
            }
            Ok(frames)
        }
    }
}

/// Build the frame for one un-nested collection element: object elements
/// expose their attributes; scalar elements appear as Oracle's
/// `COLUMN_VALUE` pseudo-column.
fn collection_element_frame(
    ctx: &ExecCtx,
    binding: &Ident,
    element: Value,
) -> Result<Frame, DbError> {
    match element {
        Value::Obj { type_name, attrs } => {
            let def = ctx
                .catalog
                .get_type(&type_name)
                .ok_or_else(|| DbError::UnknownType(type_name.as_str().to_string()))?;
            let columns: Vec<Ident> =
                def.object_attrs().iter().map(|(n, _)| n.clone()).collect();
            Ok(Frame {
                binding: binding.clone(),
                columns,
                values: attrs,
                oid: None,
                object_type: Some(type_name),
            })
        }
        scalar => Ok(Frame {
            binding: binding.clone(),
            columns: vec![Ident::internal("COLUMN_VALUE")],
            values: vec![scalar],
            oid: None,
            object_type: None,
        }),
    }
}

//! Expression evaluation: literals, dot-notation paths (with implicit REF
//! dereference), constructors, built-ins, subqueries, three-valued logic.

use crate::catalog::{Catalog, TableDef, TypeDef};
use crate::error::DbError;
use crate::exec::select::execute_select;
use crate::exec::Env;
use crate::ident::Ident;
use crate::mode::DbMode;
use crate::sql::ast::{BinOp, Expr};
use crate::stats::ExecStats;
use crate::storage::Storage;
use crate::types::SqlType;
use crate::value::{Oid, Value};

/// Read-only execution context plus the statistics sink.
pub struct ExecCtx<'a> {
    pub catalog: &'a Catalog,
    pub storage: &'a Storage,
    pub stats: &'a mut ExecStats,
    pub mode: DbMode,
    /// Whether equi-join FROM items may use the hash path. On by default;
    /// [`crate::Database::set_hash_joins`] turns it off so differential
    /// tests can compare both join strategies on identical queries.
    pub hash_joins: bool,
    /// Whether the cost-based planner may choose secondary-index access
    /// paths and reorder joins by estimated cardinality. Off pins the
    /// naive plan ([`crate::Database::set_cost_planner`]).
    pub cost_planner: bool,
}

/// Evaluate an expression to a value.
pub fn eval_expr(ctx: &mut ExecCtx, env: &Env, expr: &Expr) -> Result<Value, DbError> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Path(parts) => resolve_path(ctx, env, parts),
        Expr::Call { name, args } => eval_call(ctx, env, name, args),
        Expr::CountStar => Err(DbError::Execution(
            "COUNT(*) is only valid as a top-level select item".into(),
        )),
        Expr::Binary { op, lhs, rhs } => match op {
            BinOp::And | BinOp::Or => Ok(bool_to_value(eval_bool(ctx, env, expr)?)),
            BinOp::Concat => {
                let l = eval_expr(ctx, env, lhs)?;
                let r = eval_expr(ctx, env, rhs)?;
                Ok(Value::Str(format!(
                    "{}{}",
                    null_to_empty(&l),
                    null_to_empty(&r)
                )))
            }
            _ => Ok(bool_to_value(eval_bool(ctx, env, expr)?)),
        },
        Expr::Not(_) | Expr::IsNull { .. } | Expr::Like { .. } | Expr::Exists(_) => {
            Ok(bool_to_value(eval_bool(ctx, env, expr)?))
        }
        Expr::RefOf(alias) => {
            let frame = env
                .frame(alias)
                .ok_or_else(|| DbError::UnknownColumn(alias.as_str().to_string()))?;
            match frame.oid {
                Some(oid) => Ok(Value::Ref(oid)),
                None => Err(DbError::Execution(format!(
                    "REF({alias}): '{alias}' is not a row of an object table"
                ))),
            }
        }
        Expr::Deref(inner) => {
            let v = eval_expr(ctx, env, inner)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Ref(oid) => deref_oid(ctx, oid),
                other => Err(DbError::TypeMismatch {
                    expected: "REF".into(),
                    found: other.to_sql_literal(),
                }),
            }
        }
        Expr::Subquery(query) => {
            let result = execute_select(ctx, query, Some(env))?;
            match result.rows.len() {
                0 => Ok(Value::Null),
                1 => {
                    if result.rows[0].len() != 1 {
                        return Err(DbError::Execution(
                            "scalar subquery must select exactly one column".into(),
                        ));
                    }
                    Ok(result.rows[0][0].clone())
                }
                n => Err(DbError::Execution(format!(
                    "scalar subquery returned {n} rows"
                ))),
            }
        }
        Expr::CastMultiset { query, target } => {
            let def = ctx
                .catalog
                .get_type(target)
                .ok_or_else(|| DbError::UnknownType(target.as_str().to_string()))?;
            let elem_type = def
                .element_type()
                .ok_or_else(|| DbError::TypeMismatch {
                    expected: "collection type".into(),
                    found: target.as_str().to_string(),
                })?
                .clone();
            let max = match def {
                TypeDef::Varray { max, .. } => Some(*max),
                _ => None,
            };
            let result = execute_select(ctx, query, Some(env))?;
            let mut elements = Vec::with_capacity(result.rows.len());
            for row in result.rows {
                if row.len() != 1 {
                    return Err(DbError::Execution(
                        "MULTISET subquery must select exactly one column".into(),
                    ));
                }
                // invariant: row.len() == 1 was just checked above.
                elements.push(coerce(ctx, row.into_iter().next().unwrap(), &elem_type, "MULTISET")?);
            }
            if let Some(max) = max {
                if elements.len() > max as usize {
                    return Err(DbError::VarrayLimitExceeded {
                        type_name: target.as_str().to_string(),
                        max,
                        actual: elements.len(),
                    });
                }
            }
            Ok(Value::Coll { type_name: target.clone(), elements })
        }
    }
}

/// Three-valued boolean evaluation (SQL TRUE / FALSE / UNKNOWN as
/// `Some(true) / Some(false) / None`).
pub fn eval_bool(ctx: &mut ExecCtx, env: &Env, expr: &Expr) -> Result<Option<bool>, DbError> {
    match expr {
        Expr::Binary { op: BinOp::And, lhs, rhs } => {
            let l = eval_bool(ctx, env, lhs)?;
            if l == Some(false) {
                return Ok(Some(false));
            }
            let r = eval_bool(ctx, env, rhs)?;
            Ok(match (l, r) {
                (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            })
        }
        Expr::Binary { op: BinOp::Or, lhs, rhs } => {
            let l = eval_bool(ctx, env, lhs)?;
            if l == Some(true) {
                return Ok(Some(true));
            }
            let r = eval_bool(ctx, env, rhs)?;
            Ok(match (l, r) {
                (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            })
        }
        Expr::Not(inner) => Ok(eval_bool(ctx, env, inner)?.map(|b| !b)),
        Expr::IsNull { expr, negated } => {
            let v = eval_expr(ctx, env, expr)?;
            let is_null = v.is_null();
            Ok(Some(if *negated { !is_null } else { is_null }))
        }
        Expr::Like { expr, pattern, negated } => {
            let v = eval_expr(ctx, env, expr)?;
            match v {
                Value::Null => Ok(None),
                other => {
                    let text = match other {
                        Value::Str(s) | Value::Date(s) => s,
                        Value::Num(n) => Value::Num(n).to_string(),
                        _ => {
                            return Err(DbError::TypeMismatch {
                                expected: "string".into(),
                                found: "object/collection".into(),
                            })
                        }
                    };
                    let matched = like_match(pattern, &text);
                    Ok(Some(if *negated { !matched } else { matched }))
                }
            }
        }
        Expr::Exists(query) => {
            let result = execute_select(ctx, query, Some(env))?;
            Ok(Some(!result.rows.is_empty()))
        }
        Expr::Binary { op, lhs, rhs } => {
            let l = eval_expr(ctx, env, lhs)?;
            let r = eval_expr(ctx, env, rhs)?;
            Ok(match op {
                BinOp::Eq => l.sql_eq(&r),
                BinOp::Ne => l.sql_eq(&r).map(|b| !b),
                BinOp::Lt => l.sql_cmp(&r).map(|o| o == std::cmp::Ordering::Less),
                BinOp::Le => l.sql_cmp(&r).map(|o| o != std::cmp::Ordering::Greater),
                BinOp::Gt => l.sql_cmp(&r).map(|o| o == std::cmp::Ordering::Greater),
                BinOp::Ge => l.sql_cmp(&r).map(|o| o != std::cmp::Ordering::Less),
                BinOp::And | BinOp::Or | BinOp::Concat => unreachable!("handled above"),
            })
        }
        other => {
            // A non-boolean expression in boolean position: NULL → UNKNOWN,
            // anything else is a type error.
            let v = eval_expr(ctx, env, other)?;
            match v {
                Value::Null => Ok(None),
                _ => Err(DbError::Execution(
                    "expected a boolean condition".into(),
                )),
            }
        }
    }
}

fn bool_to_value(b: Option<bool>) -> Value {
    // SQL has no boolean literals in this dialect; conditions appearing in
    // value position materialize as 1/0/NULL (Oracle NUMBER convention).
    match b {
        Some(true) => Value::Num(1.0),
        Some(false) => Value::Num(0.0),
        None => Value::Null,
    }
}

fn null_to_empty(v: &Value) -> String {
    match v {
        Value::Null => String::new(),
        other => other.to_string(),
    }
}

/// `%`/`_` pattern matching (no escape support — the generated scripts never
/// need it).
pub fn like_match(pattern: &str, text: &str) -> bool {
    fn rec(p: &[char], t: &[char]) -> bool {
        match p.split_first() {
            None => t.is_empty(),
            Some(('%', rest)) => {
                (0..=t.len()).any(|i| rec(rest, &t[i..]))
            }
            Some(('_', rest)) => !t.is_empty() && rec(rest, &t[1..]),
            Some((ch, rest)) => t.first() == Some(ch) && rec(rest, &t[1..]),
        }
    }
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    rec(&p, &t)
}

/// Follow an OID to the full row object value. Resolution goes through the
/// storage layer's OID index (a map lookup plus a slot access), so REF
/// navigation never scans table rows — the engine-level version of the
/// paper's "without executing join operations" claim (§5).
pub fn deref_oid(ctx: &mut ExecCtx, oid: Oid) -> Result<Value, DbError> {
    ctx.stats.derefs += 1;
    let (table_name, row) = ctx.storage.resolve_oid(oid).ok_or(DbError::DanglingRef)?;
    ctx.stats.oid_index_hits += 1;
    let table = ctx
        .catalog
        .get_table(table_name)
        .ok_or_else(|| DbError::UnknownTable(table_name.as_str().to_string()))?;
    match table {
        TableDef::Object { of_type, .. } => Ok(Value::Obj {
            type_name: of_type.clone(),
            attrs: row.values.clone(),
        }),
        TableDef::Relational { .. } => Err(DbError::Execution(
            "REF target is not an object table".into(),
        )),
    }
}

/// Resolve a dot path against the environment.
pub fn resolve_path(ctx: &mut ExecCtx, env: &Env, parts: &[Ident]) -> Result<Value, DbError> {
    let full = || parts.iter().map(|p| p.as_str()).collect::<Vec<_>>().join(".");
    // Qualified: binding.column....
    if let Some(frame) = env.frame(&parts[0]) {
        if parts.len() == 1 {
            return match &frame.object_type {
                Some(type_name) => Ok(Value::Obj {
                    type_name: type_name.clone(),
                    attrs: frame.values.clone(),
                }),
                None if frame.columns.len() == 1 => Ok(frame.values[0].clone()),
                None => Err(DbError::Execution(format!(
                    "'{}' denotes a whole row, not a value",
                    parts[0]
                ))),
            };
        }
        let mut value = frame
            .column_value(&parts[1])
            .cloned()
            .ok_or_else(|| DbError::UnknownColumn(full()))?;
        for part in &parts[2..] {
            value = navigate(ctx, value, part)?;
        }
        return Ok(value);
    }
    // Unqualified: column....
    if let Some(frame) = env.frame_with_column(&parts[0]) {
        // invariant: frame_with_column only returns frames containing the column.
        let mut value = frame.column_value(&parts[0]).cloned().unwrap();
        for part in &parts[1..] {
            value = navigate(ctx, value, part)?;
        }
        return Ok(value);
    }
    Err(DbError::UnknownColumn(full()))
}

/// Navigate one step into an object value; REFs dereference implicitly, and
/// navigation through NULL yields NULL (the §4.3 CHECK quirk builds on this).
pub fn navigate(ctx: &mut ExecCtx, value: Value, part: &Ident) -> Result<Value, DbError> {
    match value {
        Value::Null => Ok(Value::Null),
        Value::Obj { type_name, attrs } => {
            let def = ctx
                .catalog
                .get_type(&type_name)
                .ok_or_else(|| DbError::UnknownType(type_name.as_str().to_string()))?;
            let idx = def
                .object_attrs()
                .iter()
                .position(|(name, _)| name == part)
                .ok_or_else(|| {
                    DbError::UnknownColumn(format!("{}.{}", type_name.as_str(), part.as_str()))
                })?;
            Ok(attrs.get(idx).cloned().unwrap_or(Value::Null))
        }
        Value::Ref(oid) => {
            let obj = deref_oid(ctx, oid)?;
            navigate(ctx, obj, part)
        }
        other => Err(DbError::UnknownColumn(format!(
            "cannot navigate '{}' into {}",
            part.as_str(),
            other.to_sql_literal()
        ))),
    }
}

/// Evaluate a call: a type constructor if the name is a catalog type,
/// otherwise a built-in function.
fn eval_call(
    ctx: &mut ExecCtx,
    env: &Env,
    name: &Ident,
    args: &[Expr],
) -> Result<Value, DbError> {
    if ctx.catalog.get_type(name).is_some() {
        let mut values = Vec::with_capacity(args.len());
        for arg in args {
            values.push(eval_expr(ctx, env, arg)?);
        }
        return construct(ctx, name, values);
    }
    match name.key() {
        "UPPER" | "LOWER" | "LENGTH" => {
            if args.len() != 1 {
                return Err(DbError::Execution(format!("{name} takes one argument")));
            }
            let v = eval_expr(ctx, env, &args[0])?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(match name.key() {
                    "UPPER" => Value::Str(s.to_uppercase()),
                    "LOWER" => Value::Str(s.to_lowercase()),
                    _ => Value::Num(s.chars().count() as f64),
                }),
                other => Err(DbError::TypeMismatch {
                    expected: "string".into(),
                    found: other.to_sql_literal(),
                }),
            }
        }
        "TO_NUMBER" => {
            if args.len() != 1 {
                return Err(DbError::Execution("TO_NUMBER takes one argument".into()));
            }
            let v = eval_expr(ctx, env, &args[0])?;
            match v {
                Value::Null => Ok(Value::Null),
                other => other.as_num().map(Value::Num).ok_or(DbError::TypeMismatch {
                    expected: "number".into(),
                    found: "non-numeric string".into(),
                }),
            }
        }
        "TO_CHAR" => {
            if args.len() != 1 {
                return Err(DbError::Execution("TO_CHAR takes one argument".into()));
            }
            let v = eval_expr(ctx, env, &args[0])?;
            Ok(match v {
                Value::Null => Value::Null,
                other => Value::Str(other.to_string()),
            })
        }
        _ => Err(DbError::UnknownType(name.as_str().to_string())),
    }
}

/// Build an object or collection value via its type constructor, coercing
/// the arguments to the declared attribute/element types.
pub fn construct(ctx: &mut ExecCtx, type_name: &Ident, args: Vec<Value>) -> Result<Value, DbError> {
    let def = ctx
        .catalog
        .get_type(type_name)
        .ok_or_else(|| DbError::UnknownType(type_name.as_str().to_string()))?
        .clone();
    match def {
        TypeDef::Object { name, attrs, incomplete } => {
            if incomplete {
                return Err(DbError::ConstructorMismatch {
                    type_name: name.as_str().to_string(),
                    message: "type is an incomplete forward declaration".into(),
                });
            }
            if args.len() != attrs.len() {
                return Err(DbError::ConstructorMismatch {
                    type_name: name.as_str().to_string(),
                    message: format!("expected {} arguments, got {}", attrs.len(), args.len()),
                });
            }
            let mut coerced = Vec::with_capacity(args.len());
            for (value, (attr_name, attr_type)) in args.into_iter().zip(&attrs) {
                coerced.push(coerce(ctx, value, attr_type, attr_name.as_str())?);
            }
            Ok(Value::Obj { type_name: name, attrs: coerced })
        }
        TypeDef::Varray { name, elem, max } => {
            if args.len() > max as usize {
                return Err(DbError::VarrayLimitExceeded {
                    type_name: name.as_str().to_string(),
                    max,
                    actual: args.len(),
                });
            }
            let mut coerced = Vec::with_capacity(args.len());
            for value in args {
                coerced.push(coerce(ctx, value, &elem, name.as_str())?);
            }
            Ok(Value::Coll { type_name: name, elements: coerced })
        }
        TypeDef::NestedTable { name, elem } => {
            let mut coerced = Vec::with_capacity(args.len());
            for value in args {
                coerced.push(coerce(ctx, value, &elem, name.as_str())?);
            }
            Ok(Value::Coll { type_name: name, elements: coerced })
        }
    }
}

/// Coerce a value to a declared SQL type, enforcing VARCHAR length bounds
/// (the paper's §7 "restricted maximum length" drawback is real here).
pub fn coerce(
    ctx: &mut ExecCtx,
    value: Value,
    target: &SqlType,
    context: &str,
) -> Result<Value, DbError> {
    if value.is_null() {
        return Ok(Value::Null);
    }
    match target {
        SqlType::Varchar(max) | SqlType::Char(max) => {
            let text = match value {
                Value::Str(s) => s,
                Value::Num(n) => Value::Num(n).to_string(),
                Value::Date(s) => s,
                other => {
                    return Err(DbError::TypeMismatch {
                        expected: target.to_string(),
                        found: other.to_sql_literal(),
                    })
                }
            };
            if text.chars().count() > *max as usize {
                return Err(DbError::ValueTooLarge {
                    column: context.to_string(),
                    max: *max,
                    actual: text.chars().count(),
                });
            }
            Ok(Value::Str(text))
        }
        SqlType::Clob => match value {
            Value::Str(s) => Ok(Value::Str(s)),
            Value::Num(n) => Ok(Value::Str(Value::Num(n).to_string())),
            other => Err(DbError::TypeMismatch {
                expected: "CLOB".into(),
                found: other.to_sql_literal(),
            }),
        },
        SqlType::Number | SqlType::Integer => match value.as_num() {
            Some(n) => Ok(Value::Num(if matches!(target, SqlType::Integer) {
                n.trunc()
            } else {
                n
            })),
            None => Err(DbError::TypeMismatch {
                expected: target.to_string(),
                found: value.to_sql_literal(),
            }),
        },
        SqlType::Date => match value {
            Value::Date(s) | Value::Str(s) => Ok(Value::Date(s)),
            other => Err(DbError::TypeMismatch {
                expected: "DATE".into(),
                found: other.to_sql_literal(),
            }),
        },
        SqlType::Object(expected) => match value {
            Value::Obj { ref type_name, .. } if type_name == expected => Ok(value),
            other => Err(DbError::TypeMismatch {
                expected: expected.as_str().to_string(),
                found: other.to_sql_literal(),
            }),
        },
        SqlType::Varray(expected) | SqlType::NestedTable(expected) => match value {
            Value::Coll { ref type_name, .. } if type_name == expected => Ok(value),
            other => Err(DbError::TypeMismatch {
                expected: expected.as_str().to_string(),
                found: other.to_sql_literal(),
            }),
        },
        SqlType::Ref(expected) => match value {
            Value::Ref(oid) => {
                // Verify the target row's object type.
                if let Some((table_name, _)) = ctx.storage.resolve_oid(oid) {
                    if let Some(TableDef::Object { of_type, .. }) =
                        ctx.catalog.get_table(table_name)
                    {
                        if of_type != expected {
                            return Err(DbError::TypeMismatch {
                                expected: format!("REF {expected}"),
                                found: format!("REF {of_type}"),
                            });
                        }
                    }
                }
                Ok(Value::Ref(oid))
            }
            other => Err(DbError::TypeMismatch {
                expected: format!("REF {expected}"),
                found: other.to_sql_literal(),
            }),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_patterns() {
        assert!(like_match("J%", "Jaeger"));
        assert!(like_match("%ger", "Jaeger"));
        assert!(like_match("%aeg%", "Jaeger"));
        assert!(like_match("J_eger", "Jaeger"));
        assert!(!like_match("J_ger", "Jaeger"));
        assert!(like_match("%", ""));
        assert!(!like_match("_", ""));
        assert!(like_match("abc", "abc"));
        assert!(!like_match("abc", "abcd"));
    }

    #[test]
    fn like_with_multiple_wildcards() {
        assert!(like_match("%a%b%", "xxaxxbxx"));
        assert!(!like_match("%a%b%", "ba")); // 'b' precedes the only 'a'
    }
}

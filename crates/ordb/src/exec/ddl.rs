//! DDL execution: CREATE/DROP of types, tables and views.
//!
//! The catalog half of every DDL statement lives in [`apply_ddl_catalog`] so
//! the static analyzer's *shadow catalog* ([`crate::analyze`]) evolves through
//! exactly the same code path as the executor's live catalog — the two can
//! never disagree about what a script's DDL means.

use crate::catalog::{Catalog, ColumnDef, Constraint, IndexDef, TableDef, TableStats, TypeDef, ViewDef};
use crate::error::DbError;
use crate::ident::Ident;
use crate::mode::DbMode;
use crate::sql::ast::{ColumnSpec, SelectStmt, Stmt};
use crate::stats::ExecStats;
use crate::storage::Storage;
use crate::types::SqlType;

/// Apply one DDL statement's catalog effects (no storage, no stats).
/// Returns `true` if the statement was DDL.
pub fn apply_ddl_catalog(
    catalog: &mut Catalog,
    mode: DbMode,
    stmt: &Stmt,
) -> Result<bool, DbError> {
    match stmt {
        Stmt::CreateTypeForward { name } => {
            catalog.create_type(
                TypeDef::Object { name: name.clone(), attrs: vec![], incomplete: true },
                mode,
            )?;
            Ok(true)
        }
        Stmt::CreateObjectType { name, attrs } => {
            catalog.create_type(
                TypeDef::Object { name: name.clone(), attrs: attrs.clone(), incomplete: false },
                mode,
            )?;
            Ok(true)
        }
        Stmt::CreateVarrayType { name, max, elem } => {
            catalog.create_type(
                TypeDef::Varray { name: name.clone(), elem: elem.clone(), max: *max },
                mode,
            )?;
            Ok(true)
        }
        Stmt::CreateNestedTableType { name, elem } => {
            catalog.create_type(
                TypeDef::NestedTable { name: name.clone(), elem: elem.clone() },
                mode,
            )?;
            Ok(true)
        }
        Stmt::CreateObjectTable { name, of_type, constraints } => {
            catalog.create_table(TableDef::Object {
                name: name.clone(),
                of_type: of_type.clone(),
                constraints: constraints.clone(),
            })?;
            Ok(true)
        }
        Stmt::CreateRelationalTable { name, columns, constraints, nested_table_stores } => {
            let (column_defs, mut all_constraints) = split_column_specs(columns);
            all_constraints.extend(constraints.iter().cloned());
            validate_nested_table_stores(catalog, &column_defs, nested_table_stores)?;
            catalog.create_table(TableDef::Relational {
                name: name.clone(),
                columns: column_defs,
                constraints: all_constraints,
                nested_table_stores: nested_table_stores.clone(),
            })?;
            Ok(true)
        }
        Stmt::CreateView { name, query, or_replace } => {
            if *or_replace && catalog.get_view(name).is_some() {
                catalog.drop_view(name)?;
            }
            create_view(catalog, name, query)?;
            Ok(true)
        }
        Stmt::DropType { name, force } => {
            catalog.drop_type(name, *force)?;
            Ok(true)
        }
        Stmt::DropTable { name } => {
            catalog.drop_table(name)?;
            Ok(true)
        }
        Stmt::DropView { name } => {
            catalog.drop_view(name)?;
            Ok(true)
        }
        Stmt::CreateIndex { name, table, columns, unique } => {
            catalog.create_index(IndexDef {
                name: name.clone(),
                table: table.clone(),
                columns: columns.clone(),
                unique: *unique,
            })?;
            Ok(true)
        }
        Stmt::DropIndex { name } => {
            catalog.drop_index(name)?;
            Ok(true)
        }
        Stmt::AnalyzeTable { table } => {
            // Catalog half: the table must exist. The statistics snapshot is
            // computed from storage in [`execute_ddl`]; the analyzer's
            // shadow catalog only validates the name.
            if catalog.get_table(table).is_none() {
                return Err(DbError::UnknownTable(table.as_str().to_string()));
            }
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// Execute one DDL statement. Returns `true` if the statement was DDL.
pub fn execute_ddl(
    catalog: &mut Catalog,
    storage: &mut Storage,
    stats: &mut ExecStats,
    mode: DbMode,
    stmt: &Stmt,
) -> Result<bool, DbError> {
    if !apply_ddl_catalog(catalog, mode, stmt)? {
        return Ok(false);
    }
    match stmt {
        Stmt::CreateTypeForward { .. }
        | Stmt::CreateObjectType { .. }
        | Stmt::CreateVarrayType { .. }
        | Stmt::CreateNestedTableType { .. } => {
            stats.types_created += 1;
        }
        Stmt::CreateObjectTable { name, .. } | Stmt::CreateRelationalTable { name, .. } => {
            storage.create_table(name.clone());
            stats.tables_created += 1;
        }
        Stmt::DropTable { name } => {
            storage.drop_table(name);
        }
        Stmt::CreateIndex { name, table, columns, .. } => {
            // Resolve key columns to row positions (validated by the
            // catalog half above) and build the storage structure.
            let table_def = catalog.get_table(table).expect("validated by apply_ddl_catalog");
            let table_cols = catalog.table_columns(table_def);
            let positions: Vec<usize> = columns
                .iter()
                .map(|c| {
                    table_cols.iter().position(|(n, _)| n == c).expect("validated by catalog")
                })
                .collect();
            storage.create_index(name.clone(), table.clone(), positions);
        }
        Stmt::DropIndex { name } => {
            storage.drop_index(name);
        }
        Stmt::AnalyzeTable { table } => {
            let table_def = catalog.get_table(table).expect("validated by apply_ddl_catalog");
            let columns = catalog.table_columns(table_def);
            let snapshot = compute_table_stats(storage, table, &columns);
            catalog.set_table_stats(table.clone(), snapshot);
            stats.analyze_runs += 1;
        }
        _ => {}
    }
    Ok(true)
}

/// Scan a table heap once, counting rows and per-column distinct values
/// (by join-key hash — NULLs and unhashable values count as one bucket, a
/// fine-grained enough NDV for selectivity estimates).
fn compute_table_stats(
    storage: &Storage,
    table: &Ident,
    columns: &[(Ident, SqlType)],
) -> TableStats {
    use std::collections::HashSet;
    let data = storage.table(table);
    let rows = data.map(|d| d.rows.len()).unwrap_or(0) as u64;
    let mut distinct = std::collections::BTreeMap::new();
    for (ci, (col_name, _)) in columns.iter().enumerate() {
        let mut seen: HashSet<Option<u64>> = HashSet::new();
        if let Some(data) = data {
            for row in &data.rows {
                let v = row.values.get(ci).unwrap_or(&crate::value::Value::Null);
                seen.insert(crate::storage::key_hash(&[v]));
            }
        }
        distinct.insert(col_name.clone(), seen.len() as u64);
    }
    TableStats { rows, distinct }
}

fn create_view(catalog: &mut Catalog, name: &Ident, query: &SelectStmt) -> Result<(), DbError> {
    catalog.create_view(ViewDef { name: name.clone(), query: query.clone() })
}

/// Split parsed column specs into catalog column definitions plus the
/// constraints implied by inline `NOT NULL` / `PRIMARY KEY` markers.
pub(crate) fn split_column_specs(specs: &[ColumnSpec]) -> (Vec<ColumnDef>, Vec<Constraint>) {
    let mut columns = Vec::with_capacity(specs.len());
    let mut constraints = Vec::new();
    for spec in specs {
        columns.push(ColumnDef { name: spec.name.clone(), sql_type: spec.sql_type.clone() });
        if spec.primary_key {
            constraints.push(Constraint::PrimaryKey(vec![spec.name.clone()]));
        } else if spec.not_null {
            constraints.push(Constraint::NotNull(spec.name.clone()));
        }
    }
    (columns, constraints)
}

/// Every `NESTED TABLE col STORE AS t` clause must name a column whose type
/// is a nested-table collection (Oracle requires the clause; we require its
/// correctness).
fn validate_nested_table_stores(
    catalog: &Catalog,
    columns: &[ColumnDef],
    stores: &[(Ident, Ident)],
) -> Result<(), DbError> {
    for (col, _store) in stores {
        let def = columns
            .iter()
            .find(|c| &c.name == col)
            .ok_or_else(|| DbError::UnknownColumn(col.as_str().to_string()))?;
        let is_nested = match &def.sql_type {
            SqlType::NestedTable(_) => true,
            SqlType::Object(name) | SqlType::Varray(name) => matches!(
                catalog.get_type(name),
                Some(TypeDef::NestedTable { .. })
            ),
            _ => false,
        };
        if !is_nested {
            return Err(DbError::TypeMismatch {
                expected: "nested table column".into(),
                found: format!("{} ({})", col.as_str(), def.sql_type),
            });
        }
    }
    Ok(())
}

//! DDL execution: CREATE/DROP of types, tables and views.
//!
//! The catalog half of every DDL statement lives in [`apply_ddl_catalog`] so
//! the static analyzer's *shadow catalog* ([`crate::analyze`]) evolves through
//! exactly the same code path as the executor's live catalog — the two can
//! never disagree about what a script's DDL means.

use crate::catalog::{Catalog, ColumnDef, Constraint, TableDef, TypeDef, ViewDef};
use crate::error::DbError;
use crate::ident::Ident;
use crate::mode::DbMode;
use crate::sql::ast::{ColumnSpec, SelectStmt, Stmt};
use crate::stats::ExecStats;
use crate::storage::Storage;
use crate::types::SqlType;

/// Apply one DDL statement's catalog effects (no storage, no stats).
/// Returns `true` if the statement was DDL.
pub fn apply_ddl_catalog(
    catalog: &mut Catalog,
    mode: DbMode,
    stmt: &Stmt,
) -> Result<bool, DbError> {
    match stmt {
        Stmt::CreateTypeForward { name } => {
            catalog.create_type(
                TypeDef::Object { name: name.clone(), attrs: vec![], incomplete: true },
                mode,
            )?;
            Ok(true)
        }
        Stmt::CreateObjectType { name, attrs } => {
            catalog.create_type(
                TypeDef::Object { name: name.clone(), attrs: attrs.clone(), incomplete: false },
                mode,
            )?;
            Ok(true)
        }
        Stmt::CreateVarrayType { name, max, elem } => {
            catalog.create_type(
                TypeDef::Varray { name: name.clone(), elem: elem.clone(), max: *max },
                mode,
            )?;
            Ok(true)
        }
        Stmt::CreateNestedTableType { name, elem } => {
            catalog.create_type(
                TypeDef::NestedTable { name: name.clone(), elem: elem.clone() },
                mode,
            )?;
            Ok(true)
        }
        Stmt::CreateObjectTable { name, of_type, constraints } => {
            catalog.create_table(TableDef::Object {
                name: name.clone(),
                of_type: of_type.clone(),
                constraints: constraints.clone(),
            })?;
            Ok(true)
        }
        Stmt::CreateRelationalTable { name, columns, constraints, nested_table_stores } => {
            let (column_defs, mut all_constraints) = split_column_specs(columns);
            all_constraints.extend(constraints.iter().cloned());
            validate_nested_table_stores(catalog, &column_defs, nested_table_stores)?;
            catalog.create_table(TableDef::Relational {
                name: name.clone(),
                columns: column_defs,
                constraints: all_constraints,
                nested_table_stores: nested_table_stores.clone(),
            })?;
            Ok(true)
        }
        Stmt::CreateView { name, query, or_replace } => {
            if *or_replace && catalog.get_view(name).is_some() {
                catalog.drop_view(name)?;
            }
            create_view(catalog, name, query)?;
            Ok(true)
        }
        Stmt::DropType { name, force } => {
            catalog.drop_type(name, *force)?;
            Ok(true)
        }
        Stmt::DropTable { name } => {
            catalog.drop_table(name)?;
            Ok(true)
        }
        Stmt::DropView { name } => {
            catalog.drop_view(name)?;
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// Execute one DDL statement. Returns `true` if the statement was DDL.
pub fn execute_ddl(
    catalog: &mut Catalog,
    storage: &mut Storage,
    stats: &mut ExecStats,
    mode: DbMode,
    stmt: &Stmt,
) -> Result<bool, DbError> {
    if !apply_ddl_catalog(catalog, mode, stmt)? {
        return Ok(false);
    }
    match stmt {
        Stmt::CreateTypeForward { .. }
        | Stmt::CreateObjectType { .. }
        | Stmt::CreateVarrayType { .. }
        | Stmt::CreateNestedTableType { .. } => {
            stats.types_created += 1;
        }
        Stmt::CreateObjectTable { name, .. } | Stmt::CreateRelationalTable { name, .. } => {
            storage.create_table(name.clone());
            stats.tables_created += 1;
        }
        Stmt::DropTable { name } => {
            storage.drop_table(name);
        }
        _ => {}
    }
    Ok(true)
}

fn create_view(catalog: &mut Catalog, name: &Ident, query: &SelectStmt) -> Result<(), DbError> {
    catalog.create_view(ViewDef { name: name.clone(), query: query.clone() })
}

/// Split parsed column specs into catalog column definitions plus the
/// constraints implied by inline `NOT NULL` / `PRIMARY KEY` markers.
pub(crate) fn split_column_specs(specs: &[ColumnSpec]) -> (Vec<ColumnDef>, Vec<Constraint>) {
    let mut columns = Vec::with_capacity(specs.len());
    let mut constraints = Vec::new();
    for spec in specs {
        columns.push(ColumnDef { name: spec.name.clone(), sql_type: spec.sql_type.clone() });
        if spec.primary_key {
            constraints.push(Constraint::PrimaryKey(vec![spec.name.clone()]));
        } else if spec.not_null {
            constraints.push(Constraint::NotNull(spec.name.clone()));
        }
    }
    (columns, constraints)
}

/// Every `NESTED TABLE col STORE AS t` clause must name a column whose type
/// is a nested-table collection (Oracle requires the clause; we require its
/// correctness).
fn validate_nested_table_stores(
    catalog: &Catalog,
    columns: &[ColumnDef],
    stores: &[(Ident, Ident)],
) -> Result<(), DbError> {
    for (col, _store) in stores {
        let def = columns
            .iter()
            .find(|c| &c.name == col)
            .ok_or_else(|| DbError::UnknownColumn(col.as_str().to_string()))?;
        let is_nested = match &def.sql_type {
            SqlType::NestedTable(_) => true,
            SqlType::Object(name) | SqlType::Varray(name) => matches!(
                catalog.get_type(name),
                Some(TypeDef::NestedTable { .. })
            ),
            _ => false,
        };
        if !is_nested {
            return Err(DbError::TypeMismatch {
                expected: "nested table column".into(),
                found: format!("{} ({})", col.as_str(), def.sql_type),
            });
        }
    }
    Ok(())
}

//! `EXPLAIN <stmt>`: render a stable, data-independent plan tree.
//!
//! The renderer mirrors the planner decisions in [`crate::exec::select`]
//! (conjunct scheduling, hash-join eligibility, lateral re-expansion) by
//! calling the *same* helper functions, so the printed plan can never
//! disagree with what execution would do. No storage is touched and no row
//! counts appear in the output: a plan depends only on the catalog, the
//! mode and the statement text — which keeps golden-file snapshots
//! deterministic across data sets.
//!
//! The result is an ordinary [`QueryResult`] with a single `PLAN` column,
//! one string row per plan line, indented two spaces per tree level.

use crate::catalog::{Catalog, TableDef};
use crate::error::DbError;
use crate::exec::select::{plan_select, AccessPath, QueryResult, SelectPlan};
use crate::ident::Ident;
use crate::mode::DbMode;
use crate::sql::ast::{Expr, FromItem, SelectStmt, Stmt};
use crate::sql::printer::print_expr;
use crate::types::SqlType;
use crate::value::Value;

/// Views expanding views stop here — a self-referencing view must not
/// recurse the renderer forever.
const MAX_VIEW_DEPTH: usize = 4;

/// Render the plan of `stmt` (the statement *inside* the EXPLAIN).
pub fn explain_stmt(
    catalog: &Catalog,
    mode: DbMode,
    hash_joins: bool,
    cost_planner: bool,
    stmt: &Stmt,
) -> Result<QueryResult, DbError> {
    let mut plan = Plan { catalog, hash_joins, cost_planner, lines: Vec::new() };
    plan.line(0, format!("EXPLAIN ({mode})"));
    plan.stmt(0, stmt)?;
    Ok(QueryResult {
        columns: vec!["PLAN".to_string()],
        rows: plan.lines.into_iter().map(|l| vec![Value::Str(l)]).collect(),
    })
}

/// A per-binding attribute scope for static path resolution; `None` when
/// the binding's shape is not statically known (view expansions).
type Scope = (Ident, Option<Vec<(Ident, SqlType)>>);

struct Plan<'a> {
    catalog: &'a Catalog,
    hash_joins: bool,
    cost_planner: bool,
    lines: Vec<String>,
}

impl Plan<'_> {
    fn line(&mut self, indent: usize, text: impl Into<String>) {
        self.lines.push(format!("{}{}", "  ".repeat(indent), text.into()));
    }

    fn stmt(&mut self, ind: usize, stmt: &Stmt) -> Result<(), DbError> {
        match stmt {
            Stmt::Select(query) => self.select(ind, query, 0)?,
            Stmt::Insert { table, columns, values } => {
                self.insert(ind, table, columns.as_deref(), values)?
            }
            Stmt::Update { table, sets, where_clause } => {
                self.line(ind, format!("UPDATE {table}"));
                self.table_access(ind + 1, table)?;
                for (path, rhs) in sets {
                    let lhs: Vec<&str> = path.iter().map(Ident::as_str).collect();
                    self.line(ind + 1, format!("set {} = {}", lhs.join("."), print_expr(rhs)));
                }
                self.filter_or_all(ind + 1, where_clause.as_ref());
                self.line(ind + 1, "undo: one pre-image record per modified row");
            }
            Stmt::Delete { table, where_clause } => {
                self.line(ind, format!("DELETE FROM {table}"));
                self.table_access(ind + 1, table)?;
                self.filter_or_all(ind + 1, where_clause.as_ref());
                self.line(ind + 1, "undo: one row-removal record per matching row");
            }
            Stmt::Commit => {
                self.line(ind, "COMMIT");
                self.line(ind + 1, "transaction control: makes changes permanent, discards the undo log");
            }
            Stmt::Rollback { to: None } => {
                self.line(ind, "ROLLBACK");
                self.line(ind + 1, "transaction control: applies and discards the undo log");
            }
            Stmt::Rollback { to: Some(name) } => {
                self.line(ind, format!("ROLLBACK TO {name}"));
                self.line(ind + 1, format!("transaction control: applies the undo log back to savepoint '{name}'"));
            }
            Stmt::Savepoint { name } => {
                self.line(ind, format!("SAVEPOINT {name}"));
                self.line(ind + 1, "transaction control: marks the current undo position");
            }
            Stmt::Explain(inner) => {
                self.line(ind, "EXPLAIN");
                self.stmt(ind + 1, inner)?;
            }
            ddl => {
                match ddl_target(ddl) {
                    Some(name) => self.line(ind, format!("{} {name}", ddl.kind())),
                    None => self.line(ind, ddl.kind()),
                }
                if let Stmt::CreateIndex { table, columns, .. } = ddl {
                    let cols: Vec<&str> = columns.iter().map(Ident::as_str).collect();
                    self.line(
                        ind + 1,
                        format!(
                            "build: one full scan of {table} keyed on ({}); maintained by every mutation and undo replay",
                            cols.join(", ")
                        ),
                    );
                }
                if let Stmt::AnalyzeTable { .. } = ddl {
                    self.line(
                        ind + 1,
                        "collect: row count + per-column distinct values into catalog statistics",
                    );
                }
                self.line(ind + 1, "undo: catalog change logged (statement-atomic)");
            }
        }
        Ok(())
    }

    fn insert(
        &mut self,
        ind: usize,
        table: &Ident,
        columns: Option<&[Ident]>,
        values: &[Expr],
    ) -> Result<(), DbError> {
        let table_def = self
            .catalog
            .get_table(table)
            .ok_or_else(|| DbError::UnknownTable(table.as_str().to_string()))?;
        match table_def {
            TableDef::Object { of_type, .. } => {
                self.line(ind, format!("INSERT INTO {table} (object table OF {of_type})"))
            }
            TableDef::Relational { .. } => self.line(ind, format!("INSERT INTO {table}")),
        }
        if let Some(cols) = columns {
            let names: Vec<&str> = cols.iter().map(Ident::as_str).collect();
            self.line(ind + 1, format!("columns: {}", names.join(", ")));
        }
        self.line(ind + 1, format!("values: {} expression(s)", values.len()));
        if columns.is_none() && values.len() == 1 {
            if let (TableDef::Object { of_type, .. }, Expr::Call { name, .. }) =
                (table_def, &values[0])
            {
                if name == of_type {
                    self.line(
                        ind + 1,
                        format!("constructor {name}(…) explodes into the object row"),
                    );
                }
            }
        }
        self.line(ind + 1, "undo: row-insert record (rolled back on statement failure)");
        Ok(())
    }

    /// One access line for a DML target table.
    fn table_access(&mut self, ind: usize, table: &Ident) -> Result<(), DbError> {
        match self.catalog.get_table(table) {
            Some(TableDef::Object { of_type, .. }) => {
                self.line(ind, format!("scan object table {table} OF {of_type}"));
                Ok(())
            }
            Some(TableDef::Relational { .. }) => {
                self.line(ind, format!("scan table {table}"));
                Ok(())
            }
            None => Err(DbError::UnknownTable(table.as_str().to_string())),
        }
    }

    fn filter_or_all(&mut self, ind: usize, pred: Option<&Expr>) {
        match pred {
            Some(pred) => self.line(ind, format!("filter: {}", print_expr(pred))),
            None => self.line(ind, "filter: none (all rows)"),
        }
    }

    fn select(&mut self, ind: usize, query: &SelectStmt, depth: usize) -> Result<(), DbError> {
        self.line(ind, if query.distinct { "SELECT DISTINCT" } else { "SELECT" });

        // The exact plan the executor computes: conjunct scheduling, join
        // order and per-item access paths all come from the shared
        // `plan_select`, so this rendering can never drift from execution.
        let plan = plan_select(self.catalog, self.hash_joins, self.cost_planner, query);
        let scheduled = &plan.scheduled;
        if plan.costed {
            let exec_order: Vec<String> = plan
                .order
                .iter()
                .map(|&i| query.from[i].binding().as_str().to_string())
                .collect();
            self.line(
                ind + 1,
                format!("join order: cost-based ({}) — ANALYZE statistics", exec_order.join(", ")),
            );
        }

        let catalog = self.catalog;
        let mut scopes: Vec<Scope> = Vec::new();
        for (pos, &idx) in plan.order.iter().enumerate() {
            let item = &query.from[idx];
            let applicable: Vec<&Expr> =
                scheduled.iter().filter(|(p, _)| *p == pos).map(|(_, e)| e).collect();
            let binding = item.binding();
            match item {
                FromItem::Table { name, .. } => {
                    if let Some(table) = catalog.get_table(name) {
                        let access = match table {
                            TableDef::Object { of_type, .. } => {
                                format!("scan object table {name} OF {of_type}")
                            }
                            TableDef::Relational { .. } => format!("scan table {name}"),
                        };
                        let join = self.access_note(&plan, pos);
                        self.line(ind + 1, format!("from[{idx}] {binding}: {access}{join}"));
                        self.est_note(ind + 2, &plan, pos);
                        self.filters(ind + 2, &applicable);
                        scopes.push((binding, Some(catalog.table_columns(table))));
                    } else if let Some(view) = catalog.get_view(name) {
                        let join = self.access_note(&plan, pos);
                        self.line(ind + 1, format!("from[{idx}] {binding}: expand view {name}{join}"));
                        if depth < MAX_VIEW_DEPTH {
                            self.select(ind + 2, &view.query, depth + 1)?;
                        } else {
                            self.line(ind + 2, "… (view nesting truncated)");
                        }
                        self.filters(ind + 2, &applicable);
                        scopes.push((binding, None));
                    } else {
                        return Err(DbError::UnknownTable(name.as_str().to_string()));
                    }
                }
                FromItem::CollectionTable { expr, .. } => {
                    self.line(
                        ind + 1,
                        format!(
                            "from[{idx}] {binding}: lateral TABLE({}) — nested loop, re-expanded per combination",
                            print_expr(expr)
                        ),
                    );
                    for note in self.path_notes(expr, &scopes) {
                        self.line(ind + 2, note);
                    }
                    self.filters(ind + 2, &applicable);
                    let elem_scope = self.collection_scope(&scopes, expr);
                    scopes.push((binding, elem_scope));
                }
            }
        }

        // Conjuncts the executor defers past the last item (subqueries,
        // unresolvable references).
        let final_pos = query.from.len().saturating_sub(1);
        for (pos, conjunct) in scheduled {
            if *pos > final_pos {
                self.line(ind + 1, format!("residual filter: {}", print_expr(conjunct)));
            }
        }

        if query.star {
            self.line(ind + 1, "project *");
        } else {
            for item in &query.items {
                self.line(ind + 1, format!("project {}", print_expr(&item.expr)));
                for note in self.path_notes(&item.expr, &scopes) {
                    self.line(ind + 2, note);
                }
            }
        }
        for (expr, asc) in &query.order_by {
            self.line(
                ind + 1,
                format!("order by {}{}", print_expr(expr), if *asc { "" } else { " DESC" }),
            );
        }
        if depth == 0 {
            self.line(ind + 1, "read-only: no undo-log records");
        }
        Ok(())
    }

    /// How the item at execution position `pos` joins the accumulated
    /// combinations — rendered from the executor's own [`AccessPath`].
    fn access_note(&self, plan: &SelectPlan, pos: usize) -> String {
        match &plan.paths[pos] {
            AccessPath::IndexProbe { index, keys } => {
                let keys: Vec<String> = keys.iter().map(print_expr).collect();
                format!(" — index probe {index} (key: {})", keys.join(", "))
            }
            AccessPath::HashJoin { probe, build } => format!(
                " — hash join (build: {}, probe: {})",
                print_expr(build),
                print_expr(probe)
            ),
            AccessPath::Scan if pos > 0 => " — nested-loop join".to_string(),
            AccessPath::Scan => String::new(),
        }
    }

    /// Cardinality annotation from ANALYZE statistics, when the table has
    /// been analyzed (catalog state, so still data-independent).
    fn est_note(&mut self, ind: usize, plan: &SelectPlan, pos: usize) {
        if let Some(est) = plan.est_rows[pos] {
            self.line(ind, format!("est: ~{est} row(s) from ANALYZE statistics"));
        }
    }

    fn filters(&mut self, ind: usize, applicable: &[&Expr]) {
        for conjunct in applicable {
            self.line(ind, format!("filter: {}", print_expr(conjunct)));
        }
    }

    /// REF-deref / embedded-object navigation notes for every dot path
    /// inside `expr`, resolved statically against the catalog.
    fn path_notes(&self, expr: &Expr, scopes: &[Scope]) -> Vec<String> {
        let mut notes = Vec::new();
        collect_note_exprs(expr, &mut |e| match e {
            Expr::Path(parts) => {
                let (path_notes, _) = self.walk_path(scopes, parts);
                notes.extend(path_notes);
            }
            Expr::Deref(_) => notes.push("DEREF: OID-index lookup".to_string()),
            _ => {}
        });
        notes
    }

    /// Walk a dot path through the scopes, describing each step that
    /// crosses a REF (OID-index lookup) or an embedded object (no join).
    /// Returns the notes and the final attribute type when resolvable.
    fn walk_path(&self, scopes: &[Scope], parts: &[Ident]) -> (Vec<String>, Option<SqlType>) {
        let mut notes = Vec::new();
        let Some((_, Some(attrs))) = scopes.iter().find(|(b, _)| b == &parts[0]) else {
            return (notes, None);
        };
        let mut attrs = attrs.clone();
        let mut last_ty = None;
        for (i, seg) in parts[1..].iter().enumerate() {
            let Some((_, ty)) = attrs.iter().find(|(a, _)| a == seg) else {
                return (notes, None);
            };
            let ty = self.catalog.resolve_sql_type(ty.clone());
            let is_last = i + 2 == parts.len();
            match &ty {
                SqlType::Ref(target) => {
                    if !is_last {
                        notes.push(format!("deref {seg}: REF {target} — OID-index lookup"));
                        match self.catalog.get_type(target) {
                            Some(def) => attrs = def.object_attrs().to_vec(),
                            None => return (notes, None),
                        }
                    }
                }
                SqlType::Object(target) => {
                    if !is_last {
                        notes.push(format!("into {seg}: embedded {target} (no join)"));
                        match self.catalog.get_type(target) {
                            Some(def) => attrs = def.object_attrs().to_vec(),
                            None => return (notes, None),
                        }
                    }
                }
                _ => {
                    if !is_last {
                        return (notes, Some(ty));
                    }
                }
            }
            last_ty = Some(ty);
        }
        (notes, last_ty)
    }

    /// The attribute scope a `TABLE(expr)` item exposes: the element type's
    /// attributes for object collections, `COLUMN_VALUE` for scalars.
    fn collection_scope(
        &self,
        scopes: &[Scope],
        expr: &Expr,
    ) -> Option<Vec<(Ident, SqlType)>> {
        let Expr::Path(parts) = expr else { return None };
        let (_, ty) = self.walk_path(scopes, parts);
        let name = match ty? {
            SqlType::Varray(n) | SqlType::NestedTable(n) => n,
            _ => return None,
        };
        let elem = self.catalog.resolve_sql_type(self.catalog.get_type(&name)?.element_type()?.clone());
        match elem {
            SqlType::Object(obj) => {
                self.catalog.get_type(&obj).map(|d| d.object_attrs().to_vec())
            }
            scalar => Some(vec![(Ident::internal("COLUMN_VALUE"), scalar)]),
        }
    }
}

/// Visit `expr` and every nested expression that can carry a path worth a
/// plan note (skipping subqueries: their plans are not this statement's).
fn collect_note_exprs(expr: &Expr, visit: &mut impl FnMut(&Expr)) {
    visit(expr);
    match expr {
        Expr::Call { args, .. } => {
            for arg in args {
                collect_note_exprs(arg, visit);
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            collect_note_exprs(lhs, visit);
            collect_note_exprs(rhs, visit);
        }
        Expr::Not(inner) | Expr::Deref(inner) => collect_note_exprs(inner, visit),
        Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => collect_note_exprs(expr, visit),
        _ => {}
    }
}

/// The object a DDL statement targets, for the one-line plan header.
fn ddl_target(stmt: &Stmt) -> Option<&Ident> {
    match stmt {
        Stmt::CreateTypeForward { name }
        | Stmt::CreateObjectType { name, .. }
        | Stmt::CreateVarrayType { name, .. }
        | Stmt::CreateNestedTableType { name, .. }
        | Stmt::CreateObjectTable { name, .. }
        | Stmt::CreateRelationalTable { name, .. }
        | Stmt::CreateView { name, .. }
        | Stmt::DropType { name, .. }
        | Stmt::DropTable { name }
        | Stmt::DropView { name }
        | Stmt::CreateIndex { name, .. }
        | Stmt::DropIndex { name } => Some(name),
        Stmt::AnalyzeTable { table } => Some(table),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Database;
    use crate::sql::parser::parse_statement;

    fn plan_of(db: &Database, sql: &str) -> Vec<String> {
        let stmt = parse_statement(sql).unwrap();
        let inner = match stmt {
            Stmt::Explain(inner) => *inner,
            other => other,
        };
        explain_stmt(&db.catalog(), db.mode(), true, true, &inner)
            .unwrap()
            .rows
            .into_iter()
            .map(|mut r| match r.remove(0) {
                Value::Str(s) => s,
                other => panic!("non-string plan row {other:?}"),
            })
            .collect()
    }

    fn ref_schema() -> Database {
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(
            "CREATE TYPE T_P AS OBJECT (PName VARCHAR(30), Subject VARCHAR(20));\n\
             CREATE TYPE T_C AS OBJECT (CName VARCHAR(30), Prof REF T_P);\n\
             CREATE TABLE TabP OF T_P;\n\
             CREATE TABLE TabC OF T_C;",
        )
        .unwrap();
        db
    }

    #[test]
    fn ref_chain_projection_notes_the_oid_index_lookup() {
        let db = ref_schema();
        let plan = plan_of(&db, "SELECT c.Prof.Subject FROM TabC c");
        assert!(plan.iter().any(|l| l.contains("scan object table TabC OF T_C")), "{plan:#?}");
        assert!(
            plan.iter().any(|l| l.contains("deref Prof: REF T_P — OID-index lookup")),
            "{plan:#?}"
        );
        assert!(plan.iter().any(|l| l.contains("read-only")), "{plan:#?}");
    }

    #[test]
    fn hash_join_and_nested_loop_render_differently() {
        let db = ref_schema();
        let hash = plan_of(&db, "SELECT p.PName FROM TabP p, TabC c WHERE c.CName = p.PName");
        assert!(hash.iter().any(|l| l.contains("hash join (build: c.CName, probe: p.PName)")), "{hash:#?}");

        // Same statement with the hash path disabled.
        let stmt = parse_statement("SELECT p.PName FROM TabP p, TabC c WHERE c.CName = p.PName").unwrap();
        let plan = explain_stmt(&db.catalog(), db.mode(), false, true, &stmt).unwrap();
        let lines: Vec<String> = plan
            .rows
            .iter()
            .map(|r| r[0].as_str().unwrap().to_string())
            .collect();
        assert!(lines.iter().any(|l| l.contains("nested-loop join")), "{lines:#?}");
        assert!(!lines.iter().any(|l| l.contains("hash join")), "{lines:#?}");
    }

    #[test]
    fn unknown_table_is_rejected_like_execution_would() {
        let db = ref_schema();
        let stmt = parse_statement("SELECT x.a FROM Nowhere x").unwrap();
        let err = explain_stmt(&db.catalog(), db.mode(), true, true, &stmt).unwrap_err();
        assert!(matches!(err, DbError::UnknownTable(_)));
    }

    #[test]
    fn plans_are_data_independent() {
        let mut db = ref_schema();
        let before = plan_of(&db, "SELECT c.CName FROM TabC c");
        db.execute("INSERT INTO TabC VALUES (T_C('DBS', NULL))").unwrap();
        assert_eq!(before, plan_of(&db, "SELECT c.CName FROM TabC c"));
    }
}

//! Snapshot-isolated concurrent read sessions (single writer, many
//! readers).
//!
//! A [`ReadSession`] serves SELECT / EXPLAIN from a **private snapshot
//! cache** — its own [`Catalog`] + [`Storage`] clone holding exactly the
//! writer's last-committed state. The shared engine lock is taken *shared*
//! and only long enough to refresh that cache; query execution itself runs
//! entirely on the private clone with no lock held, so readers never block
//! the writer's ingest and the writer never blocks a reader mid-query.
//!
//! # Freshness protocol
//!
//! The writer's [`Storage`] and [`Catalog`] each maintain a
//! *committed epoch* — a counter bumped once per effective COMMIT — and
//! the storage layer additionally pins a per-table *committed version*
//! at each commit. A refresh compares those against what the session
//! pinned last time:
//!
//! 1. **Both epochs unchanged** — the cache is exactly the committed
//!    state; serve from it without copying anything.
//! 2. **Catalog epoch changed** (a committed DDL) — re-derive the whole
//!    cache: clone the live engine and roll its uncommitted undo tail
//!    back to zero. The undo log is precisely the delta between live and
//!    committed state, so the rolled-back clone *is* the committed state.
//! 3. **Only the storage epoch changed** (committed DML) — incremental:
//!    for each table whose committed version differs from the pinned one,
//!    reconstruct just that table's committed heap from the writer's undo
//!    records ([`Storage::committed_heap`]) and splice it into the cache.
//!
//! Because committed state only moves at COMMIT, uncommitted churn and
//! rollbacks on the writer never invalidate a reader cache — the session
//! observes neither uncommitted nor torn state, by construction.
//!
//! The session keeps its pinned versions in a map of its own rather than
//! trusting the cache storage's internal mutation counters: rolling the
//! clone back bumps those counters arbitrarily, and a counter that
//! happened to collide with the writer's committed version would falsely
//! read as fresh.

use crate::catalog::Catalog;
use crate::error::DbError;
use crate::exec::eval::ExecCtx;
use crate::exec::select::{execute_select, QueryResult};
use crate::ident::Ident;
use crate::mode::DbMode;
use crate::session::{cached_parse_with, PlanCache, SharedState};
use crate::sql::ast::Stmt;
use crate::stats::ExecStats;
use crate::storage::Storage;
use std::collections::HashMap;
use std::sync::Arc;

/// A concurrent snapshot-read session over a [`crate::Database`]'s shared
/// engine, from [`crate::Database::read_session`]. `Send`, so it can serve
/// a connection thread; read-only — any statement other than SELECT /
/// EXPLAIN is rejected. Holds its own plan cache and [`ExecStats`] (those
/// are per-connection state, like the writer's).
#[derive(Debug)]
pub struct ReadSession {
    shared: Arc<SharedState>,
    mode: DbMode,
    hash_joins: bool,
    cost_planner: bool,
    /// Set-oriented bulk document reconstruction, inherited from the
    /// writer handle at session creation (the retrieval layer consults it
    /// via [`Self::bulk_retrieval`]).
    bulk_retrieval: bool,
    /// The private committed-state clone queries execute against.
    cache: Option<CacheState>,
    plan_cache: PlanCache,
    stats: ExecStats,
    /// Cache refreshes that re-derived the whole engine (committed DDL).
    full_refreshes: u64,
    /// Cache refreshes that spliced individual committed heaps (DML).
    incremental_refreshes: u64,
    /// Refreshes that found both epochs unchanged and copied nothing.
    fresh_hits: u64,
}

#[derive(Debug)]
struct CacheState {
    catalog: Catalog,
    storage: Storage,
    /// Per-table committed versions as of the pinned epoch — kept apart
    /// from `storage`'s internal counters (see the module docs).
    pinned: HashMap<Ident, u64>,
    storage_epoch: u64,
    catalog_epoch: u64,
}

impl ReadSession {
    pub(crate) fn new(
        shared: Arc<SharedState>,
        mode: DbMode,
        hash_joins: bool,
        cost_planner: bool,
        bulk_retrieval: bool,
    ) -> ReadSession {
        ReadSession {
            shared,
            mode,
            hash_joins,
            cost_planner,
            bulk_retrieval,
            cache: None,
            plan_cache: PlanCache::default(),
            stats: ExecStats::default(),
            full_refreshes: 0,
            incremental_refreshes: 0,
            fresh_hits: 0,
        }
    }

    /// Pin the session to the writer's current committed state. Takes the
    /// shared engine lock for the duration of the copy work only; called
    /// implicitly at the start of every [`query`](Self::query) /
    /// [`execute`](Self::execute). Returns the `(storage, catalog)`
    /// committed epochs now pinned.
    pub fn refresh(&mut self) -> (u64, u64) {
        let shared = Arc::clone(&self.shared);
        let engine = shared.read();
        let storage_epoch = engine.storage.committed_epoch();
        let catalog_epoch = engine.catalog.committed_epoch();

        match self.cache.as_mut() {
            Some(cache) if cache.storage_epoch == storage_epoch
                && cache.catalog_epoch == catalog_epoch =>
            {
                self.fresh_hits += 1;
            }
            Some(cache) if cache.catalog_epoch == catalog_epoch => {
                // Committed DML only: splice the changed tables' committed
                // heaps into the cache, drop committed-dropped tables.
                self.incremental_refreshes += 1;
                let committed = engine.storage.committed_tables();
                for (table, version) in &committed {
                    if cache.pinned.get(table) != Some(version) {
                        let heap = engine.storage.committed_heap(table);
                        cache.storage.install_table_snapshot(table, heap);
                        cache.pinned.insert(table.clone(), *version);
                    }
                }
                let live: std::collections::HashSet<&Ident> =
                    committed.iter().map(|(t, _)| t).collect();
                let dropped: Vec<Ident> =
                    cache.pinned.keys().filter(|t| !live.contains(t)).cloned().collect();
                for table in dropped {
                    cache.storage.install_table_snapshot(&table, None);
                    cache.pinned.remove(&table);
                }
                cache.storage.set_next_oid(engine.storage.committed_next_oid());
                cache.storage_epoch = storage_epoch;
            }
            _ => {
                // First use, or committed DDL: re-derive the whole cache.
                // Rolling the clone's uncommitted undo tail back to zero
                // yields exactly the committed state.
                self.full_refreshes += 1;
                let mut catalog = engine.catalog.clone();
                catalog.rollback_to(0);
                let mut storage = engine.storage.clone();
                storage.rollback_to(0);
                let pinned = engine.storage.committed_tables().into_iter().collect();
                self.cache = Some(CacheState {
                    catalog,
                    storage,
                    pinned,
                    storage_epoch,
                    catalog_epoch,
                });
            }
        }
        (storage_epoch, catalog_epoch)
    }

    /// Execute one read-only statement against the snapshot cache.
    /// `Ok(None)` never actually escapes — SELECT and EXPLAIN both
    /// produce results, and anything else errors — but the signature
    /// mirrors [`crate::Database::execute`] so callers can treat the two
    /// uniformly.
    pub fn execute(&mut self, sql: &str) -> Result<Option<QueryResult>, DbError> {
        self.refresh();
        let stmts = cached_parse_with(&mut self.plan_cache, &mut self.stats, sql)?;
        if stmts.len() != 1 {
            return Err(DbError::Execution(format!(
                "read session expects exactly one statement, got {}",
                stmts.len()
            )));
        }
        self.execute_stmt(&stmts[0]).map(Some)
    }

    /// Execute one SELECT (or EXPLAIN) and return its result.
    pub fn query(&mut self, sql: &str) -> Result<QueryResult, DbError> {
        match self.execute(sql)? {
            Some(result) => Ok(result),
            None => Err(DbError::Execution("statement is not a query".into())),
        }
    }

    /// Convenience: the single value of a single-row, single-column query.
    pub fn query_scalar(&mut self, sql: &str) -> Result<crate::value::Value, DbError> {
        let result = self.query(sql)?;
        result
            .scalar()
            .cloned()
            .ok_or_else(|| DbError::Execution("query did not return a single scalar".into()))
    }

    fn execute_stmt(&mut self, stmt: &Stmt) -> Result<QueryResult, DbError> {
        // `execute` always refreshes first, so the cache exists here.
        let Some(cache) = self.cache.as_ref() else {
            return Err(DbError::Execution("read session has no snapshot cache".into()));
        };
        self.stats.statements += 1;
        match stmt {
            Stmt::Select(select) => {
                let mut ctx = ExecCtx {
                    catalog: &cache.catalog,
                    storage: &cache.storage,
                    stats: &mut self.stats,
                    mode: self.mode,
                    hash_joins: self.hash_joins,
                    cost_planner: self.cost_planner,
                };
                execute_select(&mut ctx, select, None)
            }
            Stmt::Explain(inner) => crate::exec::explain::explain_stmt(
                &cache.catalog,
                self.mode,
                self.hash_joins,
                self.cost_planner,
                inner,
            ),
            other => Err(DbError::ReadOnly(other.kind())),
        }
    }

    /// The `(storage, catalog)` committed epochs the cache is pinned to —
    /// what the most recent query executed against. `(0, 0)` before the
    /// first refresh.
    pub fn pinned_epochs(&self) -> (u64, u64) {
        match &self.cache {
            Some(c) => (c.storage_epoch, c.catalog_epoch),
            None => (0, 0),
        }
    }

    /// The pinned committed version of one table (0 if absent/unpinned).
    pub fn pinned_version(&self, table: &str) -> u64 {
        let ident = Ident::internal(table);
        self.cache
            .as_ref()
            .and_then(|c| c.pinned.get(&ident).copied())
            .unwrap_or(0)
    }

    /// The dialect mode the owning database was created with.
    pub fn mode(&self) -> crate::DbMode {
        self.mode
    }

    /// Whether bulk document reconstruction is enabled for this session
    /// (inherited from the writer handle at creation, overridable per
    /// session for differential tests).
    pub fn bulk_retrieval(&self) -> bool {
        self.bulk_retrieval
    }

    pub fn set_bulk_retrieval(&mut self, enabled: bool) {
        self.bulk_retrieval = enabled;
    }

    /// Refresh, then expose the pinned committed snapshot: the private
    /// `(catalog, storage)` clone queries execute against. The borrows are
    /// lock-free — the snapshot is this session's own copy — and stay
    /// valid until the next `&mut self` call. This is the read surface the
    /// document retriever walks directly (OID directory, table heaps,
    /// secondary indexes) without going through SQL.
    pub fn snapshot(&mut self) -> (&Catalog, &Storage) {
        self.refresh();
        let cache = self.cache.as_ref().expect("refresh always installs a cache");
        (&cache.catalog, &cache.storage)
    }

    /// Fold one document reconstruction's access counts into this
    /// session's statistics — the reader-side counterpart of
    /// [`crate::Database::record_retrieval`].
    pub fn record_retrieval(&mut self, table_scans: u64, index_probes: u64, bulk: bool) {
        self.stats.retrieve_table_scans += table_scans;
        self.stats.retrieve_index_probes += index_probes;
        self.stats.index_scans += index_probes;
        if bulk {
            self.stats.bulk_retrieves += 1;
        }
    }

    /// This session's private execution counters.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// `(fresh, incremental, full)` refresh outcome counts — how often the
    /// cache was already exact, spliced table-by-table, or re-derived.
    pub fn refresh_counts(&self) -> (u64, u64, u64) {
        (self.fresh_hits, self.incremental_refreshes, self.full_refreshes)
    }
}

#[cfg(test)]
mod tests {
    use crate::{Database, DbError, DbMode, Value};

    fn db() -> Database {
        let mut d = Database::new(DbMode::Oracle9);
        d.execute_script(
            "CREATE TYPE Type_P AS OBJECT(name VARCHAR(20), dept VARCHAR(20));
             CREATE TABLE TabP OF Type_P;
             INSERT INTO TabP VALUES (Type_P('Kudrass', 'DB'));
             INSERT INTO TabP VALUES (Type_P('Conrad', 'DB'));",
        )
        .unwrap();
        d.commit().unwrap();
        d
    }

    #[test]
    fn snapshot_reads_see_committed_state_only() {
        let mut writer = db();
        let mut reader = writer.read_session();
        assert_eq!(
            reader.query_scalar("SELECT COUNT(*) FROM TabP").unwrap(),
            Value::Num(2.0)
        );

        // Uncommitted writer churn is invisible, even after a refresh.
        writer.execute("INSERT INTO TabP VALUES (Type_P('Jaeger', 'CAD'))").unwrap();
        assert_eq!(
            reader.query_scalar("SELECT COUNT(*) FROM TabP").unwrap(),
            Value::Num(2.0)
        );
        // …and a writer rollback changes nothing for the reader.
        writer.rollback();
        assert_eq!(
            reader.query_scalar("SELECT COUNT(*) FROM TabP").unwrap(),
            Value::Num(2.0)
        );

        // A commit becomes visible at the next query.
        writer.execute("INSERT INTO TabP VALUES (Type_P('Jaeger', 'CAD'))").unwrap();
        writer.commit().unwrap();
        assert_eq!(
            reader.query_scalar("SELECT COUNT(*) FROM TabP").unwrap(),
            Value::Num(3.0)
        );
    }

    #[test]
    fn committed_dml_refreshes_incrementally_ddl_rederives() {
        let mut writer = db();
        let mut reader = writer.read_session();
        reader.query("SELECT name FROM TabP").unwrap(); // prime: 1 full
        reader.query("SELECT name FROM TabP").unwrap(); // fresh hit
        assert_eq!(reader.refresh_counts(), (1, 0, 1));

        writer.execute("DELETE FROM TabP WHERE name = 'Conrad'").unwrap();
        writer.commit().unwrap();
        let rows = reader.query("SELECT name FROM TabP").unwrap();
        assert_eq!(rows.rows, vec![vec![Value::str("Kudrass")]]);
        assert_eq!(reader.refresh_counts(), (1, 1, 1));

        // Committed DDL moves the catalog epoch: full re-derive.
        writer.execute("CREATE TABLE TabQ OF Type_P").unwrap();
        writer.commit().unwrap();
        assert_eq!(
            reader.query_scalar("SELECT COUNT(*) FROM TabQ").unwrap(),
            Value::Num(0.0)
        );
        assert_eq!(reader.refresh_counts(), (1, 1, 2));
    }

    #[test]
    fn read_sessions_are_read_only() {
        let writer = db();
        let mut reader = writer.read_session();
        let err = reader.execute("INSERT INTO TabP VALUES (Type_P('X', 'Y'))").unwrap_err();
        assert!(matches!(err, DbError::ReadOnly("INSERT")), "{err}");
        let err = reader.execute("DROP TABLE TabP").unwrap_err();
        assert!(matches!(err, DbError::ReadOnly(_)), "{err}");
        // EXPLAIN is fine — it reads the catalog only.
        let plan = reader.query("EXPLAIN SELECT name FROM TabP").unwrap();
        assert!(!plan.rows.is_empty());
        // The writer's handle is untouched by the rejections.
        assert_eq!(writer.row_count("TabP"), 2);
    }

    #[test]
    fn reader_queries_match_writer_queries_exactly() {
        let mut writer = db();
        let mut reader = writer.read_session();
        for sql in [
            "SELECT name, dept FROM TabP",
            "SELECT COUNT(*) FROM TabP",
            "SELECT p.name FROM TabP p WHERE p.dept = 'DB'",
        ] {
            let from_writer = writer.query(sql).unwrap();
            let from_reader = reader.query(sql).unwrap();
            assert_eq!(from_writer, from_reader, "{sql}");
        }
    }

    #[test]
    fn committed_drop_of_a_table_reaches_the_reader() {
        let mut writer = db();
        let mut reader = writer.read_session();
        reader.query("SELECT name FROM TabP").unwrap();
        writer.execute("DROP TABLE TabP").unwrap();
        writer.commit().unwrap();
        let err = reader.query("SELECT name FROM TabP").unwrap_err();
        assert!(matches!(err, DbError::UnknownTable(_)), "{err}");
    }
}

//! Write-ahead log: the redo half of the engine's ARIES-style story.
//!
//! Every mutation in [`crate::storage`] and [`crate::catalog`] already logs
//! its *inverse* (undo). This module adds the *redo* record: a logical log
//! of committed statements, written and fsynced **before** the undo logs are
//! truncated at COMMIT, so a crash after the fsync can always re-derive the
//! committed state by replay.
//!
//! ## Why a logical log
//!
//! The log records the committed statements themselves (parsed ASTs and
//! [`InsertBatch`]es), not page images. The engine is deterministic — the
//! same statement stream against the same starting state produces a
//! byte-identical [`crate::Database::state_dump`], including OID allocation —
//! so statement replay *is* physical replay here, at a fraction of the log
//! volume. ASTs are encoded with a private binary codec rather than printed
//! SQL: `Value::Date` prints as `DATE '…'` (a literal form the expression
//! grammar cannot re-read everywhere), `Value::Ref` prints as `OID#n`, and
//! NaN degrades to `NULL`, so text round-tripping would be lossy where the
//! codec is exact (floats travel as raw bits).
//!
//! ## Format
//!
//! ```text
//! file   := header entry*
//! header := magic[8] mode[1]              -- b"XORDWAL\x01", 0=Oracle8 1=Oracle9
//! entry  := len[u32 le] crc[u32 le] payload[len]
//! payload:= seq[u64] op_count[u32] op*    -- one entry per COMMIT
//! ```
//!
//! Every entry is length-prefixed and CRC-checksummed. A torn tail write —
//! the crash case — fails the length or checksum test and is *truncated*,
//! never misread; see [`scan_wal`] for the torn-vs-hostile distinction.
//! Entry sequence numbers are strictly monotone; replay after a snapshot
//! skips entries at or below the snapshot's high-water mark, which makes the
//! crash window between "snapshot renamed into place" and "log reset"
//! harmless (the stale entries are simply skipped).
//!
//! All decoding paths are panic-free on hostile bytes: length fields are
//! bounds-checked, enum tags are rejected with
//! [`DbError::CorruptDurableState`], and recursion depth is capped so a
//! crafted deeply-nested expression cannot blow the stack.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::catalog::Constraint;
use crate::error::DbError;
use crate::exec::dml::InsertBatch;
use crate::ident::Ident;
use crate::mode::DbMode;
use crate::sql::ast::{
    BinOp, ColumnSpec, Expr, FromItem, SelectItem, SelectStmt, Stmt,
};
use crate::types::SqlType;
use crate::value::{Oid, Value};

/// Log file magic: "XORDWAL" + format version 1.
pub const WAL_MAGIC: [u8; 8] = *b"XORDWAL\x01";
/// Bytes before the first entry: magic + mode byte.
pub const HEADER_LEN: u64 = 9;
/// Maximum nesting depth accepted when decoding expressions/statements.
/// Deeper input is rejected as corrupt rather than recursed into — hostile
/// bytes must not be able to overflow the stack. 64 is an order of
/// magnitude beyond any AST the mapping layer generates (constructor
/// nesting follows DTD nesting), while 64 debug-build decode frames stay
/// comfortably inside a test thread's 2 MiB stack.
const MAX_DEPTH: u32 = 64;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, polynomial 0xEDB88320)
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC-32 of `bytes` (the checksum used for every log entry and for
/// snapshot files).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Primitive encode / decode
// ---------------------------------------------------------------------------

fn corrupt(msg: impl Into<String>) -> DbError {
    DbError::CorruptDurableState(msg.into())
}

/// Byte-slice cursor with bounds-checked reads. Every read returns
/// `Err(CorruptDurableState)` instead of panicking when the input is short.
pub(crate) struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, pos: 0 }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DbError> {
        if self.remaining() < n {
            return Err(corrupt(format!(
                "unexpected end of input: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, DbError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, DbError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, DbError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, DbError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn bool(&mut self) -> Result<bool, DbError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(corrupt(format!("invalid bool tag {t}"))),
        }
    }

    /// A length field that is about to size an allocation or a loop. The
    /// per-item floor of 1 byte bounds it by the remaining input, so hostile
    /// lengths cannot trigger huge allocations.
    pub(crate) fn len(&mut self) -> Result<usize, DbError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(corrupt(format!(
                "length {n} exceeds remaining input {}",
                self.remaining()
            )));
        }
        Ok(n)
    }

    pub(crate) fn string(&mut self) -> Result<String, DbError> {
        let n = self.len()?;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| corrupt("invalid UTF-8 in string"))
    }

    pub(crate) fn ident(&mut self) -> Result<Ident, DbError> {
        let s = self.string()?;
        // Ident::new re-applies the 30-char limit, so a corrupted length
        // cannot smuggle an oversized identifier past the engine invariant.
        Ident::new(&s)
    }
}

/// Byte-vector builder mirroring [`Dec`].
pub(crate) struct Enc {
    pub(crate) out: Vec<u8>,
}

impl Enc {
    pub(crate) fn new() -> Self {
        Enc { out: Vec::new() }
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub(crate) fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.out.extend_from_slice(s.as_bytes());
    }

    pub(crate) fn ident(&mut self, id: &Ident) {
        self.str(id.as_str());
    }
}

fn next_depth(depth: u32) -> Result<u32, DbError> {
    if depth >= MAX_DEPTH {
        return Err(corrupt(format!("nesting deeper than {MAX_DEPTH} levels")));
    }
    Ok(depth + 1)
}

// ---------------------------------------------------------------------------
// Value / type codec
// ---------------------------------------------------------------------------

pub(crate) fn encode_value(e: &mut Enc, v: &Value) {
    match v {
        Value::Null => e.u8(0),
        Value::Str(s) => {
            e.u8(1);
            e.str(s);
        }
        Value::Num(n) => {
            e.u8(2);
            e.f64(*n);
        }
        Value::Date(s) => {
            e.u8(3);
            e.str(s);
        }
        Value::Obj { type_name, attrs } => {
            e.u8(4);
            e.ident(type_name);
            e.u32(attrs.len() as u32);
            for a in attrs {
                encode_value(e, a);
            }
        }
        Value::Coll { type_name, elements } => {
            e.u8(5);
            e.ident(type_name);
            e.u32(elements.len() as u32);
            for el in elements {
                encode_value(e, el);
            }
        }
        Value::Ref(Oid(o)) => {
            e.u8(6);
            e.u64(*o);
        }
    }
}

pub(crate) fn decode_value(d: &mut Dec, depth: u32) -> Result<Value, DbError> {
    let depth = next_depth(depth)?;
    match d.u8()? {
        0 => Ok(Value::Null),
        1 => Ok(Value::Str(d.string()?)),
        2 => Ok(Value::Num(d.f64()?)),
        3 => Ok(Value::Date(d.string()?)),
        4 => {
            let type_name = d.ident()?;
            let n = d.len()?;
            let mut attrs = Vec::with_capacity(n);
            for _ in 0..n {
                attrs.push(decode_value(d, depth)?);
            }
            Ok(Value::Obj { type_name, attrs })
        }
        5 => {
            let type_name = d.ident()?;
            let n = d.len()?;
            let mut elements = Vec::with_capacity(n);
            for _ in 0..n {
                elements.push(decode_value(d, depth)?);
            }
            Ok(Value::Coll { type_name, elements })
        }
        6 => Ok(Value::Ref(Oid(d.u64()?))),
        t => Err(corrupt(format!("invalid Value tag {t}"))),
    }
}

pub(crate) fn encode_sql_type(e: &mut Enc, t: &SqlType) {
    match t {
        SqlType::Varchar(n) => {
            e.u8(0);
            e.u32(*n);
        }
        SqlType::Char(n) => {
            e.u8(1);
            e.u32(*n);
        }
        SqlType::Number => e.u8(2),
        SqlType::Integer => e.u8(3),
        SqlType::Date => e.u8(4),
        SqlType::Clob => e.u8(5),
        SqlType::Object(n) => {
            e.u8(6);
            e.ident(n);
        }
        SqlType::Varray(n) => {
            e.u8(7);
            e.ident(n);
        }
        SqlType::NestedTable(n) => {
            e.u8(8);
            e.ident(n);
        }
        SqlType::Ref(n) => {
            e.u8(9);
            e.ident(n);
        }
    }
}

pub(crate) fn decode_sql_type(d: &mut Dec) -> Result<SqlType, DbError> {
    match d.u8()? {
        0 => Ok(SqlType::Varchar(d.u32()?)),
        1 => Ok(SqlType::Char(d.u32()?)),
        2 => Ok(SqlType::Number),
        3 => Ok(SqlType::Integer),
        4 => Ok(SqlType::Date),
        5 => Ok(SqlType::Clob),
        6 => Ok(SqlType::Object(d.ident()?)),
        7 => Ok(SqlType::Varray(d.ident()?)),
        8 => Ok(SqlType::NestedTable(d.ident()?)),
        9 => Ok(SqlType::Ref(d.ident()?)),
        t => Err(corrupt(format!("invalid SqlType tag {t}"))),
    }
}

// ---------------------------------------------------------------------------
// Expression / statement codec
// ---------------------------------------------------------------------------

fn encode_binop(e: &mut Enc, op: BinOp) {
    let tag = match op {
        BinOp::Eq => 0,
        BinOp::Ne => 1,
        BinOp::Lt => 2,
        BinOp::Le => 3,
        BinOp::Gt => 4,
        BinOp::Ge => 5,
        BinOp::And => 6,
        BinOp::Or => 7,
        BinOp::Concat => 8,
    };
    e.u8(tag);
}

fn decode_binop(d: &mut Dec) -> Result<BinOp, DbError> {
    match d.u8()? {
        0 => Ok(BinOp::Eq),
        1 => Ok(BinOp::Ne),
        2 => Ok(BinOp::Lt),
        3 => Ok(BinOp::Le),
        4 => Ok(BinOp::Gt),
        5 => Ok(BinOp::Ge),
        6 => Ok(BinOp::And),
        7 => Ok(BinOp::Or),
        8 => Ok(BinOp::Concat),
        t => Err(corrupt(format!("invalid BinOp tag {t}"))),
    }
}

fn encode_idents(e: &mut Enc, ids: &[Ident]) {
    e.u32(ids.len() as u32);
    for id in ids {
        e.ident(id);
    }
}

fn decode_idents(d: &mut Dec) -> Result<Vec<Ident>, DbError> {
    let n = d.len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(d.ident()?);
    }
    Ok(out)
}

fn encode_opt_ident(e: &mut Enc, id: &Option<Ident>) {
    match id {
        None => e.u8(0),
        Some(i) => {
            e.u8(1);
            e.ident(i);
        }
    }
}

fn decode_opt_ident(d: &mut Dec) -> Result<Option<Ident>, DbError> {
    match d.u8()? {
        0 => Ok(None),
        1 => Ok(Some(d.ident()?)),
        t => Err(corrupt(format!("invalid Option tag {t}"))),
    }
}

pub(crate) fn encode_expr(e: &mut Enc, x: &Expr) {
    match x {
        Expr::Literal(v) => {
            e.u8(0);
            encode_value(e, v);
        }
        Expr::Path(parts) => {
            e.u8(1);
            encode_idents(e, parts);
        }
        Expr::Call { name, args } => {
            e.u8(2);
            e.ident(name);
            e.u32(args.len() as u32);
            for a in args {
                encode_expr(e, a);
            }
        }
        Expr::CountStar => e.u8(3),
        Expr::Binary { op, lhs, rhs } => {
            e.u8(4);
            encode_binop(e, *op);
            encode_expr(e, lhs);
            encode_expr(e, rhs);
        }
        Expr::Not(x) => {
            e.u8(5);
            encode_expr(e, x);
        }
        Expr::IsNull { expr, negated } => {
            e.u8(6);
            e.bool(*negated);
            encode_expr(e, expr);
        }
        Expr::Like { expr, pattern, negated } => {
            e.u8(7);
            e.str(pattern);
            e.bool(*negated);
            encode_expr(e, expr);
        }
        Expr::RefOf(id) => {
            e.u8(8);
            e.ident(id);
        }
        Expr::Deref(x) => {
            e.u8(9);
            encode_expr(e, x);
        }
        Expr::Subquery(q) => {
            e.u8(10);
            encode_select(e, q);
        }
        Expr::CastMultiset { query, target } => {
            e.u8(11);
            e.ident(target);
            encode_select(e, query);
        }
        Expr::Exists(q) => {
            e.u8(12);
            encode_select(e, q);
        }
    }
}

pub(crate) fn decode_expr(d: &mut Dec, depth: u32) -> Result<Expr, DbError> {
    let depth = next_depth(depth)?;
    match d.u8()? {
        0 => Ok(Expr::Literal(decode_value(d, depth)?)),
        1 => Ok(Expr::Path(decode_idents(d)?)),
        2 => {
            let name = d.ident()?;
            let n = d.len()?;
            let mut args = Vec::with_capacity(n);
            for _ in 0..n {
                args.push(decode_expr(d, depth)?);
            }
            Ok(Expr::Call { name, args })
        }
        3 => Ok(Expr::CountStar),
        4 => {
            let op = decode_binop(d)?;
            let lhs = Box::new(decode_expr(d, depth)?);
            let rhs = Box::new(decode_expr(d, depth)?);
            Ok(Expr::Binary { op, lhs, rhs })
        }
        5 => Ok(Expr::Not(Box::new(decode_expr(d, depth)?))),
        6 => {
            let negated = d.bool()?;
            let expr = Box::new(decode_expr(d, depth)?);
            Ok(Expr::IsNull { expr, negated })
        }
        7 => {
            let pattern = d.string()?;
            let negated = d.bool()?;
            let expr = Box::new(decode_expr(d, depth)?);
            Ok(Expr::Like { expr, pattern, negated })
        }
        8 => Ok(Expr::RefOf(d.ident()?)),
        9 => Ok(Expr::Deref(Box::new(decode_expr(d, depth)?))),
        10 => Ok(Expr::Subquery(Box::new(decode_select(d, depth)?))),
        11 => {
            let target = d.ident()?;
            let query = Box::new(decode_select(d, depth)?);
            Ok(Expr::CastMultiset { query, target })
        }
        12 => Ok(Expr::Exists(Box::new(decode_select(d, depth)?))),
        t => Err(corrupt(format!("invalid Expr tag {t}"))),
    }
}

fn encode_opt_expr(e: &mut Enc, x: &Option<Expr>) {
    match x {
        None => e.u8(0),
        Some(x) => {
            e.u8(1);
            encode_expr(e, x);
        }
    }
}

fn decode_opt_expr(d: &mut Dec, depth: u32) -> Result<Option<Expr>, DbError> {
    match d.u8()? {
        0 => Ok(None),
        1 => Ok(Some(decode_expr(d, depth)?)),
        t => Err(corrupt(format!("invalid Option tag {t}"))),
    }
}

pub(crate) fn encode_select(e: &mut Enc, s: &SelectStmt) {
    e.bool(s.distinct);
    e.bool(s.star);
    e.u32(s.items.len() as u32);
    for it in &s.items {
        encode_expr(e, &it.expr);
        encode_opt_ident(e, &it.alias);
    }
    e.u32(s.from.len() as u32);
    for f in &s.from {
        match f {
            FromItem::Table { name, alias } => {
                e.u8(0);
                e.ident(name);
                encode_opt_ident(e, alias);
            }
            FromItem::CollectionTable { expr, alias } => {
                e.u8(1);
                encode_expr(e, expr);
                encode_opt_ident(e, alias);
            }
        }
    }
    encode_opt_expr(e, &s.where_clause);
    e.u32(s.order_by.len() as u32);
    for (x, asc) in &s.order_by {
        encode_expr(e, x);
        e.bool(*asc);
    }
}

pub(crate) fn decode_select(d: &mut Dec, depth: u32) -> Result<SelectStmt, DbError> {
    let depth = next_depth(depth)?;
    let distinct = d.bool()?;
    let star = d.bool()?;
    let n = d.len()?;
    let mut items = Vec::with_capacity(n);
    for _ in 0..n {
        let expr = decode_expr(d, depth)?;
        let alias = decode_opt_ident(d)?;
        items.push(SelectItem { expr, alias });
    }
    let n = d.len()?;
    let mut from = Vec::with_capacity(n);
    for _ in 0..n {
        from.push(match d.u8()? {
            0 => {
                let name = d.ident()?;
                let alias = decode_opt_ident(d)?;
                FromItem::Table { name, alias }
            }
            1 => {
                let expr = decode_expr(d, depth)?;
                let alias = decode_opt_ident(d)?;
                FromItem::CollectionTable { expr, alias }
            }
            t => return Err(corrupt(format!("invalid FromItem tag {t}"))),
        });
    }
    let where_clause = decode_opt_expr(d, depth)?;
    let n = d.len()?;
    let mut order_by = Vec::with_capacity(n);
    for _ in 0..n {
        let x = decode_expr(d, depth)?;
        let asc = d.bool()?;
        order_by.push((x, asc));
    }
    Ok(SelectStmt { distinct, items, star, from, where_clause, order_by })
}

fn encode_constraint(e: &mut Enc, c: &Constraint) {
    match c {
        Constraint::PrimaryKey(cols) => {
            e.u8(0);
            encode_idents(e, cols);
        }
        Constraint::NotNull(col) => {
            e.u8(1);
            e.ident(col);
        }
        Constraint::Check(x) => {
            e.u8(2);
            encode_expr(e, x);
        }
        Constraint::Unique(cols) => {
            e.u8(3);
            encode_idents(e, cols);
        }
    }
}

fn decode_constraint(d: &mut Dec, depth: u32) -> Result<Constraint, DbError> {
    match d.u8()? {
        0 => Ok(Constraint::PrimaryKey(decode_idents(d)?)),
        1 => Ok(Constraint::NotNull(d.ident()?)),
        2 => Ok(Constraint::Check(decode_expr(d, depth)?)),
        3 => Ok(Constraint::Unique(decode_idents(d)?)),
        t => Err(corrupt(format!("invalid Constraint tag {t}"))),
    }
}

fn encode_constraints(e: &mut Enc, cs: &[Constraint]) {
    e.u32(cs.len() as u32);
    for c in cs {
        encode_constraint(e, c);
    }
}

fn decode_constraints(d: &mut Dec, depth: u32) -> Result<Vec<Constraint>, DbError> {
    let n = d.len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(decode_constraint(d, depth)?);
    }
    Ok(out)
}

pub(crate) fn encode_stmt(e: &mut Enc, s: &Stmt) {
    match s {
        Stmt::CreateTypeForward { name } => {
            e.u8(0);
            e.ident(name);
        }
        Stmt::CreateObjectType { name, attrs } => {
            e.u8(1);
            e.ident(name);
            e.u32(attrs.len() as u32);
            for (a, t) in attrs {
                e.ident(a);
                encode_sql_type(e, t);
            }
        }
        Stmt::CreateVarrayType { name, max, elem } => {
            e.u8(2);
            e.ident(name);
            e.u32(*max);
            encode_sql_type(e, elem);
        }
        Stmt::CreateNestedTableType { name, elem } => {
            e.u8(3);
            e.ident(name);
            encode_sql_type(e, elem);
        }
        Stmt::CreateObjectTable { name, of_type, constraints } => {
            e.u8(4);
            e.ident(name);
            e.ident(of_type);
            encode_constraints(e, constraints);
        }
        Stmt::CreateRelationalTable { name, columns, constraints, nested_table_stores } => {
            e.u8(5);
            e.ident(name);
            e.u32(columns.len() as u32);
            for c in columns {
                e.ident(&c.name);
                encode_sql_type(e, &c.sql_type);
                e.bool(c.not_null);
                e.bool(c.primary_key);
            }
            encode_constraints(e, constraints);
            e.u32(nested_table_stores.len() as u32);
            for (col, store) in nested_table_stores {
                e.ident(col);
                e.ident(store);
            }
        }
        Stmt::CreateView { name, query, or_replace } => {
            e.u8(6);
            e.ident(name);
            e.bool(*or_replace);
            encode_select(e, query);
        }
        Stmt::CreateIndex { name, table, columns, unique } => {
            e.u8(7);
            e.ident(name);
            e.ident(table);
            encode_idents(e, columns);
            e.bool(*unique);
        }
        Stmt::DropIndex { name } => {
            e.u8(8);
            e.ident(name);
        }
        Stmt::AnalyzeTable { table } => {
            e.u8(9);
            e.ident(table);
        }
        Stmt::DropType { name, force } => {
            e.u8(10);
            e.ident(name);
            e.bool(*force);
        }
        Stmt::DropTable { name } => {
            e.u8(11);
            e.ident(name);
        }
        Stmt::DropView { name } => {
            e.u8(12);
            e.ident(name);
        }
        Stmt::Insert { table, columns, values } => {
            e.u8(13);
            e.ident(table);
            match columns {
                None => e.u8(0),
                Some(cols) => {
                    e.u8(1);
                    encode_idents(e, cols);
                }
            }
            e.u32(values.len() as u32);
            for v in values {
                encode_expr(e, v);
            }
        }
        Stmt::Select(q) => {
            e.u8(14);
            encode_select(e, q);
        }
        Stmt::Delete { table, where_clause } => {
            e.u8(15);
            e.ident(table);
            encode_opt_expr(e, where_clause);
        }
        Stmt::Update { table, sets, where_clause } => {
            e.u8(16);
            e.ident(table);
            e.u32(sets.len() as u32);
            for (path, x) in sets {
                encode_idents(e, path);
                encode_expr(e, x);
            }
            encode_opt_expr(e, where_clause);
        }
        Stmt::Commit => e.u8(17),
        Stmt::Rollback { to } => {
            e.u8(18);
            encode_opt_ident(e, to);
        }
        Stmt::Savepoint { name } => {
            e.u8(19);
            e.ident(name);
        }
        Stmt::Explain(inner) => {
            e.u8(20);
            encode_stmt(e, inner);
        }
    }
}

pub(crate) fn decode_stmt(d: &mut Dec, depth: u32) -> Result<Stmt, DbError> {
    let depth = next_depth(depth)?;
    match d.u8()? {
        0 => Ok(Stmt::CreateTypeForward { name: d.ident()? }),
        1 => {
            let name = d.ident()?;
            let n = d.len()?;
            let mut attrs = Vec::with_capacity(n);
            for _ in 0..n {
                let a = d.ident()?;
                let t = decode_sql_type(d)?;
                attrs.push((a, t));
            }
            Ok(Stmt::CreateObjectType { name, attrs })
        }
        2 => {
            let name = d.ident()?;
            let max = d.u32()?;
            let elem = decode_sql_type(d)?;
            Ok(Stmt::CreateVarrayType { name, max, elem })
        }
        3 => {
            let name = d.ident()?;
            let elem = decode_sql_type(d)?;
            Ok(Stmt::CreateNestedTableType { name, elem })
        }
        4 => {
            let name = d.ident()?;
            let of_type = d.ident()?;
            let constraints = decode_constraints(d, depth)?;
            Ok(Stmt::CreateObjectTable { name, of_type, constraints })
        }
        5 => {
            let name = d.ident()?;
            let n = d.len()?;
            let mut columns = Vec::with_capacity(n);
            for _ in 0..n {
                let cname = d.ident()?;
                let sql_type = decode_sql_type(d)?;
                let not_null = d.bool()?;
                let primary_key = d.bool()?;
                columns.push(ColumnSpec { name: cname, sql_type, not_null, primary_key });
            }
            let constraints = decode_constraints(d, depth)?;
            let n = d.len()?;
            let mut nested_table_stores = Vec::with_capacity(n);
            for _ in 0..n {
                let col = d.ident()?;
                let store = d.ident()?;
                nested_table_stores.push((col, store));
            }
            Ok(Stmt::CreateRelationalTable { name, columns, constraints, nested_table_stores })
        }
        6 => {
            let name = d.ident()?;
            let or_replace = d.bool()?;
            let query = decode_select(d, depth)?;
            Ok(Stmt::CreateView { name, query, or_replace })
        }
        7 => {
            let name = d.ident()?;
            let table = d.ident()?;
            let columns = decode_idents(d)?;
            let unique = d.bool()?;
            Ok(Stmt::CreateIndex { name, table, columns, unique })
        }
        8 => Ok(Stmt::DropIndex { name: d.ident()? }),
        9 => Ok(Stmt::AnalyzeTable { table: d.ident()? }),
        10 => {
            let name = d.ident()?;
            let force = d.bool()?;
            Ok(Stmt::DropType { name, force })
        }
        11 => Ok(Stmt::DropTable { name: d.ident()? }),
        12 => Ok(Stmt::DropView { name: d.ident()? }),
        13 => {
            let table = d.ident()?;
            let columns = match d.u8()? {
                0 => None,
                1 => Some(decode_idents(d)?),
                t => return Err(corrupt(format!("invalid Option tag {t}"))),
            };
            let n = d.len()?;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(decode_expr(d, depth)?);
            }
            Ok(Stmt::Insert { table, columns, values })
        }
        14 => Ok(Stmt::Select(decode_select(d, depth)?)),
        15 => {
            let table = d.ident()?;
            let where_clause = decode_opt_expr(d, depth)?;
            Ok(Stmt::Delete { table, where_clause })
        }
        16 => {
            let table = d.ident()?;
            let n = d.len()?;
            let mut sets = Vec::with_capacity(n);
            for _ in 0..n {
                let path = decode_idents(d)?;
                let x = decode_expr(d, depth)?;
                sets.push((path, x));
            }
            let where_clause = decode_opt_expr(d, depth)?;
            Ok(Stmt::Update { table, sets, where_clause })
        }
        17 => Ok(Stmt::Commit),
        18 => Ok(Stmt::Rollback { to: decode_opt_ident(d)? }),
        19 => Ok(Stmt::Savepoint { name: d.ident()? }),
        20 => Ok(Stmt::Explain(Box::new(decode_stmt(d, depth)?))),
        t => Err(corrupt(format!("invalid Stmt tag {t}"))),
    }
}

// ---------------------------------------------------------------------------
// Redo operations and log entries
// ---------------------------------------------------------------------------

/// One logged mutation: a statement that ran through the SQL front end, or
/// a batched insert that bypassed it.
#[derive(Debug, Clone, PartialEq)]
pub enum RedoOp {
    /// A successful, effect-producing statement.
    Stmt(Stmt),
    /// A successful [`crate::Database::execute_batch`] call.
    Batch(InsertBatch),
}

fn encode_redo_op(e: &mut Enc, op: &RedoOp) {
    match op {
        RedoOp::Stmt(s) => {
            e.u8(0);
            encode_stmt(e, s);
        }
        RedoOp::Batch(b) => {
            e.u8(1);
            e.ident(&b.table);
            match &b.columns {
                None => e.u8(0),
                Some(cols) => {
                    e.u8(1);
                    encode_idents(e, cols);
                }
            }
            e.u32(b.rows.len() as u32);
            for row in &b.rows {
                e.u32(row.len() as u32);
                for x in row {
                    encode_expr(e, x);
                }
            }
        }
    }
}

fn decode_redo_op(d: &mut Dec) -> Result<RedoOp, DbError> {
    match d.u8()? {
        0 => Ok(RedoOp::Stmt(decode_stmt(d, 0)?)),
        1 => {
            let table = d.ident()?;
            let columns = match d.u8()? {
                0 => None,
                1 => Some(decode_idents(d)?),
                t => return Err(corrupt(format!("invalid Option tag {t}"))),
            };
            let n = d.len()?;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                let m = d.len()?;
                let mut row = Vec::with_capacity(m);
                for _ in 0..m {
                    row.push(decode_expr(d, 0)?);
                }
                rows.push(row);
            }
            Ok(RedoOp::Batch(InsertBatch { table, columns, rows }))
        }
        t => Err(corrupt(format!("invalid RedoOp tag {t}"))),
    }
}

/// One committed transaction: all effect-producing operations between two
/// COMMIT barriers, in execution order.
#[derive(Debug, Clone, PartialEq)]
pub struct WalEntry {
    /// Strictly monotone per log; replay skips entries at or below a
    /// snapshot's recorded sequence.
    pub seq: u64,
    pub ops: Vec<RedoOp>,
}

fn encode_entry_payload(entry: &WalEntry) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(entry.seq);
    e.u32(entry.ops.len() as u32);
    for op in &entry.ops {
        encode_redo_op(&mut e, op);
    }
    e.out
}

fn decode_entry_payload(bytes: &[u8]) -> Result<WalEntry, DbError> {
    let mut d = Dec::new(bytes);
    let seq = d.u64()?;
    let n = d.len()?;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        ops.push(decode_redo_op(&mut d)?);
    }
    if !d.is_empty() {
        return Err(corrupt(format!("{} trailing bytes after WAL entry", d.remaining())));
    }
    Ok(WalEntry { seq, ops })
}

// ---------------------------------------------------------------------------
// Scanning (recovery read path)
// ---------------------------------------------------------------------------

/// Result of scanning a log image: the decoded prefix plus where the valid
/// bytes end.
#[derive(Debug)]
pub struct WalScan {
    /// Mode byte from the header; `None` when the file is shorter than the
    /// header (treated as fully torn — an interrupted initial creation).
    pub mode: Option<DbMode>,
    /// All fully-durable entries, in log order.
    pub entries: Vec<WalEntry>,
    /// Byte offset of the end of the last valid entry (or the header). The
    /// file should be truncated here on reopen.
    pub valid_len: u64,
    /// Bytes past `valid_len` — a torn tail from an interrupted append.
    pub truncated_bytes: u64,
}

/// Decode a log image, separating three cases:
///
/// * **Torn tail** (crash mid-append): an incomplete frame, a length running
///   past end-of-file, or a CRC mismatch in the *last* readable frame. The
///   scan stops and reports the tail length; this is normal crash recovery,
///   not an error.
/// * **Hostile / corrupt interior**: a frame whose CRC *validates* but whose
///   payload does not decode, or a non-monotone sequence number. The fsync
///   discipline makes this impossible under crashes, so it is reported as
///   [`DbError::CorruptDurableState`] rather than silently truncated —
///   truncating here could drop durably-committed data.
/// * **Wrong file**: bad magic on a file big enough to have one.
pub fn scan_wal(bytes: &[u8]) -> Result<WalScan, DbError> {
    if (bytes.len() as u64) < HEADER_LEN {
        // Shorter than the header: creation itself was torn.
        return Ok(WalScan {
            mode: None,
            entries: Vec::new(),
            valid_len: 0,
            truncated_bytes: bytes.len() as u64,
        });
    }
    if bytes[..8] != WAL_MAGIC {
        return Err(corrupt("WAL file has wrong magic bytes"));
    }
    let mode = match bytes[8] {
        0 => DbMode::Oracle8,
        1 => DbMode::Oracle9,
        t => return Err(corrupt(format!("invalid mode byte {t} in WAL header"))),
    };
    let mut entries = Vec::new();
    let mut pos = HEADER_LEN as usize;
    let mut last_seq = 0u64;
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            break;
        }
        if rest.len() < 8 {
            break; // torn: frame header incomplete
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        let Some(payload) = rest.get(8..8 + len) else {
            break; // torn: payload runs past end of file
        };
        if crc32(payload) != crc {
            break; // torn: append interrupted mid-payload
        }
        // Checksum is valid: from here on, failures are corruption, not
        // crash artifacts.
        let entry = decode_entry_payload(payload)
            .map_err(|e| corrupt(format!("checksummed WAL entry failed to decode: {e}")))?;
        if entry.seq <= last_seq {
            return Err(corrupt(format!(
                "non-monotone WAL sequence: {} after {last_seq}",
                entry.seq
            )));
        }
        last_seq = entry.seq;
        entries.push(entry);
        pos += 8 + len;
    }
    Ok(WalScan {
        mode: Some(mode),
        entries,
        valid_len: pos as u64,
        truncated_bytes: (bytes.len() - pos) as u64,
    })
}

// ---------------------------------------------------------------------------
// Writing (commit path)
// ---------------------------------------------------------------------------

fn io_err(context: &str, e: std::io::Error) -> DbError {
    DbError::Io(format!("{context}: {e}"))
}

/// Append-only log writer. Created fresh ([`WalWriter::create`]) or attached
/// to a recovered file ([`WalWriter::reopen`], which drops any torn tail).
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    seq: u64,
    len_bytes: u64,
}

impl WalWriter {
    /// Create (or overwrite) the log at `path` with a fresh header.
    pub fn create(path: &Path, mode: DbMode) -> Result<WalWriter, DbError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| io_err("create WAL", e))?;
        let mut header = [0u8; HEADER_LEN as usize];
        header[..8].copy_from_slice(&WAL_MAGIC);
        header[8] = match mode {
            DbMode::Oracle8 => 0,
            DbMode::Oracle9 => 1,
        };
        file.write_all(&header).map_err(|e| io_err("write WAL header", e))?;
        file.sync_data().map_err(|e| io_err("sync WAL header", e))?;
        Ok(WalWriter { file, seq: 0, len_bytes: HEADER_LEN })
    }

    /// Attach to an existing log whose scan reported `valid_len` good bytes
    /// and a last sequence of `seq`. Any torn tail past `valid_len` is cut
    /// off here, making recovery idempotent: a second scan sees a clean file.
    pub fn reopen(path: &Path, valid_len: u64, seq: u64) -> Result<WalWriter, DbError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| io_err("open WAL", e))?;
        file.set_len(valid_len).map_err(|e| io_err("truncate torn WAL tail", e))?;
        file.seek(SeekFrom::End(0)).map_err(|e| io_err("seek WAL", e))?;
        file.sync_data().map_err(|e| io_err("sync truncated WAL", e))?;
        Ok(WalWriter { file, seq, len_bytes: valid_len })
    }

    /// Sequence number of the last appended entry (0 if none yet).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Current on-disk length of the log in bytes (header included) —
    /// what [`crate::Database::stats_report`] exposes so a long-running
    /// server can watch its recovery debt grow.
    pub fn len_bytes(&self) -> u64 {
        self.len_bytes
    }

    /// Append one committed transaction and fsync. Returns the entry's
    /// sequence number. On success the entry is durable — this is the
    /// barrier COMMIT relies on before truncating the undo logs.
    pub fn append(&mut self, ops: &[RedoOp]) -> Result<u64, DbError> {
        let seq = self.seq + 1;
        let payload = encode_entry_payload(&WalEntry { seq, ops: ops.to_vec() });
        if payload.len() > u32::MAX as usize {
            return Err(DbError::Execution(format!(
                "WAL entry too large: {} bytes",
                payload.len()
            )));
        }
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame).map_err(|e| io_err("append WAL entry", e))?;
        self.file.sync_data().map_err(|e| io_err("fsync WAL entry", e))?;
        self.seq = seq;
        self.len_bytes += frame.len() as u64;
        Ok(seq)
    }

    /// Discard all entries (after a snapshot has made them redundant),
    /// keeping the header and — crucially — the in-memory sequence counter,
    /// so post-snapshot entries stay above the snapshot's high-water mark.
    pub fn reset(&mut self) -> Result<(), DbError> {
        self.file.set_len(HEADER_LEN).map_err(|e| io_err("reset WAL", e))?;
        self.file.seek(SeekFrom::End(0)).map_err(|e| io_err("seek WAL", e))?;
        self.file.sync_data().map_err(|e| io_err("sync reset WAL", e))?;
        self.len_bytes = HEADER_LEN;
        Ok(())
    }
}

/// Read a log file fully into memory; a missing file reads as empty (fresh
/// database, header not yet written).
pub fn read_wal_file(path: &Path) -> Result<Vec<u8>, DbError> {
    match File::open(path) {
        Ok(mut f) => {
            let mut buf = Vec::new();
            f.read_to_end(&mut buf).map_err(|e| io_err("read WAL", e))?;
            Ok(buf)
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(io_err("open WAL", e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(s: &str) -> Ident {
        Ident::new(s).unwrap()
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    fn roundtrip_stmt(s: &Stmt) {
        let mut e = Enc::new();
        encode_stmt(&mut e, s);
        let mut d = Dec::new(&e.out);
        let back = decode_stmt(&mut d, 0).unwrap();
        assert!(d.is_empty(), "trailing bytes after {s:?}");
        assert_eq!(&back, s);
    }

    #[test]
    fn stmt_codec_roundtrips_every_variant() {
        use crate::sql::parse_script;
        let script = "
            CREATE TYPE TFwd;
            CREATE TYPE TObj AS OBJECT (A VARCHAR(10), B NUMBER, C REF TFwd);
            CREATE TYPE TVa AS VARRAY(5) OF NUMBER;
            CREATE TYPE TNt AS TABLE OF VARCHAR(20);
            CREATE TABLE TabO OF TObj (A PRIMARY KEY, CHECK (B > 0));
            CREATE TABLE TabR (X NUMBER PRIMARY KEY, Y TNt NOT NULL)
                NESTED TABLE Y STORE AS YStore;
            CREATE OR REPLACE VIEW V AS
                SELECT DISTINCT o.A AS Name FROM TabO o, TABLE(o.C) c
                WHERE o.B = 1 AND o.A LIKE 'x%' OR NOT (o.A IS NOT NULL)
                ORDER BY o.A DESC;
            CREATE UNIQUE INDEX Idx ON TabR (X, Y);
            DROP INDEX Idx;
            ANALYZE TABLE TabR COMPUTE STATISTICS;
            DROP TYPE TVa FORCE;
            DROP TABLE TabR;
            DROP VIEW V;
            INSERT INTO TabR (X, Y) VALUES (1, TNt('a', 'b'));
            INSERT INTO TabO VALUES (TObj('s', 4.5, NULL));
            SELECT COUNT(*) FROM TabO t WHERE EXISTS (SELECT t2.A FROM TabO t2);
            SELECT CAST(MULTISET(SELECT r.X FROM TabR r) AS TNt) FROM TabR z;
            SELECT REF(o), DEREF(o.C) FROM TabO o;
            DELETE FROM TabO WHERE TabO.A = 'x';
            UPDATE TabO SET A = 'y', B = 2 WHERE TabO.B < 9;
            COMMIT;
            ROLLBACK;
            ROLLBACK TO SAVEPOINT sp1;
            SAVEPOINT sp1;
            EXPLAIN PLAN FOR SELECT * FROM TabO;
        ";
        let stmts = parse_script(script).unwrap();
        assert!(stmts.len() >= 24, "parser should produce every variant");
        for s in &stmts {
            roundtrip_stmt(s);
        }
    }

    #[test]
    fn value_codec_is_exact_for_floats_dates_refs() {
        let values = [
            Value::Null,
            Value::Num(0.1 + 0.2), // not representable in short decimal
            Value::Num(f64::NAN),
            Value::Num(f64::NEG_INFINITY),
            Value::Num(-0.0),
            Value::Date("2002-03-26".into()),
            Value::Ref(Oid(u64::MAX)),
            Value::Obj {
                type_name: id("T"),
                attrs: vec![Value::Str("O'Hara".into()), Value::Coll {
                    type_name: id("C"),
                    elements: vec![Value::Num(1.0)],
                }],
            },
        ];
        for v in &values {
            let mut e = Enc::new();
            encode_value(&mut e, v);
            let back = decode_value(&mut Dec::new(&e.out), 0).unwrap();
            // Bit-exact comparison (NaN != NaN under PartialEq).
            match (v, &back) {
                (Value::Num(a), Value::Num(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                _ => assert_eq!(v, &back),
            }
        }
    }

    #[test]
    fn decoder_rejects_truncated_and_bad_tag_input_without_panicking() {
        let mut e = Enc::new();
        encode_value(&mut e, &Value::Str("hello".into()));
        let good = e.out;
        for cut in 0..good.len() {
            let r = decode_value(&mut Dec::new(&good[..cut]), 0);
            assert!(r.is_err(), "truncation at {cut} must error");
        }
        assert!(decode_value(&mut Dec::new(&[99]), 0).is_err());
        assert!(decode_stmt(&mut Dec::new(&[250, 0, 0]), 0).is_err());
    }

    #[test]
    fn decoder_caps_recursion_depth() {
        // NOT(NOT(NOT(... Literal NULL))) deeper than MAX_DEPTH.
        let mut bytes = vec![5u8; (MAX_DEPTH + 10) as usize]; // Expr tag 5 = Not
        bytes.push(0); // Expr tag 0 = Literal
        bytes.push(0); // Value tag 0 = Null
        let r = decode_expr(&mut Dec::new(&bytes), 0);
        assert!(matches!(r, Err(DbError::CorruptDurableState(_))));
    }

    #[test]
    fn hostile_length_fields_do_not_allocate_or_panic() {
        // Str with a 4 GiB length claim but 3 bytes of content.
        let mut bytes = vec![1u8]; // Value tag Str
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(b"abc");
        assert!(decode_value(&mut Dec::new(&bytes), 0).is_err());
    }

    fn entry_bytes(seq: u64, ops: &[RedoOp]) -> Vec<u8> {
        let payload = encode_entry_payload(&WalEntry { seq, ops: ops.to_vec() });
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame
    }

    fn header(mode: DbMode) -> Vec<u8> {
        let mut h = WAL_MAGIC.to_vec();
        h.push(match mode {
            DbMode::Oracle8 => 0,
            DbMode::Oracle9 => 1,
        });
        h
    }

    #[test]
    fn scan_handles_empty_torn_and_valid_files() {
        // Fully torn creation.
        let s = scan_wal(b"XOR").unwrap();
        assert_eq!(s.valid_len, 0);
        assert_eq!(s.truncated_bytes, 3);
        assert!(s.mode.is_none());

        // Header only.
        let s = scan_wal(&header(DbMode::Oracle9)).unwrap();
        assert_eq!(s.mode, Some(DbMode::Oracle9));
        assert_eq!(s.valid_len, HEADER_LEN);
        assert!(s.entries.is_empty());

        // Two entries, then a torn third.
        let op = RedoOp::Stmt(Stmt::Commit);
        let mut file = header(DbMode::Oracle8);
        file.extend_from_slice(&entry_bytes(1, std::slice::from_ref(&op)));
        file.extend_from_slice(&entry_bytes(2, std::slice::from_ref(&op)));
        let full_len = file.len() as u64;
        let torn = entry_bytes(3, std::slice::from_ref(&op));
        file.extend_from_slice(&torn[..torn.len() - 2]);
        let s = scan_wal(&file).unwrap();
        assert_eq!(s.entries.len(), 2);
        assert_eq!(s.valid_len, full_len);
        assert_eq!(s.truncated_bytes, (torn.len() - 2) as u64);
    }

    #[test]
    fn scan_rejects_hostile_interior_but_truncates_torn_tail() {
        let op = RedoOp::Stmt(Stmt::Commit);
        // CRC-valid but undecodable payload → hard error.
        let garbage_payload = vec![200u8, 1, 2, 3];
        let mut file = header(DbMode::Oracle9);
        file.extend_from_slice(&(garbage_payload.len() as u32).to_le_bytes());
        file.extend_from_slice(&crc32(&garbage_payload).to_le_bytes());
        file.extend_from_slice(&garbage_payload);
        assert!(scan_wal(&file).is_err());

        // Non-monotone sequence → hard error.
        let mut file = header(DbMode::Oracle9);
        file.extend_from_slice(&entry_bytes(2, std::slice::from_ref(&op)));
        file.extend_from_slice(&entry_bytes(2, std::slice::from_ref(&op)));
        assert!(scan_wal(&file).is_err());

        // Wrong magic → hard error.
        assert!(scan_wal(b"NOTAWALFILE").is_err());

        // CRC mismatch in the last frame → torn, not error.
        let mut file = header(DbMode::Oracle9);
        file.extend_from_slice(&entry_bytes(1, std::slice::from_ref(&op)));
        let good_len = file.len() as u64;
        let mut bad = entry_bytes(2, std::slice::from_ref(&op));
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        file.extend_from_slice(&bad);
        let s = scan_wal(&file).unwrap();
        assert_eq!(s.entries.len(), 1);
        assert_eq!(s.valid_len, good_len);
    }

    #[test]
    fn writer_appends_are_scannable_and_reset_keeps_seq() {
        let dir = std::env::temp_dir().join(format!(
            "xmlord-wal-unit-{}-{}",
            std::process::id(),
            line!()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, DbMode::Oracle9).unwrap();
        assert_eq!(w.append(&[RedoOp::Stmt(Stmt::Commit)]).unwrap(), 1);
        assert_eq!(w.append(&[RedoOp::Stmt(Stmt::Commit)]).unwrap(), 2);
        let s = scan_wal(&read_wal_file(&path).unwrap()).unwrap();
        assert_eq!(s.entries.len(), 2);
        assert_eq!(s.entries[1].seq, 2);

        w.reset().unwrap();
        assert_eq!(w.append(&[RedoOp::Stmt(Stmt::Commit)]).unwrap(), 3);
        let s = scan_wal(&read_wal_file(&path).unwrap()).unwrap();
        assert_eq!(s.entries.len(), 1);
        assert_eq!(s.entries[0].seq, 3, "seq must survive reset");
        std::fs::remove_dir_all(&dir).ok();
    }
}

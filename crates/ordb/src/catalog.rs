//! The schema catalog: user-defined types, tables, views, constraints and
//! the dependency bookkeeping behind `DROP TYPE … FORCE` (§6.2).

use std::collections::BTreeMap;

use crate::error::DbError;
use crate::ident::Ident;
use crate::mode::DbMode;
use crate::sql::ast::{Expr, SelectStmt};
use crate::types::SqlType;

/// A user-defined type.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeDef {
    /// `CREATE TYPE name AS OBJECT (attr type, ...)` (§2.1). `incomplete`
    /// marks a forward declaration (`CREATE TYPE name;`) used for the
    /// recursive structures of §6.2.
    Object { name: Ident, attrs: Vec<(Ident, SqlType)>, incomplete: bool },
    /// `CREATE TYPE name AS VARRAY(max) OF elem` (§2.2).
    Varray { name: Ident, elem: SqlType, max: u32 },
    /// `CREATE TYPE name AS TABLE OF elem` (§2.2).
    NestedTable { name: Ident, elem: SqlType },
}

impl TypeDef {
    pub fn name(&self) -> &Ident {
        match self {
            TypeDef::Object { name, .. }
            | TypeDef::Varray { name, .. }
            | TypeDef::NestedTable { name, .. } => name,
        }
    }

    /// Attribute list of an object type (empty for collections).
    pub fn object_attrs(&self) -> &[(Ident, SqlType)] {
        match self {
            TypeDef::Object { attrs, .. } => attrs,
            _ => &[],
        }
    }

    /// Element type of a collection type.
    pub fn element_type(&self) -> Option<&SqlType> {
        match self {
            TypeDef::Varray { elem, .. } | TypeDef::NestedTable { elem, .. } => Some(elem),
            _ => None,
        }
    }

    pub fn is_collection(&self) -> bool {
        matches!(self, TypeDef::Varray { .. } | TypeDef::NestedTable { .. })
    }

    pub fn is_incomplete(&self) -> bool {
        matches!(self, TypeDef::Object { incomplete: true, .. })
    }

    /// Names of user-defined types this definition depends on.
    pub fn dependencies(&self) -> Vec<&Ident> {
        match self {
            TypeDef::Object { attrs, .. } => {
                attrs.iter().filter_map(|(_, t)| t.named_type()).collect()
            }
            TypeDef::Varray { elem, .. } | TypeDef::NestedTable { elem, .. } => {
                elem.named_type().into_iter().collect()
            }
        }
    }
}

/// A table-level constraint.
#[derive(Debug, Clone, PartialEq)]
pub enum Constraint {
    /// `col PRIMARY KEY` (implies NOT NULL + unique).
    PrimaryKey(Vec<Ident>),
    /// `col NOT NULL` — §4.3: "constraints … can only be defined in the
    /// object table - not in the definition of the object type".
    NotNull(Ident),
    /// Table-level `CHECK (expr)` — §4.3's workaround for inner attributes.
    Check(Expr),
    /// `UNIQUE (cols)`.
    Unique(Vec<Ident>),
}

/// Column of a relational table.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: Ident,
    pub sql_type: SqlType,
}

/// A table definition.
#[derive(Debug, Clone, PartialEq)]
pub enum TableDef {
    /// `CREATE TABLE name OF type (...)` — an *object table* (§2.1): rows
    /// are objects of `of_type` and carry OIDs that REFs can target.
    Object { name: Ident, of_type: Ident, constraints: Vec<Constraint> },
    /// Plain relational table (also used with object-typed columns).
    Relational {
        name: Ident,
        columns: Vec<ColumnDef>,
        constraints: Vec<Constraint>,
        /// `NESTED TABLE col STORE AS name` clauses (§2.2) — bookkeeping
        /// only; storage is inline in this engine.
        nested_table_stores: Vec<(Ident, Ident)>,
    },
}

impl TableDef {
    pub fn name(&self) -> &Ident {
        match self {
            TableDef::Object { name, .. } | TableDef::Relational { name, .. } => name,
        }
    }

    pub fn constraints(&self) -> &[Constraint] {
        match self {
            TableDef::Object { constraints, .. } | TableDef::Relational { constraints, .. } => {
                constraints
            }
        }
    }

    pub fn is_object_table(&self) -> bool {
        matches!(self, TableDef::Object { .. })
    }
}

/// `CREATE VIEW name AS select` — object views included (§6.3).
#[derive(Debug, Clone, PartialEq)]
pub struct ViewDef {
    pub name: Ident,
    pub query: SelectStmt,
}

/// `CREATE [UNIQUE] INDEX name ON table (columns)` — metadata for a
/// persistent secondary index. The key→slot structure itself lives in
/// [`crate::storage::Storage`]; the catalog owns the definition so the
/// analyzer's shadow catalog and the planner see the same inventory.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexDef {
    pub name: Ident,
    pub table: Ident,
    pub columns: Vec<Ident>,
    /// Declared UNIQUE — a planner cardinality hint (an equality probe on
    /// all key columns yields at most one row); not enforced as a
    /// constraint, so index presence can never change statement outcomes.
    pub unique: bool,
}

/// Cardinality statistics collected by `ANALYZE TABLE … COMPUTE STATISTICS`.
/// A snapshot: the planner costs plans from the last ANALYZE, never from
/// live heap sizes, which keeps EXPLAIN output data-independent between
/// ANALYZE runs.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Row count at ANALYZE time.
    pub rows: u64,
    /// Number of distinct values per column at ANALYZE time.
    pub distinct: BTreeMap<Ident, u64>,
}

impl TableStats {
    /// Distinct-value count for `column`, defaulting to the row count
    /// (pessimistic for selectivity: assume unique) when the column was not
    /// captured.
    pub fn ndv(&self, column: &Ident) -> u64 {
        // Never 0: an ANALYZE over an empty table records 0 distinct
        // values, and estimates divide by this.
        self.distinct.get(column).copied().unwrap_or(self.rows).max(1)
    }
}

/// Inverse of one catalog mutation; see [`Catalog::rollback_to`]. A
/// `CreatedType` that replaced an incomplete forward declaration carries
/// that prior declaration so rollback restores it rather than erasing the
/// name.
#[derive(Debug, Clone)]
enum CatalogUndo {
    CreatedType { name: Ident, prev: Option<TypeDef> },
    DroppedType { def: TypeDef },
    CreatedTable { name: Ident },
    DroppedTable { def: TableDef },
    CreatedView { name: Ident },
    DroppedView { def: ViewDef },
    CreatedIndex { name: Ident },
    DroppedIndex { def: IndexDef },
    SetStats { table: Ident, prev: Option<TableStats> },
}

/// The complete schema catalog.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    types: BTreeMap<Ident, TypeDef>,
    tables: BTreeMap<Ident, TableDef>,
    views: BTreeMap<Ident, ViewDef>,
    /// Secondary-index definitions by index name. Excluded from
    /// [`Catalog::state_dump`]: index presence must never change what a
    /// rollback-equivalence check observes.
    indexes: BTreeMap<Ident, IndexDef>,
    /// ANALYZE statistics by table name (also excluded from `state_dump`).
    stats: BTreeMap<Ident, TableStats>,
    /// Undo log since the last commit; every successful mutation pushes
    /// its inverse.
    undo: Vec<CatalogUndo>,
    /// Bumped once per [`Catalog::commit`] that sealed schema changes.
    /// Snapshot readers key their catalog caches on this; uncommitted DDL
    /// and rollbacks never move it.
    committed_epoch: u64,
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    // -- types --------------------------------------------------------------

    /// Register a type, enforcing the mode's collection-nesting rule (§2.2)
    /// and name uniqueness across types/tables/views. A complete definition
    /// may replace an incomplete (forward) declaration of the same name.
    pub fn create_type(&mut self, def: TypeDef, mode: DbMode) -> Result<(), DbError> {
        let name = def.name().clone();
        if let Some(existing) = self.types.get(&name) {
            let replacing_forward = existing.is_incomplete() && !def.is_incomplete();
            if !replacing_forward {
                return Err(DbError::DuplicateName(name.as_str().to_string()));
            }
        } else if self.tables.contains_key(&name) || self.views.contains_key(&name) {
            return Err(DbError::DuplicateName(name.as_str().to_string()));
        }
        // Oracle 8: no collection-of-collection, no collection-of-LOB. The
        // restriction is transitive — an object type that (anywhere inside)
        // contains a collection or LOB attribute cannot be a collection
        // element either, which is why the paper's §4.2 workaround applies
        // to *all* set-valued complex elements.
        if let Some(elem) = def.element_type() {
            if !mode.allows_nested_collections() && self.contains_collection_or_lob(elem) {
                return Err(DbError::NestedCollectionNotSupported {
                    collection: name.as_str().to_string(),
                    element: elem.to_string(),
                });
            }
        }
        // Resolve `Object(name)` attr types that actually denote collections:
        // the parser cannot tell; fix them up against the catalog.
        let def = self.resolve_named_types(def);
        // Named dependencies must exist (incomplete declarations count, and
        // a type may reference itself — e.g. a self-referential REF).
        for dep in def.dependencies() {
            if dep != def.name() && !self.types.contains_key(dep) {
                return Err(DbError::UnknownType(dep.as_str().to_string()));
            }
        }
        let prev = self.types.insert(name.clone(), def);
        self.undo.push(CatalogUndo::CreatedType { name, prev });
        Ok(())
    }

    // -- transactions ---------------------------------------------------------

    /// Position in the undo log; pass it back to [`Catalog::rollback_to`].
    pub fn undo_len(&self) -> usize {
        self.undo.len()
    }

    /// Make all schema changes since the last commit permanent.
    pub fn commit(&mut self) {
        if !self.undo.is_empty() {
            self.committed_epoch += 1;
            self.undo.clear();
        }
    }

    /// Commit counter — see the `committed_epoch` field.
    pub fn committed_epoch(&self) -> u64 {
        self.committed_epoch
    }

    /// Undo every mutation logged after `mark`, newest first. A mark at or
    /// beyond the current log length is a no-op.
    pub fn rollback_to(&mut self, mark: usize) {
        while self.undo.len() > mark {
            // The loop guard proves the log is non-empty; if pop somehow
            // missed, stopping replay is safer than panicking mid-rollback.
            let Some(op) = self.undo.pop() else {
                debug_assert!(false, "undo.len() > mark implies a poppable record");
                break;
            };
            match op {
                CatalogUndo::CreatedType { name, prev } => match prev {
                    Some(decl) => {
                        self.types.insert(name, decl);
                    }
                    None => {
                        self.types.remove(&name);
                    }
                },
                CatalogUndo::DroppedType { def } => {
                    self.types.insert(def.name().clone(), def);
                }
                CatalogUndo::CreatedTable { name } => {
                    self.tables.remove(&name);
                }
                CatalogUndo::DroppedTable { def } => {
                    self.tables.insert(def.name().clone(), def);
                }
                CatalogUndo::CreatedView { name } => {
                    self.views.remove(&name);
                }
                CatalogUndo::DroppedView { def } => {
                    self.views.insert(def.name.clone(), def);
                }
                CatalogUndo::CreatedIndex { name } => {
                    self.indexes.remove(&name);
                }
                CatalogUndo::DroppedIndex { def } => {
                    self.indexes.insert(def.name.clone(), def);
                }
                CatalogUndo::SetStats { table, prev } => match prev {
                    Some(stats) => {
                        self.stats.insert(table, stats);
                    }
                    None => {
                        self.stats.remove(&table);
                    }
                },
            }
        }
    }

    /// Deterministic rendering of the schema state (the three namespaces in
    /// `BTreeMap` order; the undo log is excluded). Counterpart of
    /// [`crate::storage::Storage::state_dump`] for rollback equivalence
    /// checks.
    pub fn state_dump(&self) -> String {
        format!(
            "types: {:?}\ntables: {:?}\nviews: {:?}",
            self.types, self.tables, self.views
        )
    }

    /// Does `t` transitively involve a collection type or LOB? (The Oracle 8
    /// nesting restriction of §2.2.) REFs do not count — they are scalars.
    fn contains_collection_or_lob(&self, t: &SqlType) -> bool {
        let mut stack: Vec<SqlType> = vec![t.clone()];
        let mut seen: std::collections::BTreeSet<Ident> = std::collections::BTreeSet::new();
        while let Some(cur) = stack.pop() {
            match cur {
                SqlType::Clob => return true,
                SqlType::Varray(_) | SqlType::NestedTable(_) => return true,
                SqlType::Object(n) => {
                    if !seen.insert(n.clone()) {
                        continue;
                    }
                    match self.types.get(&n) {
                        Some(TypeDef::Varray { .. }) | Some(TypeDef::NestedTable { .. }) => {
                            return true
                        }
                        Some(TypeDef::Object { attrs, .. }) => {
                            stack.extend(attrs.iter().map(|(_, t)| t.clone()));
                        }
                        None => {}
                    }
                }
                _ => {}
            }
        }
        false
    }

    /// Rewrite `SqlType::Object(n)` into `Varray(n)`/`NestedTable(n)` when
    /// `n` names a collection type — syntax alone cannot distinguish a named
    /// object type from a named collection type.
    pub fn resolve_sql_type(&self, t: SqlType) -> SqlType {
        if let SqlType::Object(n) = &t {
            match self.types.get(n) {
                Some(TypeDef::Varray { .. }) => return SqlType::Varray(n.clone()),
                Some(TypeDef::NestedTable { .. }) => return SqlType::NestedTable(n.clone()),
                _ => {}
            }
        }
        t
    }

    fn resolve_named_types(&self, def: TypeDef) -> TypeDef {
        let fix = |t: SqlType| -> SqlType { self.resolve_sql_type(t) };
        match def {
            TypeDef::Object { name, attrs, incomplete } => TypeDef::Object {
                name,
                attrs: attrs.into_iter().map(|(n, t)| (n, fix(t))).collect(),
                incomplete,
            },
            TypeDef::Varray { name, elem, max } => {
                TypeDef::Varray { name, elem: fix(elem), max }
            }
            TypeDef::NestedTable { name, elem } => {
                TypeDef::NestedTable { name, elem: fix(elem) }
            }
        }
    }

    pub fn get_type(&self, name: &Ident) -> Option<&TypeDef> {
        self.types.get(name)
    }

    pub fn type_names(&self) -> impl Iterator<Item = &Ident> {
        self.types.keys()
    }

    pub fn type_count(&self) -> usize {
        self.types.len()
    }

    /// Drop a type. Without `force`, fails if any type, table or view
    /// depends on it ("the deletion of any type must be propagated to all
    /// dependents by using DROP FORCE statements", §6.2). With `force`, the
    /// type is removed and dependents are left (matching Oracle, which
    /// marks them invalid).
    pub fn drop_type(&mut self, name: &Ident, force: bool) -> Result<(), DbError> {
        if !self.types.contains_key(name) {
            return Err(DbError::UnknownType(name.as_str().to_string()));
        }
        if !force {
            if let Some(dep) = self.first_type_dependent(name) {
                return Err(DbError::DependentTypeExists {
                    dropped: name.as_str().to_string(),
                    dependent: dep,
                });
            }
        }
        // Existence was checked at the top of the function and nothing in
        // between mutates `types`, so remove cannot miss — but return the
        // typed error rather than panicking if that invariant ever breaks.
        let Some(def) = self.types.remove(name) else {
            debug_assert!(false, "type {name} vanished between check and remove");
            return Err(DbError::UnknownType(name.as_str().to_string()));
        };
        self.undo.push(CatalogUndo::DroppedType { def });
        Ok(())
    }

    fn first_type_dependent(&self, name: &Ident) -> Option<String> {
        for def in self.types.values() {
            if def.name() != name && def.dependencies().contains(&name) {
                return Some(def.name().as_str().to_string());
            }
        }
        for table in self.tables.values() {
            let depends = match table {
                TableDef::Object { of_type, .. } => of_type == name,
                TableDef::Relational { columns, .. } => {
                    columns.iter().any(|c| c.sql_type.named_type() == Some(name))
                }
            };
            if depends {
                return Some(table.name().as_str().to_string());
            }
        }
        None
    }

    // -- tables ---------------------------------------------------------------

    pub fn create_table(&mut self, def: TableDef) -> Result<(), DbError> {
        let name = def.name().clone();
        if self.tables.contains_key(&name)
            || self.types.contains_key(&name)
            || self.views.contains_key(&name)
        {
            return Err(DbError::DuplicateName(name.as_str().to_string()));
        }
        match &def {
            TableDef::Object { of_type, .. } => {
                let ty = self
                    .types
                    .get(of_type)
                    .ok_or_else(|| DbError::UnknownType(of_type.as_str().to_string()))?;
                if ty.is_incomplete() {
                    return Err(DbError::UnknownType(format!(
                        "{} (type is an incomplete forward declaration)",
                        of_type.as_str()
                    )));
                }
            }
            TableDef::Relational { columns, .. } => {
                for col in columns {
                    if let Some(n) = col.sql_type.named_type() {
                        if !self.types.contains_key(n) {
                            return Err(DbError::UnknownType(n.as_str().to_string()));
                        }
                    }
                }
            }
        }
        // Resolve column types that name collection types (same fixup as
        // for type attributes).
        let def = match def {
            TableDef::Relational { name, columns, constraints, nested_table_stores } => {
                TableDef::Relational {
                    name,
                    columns: columns
                        .into_iter()
                        .map(|c| ColumnDef {
                            name: c.name,
                            sql_type: self.resolve_sql_type(c.sql_type),
                        })
                        .collect(),
                    constraints,
                    nested_table_stores,
                }
            }
            object => object,
        };
        self.tables.insert(name.clone(), def);
        self.undo.push(CatalogUndo::CreatedTable { name });
        Ok(())
    }

    pub fn get_table(&self, name: &Ident) -> Option<&TableDef> {
        self.tables.get(name)
    }

    pub fn table_names(&self) -> impl Iterator<Item = &Ident> {
        self.tables.keys()
    }

    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    pub fn drop_table(&mut self, name: &Ident) -> Result<(), DbError> {
        match self.tables.remove(name) {
            Some(def) => {
                // Cascade: indexes and statistics die with their table (undo
                // replays newest-first, so they are restored after the table).
                let doomed: Vec<Ident> = self
                    .indexes
                    .values()
                    .filter(|idx| &idx.table == name)
                    .map(|idx| idx.name.clone())
                    .collect();
                self.undo.push(CatalogUndo::DroppedTable { def });
                for index_name in doomed {
                    // Collected from `indexes` just above with no intervening
                    // mutation; an (impossible) miss skips the undo record
                    // instead of panicking.
                    let Some(def) = self.indexes.remove(&index_name) else {
                        debug_assert!(false, "index {index_name} vanished between collect and remove");
                        continue;
                    };
                    self.undo.push(CatalogUndo::DroppedIndex { def });
                }
                if let Some(prev) = self.stats.remove(name) {
                    self.undo.push(CatalogUndo::SetStats { table: name.clone(), prev: Some(prev) });
                }
                Ok(())
            }
            None => Err(DbError::UnknownTable(name.as_str().to_string())),
        }
    }

    /// Columns of a table as (name, type) pairs — for object tables, the
    /// attributes of the underlying object type.
    pub fn table_columns(&self, def: &TableDef) -> Vec<(Ident, SqlType)> {
        match def {
            TableDef::Object { of_type, .. } => self
                .types
                .get(of_type)
                .map(|t| t.object_attrs().to_vec())
                .unwrap_or_default(),
            TableDef::Relational { columns, .. } => {
                columns.iter().map(|c| (c.name.clone(), c.sql_type.clone())).collect()
            }
        }
    }

    // -- views ----------------------------------------------------------------

    pub fn create_view(&mut self, def: ViewDef) -> Result<(), DbError> {
        let name = def.name.clone();
        if self.tables.contains_key(&name)
            || self.types.contains_key(&name)
            || self.views.contains_key(&name)
        {
            return Err(DbError::DuplicateName(name.as_str().to_string()));
        }
        self.views.insert(name.clone(), def);
        self.undo.push(CatalogUndo::CreatedView { name });
        Ok(())
    }

    pub fn get_view(&self, name: &Ident) -> Option<&ViewDef> {
        self.views.get(name)
    }

    pub fn drop_view(&mut self, name: &Ident) -> Result<(), DbError> {
        match self.views.remove(name) {
            Some(def) => {
                self.undo.push(CatalogUndo::DroppedView { def });
                Ok(())
            }
            None => Err(DbError::UnknownTable(name.as_str().to_string())),
        }
    }

    pub fn view_count(&self) -> usize {
        self.views.len()
    }

    // -- secondary indexes ----------------------------------------------------

    /// Register a secondary index: the target table must exist, every key
    /// column must be a column of that table, and the name must be free
    /// across all catalog namespaces.
    pub fn create_index(&mut self, def: IndexDef) -> Result<(), DbError> {
        let name = def.name.clone();
        if self.indexes.contains_key(&name)
            || self.tables.contains_key(&name)
            || self.types.contains_key(&name)
            || self.views.contains_key(&name)
        {
            return Err(DbError::DuplicateName(name.as_str().to_string()));
        }
        let table = self
            .tables
            .get(&def.table)
            .ok_or_else(|| DbError::UnknownTable(def.table.as_str().to_string()))?;
        let columns = self.table_columns(table);
        for col in &def.columns {
            let Some((_, sql_type)) = columns.iter().find(|(n, _)| n == col) else {
                return Err(DbError::UnknownColumn(format!("{}.{}", def.table, col)));
            };
            // Key columns must be scalar or REF: every non-NULL value then
            // has a join-key hash, so an index probe can over-return
            // (re-verified by the executor) but never miss a matching row.
            let indexable = matches!(
                sql_type,
                SqlType::Varchar(_)
                    | SqlType::Char(_)
                    | SqlType::Number
                    | SqlType::Integer
                    | SqlType::Date
                    | SqlType::Ref(_)
            );
            if !indexable {
                return Err(DbError::Execution(format!(
                    "column '{}.{}' ({sql_type}) cannot be an index key (scalar or REF columns only)",
                    def.table, col
                )));
            }
        }
        if def.columns.is_empty() {
            return Err(DbError::Execution("index needs at least one column".into()));
        }
        self.indexes.insert(name.clone(), def);
        self.undo.push(CatalogUndo::CreatedIndex { name });
        Ok(())
    }

    /// Drop an index, returning its definition so storage can retire the
    /// matching key→slot structure.
    pub fn drop_index(&mut self, name: &Ident) -> Result<IndexDef, DbError> {
        match self.indexes.remove(name) {
            Some(def) => {
                self.undo.push(CatalogUndo::DroppedIndex { def: def.clone() });
                Ok(def)
            }
            None => Err(DbError::UnknownIndex(name.as_str().to_string())),
        }
    }

    pub fn get_index(&self, name: &Ident) -> Option<&IndexDef> {
        self.indexes.get(name)
    }

    /// All indexes defined on `table`, in name order.
    pub fn indexes_on<'a>(&'a self, table: &'a Ident) -> impl Iterator<Item = &'a IndexDef> {
        self.indexes.values().filter(move |idx| &idx.table == table)
    }

    pub fn index_count(&self) -> usize {
        self.indexes.len()
    }

    // -- statistics -----------------------------------------------------------

    /// Install ANALYZE statistics for `table` (undo-logged: rollback
    /// restores the previous snapshot, or removes it).
    pub fn set_table_stats(&mut self, table: Ident, stats: TableStats) {
        let prev = self.stats.insert(table.clone(), stats);
        self.undo.push(CatalogUndo::SetStats { table, prev });
    }

    /// The last ANALYZE snapshot of `table`, if any.
    pub fn table_stats(&self, table: &Ident) -> Option<&TableStats> {
        self.stats.get(table)
    }

    // -- snapshot support -----------------------------------------------------

    /// Borrow all five catalog namespaces at once, in canonical `BTreeMap`
    /// order, for snapshot encoding. The undo log is excluded: snapshots
    /// are taken at commit points, where it is empty by definition.
    #[allow(clippy::type_complexity)]
    pub fn snapshot_parts(
        &self,
    ) -> (
        &BTreeMap<Ident, TypeDef>,
        &BTreeMap<Ident, TableDef>,
        &BTreeMap<Ident, ViewDef>,
        &BTreeMap<Ident, IndexDef>,
        &BTreeMap<Ident, TableStats>,
    ) {
        (&self.types, &self.tables, &self.views, &self.indexes, &self.stats)
    }

    /// Reconstruct a catalog from decoded snapshot parts. The undo log
    /// starts empty (the snapshot was taken at a commit point). Referential
    /// consistency between the parts is *not* re-validated here — the
    /// snapshot checksum guards against corruption, and recovery treats a
    /// decode failure upstream as [`DbError::CorruptDurableState`].
    pub fn from_parts(
        types: BTreeMap<Ident, TypeDef>,
        tables: BTreeMap<Ident, TableDef>,
        views: BTreeMap<Ident, ViewDef>,
        indexes: BTreeMap<Ident, IndexDef>,
        stats: BTreeMap<Ident, TableStats>,
    ) -> Catalog {
        Catalog { types, tables, views, indexes, stats, undo: Vec::new(), committed_epoch: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(s: &str) -> Ident {
        Ident::new(s).unwrap()
    }

    fn obj(name: &str, attrs: &[(&str, SqlType)]) -> TypeDef {
        TypeDef::Object {
            name: id(name),
            attrs: attrs.iter().map(|(n, t)| (id(n), t.clone())).collect(),
            incomplete: false,
        }
    }

    #[test]
    fn create_and_lookup_object_type() {
        let mut cat = Catalog::new();
        cat.create_type(
            obj("Type_Professor", &[("PName", SqlType::Varchar(80))]),
            DbMode::Oracle9,
        )
        .unwrap();
        let t = cat.get_type(&id("type_professor")).unwrap();
        assert_eq!(t.object_attrs().len(), 1);
    }

    #[test]
    fn duplicate_type_rejected() {
        let mut cat = Catalog::new();
        cat.create_type(obj("T", &[]), DbMode::Oracle9).unwrap();
        assert!(matches!(
            cat.create_type(obj("t", &[]), DbMode::Oracle9),
            Err(DbError::DuplicateName(_))
        ));
    }

    #[test]
    fn forward_declaration_can_be_completed() {
        let mut cat = Catalog::new();
        cat.create_type(
            TypeDef::Object { name: id("Type_Professor"), attrs: vec![], incomplete: true },
            DbMode::Oracle9,
        )
        .unwrap();
        // Complete it.
        cat.create_type(obj("Type_Professor", &[("PName", SqlType::Varchar(4000))]), DbMode::Oracle9)
            .unwrap();
        assert!(!cat.get_type(&id("Type_Professor")).unwrap().is_incomplete());
    }

    #[test]
    fn object_table_of_incomplete_type_rejected() {
        let mut cat = Catalog::new();
        cat.create_type(
            TypeDef::Object { name: id("T"), attrs: vec![], incomplete: true },
            DbMode::Oracle9,
        )
        .unwrap();
        let err = cat.create_table(TableDef::Object {
            name: id("Tab"),
            of_type: id("T"),
            constraints: vec![],
        });
        assert!(err.is_err());
    }

    #[test]
    fn oracle8_rejects_nested_collections() {
        let mut cat = Catalog::new();
        cat.create_type(
            TypeDef::Varray { name: id("TypeVA_Subject"), elem: SqlType::Varchar(4000), max: 9 },
            DbMode::Oracle8,
        )
        .unwrap();
        // VARRAY of VARRAY — rejected in Oracle 8 …
        let err = cat.create_type(
            TypeDef::Varray {
                name: id("TypeVA_Outer"),
                elem: SqlType::Object(id("TypeVA_Subject")),
                max: 10,
            },
            DbMode::Oracle8,
        );
        assert!(matches!(err, Err(DbError::NestedCollectionNotSupported { .. })), "{err:?}");
        // … and LOB elements too.
        let err2 = cat.create_type(
            TypeDef::NestedTable { name: id("TypeNT_Lob"), elem: SqlType::Clob },
            DbMode::Oracle8,
        );
        assert!(matches!(err2, Err(DbError::NestedCollectionNotSupported { .. })));
    }

    #[test]
    fn oracle9_accepts_nested_collections() {
        let mut cat = Catalog::new();
        cat.create_type(
            TypeDef::Varray { name: id("TypeVA_Subject"), elem: SqlType::Varchar(4000), max: 9 },
            DbMode::Oracle9,
        )
        .unwrap();
        let t = cat.create_type(
            TypeDef::Varray {
                name: id("TypeVA_Outer"),
                elem: SqlType::Object(id("TypeVA_Subject")),
                max: 10,
            },
            DbMode::Oracle9,
        );
        assert!(t.is_ok());
        // The named element resolved to a collection reference.
        let outer = cat.get_type(&id("TypeVA_Outer")).unwrap();
        assert_eq!(outer.element_type(), Some(&SqlType::Varray(id("TypeVA_Subject"))));
    }

    #[test]
    fn unknown_dependency_rejected() {
        let mut cat = Catalog::new();
        let err = cat.create_type(
            obj("T", &[("x", SqlType::Object(id("Missing")))]),
            DbMode::Oracle9,
        );
        assert!(matches!(err, Err(DbError::UnknownType(_))));
    }

    #[test]
    fn drop_type_respects_dependents() {
        let mut cat = Catalog::new();
        cat.create_type(obj("Inner", &[]), DbMode::Oracle9).unwrap();
        cat.create_type(obj("Outer", &[("i", SqlType::Object(id("Inner")))]), DbMode::Oracle9)
            .unwrap();
        assert!(matches!(
            cat.drop_type(&id("Inner"), false),
            Err(DbError::DependentTypeExists { .. })
        ));
        cat.drop_type(&id("Inner"), true).unwrap(); // FORCE
        assert!(cat.get_type(&id("Inner")).is_none());
    }

    #[test]
    fn drop_type_blocked_by_dependent_table() {
        let mut cat = Catalog::new();
        cat.create_type(obj("T", &[]), DbMode::Oracle9).unwrap();
        cat.create_table(TableDef::Object {
            name: id("Tab"),
            of_type: id("T"),
            constraints: vec![],
        })
        .unwrap();
        assert!(matches!(
            cat.drop_type(&id("T"), false),
            Err(DbError::DependentTypeExists { .. })
        ));
    }

    #[test]
    fn table_columns_for_object_tables_come_from_the_type() {
        let mut cat = Catalog::new();
        cat.create_type(
            obj("Type_P", &[("a", SqlType::Varchar(10)), ("b", SqlType::Number)]),
            DbMode::Oracle9,
        )
        .unwrap();
        cat.create_table(TableDef::Object {
            name: id("TabP"),
            of_type: id("Type_P"),
            constraints: vec![],
        })
        .unwrap();
        let table = cat.get_table(&id("TabP")).unwrap().clone();
        let cols = cat.table_columns(&table);
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].0.as_str(), "a");
    }

    #[test]
    fn rollback_restores_schema_and_replaced_forward_declarations() {
        let mut cat = Catalog::new();
        cat.create_type(
            TypeDef::Object { name: id("Fwd"), attrs: vec![], incomplete: true },
            DbMode::Oracle9,
        )
        .unwrap();
        cat.create_type(obj("Keep", &[]), DbMode::Oracle9).unwrap();
        cat.commit();
        let dump = cat.state_dump();
        let mark = cat.undo_len();
        // Complete the forward declaration, add a table + view, drop a type.
        cat.create_type(obj("Fwd", &[("a", SqlType::Number)]), DbMode::Oracle9).unwrap();
        cat.create_table(TableDef::Object {
            name: id("Tab"),
            of_type: id("Fwd"),
            constraints: vec![],
        })
        .unwrap();
        cat.create_view(ViewDef {
            name: id("V"),
            query: SelectStmt {
                distinct: false,
                items: vec![],
                star: true,
                from: vec![],
                where_clause: None,
                order_by: vec![],
            },
        })
        .unwrap();
        cat.drop_table(&id("Tab")).unwrap();
        cat.drop_type(&id("Keep"), false).unwrap();
        cat.rollback_to(mark);
        assert_eq!(cat.state_dump(), dump);
        assert!(cat.get_type(&id("Fwd")).unwrap().is_incomplete());
        assert!(cat.get_type(&id("Keep")).is_some());
    }

    #[test]
    fn names_shared_across_namespaces_rejected() {
        let mut cat = Catalog::new();
        cat.create_type(obj("X", &[]), DbMode::Oracle9).unwrap();
        let err = cat.create_table(TableDef::Relational {
            name: id("X"),
            columns: vec![],
            constraints: vec![],
            nested_table_stores: vec![],
        });
        assert!(matches!(err, Err(DbError::DuplicateName(_))));
    }

    fn rel_table(name: &str, cols: &[&str]) -> TableDef {
        TableDef::Relational {
            name: id(name),
            columns: cols
                .iter()
                .map(|c| ColumnDef { name: id(c), sql_type: SqlType::Varchar(30) })
                .collect(),
            constraints: vec![],
            nested_table_stores: vec![],
        }
    }

    fn index(name: &str, table: &str, cols: &[&str]) -> IndexDef {
        IndexDef {
            name: id(name),
            table: id(table),
            columns: cols.iter().map(|c| id(c)).collect(),
            unique: false,
        }
    }

    #[test]
    fn create_index_validates_table_and_columns() {
        let mut cat = Catalog::new();
        cat.create_table(rel_table("T", &["a", "b"])).unwrap();
        cat.create_index(index("IxA", "T", &["a"])).unwrap();
        assert_eq!(cat.index_count(), 1);
        assert_eq!(cat.indexes_on(&id("T")).count(), 1);
        assert!(matches!(
            cat.create_index(index("IxA", "T", &["b"])),
            Err(DbError::DuplicateName(_))
        ));
        assert!(matches!(
            cat.create_index(index("IxB", "Missing", &["a"])),
            Err(DbError::UnknownTable(_))
        ));
        assert!(matches!(
            cat.create_index(index("IxC", "T", &["nope"])),
            Err(DbError::UnknownColumn(_))
        ));
        assert!(matches!(cat.drop_index(&id("Missing")), Err(DbError::UnknownIndex(_))));
    }

    #[test]
    fn indexes_and_stats_roll_back_but_stay_out_of_state_dump() {
        let mut cat = Catalog::new();
        cat.create_table(rel_table("T", &["a"])).unwrap();
        cat.commit();
        let dump = cat.state_dump();
        let mark = cat.undo_len();
        cat.create_index(index("Ix", "T", &["a"])).unwrap();
        cat.set_table_stats(
            id("T"),
            TableStats { rows: 7, distinct: BTreeMap::from([(id("a"), 3)]) },
        );
        // Index + stats presence must not perturb the rollback-equivalence dump.
        assert_eq!(cat.state_dump(), dump);
        cat.rollback_to(mark);
        assert_eq!(cat.index_count(), 0);
        assert!(cat.table_stats(&id("T")).is_none());
        assert_eq!(cat.state_dump(), dump);
    }

    #[test]
    fn drop_table_cascades_indexes_and_stats_and_rolls_back() {
        let mut cat = Catalog::new();
        cat.create_table(rel_table("T", &["a"])).unwrap();
        cat.create_index(index("Ix", "T", &["a"])).unwrap();
        cat.set_table_stats(id("T"), TableStats { rows: 1, distinct: BTreeMap::new() });
        cat.commit();
        let mark = cat.undo_len();
        cat.drop_table(&id("T")).unwrap();
        assert_eq!(cat.index_count(), 0);
        assert!(cat.table_stats(&id("T")).is_none());
        cat.rollback_to(mark);
        assert!(cat.get_table(&id("T")).is_some());
        assert!(cat.get_index(&id("Ix")).is_some());
        assert_eq!(cat.table_stats(&id("T")).unwrap().rows, 1);
    }
}

//! The [`Database`] façade: parse → execute, statistics, introspection.

use crate::analyze::{Analyzer, Diagnostic, Severity};
use crate::catalog::Catalog;
use crate::error::DbError;
use crate::exec::ddl::execute_ddl;
use crate::exec::dml::{
    execute_delete, execute_insert, execute_insert_batch, InsertBatch, UniqueIndexCache,
};
use crate::exec::eval::ExecCtx;
use crate::exec::select::execute_select;
pub use crate::exec::select::QueryResult;
use crate::ident::Ident;
use crate::mode::DbMode;
use crate::sql::ast::Stmt;
use crate::snapshot;
use crate::sql::param::{bind_values, parameterize, rebind, slots_match};
use crate::sql::parser::{parse_script, parse_statement};
use crate::stats::ExecStats;
use crate::storage::Storage;
use crate::trace::{TraceHandle, Tracer};
use crate::value::Value;
use crate::wal::{self, RedoOp, WalWriter};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::ops::Deref;
use std::path::{Path, PathBuf};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

/// Statements kept in the plan cache before the least-recently-used entry
/// is evicted. Loaders issue the same handful of statement shapes over and
/// over, so a small cache captures them; eviction is an O(capacity) scan,
/// irrelevant at this size.
const PLAN_CACHE_CAPACITY: usize = 256;

/// SQL text → parsed statements. Parsing is context-free here (object
/// constructors parse as generic calls, resolved at execution time), so
/// entries never need invalidation on DDL. INSERT texts are additionally
/// cached by literal-normalized *shape* (see [`crate::sql::param`]), so a
/// loader's thousands of near-identical INSERTs share one parsed template.
#[derive(Debug, Clone, Default)]
pub(crate) struct PlanCache {
    entries: HashMap<String, CacheEntry>,
    tick: u64,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    plan: Plan,
    last_used: u64,
}

#[derive(Debug, Clone)]
enum Plan {
    /// Verbatim text → parsed form, shared by reference (`Arc` so a cached
    /// plan — and the session holding it — can cross threads).
    Exact(Arc<Vec<Stmt>>),
    /// Literal-parameterized INSERT shape → template whose literal slots
    /// are rebound with each text's own literals.
    Template(Arc<Vec<Stmt>>),
    /// Shape that failed slot verification (e.g. folded negative literals)
    /// — recorded so it is never re-verified, and cached verbatim instead.
    Opaque,
}

impl PlanCache {
    /// Insert with LRU eviction (O(capacity) scan — irrelevant at 256).
    fn insert(&mut self, key: String, plan: Plan, tick: u64) {
        if self.entries.len() >= PLAN_CACHE_CAPACITY {
            // Tie-break equal timestamps by key so eviction order never
            // depends on HashMap iteration order.
            let victim = self
                .entries
                .iter()
                .min_by(|(ka, ea), (kb, eb)| ea.last_used.cmp(&eb.last_used).then_with(|| ka.cmp(kb)))
                .map(|(k, _)| k.clone());
            if let Some(victim) = victim {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(key, CacheEntry { plan, last_used: tick });
    }
}

/// A position in the undo logs of both layers. Obtained from
/// [`Database::txn_mark`]; passing it back to
/// [`Database::rollback_to_mark`] undoes everything logged after it. Marks
/// taken before an intervening [`Database::commit`] are stale and roll
/// back nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnMark {
    storage: usize,
    catalog: usize,
}

/// Log file name inside a durable database directory.
const WAL_FILE: &str = "wal.log";
/// Snapshot file name inside a durable database directory.
const SNAPSHOT_FILE: &str = "snapshot.db";
/// Default auto-snapshot cadence: one snapshot per this many committed log
/// entries. Override with [`Database::set_snapshot_every`]; `0` disables.
const DEFAULT_SNAPSHOT_EVERY: u64 = 1024;

/// The durable half of an opened database ([`Database::open`]): the log
/// writer plus the redo operations of the in-flight transaction.
#[derive(Debug)]
struct Durability {
    dir: PathBuf,
    wal: WalWriter,
    /// Redo ops of the current (uncommitted) transaction, each tagged with
    /// the undo position *before* its statement ran, so partial rollbacks
    /// can drop exactly the ops whose effects they undid.
    pending: Vec<(TxnMark, RedoOp)>,
    /// Entries appended since the last snapshot (or open), driving the
    /// auto-snapshot cadence.
    entries_since_snapshot: u64,
    snapshot_every: u64,
}

/// What [`Database::open`] did to bring a directory back to life.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// A snapshot file was found and restored.
    pub snapshot_loaded: bool,
    /// Log entries replayed on top of the snapshot (or empty) state.
    pub entries_replayed: u64,
    /// Sequence number of the newest durable entry (snapshot high-water
    /// mark if the log held nothing newer).
    pub last_seq: u64,
    /// Torn-tail bytes discarded from the end of the log — an append the
    /// crash interrupted before its fsync, i.e. never acknowledged.
    pub truncated_bytes: u64,
}

/// How [`Database::execute_script_with`] reacts to a failing statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// The whole script is one unit: any error rolls back every statement
    /// of the script and stops.
    Atomic,
    /// Stop at the first error. Earlier statements stay applied; the
    /// failing statement itself is cleanly rolled back (statement-level
    /// atomicity), and the error is reported with its statement index.
    AbortOnError,
    /// SQL*Plus-style: keep going, collecting one [`ScriptError`] per
    /// failing statement; each failure is rolled back in isolation.
    ContinueOnError,
}

/// One failing statement of a script run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptError {
    /// Zero-based index of the statement within the script.
    pub statement: usize,
    /// The statement's [`Stmt::kind`] tag (e.g. `"INSERT"`).
    pub kind: &'static str,
    pub error: DbError,
}

/// How script execution materializes SELECT results
/// ([`Database::execute_script_opts`]). A generated load script is almost
/// entirely DML, but the historical API collected every `QueryResult` into
/// a `Vec` — for a 100k-statement load with interspersed queries that holds
/// every row set in memory for the whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResultMode {
    /// Keep every SELECT's result, in script order (the historical
    /// behaviour; what [`Database::execute_script_with`] does).
    #[default]
    Collect,
    /// Keep only the most recent SELECT's result — earlier results are
    /// dropped as soon as they are superseded.
    LastOnly,
    /// Drop every result. Bulk loads use this: nothing is materialized, so
    /// memory stays flat regardless of script length.
    Discard,
}

/// A statement compiled once for repeated bound execution
/// ([`Database::prepare`]). The template is the parsed AST with its
/// literal positions acting as parameter slots (in lexical order), so an
/// execution is template-clone → bind → execute — no lexer, parser or
/// analyzer on the hot path. Independent of the database it was prepared
/// on: any [`Database`] can execute it (names resolve at execution time,
/// exactly like the plan cache's templates).
#[derive(Debug, Clone)]
pub struct PreparedStmt {
    /// The literal-normalized shape key (or the verbatim text when the
    /// statement is not parameterizable) — diagnostics only.
    key: String,
    template: Vec<Stmt>,
    slots: usize,
}

impl PreparedStmt {
    /// Number of parameters [`Database::execute_prepared`] expects.
    pub fn param_count(&self) -> usize {
        self.slots
    }

    /// The normalized shape this statement was compiled from.
    pub fn shape(&self) -> &str {
        &self.key
    }
}

/// Result of [`Database::execute_script_with`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScriptOutcome {
    /// SELECT results, in script order (cleared when an `Atomic` run rolls
    /// back — the script produced nothing).
    pub results: Vec<QueryResult>,
    /// Statements that completed successfully.
    pub executed: usize,
    /// Per-statement failures; empty means the whole script succeeded.
    pub errors: Vec<ScriptError>,
    /// True when the `Atomic` policy undid the whole script.
    pub rolled_back: bool,
}

/// The engine proper: schema plus rows. Everything a query touches lives
/// here, behind [`SharedState`]'s lock.
#[derive(Debug)]
pub(crate) struct Engine {
    pub(crate) catalog: Catalog,
    pub(crate) storage: Storage,
}

/// The state every session over one database shares: the engine behind a
/// single `RwLock`. The writing [`Database`] takes the exclusive lock per
/// statement; [`crate::mvcc::ReadSession`]s take the shared lock only long
/// enough to refresh their snapshot caches — never while executing a
/// query.
#[derive(Debug)]
pub(crate) struct SharedState {
    pub(crate) engine: RwLock<Engine>,
}

impl SharedState {
    /// Shared (reader) access. Lock poisoning is survivable here: a
    /// panicking statement already rolled itself back via statement-level
    /// atomicity, so the state behind a poisoned lock is consistent.
    pub(crate) fn read(&self) -> RwLockReadGuard<'_, Engine> {
        self.engine.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn write(&self) -> RwLockWriteGuard<'_, Engine> {
        self.engine.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Read guard over the catalog, from [`Database::catalog`]. Derefs to
/// [`Catalog`], so `db.catalog().get_table(…)` reads as before — but the
/// guard holds the shared engine lock, so don't store it across a call
/// that takes the write lock (e.g. [`Database::execute`]).
pub struct CatalogRef<'a>(RwLockReadGuard<'a, Engine>);

impl Deref for CatalogRef<'_> {
    type Target = Catalog;
    fn deref(&self) -> &Catalog {
        &self.0.catalog
    }
}

/// Read guard over the storage layer, from [`Database::storage`]. Same
/// locking caveat as [`CatalogRef`].
pub struct StorageRef<'a>(RwLockReadGuard<'a, Engine>);

impl Deref for StorageRef<'_> {
    type Target = Storage;
    fn deref(&self) -> &Storage {
        &self.0.storage
    }
}

/// An embedded object-relational database instance.
///
/// Since PR 9 a `Database` is split in two: the *shared* engine state
/// (catalog + storage, behind `Arc<RwLock>`) and *per-connection* state
/// (statistics, plan cache, savepoints, tracing, the unique-index cache,
/// durability). The handle is `Send`, so the single writer can live on a
/// server's writer thread while [`crate::mvcc::ReadSession`]s opened via
/// [`Database::read_session`] serve queries from other threads.
#[derive(Debug)]
pub struct Database {
    shared: Arc<SharedState>,
    stats: ExecStats,
    mode: DbMode,
    plan_cache: PlanCache,
    hash_joins: bool,
    /// Cost-based planning (on by default): secondary-index access paths
    /// and statistics-driven join ordering. Turning it off pins the naive
    /// plan — full scans, FROM-clause order — for differential tests and
    /// ablation benchmarks ([`Self::set_cost_planner`]).
    cost_planner: bool,
    /// Set-oriented bulk document reconstruction (on by default); the
    /// retrieval layer consults it through [`Self::bulk_retrieval`].
    /// Turning it off pins the naive per-node recursive walker — the
    /// differential baseline for the retrieval benchmarks
    /// ([`Self::set_bulk_retrieval`]).
    bulk_retrieval: bool,
    analyze: bool,
    /// Explicit `SAVEPOINT name` marks, oldest first. COMMIT and full
    /// ROLLBACK discard them; `ROLLBACK TO name` discards only the ones
    /// established after `name` (Oracle semantics — the target survives).
    savepoints: Vec<(Ident, TxnMark)>,
    /// Structured tracing ([`crate::trace`]): `None` (the default) costs a
    /// single check per phase — no clocks, no events, no counter changes.
    trace: Option<Tracer>,
    /// Promoted per-table uniqueness indexes for [`Self::execute_batch`],
    /// validated against [`Storage::table_version`] before reuse.
    unique_cache: UniqueIndexCache,
    /// `Some` when the database persists to a directory ([`Self::open`]);
    /// `None` for in-memory databases — every durable hook then costs one
    /// `Option` check.
    durability: Option<Durability>,
    /// What [`Self::open`] recovered, kept for diagnostics and tests.
    recovery: Option<RecoveryReport>,
}

impl Clone for Database {
    /// Cloning deep-copies the engine into a **fresh, independent**
    /// shared state and *detaches* durability: two writers appending to
    /// one log would interleave corruptly, and — now that handles are
    /// `Send` — two writer handles racing one shared engine would corrupt
    /// in-memory state the same way. A clone therefore shares *nothing*
    /// with its original (the differential tests rely on this isolation);
    /// to share an engine across threads, use
    /// [`Database::read_session`] instead.
    fn clone(&self) -> Database {
        let engine = self.shared.read();
        Database {
            shared: Arc::new(SharedState {
                engine: RwLock::new(Engine {
                    catalog: engine.catalog.clone(),
                    storage: engine.storage.clone(),
                }),
            }),
            stats: self.stats,
            mode: self.mode,
            plan_cache: self.plan_cache.clone(),
            hash_joins: self.hash_joins,
            cost_planner: self.cost_planner,
            bulk_retrieval: self.bulk_retrieval,
            analyze: self.analyze,
            savepoints: self.savepoints.clone(),
            trace: self.trace.clone(),
            unique_cache: self.unique_cache.clone(),
            durability: None,
            recovery: None,
        }
    }
}

/// In-flight span from [`Database::trace_begin`]; hand it back to
/// [`Database::trace_end`] to emit the event. Carries the stats snapshot so
/// the event reports the span's counter delta.
#[derive(Debug)]
pub struct SpanToken {
    phase: &'static str,
    detail: String,
    start: Instant,
    before: ExecStats,
}

impl Database {
    pub fn new(mode: DbMode) -> Database {
        Database {
            shared: Arc::new(SharedState {
                engine: RwLock::new(Engine { catalog: Catalog::new(), storage: Storage::new() }),
            }),
            stats: ExecStats::default(),
            mode,
            plan_cache: PlanCache::default(),
            hash_joins: true,
            cost_planner: true,
            bulk_retrieval: true,
            analyze: false,
            savepoints: Vec::new(),
            trace: None,
            unique_cache: UniqueIndexCache::default(),
            durability: None,
            recovery: None,
        }
    }

    /// Alias of [`new`](Self::new), named to contrast with [`open`](Self::open).
    pub fn open_in_memory(mode: DbMode) -> Database {
        Database::new(mode)
    }

    /// Open (or create) a durable database in directory `dir`.
    ///
    /// Recovery runs here: the newest snapshot (if any) is decoded and
    /// restored, then the write-ahead log's durable entries above the
    /// snapshot's sequence are replayed in order. A torn tail — an append
    /// interrupted before its fsync, so never acknowledged as committed —
    /// is truncated, never misread; checksummed-but-undecodable bytes are
    /// rejected as [`DbError::CorruptDurableState`] instead (see
    /// [`wal::scan_wal`]). The recovered state is byte-identical (by
    /// [`state_dump`](Self::state_dump)) to the state at the last
    /// acknowledged COMMIT, and opening is idempotent: a second open of the
    /// same directory replays the same prefix to the same state.
    pub fn open(dir: impl AsRef<Path>, mode: DbMode) -> Result<Database, DbError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| {
            DbError::Io(format!("create database directory {}: {e}", dir.display()))
        })?;
        let mut db = Database::new(mode);
        let mut report = RecoveryReport::default();

        let shared = Arc::clone(&db.shared);
        let mut engine = shared.write();

        let mut snap_seq = 0u64;
        if let Some(bytes) = snapshot::read_snapshot_file(&dir.join(SNAPSHOT_FILE))? {
            let snap = snapshot::decode_snapshot(&bytes)?;
            if snap.mode != mode {
                return Err(DbError::CorruptDurableState(format!(
                    "snapshot was written by a {:?} database, opened as {:?}",
                    snap.mode, mode
                )));
            }
            engine.catalog = snap.catalog;
            engine.storage = snap.storage;
            rebuild_secondary_indexes(&mut engine)?;
            snap_seq = snap.last_seq;
            report.snapshot_loaded = true;
        }

        let wal_path = dir.join(WAL_FILE);
        let scan = wal::scan_wal(&wal::read_wal_file(&wal_path)?)?;
        if let Some(wal_mode) = scan.mode {
            if wal_mode != mode {
                return Err(DbError::CorruptDurableState(format!(
                    "WAL was written by a {wal_mode:?} database, opened as {mode:?}"
                )));
            }
        }
        report.truncated_bytes = scan.truncated_bytes;
        let mut last_seq = snap_seq;
        for entry in &scan.entries {
            if entry.seq <= snap_seq {
                // Entry predating the snapshot, surviving the crash window
                // between "snapshot renamed into place" and "log reset":
                // its effects are already in the snapshot.
                continue;
            }
            for op in &entry.ops {
                db.apply_redo(&mut engine, op)?;
            }
            db.commit_locked(&mut engine, false)?;
            report.entries_replayed += 1;
            last_seq = entry.seq;
        }
        drop(engine);
        report.last_seq = last_seq;

        // Attach the writer, truncating any torn tail so a re-crash before
        // the next append scans the same clean prefix. A missing (or
        // torn-at-creation) log is recreated; reopening it positions the
        // sequence counter at the durable high-water mark either way.
        let wal = match scan.mode {
            Some(_) => WalWriter::reopen(&wal_path, scan.valid_len, last_seq)?,
            None => {
                WalWriter::create(&wal_path, mode)?;
                WalWriter::reopen(&wal_path, wal::HEADER_LEN, last_seq)?
            }
        };
        db.durability = Some(Durability {
            dir,
            wal,
            pending: Vec::new(),
            // Count the replayed tail toward the cadence, so a log that
            // grew past the threshold while snapshots were failing (or the
            // process kept crashing) gets compacted soon after reopening.
            entries_since_snapshot: report.entries_replayed,
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
        });
        db.recovery = Some(report);
        // Replay ran through the ordinary execution path; its counter
        // noise is not this session's work.
        db.stats = ExecStats::default();
        Ok(db)
    }

    /// Re-execute one logged operation during recovery. The engine is
    /// deterministic, so replaying committed ops in order reproduces the
    /// committed state byte-for-byte. Failure means the log disagrees with
    /// the state it was logged against — corruption, not a user error.
    fn apply_redo(&mut self, engine: &mut Engine, op: &RedoOp) -> Result<(), DbError> {
        let result = match op {
            RedoOp::Stmt(stmt) => self.execute_stmt_locked(engine, stmt).map(|_| ()),
            RedoOp::Batch(batch) => self.execute_batch_locked(engine, batch).map(|_| ()),
        };
        result.map_err(|e| DbError::CorruptDurableState(format!("WAL replay failed: {e}")))
    }

    /// Write a snapshot of the committed state to the database directory
    /// and reset the log (the snapshot makes its entries redundant).
    /// Commits the in-flight transaction first — a snapshot captures
    /// committed state only. Errors on in-memory databases.
    pub fn snapshot(&mut self) -> Result<(), DbError> {
        if self.durability.is_none() {
            return Err(DbError::Execution(
                "snapshot requires a database opened with Database::open".into(),
            ));
        }
        let shared = Arc::clone(&self.shared);
        let mut engine = shared.write();
        self.commit_locked(&mut engine, false)?;
        self.snapshot_locked(&mut engine)
    }

    fn snapshot_locked(&mut self, engine: &mut Engine) -> Result<(), DbError> {
        let Some(d) = self.durability.as_mut() else {
            return Err(DbError::Execution(
                "snapshot requires a database opened with Database::open".into(),
            ));
        };
        let bytes =
            snapshot::encode_snapshot(self.mode, d.wal.seq(), &engine.catalog, &engine.storage);
        snapshot::write_atomic(&d.dir, SNAPSHOT_FILE, &bytes)?;
        d.wal.reset()?;
        d.entries_since_snapshot = 0;
        Ok(())
    }

    /// Cleanly shut down a durable database: commit the in-flight
    /// transaction, write a final snapshot and reset the log. This is what
    /// bounds recovery time for long-running servers that disabled the
    /// auto-snapshot cadence ([`Self::set_snapshot_every`] of 0) —
    /// without it the WAL, and therefore
    /// reopen time, grows with the whole history. Deliberately *not* run
    /// on `Drop`: the crash-recovery property tests drop databases to
    /// simulate crashes, and a drop-time snapshot would erase exactly the
    /// log those tests (and real crash recovery) depend on. A no-op for
    /// in-memory databases.
    pub fn close(mut self) -> Result<(), DbError> {
        if self.durability.is_some() {
            self.snapshot()?;
        }
        Ok(())
    }

    /// Auto-snapshot cadence: after every `n` committed log entries,
    /// [`commit`](Self::commit) also snapshots and resets the log. `0`
    /// disables auto-snapshots (manual [`snapshot`](Self::snapshot) still
    /// works). Ignored by in-memory databases.
    pub fn set_snapshot_every(&mut self, n: u64) {
        if let Some(d) = self.durability.as_mut() {
            d.snapshot_every = n;
        }
    }

    /// What [`open`](Self::open) recovered — `None` for in-memory databases.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// True when this database persists to a directory.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Install (or remove) a trace sink. While one is installed, every
    /// parse / analyze / execute phase emits a [`crate::trace::TraceEvent`]
    /// carrying wall time and the counter delta, and per-statement wall
    /// times are folded into the histograms that
    /// [`stats_report`](Self::stats_report) renders. Cloning a traced
    /// database shares the sink (tracing is an observation channel, not
    /// database state).
    pub fn set_trace_sink(&mut self, handle: Option<TraceHandle>) {
        self.trace = handle.map(Tracer::new);
    }

    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Open a pipeline-level span (e.g. the mapping layer's `shred` /
    /// `generate` / `load` / `retrieve` phases). Returns `None` instantly
    /// when tracing is disabled; otherwise pass the token to
    /// [`trace_end`](Self::trace_end) when the phase completes.
    pub fn trace_begin(&self, phase: &'static str, detail: impl Into<String>) -> Option<SpanToken> {
        self.trace.as_ref()?;
        Some(SpanToken { phase, detail: detail.into(), start: Instant::now(), before: self.stats })
    }

    /// Close a span from [`trace_begin`](Self::trace_begin): emits the
    /// event and folds the duration into the phase's histogram. A `None`
    /// token (tracing was off at begin) is a no-op.
    pub fn trace_end(&mut self, token: Option<SpanToken>) {
        let (Some(token), Some(tracer)) = (token, self.trace.as_mut()) else {
            return;
        };
        let nanos = token.start.elapsed().as_nanos() as u64;
        let delta = self.stats.since(&token.before);
        tracer.emit(token.phase, token.detail, nanos, delta);
        tracer.time(token.phase, nanos);
    }

    /// Enable or disable the inline static analyzer (off by default). When
    /// on, every SQL text handed to [`execute`](Self::execute) /
    /// [`execute_script`](Self::execute_script) is first checked by
    /// [`crate::analyze::Analyzer`] against a clone of the live catalog, and
    /// findings are counted into [`ExecStats::analyzer_errors`] /
    /// [`ExecStats::analyzer_warnings`]. Analysis is advisory: execution
    /// proceeds regardless — the differential guarantee means every
    /// `Error`-severity finding is rejected by the executor anyway, and
    /// counting both lets tests assert the two agree.
    pub fn set_analyze(&mut self, enabled: bool) {
        self.analyze = enabled;
    }

    /// Statically check a script against the current catalog without
    /// executing anything (the analyzer works on a clone).
    pub fn check(&self, sql: &str) -> Result<Vec<Diagnostic>, DbError> {
        let catalog = self.shared.read().catalog.clone();
        Analyzer::with_catalog(catalog, self.mode).analyze_script(sql)
    }

    /// Inline analysis for [`set_analyze`](Self::set_analyze). Parse errors
    /// are ignored here — execution surfaces them to the caller.
    fn analyze_inline(&mut self, sql: &str) {
        if !self.analyze {
            return;
        }
        let span = self.trace_begin("analyze", "inline script check");
        if let Ok(diags) = self.check(sql) {
            for d in &diags {
                match d.severity {
                    Severity::Error => self.stats.analyzer_errors += 1,
                    Severity::Warning => self.stats.analyzer_warnings += 1,
                }
            }
        }
        self.trace_end(span);
    }

    /// Enable or disable the hash equi-join fast path (on by default).
    /// Turning it off forces nested loops everywhere — used by the
    /// differential tests that check both strategies agree.
    pub fn set_hash_joins(&mut self, enabled: bool) {
        self.hash_joins = enabled;
    }

    /// Enable or disable the cost-based planner (on by default). Turning it
    /// off forces full scans and FROM-clause join order everywhere — the
    /// ablation baseline for the planner benchmarks, and the oracle side of
    /// the differential tests that check index-backed plans return exactly
    /// the same rows as naive evaluation.
    pub fn set_cost_planner(&mut self, enabled: bool) {
        self.cost_planner = enabled;
    }

    /// Enable or disable set-oriented bulk document reconstruction (on by
    /// default). Turning it off pins the naive per-node recursive walker —
    /// the ablation baseline for the retrieval benchmarks, and the oracle
    /// side of the differential tests that check the bulk path reconstructs
    /// byte-identical documents. The engine does not consult this flag
    /// itself; the retrieval layer reads it via
    /// [`bulk_retrieval`](Self::bulk_retrieval), exactly like the
    /// hash-join and planner valves.
    pub fn set_bulk_retrieval(&mut self, enabled: bool) {
        self.bulk_retrieval = enabled;
    }

    pub fn bulk_retrieval(&self) -> bool {
        self.bulk_retrieval
    }

    /// Fold one document reconstruction's access counts into this handle's
    /// statistics ([`ExecStats::retrieve_table_scans`] /
    /// [`ExecStats::retrieve_index_probes`] / [`ExecStats::bulk_retrieves`]).
    /// Retrieval probes also count as [`ExecStats::index_scans`]: they are
    /// index-driven accesses exactly like the planner's.
    pub fn record_retrieval(&mut self, table_scans: u64, index_probes: u64, bulk: bool) {
        self.stats.retrieve_table_scans += table_scans;
        self.stats.retrieve_index_probes += index_probes;
        self.stats.index_scans += index_probes;
        if bulk {
            self.stats.bulk_retrieves += 1;
        }
    }

    /// Parse `sql` through the statement cache. Non-INSERT texts hit on the
    /// verbatim string; INSERT texts hit on their literal-normalized shape,
    /// with the template's literal slots rebound per text. Parse errors are
    /// not cached.
    fn cached_parse(&mut self, sql: &str) -> Result<Arc<Vec<Stmt>>, DbError> {
        if self.trace.is_none() {
            return self.cached_parse_inner(sql);
        }
        let before = self.stats;
        let start = Instant::now();
        let result = self.cached_parse_inner(sql);
        let nanos = start.elapsed().as_nanos() as u64;
        let delta = self.stats.since(&before);
        let detail = if result.is_err() {
            "parse error"
        } else if delta.plan_cache_hits > 0 {
            "plan-cache hit"
        } else {
            "plan-cache miss — parsed"
        };
        if let Some(tracer) = self.trace.as_mut() {
            tracer.emit("parse", detail.to_string(), nanos, delta);
            tracer.time("parse", nanos);
        }
        result
    }

    fn cached_parse_inner(&mut self, sql: &str) -> Result<Arc<Vec<Stmt>>, DbError> {
        cached_parse_with(&mut self.plan_cache, &mut self.stats, sql)
    }

    pub fn mode(&self) -> DbMode {
        self.mode
    }

    /// Shared-lock read access to the catalog. The guard derefs to
    /// [`Catalog`]; drop it before calling a mutating method.
    pub fn catalog(&self) -> CatalogRef<'_> {
        CatalogRef(self.shared.read())
    }

    /// Shared-lock read access to the storage layer. The guard derefs to
    /// [`Storage`]; drop it before calling a mutating method.
    pub fn storage(&self) -> StorageRef<'_> {
        StorageRef(self.shared.read())
    }

    /// Open a concurrent snapshot-read session over this database's
    /// engine. The session is `Send`, holds its own plan cache and
    /// statistics, and serves SELECT / EXPLAIN from a committed-state
    /// snapshot cache — see [`crate::mvcc`] for the protocol.
    pub fn read_session(&self) -> crate::mvcc::ReadSession {
        crate::mvcc::ReadSession::new(
            Arc::clone(&self.shared),
            self.mode,
            self.hash_joins,
            self.cost_planner,
            self.bulk_retrieval,
        )
    }

    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Human-readable statistics: every [`ExecStats`] counter, and — when a
    /// trace sink is installed — the per-statement-kind wall-time
    /// histograms collected so far.
    pub fn stats_report(&self) -> String {
        let s = &self.stats;
        let mut out = String::new();
        out.push_str("== counters ==\n");
        for (name, v) in [
            ("statements", s.statements),
            ("inserts", s.inserts),
            ("rows_inserted", s.rows_inserted),
            ("rows_scanned", s.rows_scanned),
            ("join_pairs", s.join_pairs),
            ("join_queries", s.join_queries),
            ("tables_created", s.tables_created),
            ("types_created", s.types_created),
            ("derefs", s.derefs),
            ("oid_index_hits", s.oid_index_hits),
            ("hash_join_builds", s.hash_join_builds),
            ("hash_join_probes", s.hash_join_probes),
            ("plan_cache_hits", s.plan_cache_hits),
            ("plan_cache_misses", s.plan_cache_misses),
            ("analyzer_errors", s.analyzer_errors),
            ("analyzer_warnings", s.analyzer_warnings),
            ("txn_rollbacks", s.txn_rollbacks),
            ("undo_records", s.undo_records),
            ("savepoints", s.savepoints),
            ("prepared_execs", s.prepared_execs),
            ("batched_rows", s.batched_rows),
            ("batch_subquery_hits", s.batch_subquery_hits),
            ("index_scans", s.index_scans),
            ("index_maintenance_ops", s.index_maintenance_ops),
            ("planner_plans_costed", s.planner_plans_costed),
            ("analyze_runs", s.analyze_runs),
            ("retrieve_table_scans", s.retrieve_table_scans),
            ("retrieve_index_probes", s.retrieve_index_probes),
            ("bulk_retrieves", s.bulk_retrieves),
        ] {
            let _ = writeln!(out, "{name:<20} {v}");
        }
        if let Some(d) = &self.durability {
            out.push_str("== durability ==\n");
            let _ = writeln!(out, "{:<20} {}", "wal_entries", d.entries_since_snapshot);
            let _ = writeln!(out, "{:<20} {}", "wal_bytes", d.wal.len_bytes());
            let _ = writeln!(out, "{:<20} {}", "snapshot_every", d.snapshot_every);
        }
        if let Some(tracer) = &self.trace {
            out.push_str("== wall-time histograms (per statement kind / phase) ==\n");
            for (kind, h) in tracer.timings() {
                let _ = writeln!(
                    out,
                    "{kind:<12} n={} total={} mean={} max={}",
                    h.samples(),
                    fmt_nanos(h.total_nanos()),
                    fmt_nanos(h.mean_nanos()),
                    fmt_nanos(h.max_nanos()),
                );
                for (lower, count) in h.buckets() {
                    let _ = writeln!(out, "  >= {:<10} x{count}", fmt_nanos(lower));
                }
            }
        }
        out
    }

    /// Execute a script of `;`-separated statements. Results of SELECTs are
    /// returned in order (DDL/DML contribute nothing to the result list).
    /// Equivalent to [`execute_script_with`](Self::execute_script_with)
    /// under [`RecoveryPolicy::AbortOnError`], surfacing the first failure
    /// as the script's error.
    pub fn execute_script(&mut self, sql: &str) -> Result<Vec<QueryResult>, DbError> {
        let outcome = self.execute_script_with(sql, RecoveryPolicy::AbortOnError)?;
        match outcome.errors.into_iter().next() {
            Some(e) => Err(e.error),
            None => Ok(outcome.results),
        }
    }

    /// Execute a script under an explicit [`RecoveryPolicy`]. The outer
    /// `Err` is reserved for parse failures (no statement ran); execution
    /// failures are reported per statement in [`ScriptOutcome::errors`].
    ///
    /// A `COMMIT` inside the script makes the statements before it
    /// permanent even under [`RecoveryPolicy::Atomic`] — exactly as it
    /// would in Oracle — so atomic loads should not embed commits.
    pub fn execute_script_with(
        &mut self,
        sql: &str,
        policy: RecoveryPolicy,
    ) -> Result<ScriptOutcome, DbError> {
        self.execute_script_opts(sql, policy, ResultMode::Collect)
    }

    /// [`execute_script_with`](Self::execute_script_with) plus an explicit
    /// [`ResultMode`]: bulk loads pass [`ResultMode::Discard`] so a script
    /// of any length holds no query results in memory.
    pub fn execute_script_opts(
        &mut self,
        sql: &str,
        policy: RecoveryPolicy,
        results: ResultMode,
    ) -> Result<ScriptOutcome, DbError> {
        self.analyze_inline(sql);
        let stmts = self.cached_parse(sql)?;
        let script_mark = self.txn_mark();
        let mut outcome = ScriptOutcome::default();
        for (index, stmt) in stmts.iter().enumerate() {
            match self.execute_stmt(stmt) {
                Ok(Some(result)) => {
                    match results {
                        ResultMode::Collect => outcome.results.push(result),
                        ResultMode::LastOnly => {
                            outcome.results.clear();
                            outcome.results.push(result);
                        }
                        ResultMode::Discard => {}
                    }
                    outcome.executed += 1;
                }
                Ok(None) => outcome.executed += 1,
                Err(error) => {
                    outcome.errors.push(ScriptError { statement: index, kind: stmt.kind(), error });
                    match policy {
                        RecoveryPolicy::ContinueOnError => continue,
                        RecoveryPolicy::AbortOnError => break,
                        RecoveryPolicy::Atomic => {
                            self.rollback_to_mark(script_mark);
                            outcome.rolled_back = true;
                            outcome.results.clear();
                            break;
                        }
                    }
                }
            }
        }
        Ok(outcome)
    }

    // -- transactions ---------------------------------------------------------

    /// Undo position of an engine — the locked-path version of
    /// [`txn_mark`](Self::txn_mark).
    fn mark_of(&self, engine: &Engine) -> TxnMark {
        TxnMark { storage: engine.storage.undo_len(), catalog: engine.catalog.undo_len() }
    }

    /// Current undo-log position, for [`rollback_to_mark`](Self::rollback_to_mark).
    pub fn txn_mark(&self) -> TxnMark {
        let engine = self.shared.read();
        self.mark_of(&engine)
    }

    /// Undo every data and schema mutation logged after `mark` (newest
    /// first). Counts one [`ExecStats::txn_rollbacks`].
    pub fn rollback_to_mark(&mut self, mark: TxnMark) {
        let shared = Arc::clone(&self.shared);
        let mut engine = shared.write();
        self.rollback_to_mark_locked(&mut engine, mark);
    }

    fn rollback_to_mark_locked(&mut self, engine: &mut Engine, mark: TxnMark) {
        engine.storage.rollback_to(mark.storage);
        engine.catalog.rollback_to(mark.catalog);
        if let Some(d) = self.durability.as_mut() {
            // Drop the redo ops of the statements just undone: an op
            // survives only if its statement began strictly before `mark`.
            d.pending.retain(|(m, _)| m.storage < mark.storage || m.catalog < mark.catalog);
        }
        self.stats.txn_rollbacks += 1;
    }

    /// Make everything since the last commit permanent (`COMMIT`): truncate
    /// both undo logs and discard all savepoints. For a durable database
    /// this is the write-ahead barrier: the transaction's redo ops are
    /// appended to the log and fsynced *before* the undo logs are
    /// truncated, so an error here leaves the transaction open (nothing was
    /// acknowledged), and a crash on either side of the barrier recovers
    /// consistently — before it the transaction never happened, after it
    /// replay reproduces it.
    pub fn commit(&mut self) -> Result<(), DbError> {
        let shared = Arc::clone(&self.shared);
        let mut engine = shared.write();
        self.commit_locked(&mut engine, true)
    }

    fn commit_locked(
        &mut self,
        engine: &mut Engine,
        allow_auto_snapshot: bool,
    ) -> Result<(), DbError> {
        let mut snapshot_due = false;
        if let Some(d) = self.durability.as_mut() {
            if !d.pending.is_empty() {
                let ops: Vec<RedoOp> = d.pending.drain(..).map(|(_, op)| op).collect();
                d.wal.append(&ops)?;
                d.entries_since_snapshot += 1;
                snapshot_due =
                    d.snapshot_every > 0 && d.entries_since_snapshot >= d.snapshot_every;
            }
        }
        engine.storage.commit();
        engine.catalog.commit();
        self.savepoints.clear();
        if allow_auto_snapshot && snapshot_due {
            self.snapshot_locked(engine)?;
        }
        Ok(())
    }

    /// Undo everything since the last commit (`ROLLBACK`).
    pub fn rollback(&mut self) {
        let shared = Arc::clone(&self.shared);
        let mut engine = shared.write();
        self.rollback_locked(&mut engine);
    }

    fn rollback_locked(&mut self, engine: &mut Engine) {
        self.rollback_to_mark_locked(engine, TxnMark { storage: 0, catalog: 0 });
        self.savepoints.clear();
    }

    /// Establish (or move) the named savepoint at the current undo
    /// position (`SAVEPOINT name`).
    pub fn savepoint(&mut self, name: Ident) {
        let shared = Arc::clone(&self.shared);
        let engine = shared.read();
        self.savepoint_locked(&engine, name);
    }

    fn savepoint_locked(&mut self, engine: &Engine, name: Ident) {
        let mark = self.mark_of(engine);
        self.savepoints.retain(|(n, _)| *n != name);
        self.savepoints.push((name, mark));
        self.stats.savepoints += 1;
    }

    /// Undo back to the named savepoint (`ROLLBACK TO name`). The target
    /// savepoint survives and can be rolled back to again; savepoints
    /// established after it are discarded.
    pub fn rollback_to_savepoint(&mut self, name: &Ident) -> Result<(), DbError> {
        let shared = Arc::clone(&self.shared);
        let mut engine = shared.write();
        self.rollback_to_savepoint_locked(&mut engine, name)
    }

    fn rollback_to_savepoint_locked(
        &mut self,
        engine: &mut Engine,
        name: &Ident,
    ) -> Result<(), DbError> {
        let index = self
            .savepoints
            .iter()
            .position(|(n, _)| n == name)
            .ok_or_else(|| DbError::UnknownSavepoint(name.as_str().to_string()))?;
        let mark = self.savepoints[index].1;
        self.rollback_to_mark_locked(engine, mark);
        self.savepoints.truncate(index + 1);
        Ok(())
    }

    /// Deterministic rendering of the committed + uncommitted database
    /// state — schema and data, excluding statistics and caches. Two
    /// databases with identical dumps hold identical catalogs, heaps, OID
    /// directories and OID allocator positions; the fault-injection tests
    /// compare rollback outcomes this way.
    pub fn state_dump(&self) -> String {
        let engine = self.shared.read();
        format!("{}\n{}", engine.catalog.state_dump(), engine.storage.state_dump())
    }

    /// Execute a single statement.
    pub fn execute(&mut self, sql: &str) -> Result<Option<QueryResult>, DbError> {
        self.analyze_inline(sql);
        let stmts = self.cached_parse(sql)?;
        if stmts.len() == 1 {
            return self.execute_stmt(&stmts[0]);
        }
        // Not exactly one statement: surface the single-statement parser's
        // error (e.g. "trailing input") rather than guessing.
        let stmt = parse_statement(sql)?;
        self.execute_stmt(&stmt)
    }

    /// Execute one SELECT and return its result.
    pub fn query(&mut self, sql: &str) -> Result<QueryResult, DbError> {
        match self.execute(sql)? {
            Some(result) => Ok(result),
            None => Err(DbError::Execution("statement is not a query".into())),
        }
    }

    /// Execute a parsed statement. Each statement runs under an implicit
    /// savepoint: if it fails, every mutation it already made is rolled
    /// back, so a failing statement has no effect at all (Oracle's
    /// statement-level atomicity).
    pub fn execute_stmt(&mut self, stmt: &Stmt) -> Result<Option<QueryResult>, DbError> {
        if self.trace.is_none() {
            return self.execute_stmt_inner(stmt);
        }
        let kind = stmt.kind();
        let before = self.stats;
        let start = Instant::now();
        let result = self.execute_stmt_inner(stmt);
        let nanos = start.elapsed().as_nanos() as u64;
        let delta = self.stats.since(&before);
        if let Some(tracer) = self.trace.as_mut() {
            let detail = match &result {
                Ok(_) => kind.to_string(),
                Err(e) => format!("{kind} — error: {e}"),
            };
            tracer.emit("execute", detail, nanos, delta);
            tracer.time(kind, nanos);
        }
        result
    }

    fn execute_stmt_inner(&mut self, stmt: &Stmt) -> Result<Option<QueryResult>, DbError> {
        let shared = Arc::clone(&self.shared);
        let mut engine = shared.write();
        self.execute_stmt_locked(&mut engine, stmt)
    }

    fn execute_stmt_locked(
        &mut self,
        engine: &mut Engine,
        stmt: &Stmt,
    ) -> Result<Option<QueryResult>, DbError> {
        self.stats.statements += 1;
        match stmt {
            Stmt::Commit => {
                self.commit_locked(engine, true)?;
                return Ok(None);
            }
            Stmt::Rollback { to: None } => {
                self.rollback_locked(engine);
                self.drain_index_maintenance(engine);
                return Ok(None);
            }
            Stmt::Rollback { to: Some(name) } => {
                self.rollback_to_savepoint_locked(engine, name)?;
                self.drain_index_maintenance(engine);
                return Ok(None);
            }
            Stmt::Savepoint { name } => {
                self.savepoint_locked(engine, name.clone());
                return Ok(None);
            }
            _ => {}
        }
        let mark = self.mark_of(engine);
        let result = self.dispatch_stmt(engine, stmt);
        let produced = (engine.storage.undo_len() - mark.storage)
            + (engine.catalog.undo_len() - mark.catalog);
        self.stats.undo_records += produced as u64;
        if result.is_err() {
            self.rollback_to_mark_locked(engine, mark);
        } else if produced > 0 {
            // Effect-producing statement under a durable database: buffer
            // its redo op; COMMIT writes the buffered ops as one log entry.
            // SELECT / EXPLAIN and no-op DML produce no undo and are never
            // logged.
            if let Some(d) = self.durability.as_mut() {
                d.pending.push((mark, RedoOp::Stmt(stmt.clone())));
            }
        }
        self.drain_index_maintenance(engine);
        result
    }

    /// Fold the row operations storage spent maintaining secondary indexes
    /// (incremental updates + rebuild visits) into the session counters.
    fn drain_index_maintenance(&mut self, engine: &mut Engine) {
        self.stats.index_maintenance_ops += engine.storage.take_maintenance_ops();
    }

    fn dispatch_stmt(
        &mut self,
        engine: &mut Engine,
        stmt: &Stmt,
    ) -> Result<Option<QueryResult>, DbError> {
        if execute_ddl(&mut engine.catalog, &mut engine.storage, &mut self.stats, self.mode, stmt)?
        {
            return Ok(None);
        }
        match stmt {
            Stmt::Insert { table, columns, values } => {
                self.stats.inserts += 1;
                execute_insert(
                    &engine.catalog,
                    &mut engine.storage,
                    &mut self.stats,
                    self.mode,
                    table,
                    columns,
                    values,
                )?;
                Ok(None)
            }
            Stmt::Update { table, sets, where_clause } => {
                crate::exec::dml::execute_update(
                    &engine.catalog,
                    &mut engine.storage,
                    &mut self.stats,
                    self.mode,
                    table,
                    sets,
                    where_clause,
                )?;
                Ok(None)
            }
            Stmt::Delete { table, where_clause } => {
                execute_delete(
                    &engine.catalog,
                    &mut engine.storage,
                    &mut self.stats,
                    self.mode,
                    table,
                    where_clause,
                )?;
                Ok(None)
            }
            Stmt::Select(select) => {
                let mut ctx = ExecCtx {
                    catalog: &engine.catalog,
                    storage: &engine.storage,
                    stats: &mut self.stats,
                    mode: self.mode,
                    hash_joins: self.hash_joins,
                    cost_planner: self.cost_planner,
                };
                let result = execute_select(&mut ctx, select, None)?;
                Ok(Some(result))
            }
            Stmt::Explain(inner) => {
                let result = crate::exec::explain::explain_stmt(
                    &engine.catalog,
                    self.mode,
                    self.hash_joins,
                    self.cost_planner,
                    inner,
                )?;
                Ok(Some(result))
            }
            // Every other variant is DDL, which `execute_ddl` handles and
            // returns `true` for; reaching here would mean a new Stmt
            // variant was added without a dispatch arm.
            other => Err(DbError::Execution(format!(
                "statement kind {} fell through execution dispatch",
                other.kind()
            ))),
        }
    }

    /// Number of rows in a table (0 if absent) — used heavily by tests and
    /// the fragmentation experiments.
    pub fn row_count(&self, table: &str) -> usize {
        self.shared.read().storage.row_count(&Ident::internal(table))
    }

    /// Convenience: the single value of a single-row, single-column query.
    pub fn query_scalar(&mut self, sql: &str) -> Result<Value, DbError> {
        let result = self.query(sql)?;
        result
            .scalar()
            .cloned()
            .ok_or_else(|| DbError::Execution("query did not return a single scalar".into()))
    }

    // -- bulk ingest ----------------------------------------------------------

    /// Compile one statement for repeated bound execution. For an INSERT
    /// whose shape passes slot verification (the same check the plan cache
    /// runs), every string/number literal becomes a parameter slot in
    /// lexical order; other statements prepare with zero slots (still
    /// skipping the parse on each execution).
    pub fn prepare(&mut self, sql: &str) -> Result<PreparedStmt, DbError> {
        let mut parsed = parse_script(sql)?;
        if parsed.len() != 1 {
            return Err(DbError::Execution(format!(
                "prepare expects exactly one statement, got {}",
                parsed.len()
            )));
        }
        Ok(match parameterize(sql) {
            Some((key, lits)) if slots_match(&mut parsed, &lits) => {
                PreparedStmt { key, template: parsed, slots: lits.len() }
            }
            _ => PreparedStmt { key: sql.to_string(), template: parsed, slots: 0 },
        })
    }

    /// Execute a prepared statement with `params` bound to its literal
    /// slots in order — template → bound AST → executor, with no lexing or
    /// parsing. Parameters replace slots wholesale, so NULLs and dates
    /// bind fine into what was lexed as a string slot. Counts one
    /// [`ExecStats::prepared_execs`]; emits a `prepared` trace span.
    pub fn execute_prepared(
        &mut self,
        prep: &PreparedStmt,
        params: &[Value],
    ) -> Result<Option<QueryResult>, DbError> {
        let span = self.trace_begin("prepared", format!("{} params", params.len()));
        let result = self.execute_prepared_inner(prep, params);
        self.trace_end(span);
        result
    }

    fn execute_prepared_inner(
        &mut self,
        prep: &PreparedStmt,
        params: &[Value],
    ) -> Result<Option<QueryResult>, DbError> {
        if params.len() != prep.slots {
            return Err(DbError::Execution(format!(
                "prepared statement has {} parameter slots but {} values were bound",
                prep.slots,
                params.len()
            )));
        }
        self.stats.prepared_execs += 1;
        if prep.slots == 0 {
            return self.execute_stmt(&prep.template[0]);
        }
        let mut stmts = prep.template.clone();
        if !bind_values(&mut stmts, params) {
            return Err(DbError::Execution(
                "prepared parameter binding failed (slot/value mismatch)".into(),
            ));
        }
        let stmt = stmts.remove(0);
        self.execute_stmt(&stmt)
    }

    /// Execute an [`InsertBatch`] as one unit: the catalog is resolved
    /// once, every row is validated against the pre-batch snapshot, rows
    /// are appended in one storage call with a block OID reservation, and a
    /// single undo record brackets the batch (so enclosing
    /// [`RecoveryPolicy::Atomic`] marks roll it back exactly like the
    /// equivalent statement sequence). The resulting database state is
    /// byte-identical to executing the rows as individual INSERTs — see
    /// [`execute_insert_batch`] for the subquery-visibility contract.
    /// Returns the number of rows inserted; emits a `batch` trace span.
    pub fn execute_batch(&mut self, batch: &InsertBatch) -> Result<usize, DbError> {
        let span = self
            .trace_begin("batch", format!("{} rows into {}", batch.rows.len(), batch.table));
        let result = self.execute_batch_inner(batch);
        self.trace_end(span);
        result
    }

    fn execute_batch_inner(&mut self, batch: &InsertBatch) -> Result<usize, DbError> {
        let shared = Arc::clone(&self.shared);
        let mut engine = shared.write();
        self.execute_batch_locked(&mut engine, batch)
    }

    fn execute_batch_locked(
        &mut self,
        engine: &mut Engine,
        batch: &InsertBatch,
    ) -> Result<usize, DbError> {
        self.stats.statements += 1;
        self.stats.inserts += batch.rows.len() as u64;
        let mark = self.mark_of(engine);
        let result = execute_insert_batch(
            &engine.catalog,
            &mut engine.storage,
            &mut self.stats,
            self.mode,
            batch,
            &mut self.unique_cache,
        );
        let produced = (engine.storage.undo_len() - mark.storage)
            + (engine.catalog.undo_len() - mark.catalog);
        self.stats.undo_records += produced as u64;
        if result.is_err() {
            self.rollback_to_mark_locked(engine, mark);
        } else if produced > 0 {
            if let Some(d) = self.durability.as_mut() {
                d.pending.push((mark, RedoOp::Batch(batch.clone())));
            }
        }
        self.drain_index_maintenance(engine);
        result
    }
}

/// Re-register every secondary index recorded in a snapshot's catalog with
/// the freshly restored storage (index payloads are not serialized — they
/// are derived state, rebuilt lazily from the heaps on first probe).
fn rebuild_secondary_indexes(engine: &mut Engine) -> Result<(), DbError> {
    let defs: Vec<(Ident, Ident, Vec<Ident>)> = engine
        .catalog
        .snapshot_parts()
        .3
        .values()
        .map(|d| (d.name.clone(), d.table.clone(), d.columns.clone()))
        .collect();
    for (name, table, columns) in defs {
        let Some(table_def) = engine.catalog.get_table(&table) else {
            return Err(DbError::CorruptDurableState(format!(
                "snapshot index {name} references missing table {table}"
            )));
        };
        let table_cols = engine.catalog.table_columns(table_def);
        let mut positions = Vec::with_capacity(columns.len());
        for c in &columns {
            let Some(p) = table_cols.iter().position(|(n, _)| n == c) else {
                return Err(DbError::CorruptDurableState(format!(
                    "snapshot index {name} references missing column {c} of table {table}"
                )));
            };
            positions.push(p);
        }
        engine.storage.register_index_unlogged(name, table, positions);
    }
    Ok(())
}

/// The plan-cache lookup shared by the writing [`Database`] and
/// [`crate::mvcc::ReadSession`]s (each owns a private cache — the cache is
/// per-connection state). Non-INSERT texts hit on the verbatim string;
/// INSERT texts hit on their literal-normalized shape, with the template's
/// literal slots rebound per text. Parse errors are not cached.
pub(crate) fn cached_parse_with(
    plan_cache: &mut PlanCache,
    stats: &mut ExecStats,
    sql: &str,
) -> Result<Arc<Vec<Stmt>>, DbError> {
    plan_cache.tick += 1;
    let tick = plan_cache.tick;
    let param = parameterize(sql);
    if let Some((key, lits)) = &param {
        if let Some(entry) = plan_cache.entries.get_mut(key) {
            entry.last_used = tick;
            if let Plan::Template(template) = &entry.plan {
                let mut stmts: Vec<Stmt> = (**template).clone();
                if rebind(&mut stmts, lits) {
                    stats.plan_cache_hits += 1;
                    return Ok(Arc::new(stmts));
                }
            }
            // Opaque shape: fall through to the verbatim path.
        }
    }
    if let Some(entry) = plan_cache.entries.get_mut(sql) {
        if let Plan::Exact(stmts) = &entry.plan {
            let stmts = stmts.clone();
            entry.last_used = tick;
            stats.plan_cache_hits += 1;
            return Ok(stmts);
        }
    }
    stats.plan_cache_misses += 1;
    let mut parsed = parse_script(sql)?;
    match param {
        Some((key, lits)) if slots_match(&mut parsed, &lits) => {
            let stmts = Arc::new(parsed);
            plan_cache.insert(key, Plan::Template(stmts.clone()), tick);
            Ok(stmts)
        }
        Some((key, _)) => {
            plan_cache.insert(key, Plan::Opaque, tick);
            let stmts = Arc::new(parsed);
            plan_cache.insert(sql.to_string(), Plan::Exact(stmts.clone()), tick);
            Ok(stmts)
        }
        None => {
            let stmts = Arc::new(parsed);
            plan_cache.insert(sql.to_string(), Plan::Exact(stmts.clone()), tick);
            Ok(stmts)
        }
    }
}

/// Render nanoseconds with a unit that keeps the mantissa short.
fn fmt_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.2}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.2}us", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        Database::new(DbMode::Oracle9)
    }

    /// §2.1: object types as attribute domains + object tables.
    #[test]
    fn section_2_1_object_types_and_tables() {
        let mut d = db();
        d.execute_script(
            "CREATE TYPE Type_Professor AS OBJECT( PName VARCHAR(80), Subject VARCHAR(120));
             CREATE TYPE Type_Course AS OBJECT( Name VARCHAR(100), Professor Type_Professor);
             CREATE TABLE TabProfessor OF Type_Professor( PName PRIMARY KEY);
             CREATE TABLE Course_Offering( Department VARCHAR(120), Course Type_Course);
             INSERT INTO Course_Offering VALUES ('CS',
                Type_Course ('CAD Intro', Type_Professor ('Jaeger','CAD')));",
        )
        .unwrap();
        let rows = d
            .query("SELECT c.Course.Professor.PName FROM Course_Offering c WHERE c.Department = 'CS'")
            .unwrap();
        assert_eq!(rows.rows, vec![vec![Value::str("Jaeger")]]);
    }

    /// §2.2: collection types, both flavours.
    #[test]
    fn section_2_2_collections() {
        let mut d = db();
        d.execute_script(
            "CREATE TYPE TypeVA_Subject AS VARRAY(5) OF VARCHAR(200);
             CREATE TYPE Type_TabSubject AS TABLE OF VARCHAR(200);
             CREATE TABLE TabProfessor (
                Name VARCHAR(80),
                Subject Type_TabSubject)
             NESTED TABLE Subject STORE AS TabSubject_List;
             INSERT INTO TabProfessor VALUES ('Kudrass',
                Type_TabSubject('Database Systems', 'Operating Systems'));",
        )
        .unwrap();
        let rows = d
            .query(
                "SELECT s.COLUMN_VALUE FROM TabProfessor p, TABLE(p.Subject) s \
                 WHERE p.Name = 'Kudrass'",
            )
            .unwrap();
        assert_eq!(rows.rows.len(), 2);
        assert_eq!(rows.rows[0][0], Value::str("Database Systems"));
    }

    #[test]
    fn varray_limit_is_enforced() {
        let mut d = db();
        d.execute_script(
            "CREATE TYPE TypeVA_S AS VARRAY(2) OF VARCHAR(10);
             CREATE TABLE T (x TypeVA_S);",
        )
        .unwrap();
        let err = d
            .execute("INSERT INTO T VALUES (TypeVA_S('a','b','c'))")
            .unwrap_err();
        assert!(matches!(err, DbError::VarrayLimitExceeded { max: 2, actual: 3, .. }));
    }

    /// §2.3: REFs between object tables.
    #[test]
    fn section_2_3_object_references() {
        let mut d = db();
        d.execute_script(
            "CREATE TYPE Type_Professor AS OBJECT( PName VARCHAR(200), Subject VARCHAR(200));
             CREATE TYPE Type_Course AS OBJECT( Name VARCHAR(200), Prof_Ref REF Type_Professor);
             CREATE TABLE TabProfessor OF Type_Professor;
             CREATE TABLE TabCourse OF Type_Course;
             INSERT INTO TabProfessor VALUES (Type_Professor('Jaeger', 'CAD'));
             INSERT INTO TabCourse VALUES (Type_Course('CAD Intro',
                (SELECT REF(p) FROM TabProfessor p WHERE p.PName = 'Jaeger')));",
        )
        .unwrap();
        // Implicit dot navigation through the REF.
        let rows = d.query("SELECT c.Prof_Ref.Subject FROM TabCourse c").unwrap();
        assert_eq!(rows.rows, vec![vec![Value::str("CAD")]]);
        // Explicit DEREF.
        let rows = d.query("SELECT DEREF(c.Prof_Ref) FROM TabCourse c").unwrap();
        assert!(matches!(rows.rows[0][0], Value::Obj { .. }));
        assert!(d.stats().derefs >= 2);
    }

    /// §4.2 example: deep single INSERT with nested collections (Oracle 9).
    #[test]
    fn section_4_2_nested_collection_insert() {
        let mut d = db();
        d.execute_script(
            "CREATE TYPE TypeVA_Subject AS VARRAY(100) OF VARCHAR(4000);
             CREATE TYPE Type_Professor AS OBJECT(
                attrPName VARCHAR(4000), attrSubject TypeVA_Subject, attrDept VARCHAR(4000));
             CREATE TYPE TypeVA_Professor AS VARRAY(100) OF Type_Professor;
             CREATE TYPE Type_Course AS OBJECT(
                attrName VARCHAR(4000), attrProfessor TypeVA_Professor, attrCreditPts VARCHAR(4000));
             CREATE TYPE TypeVA_Course AS VARRAY(100) OF Type_Course;
             CREATE TYPE Type_Student AS OBJECT(
                attrStudNr VARCHAR(4000), attrLName VARCHAR(4000), attrFName VARCHAR(4000),
                attrCourse TypeVA_Course);
             CREATE TYPE TypeVA_Student AS VARRAY(100) OF Type_Student;
             CREATE TABLE TabUniversity(
                attrStudyCourse VARCHAR(4000), attrStudent TypeVA_Student);",
        )
        .unwrap();
        let before = d.stats();
        d.execute(
            "INSERT INTO TabUniversity VALUES('Computer Science',
                TypeVA_Student(
                  Type_Student('23374','Conrad','Matthias',
                    TypeVA_Course(
                      Type_Course('Database Systems II',
                        TypeVA_Professor(
                          Type_Professor('Kudrass',
                            TypeVA_Subject('Database Systems','Operat. Systems'),
                            'Computer Science')), '4'),
                      Type_Course('CAD Intro',
                        TypeVA_Professor(
                          Type_Professor('Jaeger',
                            TypeVA_Subject('CAD','CAE'), 'Computer Science')), '4'))),
                  Type_Student('00011','Meier','Ralf', TypeVA_Course())))",
        )
        .unwrap();
        let delta = d.stats().since(&before);
        // The paper's headline: ONE insert statement for the whole document.
        assert_eq!(delta.inserts, 1);
        assert_eq!(delta.rows_inserted, 1);

        // The paper's §4.1 query, adapted: family names of students
        // subscribed to a course of Professor Jaeger, without joins.
        let rows = d
            .query(
                "SELECT s.attrLName FROM TabUniversity u, TABLE(u.attrStudent) s, \
                 TABLE(s.attrCourse) c, TABLE(c.attrProfessor) p \
                 WHERE p.attrPName = 'Jaeger'",
            )
            .unwrap();
        assert_eq!(rows.rows, vec![vec![Value::str("Conrad")]]);
    }

    /// §4.3: NOT NULL on object tables; CHECK over inner attributes rejects
    /// NULL parents too (the paper's "non-desired error message").
    #[test]
    fn section_4_3_constraints() {
        let mut d = db();
        d.execute_script(
            "CREATE TYPE Type_Address AS OBJECT( attrStreet VARCHAR(4000), attrCity VARCHAR(4000));
             CREATE TYPE Type_Course AS OBJECT( attrName VARCHAR(4000), attrAddress Type_Address);
             CREATE TABLE TabCourse OF Type_Course(
                attrName NOT NULL,
                CHECK (attrAddress.attrStreet IS NOT NULL));",
        )
        .unwrap();
        // Valid: full address.
        d.execute("INSERT INTO TabCourse VALUES('DB', Type_Address('Main St','Leipzig'))")
            .unwrap();
        // Desired error: address present but street NULL.
        let err = d
            .execute("INSERT INTO TabCourse VALUES('CAD Intro', Type_Address(NULL,'Leipzig'))")
            .unwrap_err();
        assert!(matches!(err, DbError::CheckViolation { .. }));
        // The paper's *non-desired* error: NULL address also violates the
        // CHECK, because NULL.attrStreet evaluates to NULL → IS NOT NULL is
        // FALSE.
        let err = d
            .execute("INSERT INTO TabCourse VALUES('Operating Systems', NULL)")
            .unwrap_err();
        assert!(matches!(err, DbError::CheckViolation { .. }));
        // NOT NULL on the simple column.
        let err = d
            .execute("INSERT INTO TabCourse VALUES(NULL, Type_Address('X','Y'))")
            .unwrap_err();
        assert!(matches!(err, DbError::NotNullViolation { .. }));
    }

    #[test]
    fn primary_key_enforced_on_object_tables() {
        let mut d = db();
        d.execute_script(
            "CREATE TYPE T AS OBJECT(a VARCHAR(10), b VARCHAR(10));
             CREATE TABLE Tab OF T(a PRIMARY KEY);
             INSERT INTO Tab VALUES (T('1','x'));",
        )
        .unwrap();
        let err = d.execute("INSERT INTO Tab VALUES (T('1','y'))").unwrap_err();
        assert!(matches!(err, DbError::UniqueViolation { .. }));
        let err = d.execute("INSERT INTO Tab VALUES (T(NULL,'y'))").unwrap_err();
        assert!(matches!(err, DbError::NotNullViolation { .. }));
    }

    #[test]
    fn oracle8_mode_rejects_nested_collection_ddl() {
        let mut d = Database::new(DbMode::Oracle8);
        d.execute("CREATE TYPE TypeVA_S AS VARRAY(9) OF VARCHAR(4000)").unwrap();
        let err = d
            .execute("CREATE TYPE TypeVA_Outer AS VARRAY(9) OF TypeVA_S")
            .unwrap_err();
        assert!(matches!(err, DbError::NestedCollectionNotSupported { .. }));
        // Same script succeeds on Oracle 9.
        let mut d9 = db();
        d9.execute("CREATE TYPE TypeVA_S AS VARRAY(9) OF VARCHAR(4000)").unwrap();
        d9.execute("CREATE TYPE TypeVA_Outer AS VARRAY(9) OF TypeVA_S").unwrap();
    }

    #[test]
    fn varchar_length_limit_enforced() {
        let mut d = db();
        d.execute_script(
            "CREATE TYPE T AS OBJECT(x VARCHAR(5));
             CREATE TABLE Tab OF T;",
        )
        .unwrap();
        let err = d.execute("INSERT INTO Tab VALUES (T('toolongvalue'))").unwrap_err();
        assert!(matches!(err, DbError::ValueTooLarge { max: 5, .. }));
    }

    #[test]
    fn forward_declaration_and_drop_force_cycle() {
        // §6.2's recursive Professor/Dept structure.
        let mut d = db();
        d.execute_script(
            "CREATE TYPE Type_Professor;
             CREATE TYPE TabRefProfessor AS TABLE OF REF Type_Professor;
             CREATE TYPE Type_Dept AS OBJECT(
                attrDName VARCHAR(4000), attrProfessor TabRefProfessor);
             CREATE TYPE Type_Professor AS OBJECT(
                attrPName VARCHAR(4000), attrDept Type_Dept);",
        )
        .unwrap();
        // Dropping a depended-on type requires FORCE.
        let err = d.execute("DROP TYPE Type_Dept").unwrap_err();
        assert!(matches!(err, DbError::DependentTypeExists { .. }));
        d.execute("DROP TYPE Type_Dept FORCE").unwrap();
    }

    #[test]
    fn views_execute_their_stored_query() {
        let mut d = db();
        d.execute_script(
            "CREATE TABLE T (a VARCHAR(10), b NUMBER);
             INSERT INTO T VALUES ('x', 1);
             INSERT INTO T VALUES ('y', 2);
             CREATE VIEW V AS SELECT t.a AS name FROM T t WHERE t.b > 1;",
        )
        .unwrap();
        let rows = d.query("SELECT v.name FROM V v").unwrap();
        assert_eq!(rows.rows, vec![vec![Value::str("y")]]);
    }

    #[test]
    fn cast_multiset_builds_collections_from_joins() {
        let mut d = db();
        d.execute_script(
            "CREATE TYPE TypeVA_Subject AS VARRAY(10) OF VARCHAR(100);
             CREATE TABLE tabProfessor (IDProfessor NUMBER, attrPName VARCHAR(100));
             CREATE TABLE tabSubject (IDProfessor NUMBER, attrSubject VARCHAR(100));
             INSERT INTO tabProfessor VALUES (1, 'Kudrass');
             INSERT INTO tabSubject VALUES (1, 'Database Systems');
             INSERT INTO tabSubject VALUES (1, 'Operating Systems');
             INSERT INTO tabSubject VALUES (2, 'Other');",
        )
        .unwrap();
        let rows = d
            .query(
                "SELECT p.attrPName, CAST (MULTISET (SELECT s.attrSubject FROM tabSubject s \
                 WHERE p.IDProfessor = s.IDProfessor) AS TypeVA_Subject) FROM tabProfessor p",
            )
            .unwrap();
        let Value::Coll { elements, .. } = &rows.rows[0][1] else {
            panic!("expected collection")
        };
        assert_eq!(elements.len(), 2);
    }

    #[test]
    fn count_star_and_order_by_and_distinct() {
        let mut d = db();
        d.execute_script(
            "CREATE TABLE T (a VARCHAR(5), b NUMBER);
             INSERT INTO T VALUES ('b', 2);
             INSERT INTO T VALUES ('a', 1);
             INSERT INTO T VALUES ('a', 3);",
        )
        .unwrap();
        assert_eq!(d.query_scalar("SELECT COUNT(*) FROM T").unwrap(), Value::Num(3.0));
        let rows = d.query("SELECT t.a FROM T t ORDER BY t.b DESC").unwrap();
        assert_eq!(rows.rows[0][0], Value::str("a"));
        let distinct = d.query("SELECT DISTINCT t.a FROM T t ORDER BY t.a").unwrap();
        assert_eq!(distinct.rows.len(), 2);
    }

    #[test]
    fn delete_with_and_without_where() {
        let mut d = db();
        d.execute_script(
            "CREATE TABLE T (a NUMBER);
             INSERT INTO T VALUES (1); INSERT INTO T VALUES (2); INSERT INTO T VALUES (3);",
        )
        .unwrap();
        d.execute("DELETE FROM T WHERE a > 1").unwrap();
        assert_eq!(d.row_count("T"), 1);
        d.execute("DELETE FROM T").unwrap();
        assert_eq!(d.row_count("T"), 0);
    }

    #[test]
    fn join_statistics_are_tracked() {
        let mut d = db();
        d.execute_script(
            "CREATE TABLE A (x NUMBER); CREATE TABLE B (y NUMBER);
             INSERT INTO A VALUES (1); INSERT INTO A VALUES (2);
             INSERT INTO B VALUES (10);",
        )
        .unwrap();
        let before = d.stats();
        d.query("SELECT a.x, b.y FROM A a, B b").unwrap();
        let delta = d.stats().since(&before);
        assert_eq!(delta.join_queries, 1);
        assert_eq!(delta.join_pairs, 2); // 2 combos × 1 B-row each
        // Single-table query: no joins.
        let before = d.stats();
        d.query("SELECT a.x FROM A a").unwrap();
        assert_eq!(d.stats().since(&before).join_queries, 0);
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let mut d = db();
        assert!(matches!(
            d.query("SELECT x FROM Nope"),
            Err(DbError::UnknownTable(_))
        ));
        d.execute("CREATE TABLE T (a NUMBER)").unwrap();
        d.execute("INSERT INTO T VALUES (1)").unwrap();
        assert!(matches!(
            d.query("SELECT t.bogus FROM T t"),
            Err(DbError::UnknownColumn(_))
        ));
    }

    #[test]
    fn like_and_is_null_predicates() {
        let mut d = db();
        d.execute_script(
            "CREATE TABLE T (name VARCHAR(20));
             INSERT INTO T VALUES ('Jaeger');
             INSERT INTO T VALUES ('Kudrass');
             INSERT INTO T VALUES (NULL);",
        )
        .unwrap();
        let rows = d.query("SELECT t.name FROM T t WHERE t.name LIKE 'J%'").unwrap();
        assert_eq!(rows.rows.len(), 1);
        let nulls = d.query("SELECT COUNT(*) FROM T t WHERE t.name IS NULL").unwrap();
        assert_eq!(nulls.rows[0][0], Value::Num(1.0));
    }

    #[test]
    fn exists_subquery() {
        let mut d = db();
        d.execute_script(
            "CREATE TABLE A (x NUMBER); CREATE TABLE B (x NUMBER);
             INSERT INTO A VALUES (1); INSERT INTO A VALUES (2);
             INSERT INTO B VALUES (2);",
        )
        .unwrap();
        let rows = d
            .query("SELECT a.x FROM A a WHERE EXISTS (SELECT b.x FROM B b WHERE b.x = a.x)")
            .unwrap();
        assert_eq!(rows.rows, vec![vec![Value::Num(2.0)]]);
    }

    #[test]
    fn insert_with_column_list() {
        let mut d = db();
        d.execute("CREATE TABLE T (a NUMBER, b VARCHAR(5), c NUMBER)").unwrap();
        d.execute("INSERT INTO T (c, a) VALUES (3, 1)").unwrap();
        let rows = d.query("SELECT * FROM T").unwrap();
        assert_eq!(rows.rows[0], vec![Value::Num(1.0), Value::Null, Value::Num(3.0)]);
    }

    #[test]
    fn select_star_columns() {
        let mut d = db();
        d.execute("CREATE TABLE T (a NUMBER, b VARCHAR(5))").unwrap();
        let rows = d.query("SELECT * FROM T").unwrap();
        assert_eq!(rows.columns, vec!["a", "b"]);
        assert!(rows.rows.is_empty());
    }

    #[test]
    fn dangling_ref_detected() {
        let mut d = db();
        d.execute_script(
            "CREATE TYPE T AS OBJECT(a VARCHAR(5));
             CREATE TABLE Tab OF T;
             CREATE TABLE Holder (r REF T);
             INSERT INTO Tab VALUES (T('x'));
             INSERT INTO Holder VALUES ((SELECT REF(t) FROM Tab t));",
        )
        .unwrap();
        d.execute("DELETE FROM Tab").unwrap();
        let err = d.query("SELECT DEREF(h.r) FROM Holder h").unwrap_err();
        assert!(matches!(err, DbError::DanglingRef));
    }

    #[test]
    fn update_sets_columns_and_nested_attributes() {
        let mut d = db();
        d.execute_script(
            "CREATE TYPE Type_Addr AS OBJECT(street VARCHAR(100), city VARCHAR(100));
             CREATE TYPE Type_P AS OBJECT(name VARCHAR(100), addr Type_Addr);
             CREATE TABLE TabP OF Type_P;
             INSERT INTO TabP VALUES (Type_P('Kudrass', Type_Addr('Main St', 'Leipzig')));
             INSERT INTO TabP VALUES (Type_P('Jaeger', Type_Addr('Side St', 'Halle')));",
        )
        .unwrap();
        // Top-level column.
        d.execute("UPDATE TabP SET name = 'Conrad' WHERE name = 'Kudrass'").unwrap();
        assert_eq!(
            d.query("SELECT p.name FROM TabP p WHERE p.name = 'Conrad'").unwrap().rows.len(),
            1
        );
        // Nested object attribute.
        d.execute("UPDATE TabP SET addr.city = 'Dresden' WHERE name = 'Jaeger'").unwrap();
        assert_eq!(
            d.query_scalar("SELECT p.addr.city FROM TabP p WHERE p.name = 'Jaeger'").unwrap(),
            Value::str("Dresden")
        );
        // Unaffected row untouched.
        assert_eq!(
            d.query_scalar("SELECT p.addr.city FROM TabP p WHERE p.name = 'Conrad'").unwrap(),
            Value::str("Leipzig")
        );
    }

    #[test]
    fn update_without_where_touches_all_rows() {
        let mut d = db();
        d.execute_script(
            "CREATE TABLE T (a NUMBER, b VARCHAR(10));
             INSERT INTO T VALUES (1, 'x'); INSERT INTO T VALUES (2, 'y');",
        )
        .unwrap();
        d.execute("UPDATE T SET b = 'z'").unwrap();
        let rows = d.query("SELECT t.b FROM T t").unwrap();
        assert!(rows.rows.iter().all(|r| r[0] == Value::str("z")));
    }

    #[test]
    fn update_uses_old_row_values_on_the_right_hand_side() {
        let mut d = db();
        d.execute_script(
            "CREATE TABLE T (a VARCHAR(20), b VARCHAR(20));
             INSERT INTO T VALUES ('old-a', 'old-b');",
        )
        .unwrap();
        d.execute("UPDATE T SET a = b, b = a").unwrap();
        let rows = d.query("SELECT t.a, t.b FROM T t").unwrap();
        // Swap semantics: both sides read the pre-update row.
        assert_eq!(rows.rows[0], vec![Value::str("old-b"), Value::str("old-a")]);
    }

    #[test]
    fn update_respects_not_null_and_check_constraints() {
        let mut d = db();
        d.execute_script(
            "CREATE TYPE T AS OBJECT(a VARCHAR(10), b NUMBER);
             CREATE TABLE Tab OF T(a NOT NULL, CHECK (b > 0));
             INSERT INTO Tab VALUES (T('x', 1));",
        )
        .unwrap();
        assert!(matches!(
            d.execute("UPDATE Tab SET a = NULL").unwrap_err(),
            DbError::NotNullViolation { .. }
        ));
        assert!(matches!(
            d.execute("UPDATE Tab SET b = 0").unwrap_err(),
            DbError::CheckViolation { .. }
        ));
        // Nothing was changed by the failed statements.
        assert_eq!(d.query_scalar("SELECT t.b FROM Tab t").unwrap(), Value::Num(1.0));
    }

    #[test]
    fn update_with_subquery_wires_refs() {
        let mut d = db();
        d.execute_script(
            "CREATE TYPE Type_P AS OBJECT(name VARCHAR(20), boss REF Type_P);
             CREATE TABLE TabP OF Type_P;
             INSERT INTO TabP VALUES (Type_P('Kudrass', NULL));
             INSERT INTO TabP VALUES (Type_P('Conrad', NULL));",
        )
        .unwrap();
        d.execute(
            "UPDATE TabP SET boss = (SELECT REF(x) FROM TabP x WHERE x.name = 'Kudrass') \
             WHERE name = 'Conrad'",
        )
        .unwrap();
        assert_eq!(
            d.query_scalar("SELECT p.boss.name FROM TabP p WHERE p.name = 'Conrad'").unwrap(),
            Value::str("Kudrass")
        );
    }

    #[test]
    fn plan_cache_reuses_parsed_statements() {
        let mut d = db();
        d.execute("CREATE TABLE T (a NUMBER)").unwrap();
        for _ in 0..10 {
            d.execute("INSERT INTO T VALUES (1)").unwrap();
        }
        // The CREATE and the first INSERT miss; the nine repeats hit.
        assert_eq!(d.stats().plan_cache_misses, 2);
        assert_eq!(d.stats().plan_cache_hits, 9);
        assert_eq!(d.row_count("T"), 10);

        // Scripts are cached whole, and cached plans survive DDL because
        // parsing is context-free.
        d.execute_script("INSERT INTO T VALUES (2); SELECT COUNT(*) FROM T;").unwrap();
        let results = d.execute_script("INSERT INTO T VALUES (2); SELECT COUNT(*) FROM T;").unwrap();
        assert_eq!(d.stats().plan_cache_hits, 10);
        assert_eq!(results[0].rows[0][0], Value::Num(12.0));
    }

    #[test]
    fn plan_cache_rebinds_insert_literals() {
        let mut d = db();
        d.execute("CREATE TABLE T (a NUMBER, b VARCHAR(10))").unwrap();
        for i in 0..20 {
            d.execute(&format!("INSERT INTO T VALUES ({i}, 'v{i}')")).unwrap();
        }
        // Every text is distinct, but the shape is one: a single template
        // miss, nineteen rebind hits.
        assert_eq!(d.stats().plan_cache_misses, 2);
        assert_eq!(d.stats().plan_cache_hits, 19);
        // The literals were rebound per text, not replayed from the first.
        assert_eq!(
            d.query_scalar("SELECT COUNT(*) FROM T t WHERE t.a = 17 AND t.b = 'v17'").unwrap(),
            Value::Num(1.0)
        );
        assert_eq!(d.query_scalar("SELECT COUNT(*) FROM T").unwrap(), Value::Num(20.0));
    }

    #[test]
    fn plan_cache_rebinds_constructor_and_subquery_inserts() {
        let mut d = db();
        d.execute_script(
            "CREATE TYPE Type_P AS OBJECT(name VARCHAR(20), subject VARCHAR(20));
             CREATE TYPE Type_C AS OBJECT(name VARCHAR(20), prof REF Type_P);
             CREATE TABLE TabP OF Type_P;
             CREATE TABLE TabC OF Type_C;",
        )
        .unwrap();
        for (prof, subject) in [("Kudrass", "DB"), ("Jaeger", "CAD")] {
            d.execute(&format!("INSERT INTO TabP VALUES (Type_P('{prof}', '{subject}'))"))
                .unwrap();
            d.execute(&format!(
                "INSERT INTO TabC VALUES (Type_C('{subject} Intro',
                   (SELECT REF(p) FROM TabP p WHERE p.name = '{prof}')))"
            ))
            .unwrap();
        }
        // Second round of each shape rebinds through the cache, and the
        // subquery literal is rebound too: each course REFs its own prof.
        assert_eq!(d.stats().plan_cache_hits, 2);
        assert_eq!(
            d.query_scalar("SELECT c.prof.name FROM TabC c WHERE c.name = 'CAD Intro'").unwrap(),
            Value::str("Jaeger")
        );
    }

    #[test]
    fn plan_cache_leaves_folded_negative_shapes_verbatim() {
        let mut d = db();
        d.execute("CREATE TABLE T (a NUMBER)").unwrap();
        d.execute("INSERT INTO T VALUES (-1)").unwrap();
        // Same shape, different literal: the `-` fold makes it
        // untemplatable, so this is a miss …
        d.execute("INSERT INTO T VALUES (-2)").unwrap();
        // … but the verbatim repeat still hits the exact entry.
        d.execute("INSERT INTO T VALUES (-2)").unwrap();
        assert_eq!(d.stats().plan_cache_hits, 1);
        let rows = d.query("SELECT t.a FROM T t ORDER BY t.a").unwrap();
        assert_eq!(
            rows.rows,
            vec![vec![Value::Num(-2.0)], vec![Value::Num(-2.0)], vec![Value::Num(-1.0)]]
        );
    }

    #[test]
    fn plan_cache_does_not_cache_parse_errors() {
        let mut d = db();
        assert!(d.execute("SELEKT nonsense").is_err());
        assert!(d.execute("SELEKT nonsense").is_err());
        assert_eq!(d.stats().plan_cache_hits, 0);
        assert_eq!(d.stats().plan_cache_misses, 2);
    }

    #[test]
    fn inline_analyzer_counts_findings_without_blocking_execution() {
        let mut d = db();
        d.set_analyze(true);
        d.execute_script(
            "CREATE TYPE Type_P AS OBJECT(name VARCHAR(10), boss REF Type_P);
             CREATE TABLE TabP OF Type_P;
             INSERT INTO TabP VALUES (Type_P('x', NULL));",
        )
        .unwrap();
        // The REF column draws an unscoped-ref warning; nothing is an error,
        // and execution went through untouched.
        assert_eq!(d.stats().analyzer_errors, 0);
        assert!(d.stats().analyzer_warnings >= 1);
        assert_eq!(d.row_count("TabP"), 1);
        // A statement the executor rejects is also an analyzer error, and
        // the rejection still reaches the caller.
        let err = d.execute("INSERT INTO Nope VALUES (1)").unwrap_err();
        assert!(matches!(err, DbError::UnknownTable(_)));
        assert_eq!(d.stats().analyzer_errors, 1);
    }

    #[test]
    fn check_reports_against_the_live_catalog_without_executing() {
        let mut d = db();
        d.execute("CREATE TABLE T (a NUMBER)").unwrap();
        let diags = d.check("INSERT INTO T VALUES (1, 2);").unwrap();
        assert!(diags.iter().any(|x| x.code == "insert-arity"), "{diags:?}");
        assert_eq!(d.row_count("T"), 0);
        // A script extending the catalog checks against its own DDL.
        let diags = d.check("CREATE TABLE U (b NUMBER); INSERT INTO U VALUES (3);").unwrap();
        assert!(diags.is_empty(), "{diags:?}");
        assert!(d.catalog().get_table(&Ident::internal("U")).is_none());
    }

    #[test]
    fn statement_counter_counts_everything() {
        let mut d = db();
        d.execute_script(
            "CREATE TABLE T (a NUMBER); INSERT INTO T VALUES (1); SELECT COUNT(*) FROM T;",
        )
        .unwrap();
        assert_eq!(d.stats().statements, 3);
        assert_eq!(d.stats().inserts, 1);
        assert_eq!(d.stats().tables_created, 1);
    }

    #[test]
    fn rollback_undoes_everything_since_the_last_commit() {
        let mut d = db();
        d.execute_script("CREATE TABLE T (a NUMBER); INSERT INTO T VALUES (1); COMMIT;").unwrap();
        let committed = d.state_dump();
        d.execute_script(
            "INSERT INTO T VALUES (2);
             CREATE TYPE Type_X AS OBJECT (a NUMBER);
             DELETE FROM T WHERE a = 1;",
        )
        .unwrap();
        assert_eq!(d.row_count("T"), 1);
        d.execute("ROLLBACK").unwrap();
        assert_eq!(d.state_dump(), committed);
        assert_eq!(d.row_count("T"), 1);
        assert!(d.catalog().get_type(&Ident::internal("Type_X")).is_none());
        assert_eq!(d.query_scalar("SELECT t.a FROM T t").unwrap(), Value::Num(1.0));
    }

    #[test]
    fn savepoints_nest_and_survive_partial_rollback() {
        let mut d = db();
        d.execute_script("CREATE TABLE T (a NUMBER); COMMIT").unwrap();
        d.execute_script(
            "INSERT INTO T VALUES (1);
             SAVEPOINT one;
             INSERT INTO T VALUES (2);
             SAVEPOINT two;
             INSERT INTO T VALUES (3);",
        )
        .unwrap();
        d.execute("ROLLBACK TO two").unwrap();
        assert_eq!(d.row_count("T"), 2);
        // `two` survives the rollback and can be targeted again (Oracle).
        d.execute("INSERT INTO T VALUES (30)").unwrap();
        d.execute("ROLLBACK TO two").unwrap();
        assert_eq!(d.row_count("T"), 2);
        d.execute("ROLLBACK TO one").unwrap();
        assert_eq!(d.row_count("T"), 1);
        // `two` was discarded by rolling back past it.
        let err = d.execute("ROLLBACK TO two").unwrap_err();
        assert!(matches!(err, DbError::UnknownSavepoint(name) if name == "two"));
        assert_eq!(d.stats().savepoints, 2);
    }

    #[test]
    fn commit_discards_savepoints_and_seals_changes() {
        let mut d = db();
        d.execute_script("CREATE TABLE T (a NUMBER); SAVEPOINT sp; INSERT INTO T VALUES (1); COMMIT")
            .unwrap();
        assert!(matches!(
            d.execute("ROLLBACK TO sp").unwrap_err(),
            DbError::UnknownSavepoint(_)
        ));
        d.execute("ROLLBACK").unwrap();
        assert_eq!(d.row_count("T"), 1, "committed work survives ROLLBACK");
    }

    #[test]
    fn failing_statement_rolls_back_only_itself() {
        let mut d = db();
        d.execute_script("CREATE TABLE T (a NUMBER NOT NULL); INSERT INTO T VALUES (1)").unwrap();
        let before = d.state_dump();
        let rollbacks = d.stats().txn_rollbacks;
        let err = d.execute("INSERT INTO T VALUES (NULL)").unwrap_err();
        assert!(matches!(err, DbError::NotNullViolation { .. }));
        assert_eq!(d.state_dump(), before);
        assert_eq!(d.stats().txn_rollbacks, rollbacks + 1);
        d.storage().check_oid_directory().unwrap();
    }

    #[test]
    fn atomic_policy_rolls_back_the_whole_script() {
        let mut d = db();
        d.execute("CREATE TABLE Keep (a NUMBER)").unwrap();
        d.commit().unwrap();
        let initial = d.state_dump();
        let outcome = d
            .execute_script_with(
                "CREATE TYPE Type_P AS OBJECT (a VARCHAR(5));
                 CREATE TABLE TabP OF Type_P;
                 INSERT INTO TabP VALUES (Type_P('ok'));
                 INSERT INTO TabP VALUES (Type_P('way too long'));",
                RecoveryPolicy::Atomic,
            )
            .unwrap();
        assert!(outcome.rolled_back);
        assert_eq!(outcome.errors.len(), 1);
        assert_eq!(outcome.errors[0].statement, 3);
        assert_eq!(outcome.errors[0].kind, "INSERT");
        assert_eq!(outcome.executed, 3);
        assert_eq!(d.state_dump(), initial, "atomic failure leaves no trace");
        d.storage().check_oid_directory().unwrap();
    }

    #[test]
    fn abort_on_error_keeps_the_prefix_and_reports_the_index() {
        let mut d = db();
        let outcome = d
            .execute_script_with(
                "CREATE TABLE T (a NUMBER);
                 INSERT INTO T VALUES (1);
                 INSERT INTO Missing VALUES (2);
                 INSERT INTO T VALUES (3);",
                RecoveryPolicy::AbortOnError,
            )
            .unwrap();
        assert_eq!(outcome.errors.len(), 1);
        assert_eq!(outcome.errors[0].statement, 2);
        assert_eq!(outcome.executed, 2);
        assert!(!outcome.rolled_back);
        assert_eq!(d.row_count("T"), 1, "statement 3 never ran");
    }

    #[test]
    fn continue_on_error_collects_every_failure() {
        let mut d = db();
        let outcome = d
            .execute_script_with(
                "CREATE TABLE T (a NUMBER);
                 INSERT INTO Missing VALUES (1);
                 INSERT INTO T VALUES (2);
                 INSERT INTO Missing2 VALUES (3);
                 INSERT INTO T VALUES (4);",
                RecoveryPolicy::ContinueOnError,
            )
            .unwrap();
        assert_eq!(outcome.errors.len(), 2);
        assert_eq!(
            outcome.errors.iter().map(|e| e.statement).collect::<Vec<_>>(),
            vec![1, 3]
        );
        assert_eq!(outcome.executed, 3);
        assert_eq!(d.row_count("T"), 2, "good statements all applied");
    }

    #[test]
    fn rollback_restores_updates_and_drops() {
        let mut d = db();
        d.execute_script(
            "CREATE TYPE Type_P AS OBJECT (PName VARCHAR(80));
             CREATE TABLE TabP OF Type_P (PName PRIMARY KEY);
             INSERT INTO TabP VALUES (Type_P('Jaeger'));
             COMMIT;",
        )
        .unwrap();
        let committed = d.state_dump();
        d.execute("UPDATE TabP SET PName = 'Kudrass'").unwrap();
        assert_eq!(
            d.query_scalar("SELECT p.PName FROM TabP p").unwrap(),
            Value::str("Kudrass")
        );
        d.execute("DROP TABLE TabP").unwrap();
        d.execute("DROP TYPE Type_P").unwrap();
        d.execute("ROLLBACK").unwrap();
        assert_eq!(d.state_dump(), committed);
        assert_eq!(
            d.query_scalar("SELECT p.PName FROM TabP p").unwrap(),
            Value::str("Jaeger")
        );
        d.storage().check_oid_directory().unwrap();
    }

    #[test]
    fn undo_records_are_counted() {
        let mut d = db();
        d.execute_script("CREATE TABLE T (a NUMBER); INSERT INTO T VALUES (1)").unwrap();
        // CREATE TABLE logs a catalog + a storage record, INSERT one more.
        assert!(d.stats().undo_records >= 3, "{}", d.stats().undo_records);
    }

    #[test]
    fn explain_renders_a_plan_without_executing() {
        let mut d = db();
        d.execute_script("CREATE TABLE T (a NUMBER); INSERT INTO T VALUES (1)").unwrap();
        let before = d.state_dump();
        let plan = d.query("EXPLAIN INSERT INTO T VALUES (2)").unwrap();
        assert_eq!(plan.columns, vec!["PLAN"]);
        assert!(plan.rows[0][0].as_str().unwrap().starts_with("EXPLAIN (Oracle9)"));
        // EXPLAIN never runs its target.
        assert_eq!(d.state_dump(), before);
        assert_eq!(d.row_count("T"), 1);
        // The Oracle spelling parses too.
        d.query("EXPLAIN PLAN FOR SELECT * FROM T").unwrap();
    }

    #[test]
    fn tracing_emits_parse_and_execute_events_with_deltas() {
        use crate::trace::TraceHandle;
        let mut d = db();
        let (handle, ring) = TraceHandle::ring(64);
        d.set_trace_sink(Some(handle));
        assert!(d.trace_enabled());
        d.execute("CREATE TABLE T (a NUMBER)").unwrap();
        d.execute("INSERT INTO T VALUES (1)").unwrap();
        d.execute("INSERT INTO T VALUES (2)").unwrap();
        let ring = ring.lock().unwrap();
        let events: Vec<_> = ring.events().collect();
        // Each statement contributes one parse and one execute event.
        assert_eq!(events.len(), 6);
        assert!(events.iter().map(|e| e.seq).eq(0..6));
        assert_eq!(events[0].phase, "parse");
        assert_eq!(events[0].detail, "plan-cache miss — parsed");
        assert_eq!(events[1].phase, "execute");
        assert_eq!(events[1].detail, "CREATE TABLE");
        // The second INSERT's text rebinds through the plan cache.
        assert_eq!(events[4].detail, "plan-cache hit");
        assert_eq!(events[4].delta.plan_cache_hits, 1);
        // Execute events carry the statement's counter delta.
        assert_eq!(events[3].delta.inserts, 1);
        assert_eq!(events[3].delta.rows_inserted, 1);
    }

    #[test]
    fn pipeline_spans_bracket_counter_deltas() {
        use crate::trace::TraceHandle;
        let mut d = db();
        let (handle, ring) = TraceHandle::ring(16);
        d.set_trace_sink(Some(handle));
        d.execute("CREATE TABLE T (a NUMBER)").unwrap();
        let span = d.trace_begin("load", "doc.xml");
        d.execute("INSERT INTO T VALUES (1)").unwrap();
        d.execute("INSERT INTO T VALUES (2)").unwrap();
        d.trace_end(span);
        let ring = ring.lock().unwrap();
        let load = ring.events().find(|e| e.phase == "load").unwrap();
        assert_eq!(load.detail, "doc.xml");
        assert_eq!(load.delta.inserts, 2);
        assert_eq!(load.delta.statements, 2);
    }

    #[test]
    fn stats_report_renders_counters_and_timings() {
        use crate::trace::TraceHandle;
        let mut d = db();
        // Without tracing: counters only.
        d.execute("CREATE TABLE T (a NUMBER)").unwrap();
        let report = d.stats_report();
        assert!(
            report.lines().any(|l| l.starts_with("statements") && l.ends_with(" 1")),
            "{report}"
        );
        assert!(!report.contains("histograms"), "{report}");
        // With tracing: per-kind histograms appear.
        let (handle, _ring) = TraceHandle::ring(4);
        d.set_trace_sink(Some(handle));
        d.execute("INSERT INTO T VALUES (1)").unwrap();
        let report = d.stats_report();
        assert!(report.contains("histograms"), "{report}");
        assert!(report.contains("INSERT"), "{report}");
        assert!(report.contains("parse"), "{report}");
    }

    /// Satellite guarantee: with no sink installed, the traced code paths
    /// leave both the observable state and every counter byte-identical to
    /// the seed behaviour — tracing is free when off.
    #[test]
    fn disabled_tracing_is_invisible_to_state_and_counters() {
        let script = "CREATE TYPE Type_P AS OBJECT(name VARCHAR(20), boss REF Type_P);
             CREATE TABLE TabP OF Type_P;
             INSERT INTO TabP VALUES (Type_P('Kudrass', NULL));
             INSERT INTO TabP VALUES (Type_P('Conrad', NULL));
             SELECT p.name FROM TabP p WHERE p.name = 'Conrad';";
        let mut plain = db();
        plain.execute_script(script).unwrap();
        let mut touched = db();
        // Install a sink, then remove it: the wrapper paths were compiled
        // in either way, and must not leave a residue.
        let (handle, _ring) = crate::trace::TraceHandle::ring(4);
        touched.set_trace_sink(Some(handle));
        touched.set_trace_sink(None);
        assert!(!touched.trace_enabled());
        touched.execute_script(script).unwrap();
        assert_eq!(plain.state_dump(), touched.state_dump());
        assert_eq!(plain.stats(), touched.stats());
    }

    /// The PR 9 split's whole point: a `Database` (and its read sessions)
    /// can cross threads. Compile-time assertion — if a non-`Send` type
    /// (`Rc`, `RefCell`, raw pointer) sneaks back into the session state,
    /// this line stops building.
    #[test]
    fn database_and_read_session_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Database>();
        assert_send::<crate::mvcc::ReadSession>();
        assert_send::<PreparedStmt>();
    }

    /// Clone semantics under the shared-state split: a clone deep-copies
    /// the engine into a fresh `SharedState`, so two handles never race
    /// one engine — mutations on either side are invisible to the other.
    #[test]
    fn cloned_database_shares_nothing_with_its_original() {
        let mut original = db();
        original
            .execute_script(
                "CREATE TYPE Type_P AS OBJECT(name VARCHAR(20));
                 CREATE TABLE TabP OF Type_P;
                 INSERT INTO TabP VALUES (Type_P('Kudrass'));",
            )
            .unwrap();
        let mut cloned = original.clone();
        assert_eq!(original.state_dump(), cloned.state_dump());

        // Diverge both sides; each must see only its own writes.
        original.execute("INSERT INTO TabP VALUES (Type_P('Conrad'))").unwrap();
        cloned.execute("DELETE FROM TabP WHERE name = 'Kudrass'").unwrap();
        assert_eq!(original.row_count("TabP"), 2);
        assert_eq!(cloned.row_count("TabP"), 0);

        // And the engines really are distinct allocations: mutating the
        // clone from another thread while the original reads is fine.
        let handle = std::thread::spawn(move || {
            cloned.execute("INSERT INTO TabP VALUES (Type_P('Thread'))").unwrap();
            cloned.row_count("TabP")
        });
        assert_eq!(original.row_count("TabP"), 2);
        assert_eq!(handle.join().unwrap(), 1);
    }

    fn temp_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "xmlord-session-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Regression (PR 9): `set_snapshot_every(0)` used to leave the WAL
    /// unbounded with no way to compact it or even see its size. Now
    /// `stats_report` exposes the log's entry count and byte length, a
    /// reopen after N commits recovers correctly (replaying all N), and
    /// [`Database::close`] compacts the log on clean shutdown.
    #[test]
    fn unbounded_wal_is_observable_and_close_compacts_it() {
        let dir = temp_dir("walbound");
        let mut d = Database::open(&dir, DbMode::Oracle9).unwrap();
        d.set_snapshot_every(0);
        d.execute_script(
            "CREATE TYPE Type_P AS OBJECT(name VARCHAR(20));
             CREATE TABLE TabP OF Type_P;",
        )
        .unwrap();
        d.commit().unwrap();
        for i in 0..5 {
            d.execute(&format!("INSERT INTO TabP VALUES (Type_P('p{i}'))")).unwrap();
            d.commit().unwrap();
        }
        let report = d.stats_report();
        assert!(report.contains("wal_entries          6"), "{report}");
        assert!(report.contains("wal_bytes"), "{report}");
        assert!(report.contains("snapshot_every       0"), "{report}");
        let dump = d.state_dump();
        drop(d); // crash: no snapshot was ever written

        // Recovery replays the whole history from the unbounded log.
        let reopened = Database::open(&dir, DbMode::Oracle9).unwrap();
        let report = *reopened.recovery_report().unwrap();
        assert!(!report.snapshot_loaded);
        assert_eq!(report.entries_replayed, 6);
        assert_eq!(reopened.state_dump(), dump);
        assert_eq!(reopened.row_count("TabP"), 5);

        // Clean shutdown compacts: the next open loads the snapshot and
        // replays nothing.
        reopened.close().unwrap();
        let d = Database::open(&dir, DbMode::Oracle9).unwrap();
        let report = *d.recovery_report().unwrap();
        assert!(report.snapshot_loaded);
        assert_eq!(report.entries_replayed, 0);
        assert_eq!(d.state_dump(), dump);
        let rendered = d.stats_report();
        assert!(rendered.contains("wal_entries          0"), "{rendered}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

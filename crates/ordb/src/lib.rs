//! # xmlord-ordb — an embedded object-relational database engine
//!
//! Substrate **S3** of the reproduction of *Kudrass & Conrad (EDBT 2002)*:
//! the role Oracle 8i/9i plays in the paper. The mapping layer generates SQL
//! *text* ("This script can be executed afterwards without any modification
//! to create and populate the database tables", §4) — so this crate is a real
//! SQL engine, not an API shim: lexer, parser, catalog, storage and executor
//! for the Oracle-flavoured object-relational subset the paper exercises:
//!
//! * `CREATE TYPE … AS OBJECT` (§2.1), `AS VARRAY(n) OF …` and
//!   `AS TABLE OF …` (§2.2), incomplete forward type declarations (§6.2),
//! * object tables (`CREATE TABLE t OF type`) with column constraints,
//!   relational tables, `NESTED TABLE … STORE AS` (§2.2),
//! * `REF type` columns with `SCOPE FOR` (§2.3), `DEREF`, implicit
//!   dot-navigation through object and REF attributes,
//! * `INSERT` with nested type constructors (§4.1/§4.2), scalar subqueries
//!   (`SELECT REF(p) …`) for the Oracle 8 workaround,
//! * `SELECT` with dot-notation paths, `TABLE(…)` collection un-nesting,
//!   `CAST(MULTISET(…) AS type)` (§6.3), object views,
//! * `NOT NULL`, `PRIMARY KEY` and table-level `CHECK` constraints with the
//!   §4.3 semantics (a CHECK over an attribute of a NULL object evaluates to
//!   UNKNOWN, and UNKNOWN *passes* — so the constraint silently admits the
//!   NULL row; [`analyze`] flags this quirk as the `check-null-object` lint),
//! * two compatibility modes (§2.2): [`DbMode::Oracle8`] rejects collections
//!   whose element type is another collection or a LOB; [`DbMode::Oracle9`]
//!   accepts arbitrary nesting.
//!
//! Everything is deterministic and in-memory. [`stats::ExecStats`] counts
//! statements, rows and join work so the benchmark harness can report the
//! paper's qualitative comparisons as numbers.
//!
//! ## Engine internals & performance counters
//!
//! Three fast paths keep the execution substrate from dominating the
//! storage-strategy comparisons (experiment E14 reports their counters):
//!
//! * **OID directory** — [`storage::Storage`] maintains a hash index
//!   `Oid → (table, row slot)` incrementally across inserts, deletes (the
//!   index is re-slotted when `delete_rows` compacts a table) and
//!   `DROP TABLE`, so a REF dereference is an O(1) slot access instead of a
//!   scan over every object table. Dangling REFs still surface as
//!   [`DbError::DanglingRef`]. Counter: `oid_index_hits`; the invariant is
//!   checkable via `Storage::check_oid_directory`.
//! * **Hash equi-joins** — when a scheduled WHERE conjunct equates columns
//!   of already-bound FROM items with the item being joined,
//!   [`exec::select`] builds a hash table over the new item's rows keyed by
//!   [`Value::join_key`] and probes it once per outer combination;
//!   non-equi conjuncts and `TABLE(…)` lateral un-nesting keep the nested
//!   loop. Join keys are a conservative prefilter (SQL equality coerces
//!   numeric strings, so candidates are re-verified with the full
//!   predicate), which makes the hash and nested-loop paths return
//!   identical rows in identical order — [`Database::set_hash_joins`]
//!   switches strategies for the differential tests. Counters:
//!   `hash_join_builds`, `hash_join_probes`, and `join_pairs` counts only
//!   the pairings actually formed.
//! * **Plan cache** — [`Database`] parses through a small LRU statement
//!   cache. Non-INSERT texts hit on the verbatim string; INSERT texts hit
//!   on a literal-normalized *shape* whose cached template is re-bound with
//!   each text's own literals ([`sql::param`]), so a generated load
//!   script's thousands of near-identical INSERTs pay the parser once.
//!   Parsing is context-free (constructors resolve at execution time), so
//!   entries survive DDL. Counters: `plan_cache_hits`, `plan_cache_misses`.
//!
//! None of this changes Oracle 8 vs Oracle 9 semantics: [`DbMode`] gates
//! DDL validation and value construction, while the fast paths only change
//! how rows are located, paired, and parsed texts reused — the mode test
//! suites run identically with the fast paths on or off.
//!
//! ## Transactions & recovery
//!
//! Every mutation in [`storage`] and [`catalog`] logs its inverse, which
//! gives the engine Oracle-style transaction control: each statement runs
//! under an implicit savepoint (a failing statement rolls back exactly its
//! own effects — statement-level atomicity), and `COMMIT`, `ROLLBACK`,
//! `SAVEPOINT name` and `ROLLBACK TO name` are real statements. Script
//! execution takes an explicit [`RecoveryPolicy`]: `Atomic` (the whole
//! script rolls back on any error), `AbortOnError` (stop at the first
//! error, reported with its statement index), or `ContinueOnError`
//! (SQL*Plus-style error collection). Rollback restores storage
//! byte-identically — heaps, the OID directory *and* the OID allocator —
//! so `Storage::check_oid_directory` holds across arbitrary
//! rollback/replay sequences. Counters: `txn_rollbacks`, `undo_records`,
//! `savepoints`.
//!
//! ## Bulk loading
//!
//! A generated load script is thousands of near-identical single-row
//! INSERTs; executing them as SQL text pays the parser, catalog resolution
//! and a full-table constraint scan per row. Three escalating fast paths
//! remove that cost (PR 5; experiment E18 prices them):
//!
//! * **Prepared statements** — [`Database::prepare`] parses and
//!   shape-normalizes once, returning a [`PreparedStmt`];
//!   [`Database::execute_prepared`] re-binds it with a `&[Value]` parameter
//!   slice, skipping the lexer entirely. Counter: `prepared_execs`.
//! * **Batched inserts** — [`Database::execute_batch`] takes an
//!   [`InsertBatch`] (one table, many rows): the catalog is resolved once,
//!   OIDs are reserved in one block, repeated scalar subqueries inside the
//!   batch are memoized (`batch_subquery_hits`), rows are appended in a
//!   single storage call under one undo bracket (all-or-nothing, same
//!   semantics as `RecoveryPolicy::Atomic`), and PRIMARY KEY / UNIQUE
//!   checks probe an incremental hash index instead of scanning the heap
//!   per row. The index is promoted into a per-table cache validated by a
//!   storage version counter, so consecutive batches skip the rebuild;
//!   any out-of-band mutation (single-row DML, UPDATE, rollback) bumps
//!   the version and invalidates it. Counter: `batched_rows`.
//! * **Deterministic parallel front end** — the `xml2ordb` pipeline
//!   shreds documents on a worker pool and feeds the resulting batches to
//!   a single writer in submission order, so any worker count produces a
//!   byte-identical database.
//!
//! All three deliveries are differentially tested against plain SQL text
//! (`tests/bulk_prop.rs`): same rows, same state dump, same errors.
//!
//! ## Static analysis (`sqlcheck`)
//!
//! [`analyze`] checks a generated script *before* execution: it binds every
//! statement against a shadow catalog (evolved by the script's own DDL
//! through the executor's code path), resolves names and dot paths, type
//! checks constructors and INSERTs, gates nested-collection DDL by
//! [`DbMode`], and lints for unscoped REFs, REF types with no target table,
//! the §4.3 CHECK quirk and dead/shadowed aliases. Diagnostics carry
//! character spans and render rustc-style ([`analyze::Diagnostic::render`]).
//! [`Severity::Error`](analyze::Severity) findings are guaranteed to match
//! an executor rejection (see the module docs for the differential
//! contract); [`Database::set_analyze`] runs the analyzer inline on every
//! executed script and counts findings in [`stats::ExecStats`].
//!
//! ```
//! use xmlord_ordb::{Database, DbMode, Value};
//!
//! let mut db = Database::new(DbMode::Oracle9);
//! db.execute_script(
//!     "CREATE TYPE Type_Professor AS OBJECT (PName VARCHAR(80), Subject VARCHAR(120));
//!      CREATE TABLE TabProfessor OF Type_Professor (PName PRIMARY KEY);
//!      INSERT INTO TabProfessor VALUES (Type_Professor('Jaeger', 'CAD'));",
//! ).unwrap();
//! let rows = db.query("SELECT p.PName FROM TabProfessor p WHERE p.Subject = 'CAD'").unwrap();
//! assert_eq!(rows.rows[0][0], Value::Str("Jaeger".into()));
//! ```

pub mod analyze;
pub mod catalog;
pub mod error;
pub mod exec;
pub mod ident;
pub mod mode;
pub mod mvcc;
pub mod session;
pub mod snapshot;
pub mod sql;
pub mod stats;
pub mod storage;
pub mod trace;
pub mod types;
pub mod value;
pub mod wal;

pub use analyze::{Analyzer, Diagnostic, Severity};
pub use catalog::{Catalog, TableDef, TypeDef, ViewDef};
pub use error::DbError;
pub use exec::dml::InsertBatch;
pub use ident::Ident;
pub use mode::DbMode;
pub use mvcc::ReadSession;
pub use session::{
    CatalogRef, Database, PreparedStmt, QueryResult, RecoveryPolicy, RecoveryReport, ResultMode,
    ScriptError, ScriptOutcome, SpanToken, StorageRef, TxnMark,
};
pub use stats::ExecStats;
pub use trace::{CallbackSink, RingBufferSink, TraceEvent, TraceHandle, TraceSink};
pub use types::SqlType;
pub use value::{Oid, Value};

//! SQL type system: scalars, user-defined object types, collection types
//! and REFs (paper §2.1–§2.3).

use std::fmt;

use crate::ident::Ident;

/// A column/attribute type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlType {
    /// `VARCHAR(n)` / `VARCHAR2(n)` — the workhorse of the mapping (§4.1
    /// generates `VARCHAR(4000)` for every #PCDATA element).
    Varchar(u32),
    /// `CHAR(n)` fixed length.
    Char(u32),
    /// `NUMBER` — arbitrary numeric.
    Number,
    /// `INTEGER`.
    Integer,
    /// `DATE`.
    Date,
    /// `CLOB` — the large-object type §7 recommends for large text elements.
    Clob,
    /// A user-defined object type (by name).
    Object(Ident),
    /// A named VARRAY collection type.
    Varray(Ident),
    /// A named nested-table collection type.
    NestedTable(Ident),
    /// `REF t` — reference to a row object of object type `t` (§2.3).
    Ref(Ident),
}

impl SqlType {
    /// Is this a large-object type (relevant to the Oracle 8 restriction)?
    pub fn is_lob(&self) -> bool {
        matches!(self, SqlType::Clob)
    }

    /// Is this a (named) collection type reference?
    pub fn is_collection_name(&self) -> bool {
        matches!(self, SqlType::Varray(_) | SqlType::NestedTable(_))
    }

    /// Is this a scalar (non-object, non-collection, non-ref)?
    pub fn is_scalar(&self) -> bool {
        matches!(
            self,
            SqlType::Varchar(_)
                | SqlType::Char(_)
                | SqlType::Number
                | SqlType::Integer
                | SqlType::Date
                | SqlType::Clob
        )
    }

    /// The named user-defined type this type refers to, if any.
    pub fn named_type(&self) -> Option<&Ident> {
        match self {
            SqlType::Object(n) | SqlType::Varray(n) | SqlType::NestedTable(n) | SqlType::Ref(n) => {
                Some(n)
            }
            _ => None,
        }
    }
}

impl fmt::Display for SqlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlType::Varchar(n) => write!(f, "VARCHAR({n})"),
            SqlType::Char(n) => write!(f, "CHAR({n})"),
            SqlType::Number => write!(f, "NUMBER"),
            SqlType::Integer => write!(f, "INTEGER"),
            SqlType::Date => write!(f, "DATE"),
            SqlType::Clob => write!(f, "CLOB"),
            SqlType::Object(n) | SqlType::Varray(n) | SqlType::NestedTable(n) => {
                write!(f, "{n}")
            }
            SqlType::Ref(n) => write!(f, "REF {n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(s: &str) -> Ident {
        Ident::new(s).unwrap()
    }

    #[test]
    fn classification() {
        assert!(SqlType::Varchar(4000).is_scalar());
        assert!(SqlType::Clob.is_scalar() && SqlType::Clob.is_lob());
        assert!(SqlType::Varray(id("TypeVA_X")).is_collection_name());
        assert!(!SqlType::Object(id("Type_X")).is_collection_name());
        assert!(!SqlType::Ref(id("Type_X")).is_scalar());
    }

    #[test]
    fn display_forms() {
        assert_eq!(SqlType::Varchar(4000).to_string(), "VARCHAR(4000)");
        assert_eq!(SqlType::Ref(id("Type_Professor")).to_string(), "REF Type_Professor");
        assert_eq!(SqlType::Object(id("Type_Course")).to_string(), "Type_Course");
    }

    #[test]
    fn named_type_extraction() {
        assert_eq!(SqlType::Varray(id("T")).named_type().unwrap().as_str(), "T");
        assert_eq!(SqlType::Number.named_type(), None);
    }
}

//! Execution statistics.
//!
//! The paper argues qualitatively ("a large number of relational insert
//! operations", "without executing join operations"); these counters turn
//! those claims into measurements for the E6–E8 experiments. The fast-path
//! counters (`plan_cache_hits`, `hash_join_builds`, `oid_index_hits`) report
//! how often the engine's PR-1 optimizations fire, so the experiments can
//! separate mapping-strategy cost from execution-substrate cost.

/// Cumulative counters for one [`crate::Database`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// SQL statements executed (DDL + DML + queries).
    pub statements: u64,
    /// INSERT statements executed.
    pub inserts: u64,
    /// Rows materialized into tables (top-level rows, not nested objects).
    pub rows_inserted: u64,
    /// Rows scanned while evaluating FROM clauses.
    pub rows_scanned: u64,
    /// Join pairings formed (each row combination beyond a single-table
    /// FROM counts once) — the paper's "join operations" metric. Hash
    /// equi-joins count only the pairings they actually emit, which is the
    /// point of the measurement.
    pub join_pairs: u64,
    /// FROM clauses with more than one item (join queries).
    pub join_queries: u64,
    /// Tables created.
    pub tables_created: u64,
    /// Types created.
    pub types_created: u64,
    /// REF dereferences performed during path navigation.
    pub derefs: u64,
    /// OID lookups answered by the OID directory's index (O(1) slot access
    /// instead of a table scan).
    pub oid_index_hits: u64,
    /// Hash tables built for equi-join FROM items.
    pub hash_join_builds: u64,
    /// Probe operations into equi-join hash tables (one per outer combo).
    pub hash_join_probes: u64,
    /// Statements answered from the parse/plan cache without re-parsing.
    pub plan_cache_hits: u64,
    /// Statements that had to be parsed and were then cached.
    pub plan_cache_misses: u64,
    /// Error-severity findings from the inline static analyzer
    /// ([`crate::Database::set_analyze`]).
    pub analyzer_errors: u64,
    /// Warning-severity findings from the inline static analyzer.
    pub analyzer_warnings: u64,
    /// Rollbacks performed: explicit `ROLLBACK [TO name]`, the implicit
    /// per-statement rollback of a failing statement, and `Atomic`-policy
    /// script rollbacks.
    pub txn_rollbacks: u64,
    /// Undo-log records written by statements (inverse operations logged
    /// by storage and catalog mutations).
    pub undo_records: u64,
    /// Explicit `SAVEPOINT name` statements executed.
    pub savepoints: u64,
    /// Bound executions through the prepared-statement fast path
    /// ([`crate::Database::execute_prepared`]) — no lexer/parser/analyzer.
    pub prepared_execs: u64,
    /// Rows inserted through the batched path
    /// ([`crate::Database::execute_batch`]).
    pub batched_rows: u64,
    /// Scalar-subquery evaluations answered from the within-batch memo
    /// (storage is frozen during batch evaluation, so identical subqueries
    /// are executed once and replayed).
    pub batch_subquery_hits: u64,
    /// FROM items answered by a secondary-index probe instead of a full
    /// scan (one count per index-driven scan, not per probe).
    pub index_scans: u64,
    /// Secondary-index maintenance row operations: incremental bucket
    /// updates plus rows visited during stale-index rebuilds.
    pub index_maintenance_ops: u64,
    /// SELECT plans chosen by the cost-based planner using ANALYZE
    /// statistics (as opposed to the static heuristic order).
    pub planner_plans_costed: u64,
    /// `ANALYZE TABLE … COMPUTE STATISTICS` statements executed.
    pub analyze_runs: u64,
    /// Full table passes performed by document reconstruction (root-row
    /// scans, per-parent child scans on the naive walker, and the bulk
    /// path's single hash-build passes).
    pub retrieve_table_scans: u64,
    /// Secondary-index probes performed by document reconstruction
    /// instead of table scans (root-row lookup, inverted-children
    /// buckets).
    pub retrieve_index_probes: u64,
    /// Documents reconstructed through the set-oriented bulk path
    /// ([`crate::Database::set_bulk_retrieval`]).
    pub bulk_retrieves: u64,
}

impl ExecStats {
    /// Difference since `earlier` (for per-operation measurements).
    pub fn since(&self, earlier: &ExecStats) -> ExecStats {
        ExecStats {
            statements: self.statements - earlier.statements,
            inserts: self.inserts - earlier.inserts,
            rows_inserted: self.rows_inserted - earlier.rows_inserted,
            rows_scanned: self.rows_scanned - earlier.rows_scanned,
            join_pairs: self.join_pairs - earlier.join_pairs,
            join_queries: self.join_queries - earlier.join_queries,
            tables_created: self.tables_created - earlier.tables_created,
            types_created: self.types_created - earlier.types_created,
            derefs: self.derefs - earlier.derefs,
            oid_index_hits: self.oid_index_hits - earlier.oid_index_hits,
            hash_join_builds: self.hash_join_builds - earlier.hash_join_builds,
            hash_join_probes: self.hash_join_probes - earlier.hash_join_probes,
            plan_cache_hits: self.plan_cache_hits - earlier.plan_cache_hits,
            plan_cache_misses: self.plan_cache_misses - earlier.plan_cache_misses,
            analyzer_errors: self.analyzer_errors - earlier.analyzer_errors,
            analyzer_warnings: self.analyzer_warnings - earlier.analyzer_warnings,
            txn_rollbacks: self.txn_rollbacks - earlier.txn_rollbacks,
            undo_records: self.undo_records - earlier.undo_records,
            savepoints: self.savepoints - earlier.savepoints,
            prepared_execs: self.prepared_execs - earlier.prepared_execs,
            batched_rows: self.batched_rows - earlier.batched_rows,
            batch_subquery_hits: self.batch_subquery_hits - earlier.batch_subquery_hits,
            index_scans: self.index_scans - earlier.index_scans,
            index_maintenance_ops: self.index_maintenance_ops - earlier.index_maintenance_ops,
            planner_plans_costed: self.planner_plans_costed - earlier.planner_plans_costed,
            analyze_runs: self.analyze_runs - earlier.analyze_runs,
            retrieve_table_scans: self.retrieve_table_scans - earlier.retrieve_table_scans,
            retrieve_index_probes: self.retrieve_index_probes - earlier.retrieve_index_probes,
            bulk_retrieves: self.bulk_retrieves - earlier.bulk_retrieves,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_fieldwise() {
        let a = ExecStats {
            statements: 10,
            inserts: 4,
            plan_cache_hits: 6,
            hash_join_builds: 3,
            oid_index_hits: 9,
            ..Default::default()
        };
        let b = ExecStats {
            statements: 3,
            inserts: 1,
            plan_cache_hits: 2,
            hash_join_builds: 1,
            oid_index_hits: 4,
            ..Default::default()
        };
        let d = a.since(&b);
        assert_eq!(d.statements, 7);
        assert_eq!(d.inserts, 3);
        assert_eq!(d.rows_inserted, 0);
        assert_eq!(d.plan_cache_hits, 4);
        assert_eq!(d.hash_join_builds, 2);
        assert_eq!(d.oid_index_hits, 5);
    }
}

//! Execution statistics.
//!
//! The paper argues qualitatively ("a large number of relational insert
//! operations", "without executing join operations"); these counters turn
//! those claims into measurements for the E6–E8 experiments.

/// Cumulative counters for one [`crate::Database`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// SQL statements executed (DDL + DML + queries).
    pub statements: u64,
    /// INSERT statements executed.
    pub inserts: u64,
    /// Rows materialized into tables (top-level rows, not nested objects).
    pub rows_inserted: u64,
    /// Rows scanned while evaluating FROM clauses.
    pub rows_scanned: u64,
    /// Join pairings formed (each row combination beyond a single-table
    /// FROM counts once) — the paper's "join operations" metric.
    pub join_pairs: u64,
    /// FROM clauses with more than one item (join queries).
    pub join_queries: u64,
    /// Tables created.
    pub tables_created: u64,
    /// Types created.
    pub types_created: u64,
    /// REF dereferences performed during path navigation.
    pub derefs: u64,
}

impl ExecStats {
    /// Difference since `earlier` (for per-operation measurements).
    pub fn since(&self, earlier: &ExecStats) -> ExecStats {
        ExecStats {
            statements: self.statements - earlier.statements,
            inserts: self.inserts - earlier.inserts,
            rows_inserted: self.rows_inserted - earlier.rows_inserted,
            rows_scanned: self.rows_scanned - earlier.rows_scanned,
            join_pairs: self.join_pairs - earlier.join_pairs,
            join_queries: self.join_queries - earlier.join_queries,
            tables_created: self.tables_created - earlier.tables_created,
            types_created: self.types_created - earlier.types_created,
            derefs: self.derefs - earlier.derefs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_fieldwise() {
        let a = ExecStats { statements: 10, inserts: 4, ..Default::default() };
        let b = ExecStats { statements: 3, inserts: 1, ..Default::default() };
        let d = a.since(&b);
        assert_eq!(d.statements, 7);
        assert_eq!(d.inserts, 3);
        assert_eq!(d.rows_inserted, 0);
    }
}

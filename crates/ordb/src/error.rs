//! Engine error type, loosely modelled on Oracle's error taxonomy so the
//! paper's failure scenarios (identifier too long, collection nesting in
//! Oracle 8, constraint violations, …) surface as distinct variants.

use crate::sql::span::Span;
use std::fmt;

/// Any failure raised by the engine: syntax, catalog, typing, constraint or
/// execution errors.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// SQL lexical or syntax error.
    Syntax { message: String, position: usize },
    /// Parse error with a full source span (start/end character offsets) —
    /// the span-carrying variant behind [`crate::analyze`] diagnostics and
    /// the parser sites that used to panic on malformed input.
    Parse { message: String, span: Span },
    /// Identifier longer than the 30-character Oracle limit (ORA-00972).
    IdentifierTooLong(String),
    /// Name not found in the catalog.
    UnknownType(String),
    UnknownTable(String),
    UnknownColumn(String),
    /// `DROP INDEX` names an index that does not exist.
    UnknownIndex(String),
    /// Name already exists.
    DuplicateName(String),
    /// Oracle 8 mode: collection element type is a collection or LOB (§2.2).
    NestedCollectionNotSupported { collection: String, element: String },
    /// A type that other objects depend on cannot be dropped without FORCE.
    DependentTypeExists { dropped: String, dependent: String },
    /// Constructor arity or typing mismatch.
    ConstructorMismatch { type_name: String, message: String },
    /// Value does not fit the declared column/attribute type.
    TypeMismatch { expected: String, found: String },
    /// String longer than its VARCHAR(n) bound (ORA-12899).
    ValueTooLarge { column: String, max: u32, actual: usize },
    /// VARRAY has more elements than its declared maximum.
    VarrayLimitExceeded { type_name: String, max: u32, actual: usize },
    /// NOT NULL constraint violated (ORA-01400).
    NotNullViolation { column: String },
    /// CHECK constraint evaluated to FALSE (ORA-02290).
    CheckViolation { constraint: String },
    /// PRIMARY KEY / UNIQUE violated (ORA-00001).
    UniqueViolation { constraint: String },
    /// REF points to no live row object.
    DanglingRef,
    /// `ROLLBACK TO name` names a savepoint that was never established, or
    /// was discarded by a COMMIT/ROLLBACK (ORA-01086).
    UnknownSavepoint(String),
    /// Arbitrary execution failure with context.
    Execution(String),
    /// A [`crate::mvcc::ReadSession`] was handed a statement that is not
    /// SELECT / EXPLAIN; carries the rejected statement's kind tag.
    /// Snapshot-read sessions never mutate — writes go through the single
    /// writing [`crate::Database`] (ORA-01456 flavor).
    ReadOnly(&'static str),
    /// On-disk durable state (WAL or snapshot) failed validation: bad
    /// magic, checksummed-but-undecodable payload, non-monotone sequence
    /// numbers, or a snapshot that contradicts engine invariants. Torn
    /// tails are *not* this error — they are silently truncated by
    /// recovery; this variant marks bytes that fsync discipline says can
    /// never arise from a crash.
    CorruptDurableState(String),
    /// Operating-system I/O failure while reading or writing durable state.
    Io(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Syntax { message, position } => {
                write!(f, "SQL syntax error at offset {position}: {message}")
            }
            DbError::Parse { message, span } => {
                write!(f, "SQL parse error at offset {}..{}: {message}", span.start, span.end)
            }
            DbError::IdentifierTooLong(name) => {
                write!(f, "identifier '{name}' exceeds 30 characters (ORA-00972)")
            }
            DbError::UnknownType(name) => write!(f, "type '{name}' does not exist"),
            DbError::UnknownTable(name) => write!(f, "table or view '{name}' does not exist"),
            DbError::UnknownColumn(name) => write!(f, "column or path '{name}' does not exist"),
            DbError::UnknownIndex(name) => write!(f, "index '{name}' does not exist"),
            DbError::DuplicateName(name) => {
                write!(f, "name '{name}' is already used by an existing object")
            }
            DbError::NestedCollectionNotSupported { collection, element } => write!(
                f,
                "Oracle 8 mode: collection type '{collection}' cannot have element type \
                 '{element}' (nested collections/LOBs require Oracle 9, §2.2)"
            ),
            DbError::DependentTypeExists { dropped, dependent } => write!(
                f,
                "cannot drop type '{dropped}': '{dependent}' depends on it (use DROP TYPE … FORCE)"
            ),
            DbError::ConstructorMismatch { type_name, message } => {
                write!(f, "constructor {type_name}(…): {message}")
            }
            DbError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            DbError::ValueTooLarge { column, max, actual } => write!(
                f,
                "value too large for column '{column}' (actual: {actual}, maximum: {max}) (ORA-12899)"
            ),
            DbError::VarrayLimitExceeded { type_name, max, actual } => write!(
                f,
                "VARRAY '{type_name}' limit exceeded: {actual} elements, maximum {max}"
            ),
            DbError::NotNullViolation { column } => {
                write!(f, "cannot insert NULL into '{column}' (ORA-01400)")
            }
            DbError::CheckViolation { constraint } => {
                write!(f, "check constraint ({constraint}) violated (ORA-02290)")
            }
            DbError::UniqueViolation { constraint } => {
                write!(f, "unique constraint ({constraint}) violated (ORA-00001)")
            }
            DbError::DanglingRef => write!(f, "REF does not point to a live row object"),
            DbError::UnknownSavepoint(name) => {
                write!(f, "savepoint '{name}' never established (ORA-01086)")
            }
            DbError::Execution(msg) => write!(f, "execution error: {msg}"),
            DbError::ReadOnly(kind) => {
                write!(f, "read-only session: {kind} is not allowed (only SELECT/EXPLAIN)")
            }
            DbError::CorruptDurableState(msg) => {
                write!(f, "corrupt durable state: {msg}")
            }
            DbError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_oracle_error_codes() {
        assert!(DbError::NotNullViolation { column: "X".into() }.to_string().contains("ORA-01400"));
        assert!(DbError::IdentifierTooLong("Y".into()).to_string().contains("ORA-00972"));
        assert!(DbError::UniqueViolation { constraint: "PK".into() }
            .to_string()
            .contains("ORA-00001"));
    }

    #[test]
    fn oracle8_nesting_message_names_both_types() {
        let err = DbError::NestedCollectionNotSupported {
            collection: "TypeVA_Course".into(),
            element: "TypeVA_Professor".into(),
        };
        let msg = err.to_string();
        assert!(msg.contains("TypeVA_Course") && msg.contains("TypeVA_Professor"));
    }
}

//! Structured execution tracing.
//!
//! A [`Database`](crate::Database) normally runs with tracing disabled and
//! pays a single `Option` check per statement — no clock reads, no
//! allocation, no counter perturbation (the session tests pin the exact
//! `ExecStats` values either way). Installing a [`TraceSink`] turns every
//! pipeline phase into a [`TraceEvent`]: the phase name, a human-readable
//! detail, wall-clock nanoseconds, and the [`ExecStats`] *delta* the phase
//! produced. Sinks are deliberately dumb — a bounded ring buffer for
//! post-hoc inspection and a callback adapter for streaming — so the
//! emission path stays allocation-light and the policy lives with the
//! caller.
//!
//! Alongside events, the tracer folds per-statement wall time into
//! power-of-two histograms keyed by statement kind;
//! [`Database::stats_report`](crate::Database::stats_report) renders them.

use crate::stats::ExecStats;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex, PoisonError};

/// One traced phase of statement or pipeline processing.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Monotonic per-tracer sequence number (0-based).
    pub seq: u64,
    /// Phase tag: `"parse"`, `"analyze"`, `"execute"`, or a pipeline-level
    /// span such as `"shred"` / `"generate"` / `"load"` / `"retrieve"`.
    pub phase: &'static str,
    /// Human-readable context — the statement kind, the plan-cache outcome,
    /// the document name.
    pub detail: String,
    /// Wall-clock duration of the phase.
    pub nanos: u64,
    /// Counter movement attributable to this phase
    /// ([`ExecStats::since`] of the snapshots around it).
    pub delta: ExecStats,
}

/// Receives [`TraceEvent`]s as they are produced. Implementations must not
/// call back into the database (the tracer holds no re-entrancy guard; it
/// is invoked while the session is mid-statement).
pub trait TraceSink {
    fn record(&mut self, event: &TraceEvent);
}

/// Bounded FIFO of the most recent events. When full, the oldest event is
/// discarded and [`RingBufferSink::dropped`] counts it — tracing a bulk
/// load cannot grow memory without bound.
#[derive(Debug, Default)]
pub struct RingBufferSink {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingBufferSink {
    pub fn new(capacity: usize) -> RingBufferSink {
        RingBufferSink { capacity, events: VecDeque::new(), dropped: 0 }
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Remove and return all retained events, oldest first.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        self.events.drain(..).collect()
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, event: &TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event.clone());
    }
}

/// Streams every event into a closure — the adapter for callers that want
/// their own aggregation without defining a sink type.
pub struct CallbackSink<F: FnMut(&TraceEvent)> {
    callback: F,
}

impl<F: FnMut(&TraceEvent)> CallbackSink<F> {
    pub fn new(callback: F) -> CallbackSink<F> {
        CallbackSink { callback }
    }
}

impl<F: FnMut(&TraceEvent)> TraceSink for CallbackSink<F> {
    fn record(&mut self, event: &TraceEvent) {
        (self.callback)(event);
    }
}

/// Shared, clonable handle to a sink. The database keeps one; the caller
/// keeps another to inspect what was collected. Cloning a traced
/// [`Database`](crate::Database) shares the sink rather than copying it —
/// tracing is an observation channel, not database state. The sink lives
/// behind `Arc<Mutex<…>>` so a traced `Database` stays `Send` and can
/// serve a connection thread.
#[derive(Clone)]
pub struct TraceHandle {
    sink: Arc<Mutex<dyn TraceSink + Send>>,
}

impl TraceHandle {
    pub fn new(sink: impl TraceSink + Send + 'static) -> TraceHandle {
        TraceHandle { sink: Arc::new(Mutex::new(sink)) }
    }

    /// A ring-buffer sink plus a *typed* reference to it, so the caller can
    /// read the collected events back after the run without downcasting.
    pub fn ring(capacity: usize) -> (TraceHandle, Arc<Mutex<RingBufferSink>>) {
        let ring = Arc::new(Mutex::new(RingBufferSink::new(capacity)));
        (TraceHandle { sink: ring.clone() }, ring)
    }

    pub fn record(&self, event: &TraceEvent) {
        self.sink.lock().unwrap_or_else(PoisonError::into_inner).record(event);
    }
}

impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceHandle").finish_non_exhaustive()
    }
}

/// Wall-time distribution as power-of-two buckets of nanoseconds.
/// `counts[b]` holds samples with `floor(log2(nanos)) == b - 1`
/// (bucket 0 is the `0ns` degenerate). Fixed-size, allocation-free
/// recording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; 65],
    total_nanos: u64,
    max_nanos: u64,
    samples: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram { counts: [0; 65], total_nanos: 0, max_nanos: 0, samples: 0 }
    }
}

impl Histogram {
    pub fn record(&mut self, nanos: u64) {
        let bucket = (64 - nanos.leading_zeros()) as usize;
        self.counts[bucket] += 1;
        self.total_nanos += nanos;
        self.max_nanos = self.max_nanos.max(nanos);
        self.samples += 1;
    }

    pub fn samples(&self) -> u64 {
        self.samples
    }

    pub fn total_nanos(&self) -> u64 {
        self.total_nanos
    }

    pub fn max_nanos(&self) -> u64 {
        self.max_nanos
    }

    pub fn mean_nanos(&self) -> u64 {
        self.total_nanos.checked_div(self.samples).unwrap_or(0)
    }

    /// `(lower-bound-nanos, count)` for each populated bucket, ascending.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(b, c)| (if b == 0 { 0 } else { 1u64 << (b - 1) }, *c))
            .collect()
    }
}

/// The per-database tracer: sink handle, sequence counter, and the
/// per-statement-kind timing histograms.
#[derive(Debug, Clone)]
pub struct Tracer {
    handle: TraceHandle,
    seq: u64,
    timings: BTreeMap<&'static str, Histogram>,
}

impl Tracer {
    pub fn new(handle: TraceHandle) -> Tracer {
        Tracer { handle, seq: 0, timings: BTreeMap::new() }
    }

    /// Emit one event to the sink (assigning it the next sequence number).
    pub fn emit(&mut self, phase: &'static str, detail: String, nanos: u64, delta: ExecStats) {
        let event = TraceEvent { seq: self.seq, phase, detail, nanos, delta };
        self.seq += 1;
        self.handle.record(&event);
    }

    /// Fold a sample into the histogram for `kind`.
    pub fn time(&mut self, kind: &'static str, nanos: u64) {
        self.timings.entry(kind).or_default().record(nanos);
    }

    pub fn timings(&self) -> &BTreeMap<&'static str, Histogram> {
        &self.timings
    }

    pub fn handle(&self) -> &TraceHandle {
        &self.handle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn event(seq: u64) -> TraceEvent {
        TraceEvent {
            seq,
            phase: "execute",
            detail: format!("stmt {seq}"),
            nanos: seq * 100,
            delta: ExecStats::default(),
        }
    }

    #[test]
    fn ring_buffer_keeps_the_newest_and_counts_drops() {
        let mut ring = RingBufferSink::new(3);
        for seq in 0..5 {
            ring.record(&event(seq));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let seqs: Vec<u64> = ring.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(ring.drain().len(), 3);
        assert!(ring.is_empty());
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let mut ring = RingBufferSink::new(0);
        ring.record(&event(0));
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn callback_sink_streams_each_event() {
        let seen = Rc::new(RefCell::new(Vec::new()));
        let inner = seen.clone();
        let mut sink = CallbackSink::new(move |e: &TraceEvent| inner.borrow_mut().push(e.seq));
        sink.record(&event(7));
        sink.record(&event(9));
        assert_eq!(*seen.borrow(), vec![7, 9]);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let mut h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(1); // bucket lower bound 1
        h.record(1000); // floor(log2)=9 → lower bound 512
        h.record(1023);
        assert_eq!(h.samples(), 5);
        assert_eq!(h.max_nanos(), 1023);
        assert_eq!(h.mean_nanos(), (1 + 1 + 1000 + 1023) / 5);
        assert_eq!(h.buckets(), vec![(0, 1), (1, 2), (512, 2)]);
    }

    #[test]
    fn tracer_sequences_events_and_times_kinds() {
        let (handle, ring) = TraceHandle::ring(16);
        let mut tracer = Tracer::new(handle);
        tracer.emit("parse", "hit".into(), 10, ExecStats::default());
        tracer.emit("execute", "INSERT".into(), 20, ExecStats::default());
        tracer.time("INSERT", 20);
        tracer.time("INSERT", 40);
        assert_eq!(tracer.timings()["INSERT"].samples(), 2);
        // The shared ring saw both events in order.
        let seqs: Vec<u64> = ring.lock().unwrap().events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
    }
}

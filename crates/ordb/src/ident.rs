//! Oracle-style identifiers: case-insensitive, at most 30 characters.
//!
//! The paper's §5 notes both restrictions explicitly ("Oracle accepts only
//! 30 characters"; element names "may conflict with SQL keywords (e.g.,
//! ORDER)"). The naming-convention module of the mapping layer builds on the
//! [`is_reserved_word`] list and [`MAX_IDENTIFIER_LEN`] exported here.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, LazyLock, PoisonError, RwLock};

use crate::error::DbError;

/// Oracle's identifier length limit (both 8i and 9i).
pub const MAX_IDENTIFIER_LEN: usize = 30;

/// Entries kept in the process-wide identifier intern pool. A shredded
/// document reuses a handful of table/type/column names across thousands of
/// rows, so a small pool captures them; once full, new names simply skip
/// the pool (they still work, they just allocate).
const INTERN_CAPACITY: usize = 4096;

/// The intern pool is process-wide, not per-thread: every thread that
/// interns the same spelling gets the *same* `Arc` handles, so identifier
/// identity (and the pointer-equality fast path in `PartialEq`) holds
/// across worker threads and server connections. Reads take the shared
/// lock; only a genuinely new spelling takes the exclusive lock.
static INTERN: LazyLock<RwLock<InternPool>> = LazyLock::new(|| RwLock::new(InternPool::default()));
static INTERN_HITS: AtomicU64 = AtomicU64::new(0);
static INTERN_MISSES: AtomicU64 = AtomicU64::new(0);

#[derive(Default)]
struct InternPool {
    /// display spelling → shared (display, normalized) handles.
    entries: HashMap<Box<str>, (Arc<str>, Arc<str>)>,
}

/// Resolve `name` through the process-wide intern pool: a hit returns
/// shared handles (two `Arc` bumps instead of two string allocations plus
/// a case fold).
fn intern(name: &str) -> (Arc<str>, Arc<str>) {
    {
        let pool = INTERN.read().unwrap_or_else(PoisonError::into_inner);
        if let Some(found) = pool.entries.get(name).cloned() {
            INTERN_HITS.fetch_add(1, AtomicOrdering::Relaxed);
            return found;
        }
    }
    let display: Arc<str> = Arc::from(name);
    let normalized: Arc<str> = Arc::from(name.to_uppercase().as_str());
    let mut pool = INTERN.write().unwrap_or_else(PoisonError::into_inner);
    // Double-check under the exclusive lock: another thread may have
    // interned the same spelling between our read and write. Returning the
    // pool's copy (not ours) is what keeps handles pointer-identical
    // across threads.
    if let Some(found) = pool.entries.get(name).cloned() {
        INTERN_HITS.fetch_add(1, AtomicOrdering::Relaxed);
        return found;
    }
    INTERN_MISSES.fetch_add(1, AtomicOrdering::Relaxed);
    if pool.entries.len() < INTERN_CAPACITY {
        pool.entries.insert(name.into(), (display.clone(), normalized.clone()));
    }
    (display, normalized)
}

/// The process-wide intern-pool counters as `(hits, misses)`. A hit is an
/// identifier construction that reused shared handles instead of
/// allocating; the bulk experiment reports the ratio.
pub fn intern_counters() -> (u64, u64) {
    (
        INTERN_HITS.load(AtomicOrdering::Relaxed),
        INTERN_MISSES.load(AtomicOrdering::Relaxed),
    )
}

/// A database identifier. Comparison and hashing are case-insensitive
/// (Oracle folds unquoted identifiers to upper case); the original spelling
/// is preserved for display, matching how generated DDL scripts look.
/// Spellings are interned process-wide, so the identifiers of a generated
/// load script share their backing strings — across threads too — and
/// cloning is two `Arc` bumps.
#[derive(Debug, Clone)]
pub struct Ident {
    display: Arc<str>,
    normalized: Arc<str>,
}

impl Ident {
    /// Build an identifier, enforcing the 30-character limit.
    pub fn new(name: &str) -> Result<Ident, DbError> {
        if name.len() > MAX_IDENTIFIER_LEN {
            return Err(DbError::IdentifierTooLong(name.to_string()));
        }
        let (display, normalized) = intern(name);
        Ok(Ident { display, normalized })
    }

    /// Build without the length check — for engine-internal names only.
    pub fn internal(name: &str) -> Ident {
        let (display, normalized) = intern(name);
        Ident { display, normalized }
    }

    pub fn as_str(&self) -> &str {
        &self.display
    }

    /// The case-folded comparison key.
    pub fn key(&self) -> &str {
        &self.normalized
    }

    pub fn eq_str(&self, other: &str) -> bool {
        *self.normalized == other.to_uppercase()
    }
}

impl PartialEq for Ident {
    fn eq(&self, other: &Self) -> bool {
        // Interned identifiers usually share their backing allocation, so
        // the common case is a pointer comparison.
        Arc::ptr_eq(&self.normalized, &other.normalized) || self.normalized == other.normalized
    }
}
impl Eq for Ident {}

impl PartialOrd for Ident {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ident {
    fn cmp(&self, other: &Self) -> Ordering {
        self.normalized.cmp(&other.normalized)
    }
}

impl Hash for Ident {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.normalized.hash(state);
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display)
    }
}

/// Reserved words that cannot be used as identifiers (the subset of
/// Oracle's reserved words relevant to generated schemas, §5).
pub const RESERVED_WORDS: &[&str] = &[
    "ACCESS", "ADD", "ALL", "ALTER", "AND", "ANY", "AS", "ASC", "AUDIT", "BETWEEN", "BY", "CHAR",
    "CHECK", "CLUSTER", "COLUMN", "COMMENT", "COMPRESS", "CONNECT", "CREATE", "CURRENT", "DATE",
    "DECIMAL", "DEFAULT", "DELETE", "DESC", "DISTINCT", "DROP", "ELSE", "EXCLUSIVE", "EXISTS",
    "FILE", "FLOAT", "FOR", "FROM", "GRANT", "GROUP", "HAVING", "IDENTIFIED", "IMMEDIATE", "IN",
    "INCREMENT", "INDEX", "INITIAL", "INSERT", "INTEGER", "INTERSECT", "INTO", "IS", "LEVEL",
    "LIKE", "LOCK", "LONG", "MAXEXTENTS", "MINUS", "MLSLABEL", "MODE", "MODIFY", "NOAUDIT",
    "NOCOMPRESS", "NOT", "NOWAIT", "NULL", "NUMBER", "OF", "OFFLINE", "ON", "ONLINE", "OPTION",
    "OR", "ORDER", "PCTFREE", "PRIOR", "PRIVILEGES", "PUBLIC", "RAW", "RENAME", "RESOURCE",
    "REVOKE", "ROW", "ROWID", "ROWNUM", "ROWS", "SELECT", "SESSION", "SET", "SHARE", "SIZE",
    "SMALLINT", "START", "SUCCESSFUL", "SYNONYM", "SYSDATE", "TABLE", "THEN", "TO", "TRIGGER",
    "UID", "UNION", "UNIQUE", "UPDATE", "USER", "VALIDATE", "VALUES", "VARCHAR", "VARCHAR2",
    "VIEW", "WHENEVER", "WHERE", "WITH",
];

/// Is `word` a reserved SQL word (case-insensitive)?
pub fn is_reserved_word(word: &str) -> bool {
    let upper = word.to_uppercase();
    RESERVED_WORDS.binary_search(&upper.as_str()).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn comparison_is_case_insensitive() {
        let a = Ident::new("TabProfessor").unwrap();
        let b = Ident::new("TABPROFESSOR").unwrap();
        assert_eq!(a, b);
        assert!(a.eq_str("tabprofessor"));
        assert_eq!(a.as_str(), "TabProfessor"); // display preserved
    }

    #[test]
    fn hashing_matches_equality() {
        let mut set = HashSet::new();
        set.insert(Ident::new("abc").unwrap());
        assert!(set.contains(&Ident::new("ABC").unwrap()));
    }

    #[test]
    fn thirty_char_limit_enforced() {
        let ok = "a".repeat(30);
        let too_long = "a".repeat(31);
        assert!(Ident::new(&ok).is_ok());
        assert!(matches!(Ident::new(&too_long), Err(DbError::IdentifierTooLong(_))));
    }

    #[test]
    fn interning_shares_backing_strings_and_counts_hits() {
        let (h0, _) = intern_counters();
        let a = Ident::new("InternProbeXyz").unwrap();
        let b = Ident::new("InternProbeXyz").unwrap();
        assert!(std::sync::Arc::ptr_eq(&a.display, &b.display));
        assert!(std::sync::Arc::ptr_eq(&a.normalized, &b.normalized));
        let (h1, _) = intern_counters();
        assert!(h1 > h0, "second construction must hit the pool");
        // Debug output matches the String-field era, so state dumps are
        // unchanged by interning.
        assert_eq!(
            format!("{a:?}"),
            "Ident { display: \"InternProbeXyz\", normalized: \"INTERNPROBEXYZ\" }"
        );
    }

    /// Regression (PR 9): the pool used to be `thread_local!`, so two
    /// worker threads interning the same hostile spellings got divergent
    /// pools — unbounded aggregate growth and no cross-thread pointer
    /// identity. The process-wide pool must hand every thread the same
    /// bytes AND the same backing allocations.
    #[test]
    fn interning_agrees_byte_for_byte_across_threads() {
        let hostile = [
            "ORDER",                        // reserved word
            "order",                        // same word, hostile casing
            "Tab\u{00df}Professor",         // ß upper-folds to SS (len change)
            "a b;DROP TABLE x--",           // delimiter soup
            "TabUniversity",                // ordinary mapped name
            "ABCDEFGHIJKLMNOPQRSTUVWXYZabc", // at the 30-char limit, mixed case
        ];
        let spawn = || {
            std::thread::spawn(move || {
                hostile.iter().map(|n| Ident::internal(n)).collect::<Vec<_>>()
            })
        };
        let (t1, t2) = (spawn(), spawn());
        let (a, b) = (t1.join().unwrap(), t2.join().unwrap());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.as_str().as_bytes(), y.as_str().as_bytes());
            assert_eq!(x.key().as_bytes(), y.key().as_bytes());
            // Same allocation, not merely equal bytes: the pool is shared.
            assert!(Arc::ptr_eq(&x.display, &y.display));
            assert!(Arc::ptr_eq(&x.normalized, &y.normalized));
        }
    }

    #[test]
    fn reserved_word_list_is_sorted_for_binary_search() {
        let mut sorted = RESERVED_WORDS.to_vec();
        sorted.sort();
        assert_eq!(sorted, RESERVED_WORDS, "RESERVED_WORDS must stay sorted");
    }

    #[test]
    fn order_is_reserved_like_the_paper_says() {
        assert!(is_reserved_word("ORDER"));
        assert!(is_reserved_word("order"));
        assert!(is_reserved_word("Table"));
        assert!(!is_reserved_word("Professor"));
        assert!(!is_reserved_word("attrName"));
    }
}

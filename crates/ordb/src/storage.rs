//! In-memory row storage with an indexed OID directory for row objects.

use std::collections::{BTreeMap, HashMap};

use crate::error::DbError;
use crate::ident::Ident;
use crate::value::{Oid, Value};

/// One stored row. `values` parallels the table's column list; rows of
/// object tables additionally carry the OID that REFs target (§2.3).
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    pub oid: Option<Oid>,
    pub values: Vec<Value>,
}

/// All rows of one table.
#[derive(Debug, Clone, Default)]
pub struct TableData {
    pub rows: Vec<Row>,
}

/// Where an OID lives: its owning table and the row's current slot in that
/// table's heap. Slots are kept current by [`Storage::delete_rows`]
/// compaction, so [`Storage::resolve_oid`] is a map lookup plus a direct
/// index — never a row scan.
#[derive(Debug, Clone, PartialEq, Eq)]
struct OidEntry {
    table: Ident,
    slot: usize,
}

/// Inverse of one storage mutation. Every mutating method pushes one of
/// these; [`Storage::rollback_to`] pops and applies them in reverse, which
/// restores the heaps, the OID directory, *and* the OID allocator to the
/// pre-mutation state (rollback is byte-identical, not merely equivalent).
#[derive(Debug, Clone)]
enum StorageUndo {
    /// Inverse of [`Storage::insert_row`]: pop the appended row and restore
    /// the OID allocator position.
    Inserted { table: Ident, prev_next_oid: u64 },
    /// Inverse of [`Storage::insert_rows`]: pop the appended block of rows
    /// and restore the OID allocator position. One record brackets the
    /// whole batch, so a batched load writes O(1) undo instead of O(rows).
    BulkInserted { table: Ident, count: usize, prev_next_oid: u64 },
    /// Inverse of [`Storage::delete_rows`]: re-insert the removed rows at
    /// their original slots (ascending order), then re-slot the directory.
    Deleted { table: Ident, removed: Vec<(usize, Row)> },
    /// Inverse of [`Storage::write_row_values`]: restore the old values.
    Wrote { table: Ident, slot: usize, values: Vec<Value> },
    /// Inverse of [`Storage::create_table`]: remove the (empty) heap.
    Created { table: Ident },
    /// Inverse of [`Storage::drop_table`]: restore the heap and re-register
    /// its rows' OIDs.
    Dropped { table: Ident, data: TableData },
    /// Inverse of [`Storage::create_index`]: retire the structure.
    CreatedIndex { name: Ident },
    /// Inverse of [`Storage::drop_index`]: re-register the index and
    /// rebuild its buckets from the heap (cheaper to rebuild than to carry
    /// the buckets in the undo record, and provably consistent).
    DroppedIndex { name: Ident, table: Ident, cols: Vec<usize> },
}

/// A persistent secondary index: hashed key → ascending row slots. Keys
/// hash the indexed columns' join-key identity ([`key_hash`]), so the
/// buckets are a *prefilter* exactly like the executor's hash joins —
/// callers must re-verify the predicate on every candidate slot (sql_eq is
/// not injective over hashes: `'04' = 4` but `'04' <> '4'`).
#[derive(Debug, Clone)]
pub struct SecondaryIndex {
    table: Ident,
    /// Column positions (into `Row::values`) forming the key, in order.
    cols: Vec<usize>,
    /// Key hash → row slots, each bucket sorted ascending so index-driven
    /// scans enumerate rows in heap order.
    buckets: HashMap<u64, Vec<usize>>,
    /// The table version the buckets correspond to. Probes refuse to answer
    /// when this trails [`Storage::table_version`] — the safety valve that
    /// turns any missed maintenance path into a full scan instead of a
    /// wrong answer.
    version: u64,
}

impl SecondaryIndex {
    pub fn table(&self) -> &Ident {
        &self.table
    }

    pub fn cols(&self) -> &[usize] {
        &self.cols
    }
}

/// Hash the join-key identity of a candidate key; `None` when any component
/// is NULL or has no join key (objects, collections). Shared by the
/// secondary indexes and the DML constraint caches so a planner-computed
/// probe key always lands in the bucket maintenance filed it under.
pub fn key_hash(key: &[&Value]) -> Option<u64> {
    use std::hash::Hasher;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for v in key {
        if v.is_null() || !v.hash_join_key(&mut h) {
            return None;
        }
    }
    Some(h.finish())
}

/// The storage layer: table heaps plus the OID directory.
#[derive(Debug, Clone, Default)]
pub struct Storage {
    tables: BTreeMap<Ident, TableData>,
    /// OID → (table, row slot). Maintained incrementally: inserts append,
    /// deletes re-slot the compacted table, `drop_table` removes the
    /// table's entries wholesale.
    oid_directory: HashMap<Oid, OidEntry>,
    next_oid: u64,
    /// Undo log since the last commit. Truncated by [`Storage::commit`],
    /// replayed backwards by [`Storage::rollback_to`].
    undo: Vec<StorageUndo>,
    /// Monotonic per-table mutation counters. Every path that can change a
    /// table's rows or existence bumps its counter (including undo replay
    /// and `table_mut` handouts), so "version unchanged" proves the table's
    /// rows are bit-identical — the batch unique-index cache relies on
    /// this. Entries are never removed: a dropped-and-recreated table
    /// continues its old counter rather than restarting at a value a stale
    /// reader might still hold.
    versions: HashMap<Ident, u64>,
    /// Secondary indexes by index name, maintained eagerly on every
    /// mutation path (including undo replay). Excluded from
    /// [`Storage::state_dump`]: index presence must never change what a
    /// rollback-equivalence check observes.
    indexes: BTreeMap<Ident, SecondaryIndex>,
    /// Key insertions/removals/rebuild-row operations performed — drained
    /// into [`crate::stats::ExecStats::index_maintenance_ops`] by the
    /// session after each statement.
    maintenance_ops: u64,
    /// Bumped once per [`Storage::commit`] that made changes durable-
    /// visible (non-empty undo log). Snapshot readers key their caches on
    /// this: uncommitted churn and rollbacks never move it, so a reader
    /// cache built at epoch E stays valid until the writer actually
    /// commits something.
    committed_epoch: u64,
    /// Per-table [`Storage::table_version`] values as of each table's most
    /// recent committed change. A reader whose pinned version matches
    /// holds that table's committed rows bit-identically.
    committed_versions: HashMap<Ident, u64>,
}

impl Storage {
    pub fn new() -> Self {
        Self::default()
    }

    fn touch(&mut self, table: &Ident) {
        *self.versions.entry(table.clone()).or_insert(0) += 1;
    }

    /// Mutation counter for one table — see the `versions` field.
    pub fn table_version(&self, table: &Ident) -> u64 {
        self.versions.get(table).copied().unwrap_or(0)
    }

    pub fn create_table(&mut self, name: Ident) {
        if !self.tables.contains_key(&name) {
            self.touch(&name);
            self.undo.push(StorageUndo::Created { table: name.clone() });
            self.tables.insert(name, TableData::default());
        }
    }

    pub fn drop_table(&mut self, name: &Ident) {
        if let Some(data) = self.tables.remove(name) {
            for row in &data.rows {
                if let Some(oid) = row.oid {
                    self.oid_directory.remove(&oid);
                }
            }
            self.touch(name);
            // Retire this table's indexes, logging them *before* the heap
            // record: undo replays newest-first, so the heap is restored
            // before each index rebuild reads it.
            let doomed: Vec<Ident> = self
                .indexes
                .iter()
                .filter(|(_, idx)| &idx.table == name)
                .map(|(n, _)| n.clone())
                .collect();
            for index_name in doomed {
                // The names were collected from `indexes` just above with no
                // intervening mutation, so the entry must still be present —
                // but a panic here would poison recovery, so a (impossible)
                // miss degrades to skipping the undo record instead.
                let Some(idx) = self.indexes.remove(&index_name) else {
                    debug_assert!(false, "index {index_name} vanished between collect and remove");
                    continue;
                };
                self.undo.push(StorageUndo::DroppedIndex {
                    name: index_name,
                    table: idx.table,
                    cols: idx.cols,
                });
            }
            self.undo.push(StorageUndo::Dropped { table: name.clone(), data });
        }
    }

    pub fn table(&self, name: &Ident) -> Option<&TableData> {
        self.tables.get(name)
    }

    /// Mutable access to a table's rows, for in-place value updates.
    ///
    /// Callers must not add or remove rows through this handle — row
    /// *slots* back the OID directory; structural changes go through
    /// [`Storage::insert_row`] / [`Storage::delete_rows`], which keep the
    /// directory consistent.
    pub fn table_mut(&mut self, name: &Ident) -> Option<&mut TableData> {
        if self.tables.contains_key(name) {
            // The handle may be used to rewrite values; assume it will be.
            self.touch(name);
        }
        self.tables.get_mut(name)
    }

    /// Append a row; if `with_oid`, allocate a fresh OID for it.
    pub fn insert_row(
        &mut self,
        table: &Ident,
        values: Vec<Value>,
        with_oid: bool,
    ) -> Result<Option<Oid>, DbError> {
        let data = self
            .tables
            .get_mut(table)
            .ok_or_else(|| DbError::UnknownTable(table.as_str().to_string()))?;
        let prev_next_oid = self.next_oid;
        let oid = if with_oid {
            self.next_oid += 1;
            let oid = Oid(self.next_oid);
            self.oid_directory
                .insert(oid, OidEntry { table: table.clone(), slot: data.rows.len() });
            Some(oid)
        } else {
            None
        };
        let base_slot = data.rows.len();
        data.rows.push(Row { oid, values });
        let prev_version = self.table_version(table);
        self.touch(table);
        self.undo.push(StorageUndo::Inserted { table: table.clone(), prev_next_oid });
        self.index_appended(table, base_slot, prev_version);
        Ok(oid)
    }

    /// Append a block of rows in one call; if `with_oid`, reserve an OID
    /// block from the allocator and assign OIDs in row order. The result is
    /// byte-identical to calling [`Storage::insert_row`] once per row (same
    /// OIDs, same heap order, same allocator position) but logs a single
    /// undo record for the whole block.
    pub fn insert_rows(
        &mut self,
        table: &Ident,
        rows: Vec<Vec<Value>>,
        with_oid: bool,
    ) -> Result<usize, DbError> {
        let data = self
            .tables
            .get_mut(table)
            .ok_or_else(|| DbError::UnknownTable(table.as_str().to_string()))?;
        let count = rows.len();
        if count == 0 {
            return Ok(0);
        }
        let prev_next_oid = self.next_oid;
        let base_slot = data.rows.len();
        for (i, values) in rows.into_iter().enumerate() {
            let oid = if with_oid {
                self.next_oid += 1;
                let oid = Oid(self.next_oid);
                self.oid_directory
                    .insert(oid, OidEntry { table: table.clone(), slot: base_slot + i });
                Some(oid)
            } else {
                None
            };
            data.rows.push(Row { oid, values });
        }
        let prev_version = self.table_version(table);
        self.touch(table);
        self.undo.push(StorageUndo::BulkInserted {
            table: table.clone(),
            count,
            prev_next_oid,
        });
        self.index_appended(table, base_slot, prev_version);
        Ok(count)
    }

    /// Overwrite one row's values in place, logging the old values for
    /// rollback. UPDATE's write phase goes through here rather than
    /// [`Storage::table_mut`] so the mutation is undoable.
    pub fn write_row_values(
        &mut self,
        table: &Ident,
        slot: usize,
        values: Vec<Value>,
    ) -> Result<(), DbError> {
        let data = self
            .tables
            .get_mut(table)
            .ok_or_else(|| DbError::UnknownTable(table.as_str().to_string()))?;
        let row = data.rows.get_mut(slot).ok_or_else(|| {
            DbError::Execution(format!("row slot {slot} out of range for table {table}"))
        })?;
        let old = std::mem::replace(&mut row.values, values);
        let prev_version = self.table_version(table);
        self.touch(table);
        self.index_rewrote(table, slot, &old, prev_version);
        self.undo.push(StorageUndo::Wrote { table: table.clone(), slot, values: old });
        Ok(())
    }

    /// Find the row object behind an OID — an O(1) directory lookup plus a
    /// direct slot access (no table scan).
    pub fn resolve_oid(&self, oid: Oid) -> Option<(&Ident, &Row)> {
        let entry = self.oid_directory.get(&oid)?;
        let data = self.tables.get(&entry.table)?;
        let row = data.rows.get(entry.slot)?;
        debug_assert_eq!(row.oid, Some(oid), "OID directory slot out of sync");
        if row.oid != Some(oid) {
            // Defensive fallback: a caller mutated rows structurally through
            // `table_mut` (forbidden, but cheap to survive) — scan once.
            let row = data.rows.iter().find(|r| r.oid == Some(oid))?;
            return Some((&entry.table, row));
        }
        Some((&entry.table, row))
    }

    /// Remove rows matching `pred`; returns how many were removed. The OID
    /// directory is repaired in the same pass: removed OIDs are dropped and
    /// the surviving rows of the compacted table are re-slotted.
    pub fn delete_rows(&mut self, table: &Ident, mut pred: impl FnMut(&Row) -> bool) -> usize {
        let Some(data) = self.tables.get_mut(table) else { return 0 };
        let before = std::mem::take(&mut data.rows);
        let mut removed_rows = Vec::new();
        for (slot, row) in before.into_iter().enumerate() {
            if pred(&row) {
                removed_rows.push((slot, row));
            } else {
                data.rows.push(row);
            }
        }
        let removed = removed_rows.len();
        if removed > 0 {
            for (_, row) in &removed_rows {
                if let Some(oid) = row.oid {
                    self.oid_directory.remove(&oid);
                }
            }
            // Compaction shifted the survivors; restore slot invariants.
            for (slot, row) in data.rows.iter().enumerate() {
                if let Some(oid) = row.oid {
                    if let Some(entry) = self.oid_directory.get_mut(&oid) {
                        entry.slot = slot;
                    }
                }
            }
            self.touch(table);
            self.undo
                .push(StorageUndo::Deleted { table: table.clone(), removed: removed_rows });
            // Compaction shifted slots; incremental repair cannot keep the
            // buckets' slot numbers right, so rebuild.
            self.rebuild_stale_indexes(table);
        }
        removed
    }

    /// Position in the undo log; pass it back to [`Storage::rollback_to`].
    pub fn undo_len(&self) -> usize {
        self.undo.len()
    }

    /// Make everything since the last commit permanent by discarding the
    /// undo log. Also publishes the commit to snapshot readers: the
    /// committed epoch advances and every affected table's committed
    /// version is pinned at its current mutation counter.
    pub fn commit(&mut self) {
        if self.undo.is_empty() {
            return;
        }
        let mut affected: std::collections::BTreeSet<&Ident> = std::collections::BTreeSet::new();
        for op in &self.undo {
            match op {
                StorageUndo::Inserted { table, .. }
                | StorageUndo::BulkInserted { table, .. }
                | StorageUndo::Deleted { table, .. }
                | StorageUndo::Wrote { table, .. }
                | StorageUndo::Created { table }
                | StorageUndo::Dropped { table, .. } => {
                    affected.insert(table);
                }
                // Index structure is derived state rebuilt by readers from
                // catalog definitions; it does not move committed row data.
                StorageUndo::CreatedIndex { .. } | StorageUndo::DroppedIndex { .. } => {}
            }
        }
        let pinned: Vec<(Ident, u64)> = affected
            .into_iter()
            .map(|t| (t.clone(), self.versions.get(t).copied().unwrap_or(0)))
            .collect();
        for (t, v) in pinned {
            self.committed_versions.insert(t, v);
        }
        self.committed_epoch += 1;
        self.undo.clear();
    }

    // -- committed-state reconstruction (MVCC snapshot reads) -----------------

    /// Commit counter — see the `committed_epoch` field.
    pub fn committed_epoch(&self) -> u64 {
        self.committed_epoch
    }

    /// The table version as of `table`'s most recent committed change
    /// (0 for tables never touched by a commit since this storage was
    /// built).
    pub fn committed_version(&self, table: &Ident) -> u64 {
        self.committed_versions.get(table).copied().unwrap_or(0)
    }

    /// Tables that exist in the *committed* state, with their committed
    /// versions — the live table set corrected by the uncommitted undo
    /// tail (an uncommitted CREATE is not yet visible; an uncommitted DROP
    /// still is).
    pub fn committed_tables(&self) -> Vec<(Ident, u64)> {
        let mut names: std::collections::BTreeSet<Ident> = self.tables.keys().cloned().collect();
        for op in self.undo.iter().rev() {
            match op {
                StorageUndo::Created { table } => {
                    names.remove(table);
                }
                StorageUndo::Dropped { table, .. } => {
                    names.insert(table.clone());
                }
                _ => {}
            }
        }
        names.into_iter().map(|t| { let v = self.committed_version(&t); (t, v) }).collect()
    }

    /// Reconstruct one table's heap as of the last commit by applying the
    /// uncommitted undo tail (newest first) to a clone of the live heap —
    /// the undo log *is* the delta between live and committed state.
    /// `None` means the table does not exist in the committed state. The
    /// writer is never blocked beyond the shared read lock the caller
    /// already holds, and the live storage is untouched.
    pub fn committed_heap(&self, table: &Ident) -> Option<TableData> {
        let mut heap = self.tables.get(table).cloned();
        for op in self.undo.iter().rev() {
            match op {
                StorageUndo::Inserted { table: t, .. } if t == table => {
                    if let Some(data) = heap.as_mut() {
                        data.rows.pop();
                    }
                }
                StorageUndo::BulkInserted { table: t, count, .. } if t == table => {
                    if let Some(data) = heap.as_mut() {
                        data.rows.truncate(data.rows.len().saturating_sub(*count));
                    }
                }
                StorageUndo::Deleted { table: t, removed } if t == table => {
                    if let Some(data) = heap.as_mut() {
                        for (slot, row) in removed {
                            let at = (*slot).min(data.rows.len());
                            data.rows.insert(at, row.clone());
                        }
                    }
                }
                StorageUndo::Wrote { table: t, slot, values } if t == table => {
                    if let Some(row) = heap.as_mut().and_then(|d| d.rows.get_mut(*slot)) {
                        row.values = values.clone();
                    }
                }
                StorageUndo::Created { table: t } if t == table => {
                    heap = None;
                }
                StorageUndo::Dropped { table: t, data } if t == table => {
                    heap = Some(data.clone());
                }
                _ => {}
            }
        }
        heap
    }

    /// The OID allocator position as of the last commit: the oldest
    /// uncommitted insert's pre-image, or the live position when nothing
    /// uncommitted allocated.
    pub fn committed_next_oid(&self) -> u64 {
        for op in &self.undo {
            match op {
                StorageUndo::Inserted { prev_next_oid, .. }
                | StorageUndo::BulkInserted { prev_next_oid, .. } => return *prev_next_oid,
                _ => {}
            }
        }
        self.next_oid
    }

    /// Replace one table of a *reader cache* storage with a reconstructed
    /// committed heap (`None` removes the table). The OID directory is
    /// repaired from the old and new heaps, the table's mutation counter
    /// advances, and its secondary indexes rebuild. Not undo-logged —
    /// snapshot caches have no transactions to roll back.
    pub fn install_table_snapshot(&mut self, table: &Ident, heap: Option<TableData>) {
        if let Some(old) = self.tables.remove(table) {
            for row in &old.rows {
                if let Some(oid) = row.oid {
                    self.oid_directory.remove(&oid);
                }
            }
        }
        if let Some(data) = heap {
            for (slot, row) in data.rows.iter().enumerate() {
                if let Some(oid) = row.oid {
                    self.oid_directory.insert(oid, OidEntry { table: table.clone(), slot });
                }
            }
            self.tables.insert(table.clone(), data);
        }
        self.touch(table);
        self.rebuild_stale_indexes(table);
    }

    /// Set the OID allocator position on a reader cache (paired with
    /// [`Storage::install_table_snapshot`]).
    pub fn set_next_oid(&mut self, next_oid: u64) {
        self.next_oid = next_oid;
    }

    /// Undo every mutation logged after `mark` (in reverse order). A mark
    /// at or beyond the current log length — e.g. one taken before an
    /// intervening [`Storage::commit`] — is a no-op.
    pub fn rollback_to(&mut self, mark: usize) {
        // Index rebuilds are deferred to one pass per affected table —
        // rolling back n inserts must not cost n rebuilds.
        let mut affected: std::collections::BTreeSet<Ident> = std::collections::BTreeSet::new();
        while self.undo.len() > mark {
            // The loop guard proves the log is non-empty, so pop cannot
            // miss; if it somehow did, stopping the replay loop is strictly
            // safer than panicking mid-rollback.
            let Some(op) = self.undo.pop() else {
                debug_assert!(false, "undo.len() > mark implies a poppable record");
                break;
            };
            match &op {
                StorageUndo::Inserted { table, .. }
                | StorageUndo::BulkInserted { table, .. }
                | StorageUndo::Deleted { table, .. }
                | StorageUndo::Wrote { table, .. }
                | StorageUndo::Created { table }
                | StorageUndo::Dropped { table, .. }
                | StorageUndo::DroppedIndex { table, .. } => {
                    affected.insert(table.clone());
                }
                StorageUndo::CreatedIndex { .. } => {}
            }
            self.apply_undo(op);
        }
        for table in affected {
            self.rebuild_stale_indexes(&table);
        }
    }

    fn apply_undo(&mut self, op: StorageUndo) {
        match &op {
            StorageUndo::Inserted { table, .. }
            | StorageUndo::BulkInserted { table, .. }
            | StorageUndo::Deleted { table, .. }
            | StorageUndo::Wrote { table, .. }
            | StorageUndo::Created { table }
            | StorageUndo::Dropped { table, .. } => {
                let table = table.clone();
                self.touch(&table);
            }
            StorageUndo::CreatedIndex { .. } | StorageUndo::DroppedIndex { .. } => {}
        }
        match op {
            StorageUndo::Inserted { table, prev_next_oid } => {
                if let Some(data) = self.tables.get_mut(&table) {
                    if let Some(row) = data.rows.pop() {
                        if let Some(oid) = row.oid {
                            self.oid_directory.remove(&oid);
                        }
                    }
                }
                self.next_oid = prev_next_oid;
            }
            StorageUndo::BulkInserted { table, count, prev_next_oid } => {
                if let Some(data) = self.tables.get_mut(&table) {
                    for _ in 0..count {
                        if let Some(row) = data.rows.pop() {
                            if let Some(oid) = row.oid {
                                self.oid_directory.remove(&oid);
                            }
                        }
                    }
                }
                self.next_oid = prev_next_oid;
            }
            StorageUndo::Deleted { table, removed } => {
                if let Some(data) = self.tables.get_mut(&table) {
                    // Ascending original slots: each insert lands exactly
                    // where the row used to live.
                    for (slot, row) in removed {
                        let at = slot.min(data.rows.len());
                        data.rows.insert(at, row);
                    }
                    for (slot, row) in data.rows.iter().enumerate() {
                        if let Some(oid) = row.oid {
                            self.oid_directory
                                .insert(oid, OidEntry { table: table.clone(), slot });
                        }
                    }
                }
            }
            StorageUndo::Wrote { table, slot, values } => {
                if let Some(row) =
                    self.tables.get_mut(&table).and_then(|d| d.rows.get_mut(slot))
                {
                    row.values = values;
                }
            }
            StorageUndo::Created { table } => {
                if let Some(data) = self.tables.remove(&table) {
                    for row in &data.rows {
                        if let Some(oid) = row.oid {
                            self.oid_directory.remove(&oid);
                        }
                    }
                }
            }
            StorageUndo::Dropped { table, data } => {
                for (slot, row) in data.rows.iter().enumerate() {
                    if let Some(oid) = row.oid {
                        self.oid_directory.insert(oid, OidEntry { table: table.clone(), slot });
                    }
                }
                self.tables.insert(table, data);
            }
            StorageUndo::CreatedIndex { name } => {
                self.indexes.remove(&name);
            }
            StorageUndo::DroppedIndex { name, table, cols } => {
                // Re-register with a sentinel-stale version; the caller's
                // deferred rebuild pass (or the next probe's freshness
                // check) makes it usable again.
                self.indexes.insert(
                    name,
                    SecondaryIndex { table, cols, buckets: HashMap::new(), version: u64::MAX },
                );
            }
        }
    }

    /// Deterministic rendering of the full storage state — heaps in table
    /// order, the OID directory sorted by OID, and the allocator position.
    /// Two storages with byte-identical dumps hold identical data; the
    /// fault-injection tests compare rollback results this way.
    pub fn state_dump(&self) -> String {
        let mut oids: Vec<_> = self.oid_directory.iter().collect();
        oids.sort_by_key(|(oid, _)| oid.0);
        format!(
            "tables: {:?}\noids: {:?}\nnext_oid: {}",
            self.tables, oids, self.next_oid
        )
    }

    pub fn row_count(&self, table: &Ident) -> usize {
        self.tables.get(table).map(|d| d.rows.len()).unwrap_or(0)
    }

    /// Total rows across all tables (for fragmentation experiments, E8).
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|d| d.rows.len()).sum()
    }

    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Number of live entries in the OID directory (tests and experiments).
    pub fn oid_directory_len(&self) -> usize {
        self.oid_directory.len()
    }

    /// Check every directory entry against the heap it points into: the
    /// slot must exist and hold the row carrying that OID, and every row
    /// OID must appear in the directory. Used by invariant tests; O(total
    /// rows).
    pub fn check_oid_directory(&self) -> Result<(), String> {
        for (oid, entry) in &self.oid_directory {
            let data = self
                .tables
                .get(&entry.table)
                .ok_or_else(|| format!("{oid} points at dropped table {}", entry.table))?;
            let row = data
                .rows
                .get(entry.slot)
                .ok_or_else(|| format!("{oid} points at stale slot {}", entry.slot))?;
            if row.oid != Some(*oid) {
                return Err(format!(
                    "{oid} slot {} holds {:?} instead",
                    entry.slot, row.oid
                ));
            }
        }
        let live_rows: usize = self
            .tables
            .values()
            .map(|d| d.rows.iter().filter(|r| r.oid.is_some()).count())
            .sum();
        if live_rows != self.oid_directory.len() {
            return Err(format!(
                "{} rows carry OIDs but the directory has {} entries",
                live_rows,
                self.oid_directory.len()
            ));
        }
        Ok(())
    }

    // -- snapshot support -----------------------------------------------------

    /// Iterate table heaps in canonical (name) order, for snapshot encoding.
    pub fn heaps(&self) -> impl Iterator<Item = (&Ident, &TableData)> {
        self.tables.iter()
    }

    /// Current OID allocator position (the last allocated OID value).
    pub fn next_oid(&self) -> u64 {
        self.next_oid
    }

    /// Reconstruct a storage from decoded snapshot parts: table heaps plus
    /// the allocator position. The OID directory is *not* carried in the
    /// snapshot — it is rebuilt here from the heaps, which both shrinks the
    /// snapshot and guarantees the directory invariant holds by
    /// construction. Hostile inputs (duplicate OIDs, OIDs beyond the
    /// allocator) are rejected as [`DbError::CorruptDurableState`], never
    /// panicked on.
    pub fn from_parts(
        tables: BTreeMap<Ident, TableData>,
        next_oid: u64,
    ) -> Result<Storage, DbError> {
        let mut oid_directory = HashMap::new();
        for (name, data) in &tables {
            for (slot, row) in data.rows.iter().enumerate() {
                if let Some(oid) = row.oid {
                    if oid.0 == 0 || oid.0 > next_oid {
                        return Err(DbError::CorruptDurableState(format!(
                            "snapshot row carries {oid} beyond allocator position {next_oid}"
                        )));
                    }
                    let prev = oid_directory
                        .insert(oid, OidEntry { table: name.clone(), slot });
                    if let Some(prev) = prev {
                        return Err(DbError::CorruptDurableState(format!(
                            "snapshot assigns {oid} to both {} and {name}",
                            prev.table
                        )));
                    }
                }
            }
        }
        Ok(Storage {
            tables,
            oid_directory,
            next_oid,
            undo: Vec::new(),
            versions: HashMap::new(),
            indexes: BTreeMap::new(),
            maintenance_ops: 0,
            committed_epoch: 0,
            committed_versions: HashMap::new(),
        })
    }

    /// Register a secondary index without touching the undo log — recovery
    /// re-creates indexes from catalog definitions after restoring heaps,
    /// and that re-registration must not be undoable (there is nothing to
    /// roll back to). Buckets are built immediately.
    pub fn register_index_unlogged(&mut self, name: Ident, table: Ident, cols: Vec<usize>) {
        self.indexes.insert(
            name,
            SecondaryIndex { table: table.clone(), cols, buckets: HashMap::new(), version: u64::MAX },
        );
        self.rebuild_stale_indexes(&table);
    }

    // -- secondary indexes ----------------------------------------------------

    /// Register and build a secondary index over column positions `cols` of
    /// `table` (undo-logged: rollback retires it again).
    pub fn create_index(&mut self, name: Ident, table: Ident, cols: Vec<usize>) {
        self.undo.push(StorageUndo::CreatedIndex { name: name.clone() });
        self.indexes.insert(
            name,
            SecondaryIndex { table: table.clone(), cols, buckets: HashMap::new(), version: u64::MAX },
        );
        self.rebuild_stale_indexes(&table);
    }

    /// Retire an index (undo-logged: rollback re-registers and rebuilds it).
    pub fn drop_index(&mut self, name: &Ident) {
        if let Some(idx) = self.indexes.remove(name) {
            self.undo.push(StorageUndo::DroppedIndex {
                name: name.clone(),
                table: idx.table,
                cols: idx.cols,
            });
        }
    }

    pub fn get_index(&self, name: &Ident) -> Option<&SecondaryIndex> {
        self.indexes.get(name)
    }

    /// Probe an index with a [`key_hash`] value. `Some(slots)` — possibly
    /// empty — means the index answered: `slots` are ascending heap slots
    /// of *candidate* rows (hash prefilter; re-verify the predicate).
    /// `None` means the index is missing or its buckets trail the table
    /// version (the safety valve) — fall back to a full scan.
    pub fn index_probe(&self, name: &Ident, key: u64) -> Option<&[usize]> {
        let idx = self.indexes.get(name)?;
        if idx.version != self.table_version(&idx.table) {
            return None;
        }
        Some(idx.buckets.get(&key).map(|b| b.as_slice()).unwrap_or(&[]))
    }

    /// Is the named index present with buckets current for its table?
    pub fn index_is_fresh(&self, name: &Ident) -> bool {
        self.indexes
            .get(name)
            .is_some_and(|idx| idx.version == self.table_version(&idx.table))
    }

    /// Find a *fresh* secondary index keyed on exactly the column positions
    /// `cols` of `table` — the lookup the retriever uses to decide between
    /// an index probe and a hash-build scan. Returns the index name for
    /// [`Storage::index_probe`] calls.
    pub fn find_fresh_index(&self, table: &Ident, cols: &[usize]) -> Option<&Ident> {
        let version = self.table_version(table);
        self.indexes.iter().find_map(|(name, idx)| {
            (idx.table == *table && idx.cols == cols && idx.version == version).then_some(name)
        })
    }

    /// Drain the maintenance-operation counter (key insertions/removals and
    /// rebuild row visits since the last drain).
    pub fn take_maintenance_ops(&mut self) -> u64 {
        std::mem::take(&mut self.maintenance_ops)
    }

    /// Key hash of one row for an index's column positions; `None` when any
    /// key component is NULL or unhashable (such rows are unindexed — an
    /// equality predicate can never select them).
    fn values_key(cols: &[usize], values: &[Value]) -> Option<u64> {
        let key: Vec<&Value> = cols.iter().map(|&c| values.get(c).unwrap_or(&Value::Null)).collect();
        key_hash(&key)
    }

    /// Index maintenance after rows were appended at `base_slot..`: fresh
    /// indexes extend incrementally, stale ones rebuild.
    fn index_appended(&mut self, table: &Ident, base_slot: usize, prev_version: u64) {
        if self.indexes.is_empty() {
            return;
        }
        let version = self.table_version(table);
        let mut indexes = std::mem::take(&mut self.indexes);
        let mut ops = 0u64;
        if let Some(data) = self.tables.get(table) {
            for idx in indexes.values_mut().filter(|i| &i.table == table) {
                if idx.version == prev_version {
                    for slot in base_slot..data.rows.len() {
                        if let Some(h) = Self::values_key(&idx.cols, &data.rows[slot].values) {
                            // Appends arrive in ascending slot order, so a
                            // plain push keeps buckets sorted.
                            idx.buckets.entry(h).or_default().push(slot);
                        }
                        ops += 1;
                    }
                    idx.version = version;
                } else {
                    ops += Self::rebuild_one(idx, Some(data), version);
                }
            }
        }
        self.indexes = indexes;
        self.maintenance_ops += ops;
    }

    /// Index maintenance after one row's values were overwritten in place.
    fn index_rewrote(&mut self, table: &Ident, slot: usize, old_values: &[Value], prev_version: u64) {
        if self.indexes.is_empty() {
            return;
        }
        let version = self.table_version(table);
        let mut indexes = std::mem::take(&mut self.indexes);
        let mut ops = 0u64;
        if let Some(data) = self.tables.get(table) {
            for idx in indexes.values_mut().filter(|i| &i.table == table) {
                if idx.version == prev_version {
                    if let Some(h) = Self::values_key(&idx.cols, old_values) {
                        if let Some(bucket) = idx.buckets.get_mut(&h) {
                            if let Ok(pos) = bucket.binary_search(&slot) {
                                bucket.remove(pos);
                            }
                            if bucket.is_empty() {
                                idx.buckets.remove(&h);
                            }
                        }
                        ops += 1;
                    }
                    if let Some(row) = data.rows.get(slot) {
                        if let Some(h) = Self::values_key(&idx.cols, &row.values) {
                            let bucket = idx.buckets.entry(h).or_default();
                            if let Err(pos) = bucket.binary_search(&slot) {
                                bucket.insert(pos, slot);
                            }
                            ops += 1;
                        }
                    }
                    idx.version = version;
                } else {
                    ops += Self::rebuild_one(idx, Some(data), version);
                }
            }
        }
        self.indexes = indexes;
        self.maintenance_ops += ops;
    }

    /// Rebuild every index on `table` whose buckets trail the table version
    /// (after slot-shifting operations: deletes, undo replay, index
    /// creation).
    fn rebuild_stale_indexes(&mut self, table: &Ident) {
        if self.indexes.is_empty() {
            return;
        }
        let version = self.table_version(table);
        let mut indexes = std::mem::take(&mut self.indexes);
        let mut ops = 0u64;
        let data = self.tables.get(table);
        for idx in indexes.values_mut().filter(|i| &i.table == table) {
            if idx.version != version {
                ops += Self::rebuild_one(idx, data, version);
            }
        }
        self.indexes = indexes;
        self.maintenance_ops += ops;
    }

    /// Rebuild one index's buckets from its table heap; returns the number
    /// of row visits.
    fn rebuild_one(idx: &mut SecondaryIndex, data: Option<&TableData>, version: u64) -> u64 {
        idx.buckets.clear();
        let mut ops = 0u64;
        if let Some(data) = data {
            for (slot, row) in data.rows.iter().enumerate() {
                if let Some(h) = Self::values_key(&idx.cols, &row.values) {
                    idx.buckets.entry(h).or_default().push(slot);
                }
                ops += 1;
            }
        }
        idx.version = version;
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(s: &str) -> Ident {
        Ident::new(s).unwrap()
    }

    #[test]
    fn insert_and_lookup_with_oids() {
        let mut st = Storage::new();
        st.create_table(id("Tab"));
        let oid = st.insert_row(&id("Tab"), vec![Value::str("x")], true).unwrap().unwrap();
        let (table, row) = st.resolve_oid(oid).unwrap();
        assert!(table.eq_str("Tab"));
        assert_eq!(row.values[0], Value::str("x"));
    }

    #[test]
    fn oids_are_unique_and_monotonic() {
        let mut st = Storage::new();
        st.create_table(id("T"));
        let a = st.insert_row(&id("T"), vec![], true).unwrap().unwrap();
        let b = st.insert_row(&id("T"), vec![], true).unwrap().unwrap();
        assert!(b > a);
    }

    #[test]
    fn relational_rows_have_no_oid() {
        let mut st = Storage::new();
        st.create_table(id("T"));
        let oid = st.insert_row(&id("T"), vec![Value::Null], false).unwrap();
        assert!(oid.is_none());
    }

    #[test]
    fn insert_into_missing_table_fails() {
        let mut st = Storage::new();
        assert!(st.insert_row(&id("Nope"), vec![], false).is_err());
    }

    #[test]
    fn delete_cleans_oid_directory() {
        let mut st = Storage::new();
        st.create_table(id("T"));
        let oid = st.insert_row(&id("T"), vec![Value::Num(1.0)], true).unwrap().unwrap();
        let removed = st.delete_rows(&id("T"), |r| r.values[0] == Value::Num(1.0));
        assert_eq!(removed, 1);
        assert!(st.resolve_oid(oid).is_none());
        assert_eq!(st.row_count(&id("T")), 0);
        st.check_oid_directory().unwrap();
    }

    #[test]
    fn delete_compaction_reslots_survivors() {
        let mut st = Storage::new();
        st.create_table(id("T"));
        let oids: Vec<Oid> = (0..6)
            .map(|i| st.insert_row(&id("T"), vec![Value::Num(i as f64)], true).unwrap().unwrap())
            .collect();
        // Remove the even-valued rows; surviving rows shift down.
        let removed = st.delete_rows(&id("T"), |r| match &r.values[0] {
            Value::Num(n) => (*n as i64) % 2 == 0,
            _ => false,
        });
        assert_eq!(removed, 3);
        st.check_oid_directory().unwrap();
        for (i, oid) in oids.iter().enumerate() {
            let resolved = st.resolve_oid(*oid);
            if i % 2 == 0 {
                assert!(resolved.is_none(), "row {i} was deleted");
            } else {
                let (_, row) = resolved.expect("surviving row resolves");
                assert_eq!(row.values[0], Value::Num(i as f64));
            }
        }
    }

    #[test]
    fn drop_table_cleans_oid_directory() {
        let mut st = Storage::new();
        st.create_table(id("T"));
        let oid = st.insert_row(&id("T"), vec![], true).unwrap().unwrap();
        st.drop_table(&id("T"));
        assert!(st.resolve_oid(oid).is_none());
        assert_eq!(st.table_count(), 0);
        assert_eq!(st.oid_directory_len(), 0);
    }

    #[test]
    fn rollback_of_insert_restores_allocator_and_directory() {
        let mut st = Storage::new();
        st.create_table(id("T"));
        st.commit();
        let dump = st.state_dump();
        let mark = st.undo_len();
        let oid = st.insert_row(&id("T"), vec![Value::Num(1.0)], true).unwrap().unwrap();
        st.rollback_to(mark);
        assert!(st.resolve_oid(oid).is_none());
        assert_eq!(st.state_dump(), dump, "rollback is byte-identical");
        st.check_oid_directory().unwrap();
        // The allocator was rewound, so the next insert reuses the OID.
        let again = st.insert_row(&id("T"), vec![Value::Num(2.0)], true).unwrap().unwrap();
        assert_eq!(again, oid);
    }

    #[test]
    fn rollback_of_delete_restores_original_slots() {
        let mut st = Storage::new();
        st.create_table(id("T"));
        let oids: Vec<Oid> = (0..6)
            .map(|i| st.insert_row(&id("T"), vec![Value::Num(i as f64)], true).unwrap().unwrap())
            .collect();
        st.commit();
        let dump = st.state_dump();
        let mark = st.undo_len();
        st.delete_rows(&id("T"), |r| matches!(&r.values[0], Value::Num(n) if (*n as i64) % 2 == 0));
        st.check_oid_directory().unwrap();
        st.rollback_to(mark);
        assert_eq!(st.state_dump(), dump);
        st.check_oid_directory().unwrap();
        for (i, oid) in oids.iter().enumerate() {
            let (_, row) = st.resolve_oid(*oid).expect("revived row resolves");
            assert_eq!(row.values[0], Value::Num(i as f64));
        }
    }

    #[test]
    fn rollback_of_drop_and_write_restores_everything() {
        let mut st = Storage::new();
        st.create_table(id("T"));
        st.insert_row(&id("T"), vec![Value::str("old")], true).unwrap();
        st.commit();
        let dump = st.state_dump();
        let mark = st.undo_len();
        st.write_row_values(&id("T"), 0, vec![Value::str("new")]).unwrap();
        st.drop_table(&id("T"));
        st.create_table(id("T"));
        st.rollback_to(mark);
        assert_eq!(st.state_dump(), dump);
        st.check_oid_directory().unwrap();
    }

    #[test]
    fn bulk_insert_matches_sequential_inserts_byte_for_byte() {
        let rows = || vec![vec![Value::Num(1.0)], vec![Value::str("a")], vec![Value::Null]];
        let mut seq = Storage::new();
        seq.create_table(id("T"));
        for values in rows() {
            seq.insert_row(&id("T"), values, true).unwrap();
        }
        let mut bulk = Storage::new();
        bulk.create_table(id("T"));
        assert_eq!(bulk.insert_rows(&id("T"), rows(), true).unwrap(), 3);
        assert_eq!(bulk.state_dump(), seq.state_dump());
        bulk.check_oid_directory().unwrap();
        // One undo record brackets the whole block…
        assert_eq!(bulk.undo_len(), seq.undo_len() - 2);
        // …and rolling it back restores the pre-batch state exactly.
        let mut st = Storage::new();
        st.create_table(id("T"));
        st.commit();
        let dump = st.state_dump();
        let mark = st.undo_len();
        st.insert_rows(&id("T"), rows(), true).unwrap();
        st.rollback_to(mark);
        assert_eq!(st.state_dump(), dump);
        st.check_oid_directory().unwrap();
        // Empty batches are free: no rows, no undo record.
        assert_eq!(st.insert_rows(&id("T"), Vec::new(), true).unwrap(), 0);
        assert_eq!(st.undo_len(), mark);
    }

    fn probe_values(st: &Storage, index: &str, key: &[&Value]) -> Option<Vec<usize>> {
        st.index_probe(&id(index), key_hash(key).unwrap()).map(|s| s.to_vec())
    }

    #[test]
    fn secondary_index_tracks_all_mutation_paths() {
        let mut st = Storage::new();
        st.create_table(id("T"));
        for name in ["a", "b", "a", "c"] {
            st.insert_row(&id("T"), vec![Value::str(name), Value::Num(1.0)], false).unwrap();
        }
        st.create_index(id("Ix"), id("T"), vec![0]);
        assert_eq!(probe_values(&st, "Ix", &[&Value::str("a")]), Some(vec![0, 2]));
        assert_eq!(probe_values(&st, "Ix", &[&Value::str("zzz")]), Some(vec![]));
        // Inserts extend incrementally (single and bulk).
        st.insert_row(&id("T"), vec![Value::str("a"), Value::Num(2.0)], false).unwrap();
        st.insert_rows(&id("T"), vec![vec![Value::str("b"), Value::Null]], false).unwrap();
        assert_eq!(probe_values(&st, "Ix", &[&Value::str("a")]), Some(vec![0, 2, 4]));
        assert_eq!(probe_values(&st, "Ix", &[&Value::str("b")]), Some(vec![1, 5]));
        // In-place rewrites re-key the row.
        st.write_row_values(&id("T"), 0, vec![Value::str("c"), Value::Num(9.0)]).unwrap();
        assert_eq!(probe_values(&st, "Ix", &[&Value::str("a")]), Some(vec![2, 4]));
        assert_eq!(probe_values(&st, "Ix", &[&Value::str("c")]), Some(vec![0, 3]));
        // NULL keys are unindexed.
        st.write_row_values(&id("T"), 5, vec![Value::Null, Value::Null]).unwrap();
        assert_eq!(probe_values(&st, "Ix", &[&Value::str("b")]), Some(vec![1]));
        // Deletes compact + rebuild.
        st.delete_rows(&id("T"), |r| r.values[0] == Value::str("c"));
        assert_eq!(probe_values(&st, "Ix", &[&Value::str("a")]), Some(vec![1, 2]));
        assert!(st.index_is_fresh(&id("Ix")));
        // Dropping the index retires it.
        st.drop_index(&id("Ix"));
        assert_eq!(st.index_probe(&id("Ix"), 0), None);
    }

    #[test]
    fn secondary_index_survives_rollback_and_stays_out_of_state_dump() {
        let mut st = Storage::new();
        st.create_table(id("T"));
        st.insert_row(&id("T"), vec![Value::str("a")], true).unwrap();
        st.commit();
        let plain_dump = st.state_dump();
        st.create_index(id("Ix"), id("T"), vec![0]);
        // Index presence must not perturb the rollback-equivalence dump.
        assert_eq!(st.state_dump(), plain_dump);
        let mark = st.undo_len();
        // Mutate through every path, then roll back: buckets must match a
        // freshly built index over the restored heap.
        st.insert_row(&id("T"), vec![Value::str("b")], true).unwrap();
        st.write_row_values(&id("T"), 0, vec![Value::str("z")]).unwrap();
        st.delete_rows(&id("T"), |r| r.values[0] == Value::str("b"));
        st.drop_index(&id("Ix"));
        st.rollback_to(mark);
        assert_eq!(st.state_dump(), plain_dump);
        assert!(st.index_is_fresh(&id("Ix")));
        assert_eq!(probe_values(&st, "Ix", &[&Value::str("a")]), Some(vec![0]));
        assert_eq!(probe_values(&st, "Ix", &[&Value::str("z")]), Some(vec![]));
        // Rolling back past the creation retires the index.
        st.rollback_to(0);
        assert_eq!(st.index_probe(&id("Ix"), 0), None);
        // DROP TABLE retires indexes; rollback restores and rebuilds them.
        st.create_index(id("Ix2"), id("T"), vec![0]);
        st.commit();
        let mark = st.undo_len();
        st.drop_table(&id("T"));
        assert_eq!(st.index_probe(&id("Ix2"), 0), None);
        st.rollback_to(mark);
        assert_eq!(probe_values(&st, "Ix2", &[&Value::str("a")]), Some(vec![0]));
    }

    #[test]
    fn maintenance_ops_accumulate_and_drain() {
        let mut st = Storage::new();
        st.create_table(id("T"));
        st.insert_row(&id("T"), vec![Value::str("a")], false).unwrap();
        assert_eq!(st.take_maintenance_ops(), 0, "no index yet");
        st.create_index(id("Ix"), id("T"), vec![0]);
        assert_eq!(st.take_maintenance_ops(), 1, "initial build visits each row");
        st.insert_row(&id("T"), vec![Value::str("b")], false).unwrap();
        assert_eq!(st.take_maintenance_ops(), 1);
        assert_eq!(st.take_maintenance_ops(), 0, "drained");
    }

    #[test]
    fn totals() {
        let mut st = Storage::new();
        st.create_table(id("A"));
        st.create_table(id("B"));
        st.insert_row(&id("A"), vec![], false).unwrap();
        st.insert_row(&id("B"), vec![], false).unwrap();
        st.insert_row(&id("B"), vec![], false).unwrap();
        assert_eq!(st.total_rows(), 3);
        assert_eq!(st.table_count(), 2);
    }
}

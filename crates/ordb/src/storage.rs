//! In-memory row storage with an indexed OID directory for row objects.

use std::collections::{BTreeMap, HashMap};

use crate::error::DbError;
use crate::ident::Ident;
use crate::value::{Oid, Value};

/// One stored row. `values` parallels the table's column list; rows of
/// object tables additionally carry the OID that REFs target (§2.3).
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    pub oid: Option<Oid>,
    pub values: Vec<Value>,
}

/// All rows of one table.
#[derive(Debug, Clone, Default)]
pub struct TableData {
    pub rows: Vec<Row>,
}

/// Where an OID lives: its owning table and the row's current slot in that
/// table's heap. Slots are kept current by [`Storage::delete_rows`]
/// compaction, so [`Storage::resolve_oid`] is a map lookup plus a direct
/// index — never a row scan.
#[derive(Debug, Clone, PartialEq, Eq)]
struct OidEntry {
    table: Ident,
    slot: usize,
}

/// The storage layer: table heaps plus the OID directory.
#[derive(Debug, Clone, Default)]
pub struct Storage {
    tables: BTreeMap<Ident, TableData>,
    /// OID → (table, row slot). Maintained incrementally: inserts append,
    /// deletes re-slot the compacted table, `drop_table` removes the
    /// table's entries wholesale.
    oid_directory: HashMap<Oid, OidEntry>,
    next_oid: u64,
}

impl Storage {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn create_table(&mut self, name: Ident) {
        self.tables.entry(name).or_default();
    }

    pub fn drop_table(&mut self, name: &Ident) {
        if let Some(data) = self.tables.remove(name) {
            for row in &data.rows {
                if let Some(oid) = row.oid {
                    self.oid_directory.remove(&oid);
                }
            }
        }
    }

    pub fn table(&self, name: &Ident) -> Option<&TableData> {
        self.tables.get(name)
    }

    /// Mutable access to a table's rows, for in-place value updates.
    ///
    /// Callers must not add or remove rows through this handle — row
    /// *slots* back the OID directory; structural changes go through
    /// [`Storage::insert_row`] / [`Storage::delete_rows`], which keep the
    /// directory consistent.
    pub fn table_mut(&mut self, name: &Ident) -> Option<&mut TableData> {
        self.tables.get_mut(name)
    }

    /// Append a row; if `with_oid`, allocate a fresh OID for it.
    pub fn insert_row(
        &mut self,
        table: &Ident,
        values: Vec<Value>,
        with_oid: bool,
    ) -> Result<Option<Oid>, DbError> {
        let data = self
            .tables
            .get_mut(table)
            .ok_or_else(|| DbError::UnknownTable(table.as_str().to_string()))?;
        let oid = if with_oid {
            self.next_oid += 1;
            let oid = Oid(self.next_oid);
            self.oid_directory
                .insert(oid, OidEntry { table: table.clone(), slot: data.rows.len() });
            Some(oid)
        } else {
            None
        };
        data.rows.push(Row { oid, values });
        Ok(oid)
    }

    /// Find the row object behind an OID — an O(1) directory lookup plus a
    /// direct slot access (no table scan).
    pub fn resolve_oid(&self, oid: Oid) -> Option<(&Ident, &Row)> {
        let entry = self.oid_directory.get(&oid)?;
        let data = self.tables.get(&entry.table)?;
        let row = data.rows.get(entry.slot)?;
        debug_assert_eq!(row.oid, Some(oid), "OID directory slot out of sync");
        if row.oid != Some(oid) {
            // Defensive fallback: a caller mutated rows structurally through
            // `table_mut` (forbidden, but cheap to survive) — scan once.
            let row = data.rows.iter().find(|r| r.oid == Some(oid))?;
            return Some((&entry.table, row));
        }
        Some((&entry.table, row))
    }

    /// Remove rows matching `pred`; returns how many were removed. The OID
    /// directory is repaired in the same pass: removed OIDs are dropped and
    /// the surviving rows of the compacted table are re-slotted.
    pub fn delete_rows(&mut self, table: &Ident, mut pred: impl FnMut(&Row) -> bool) -> usize {
        let Some(data) = self.tables.get_mut(table) else { return 0 };
        let mut removed_oids = Vec::new();
        let before = data.rows.len();
        data.rows.retain(|row| {
            let keep = !pred(row);
            if !keep {
                if let Some(oid) = row.oid {
                    removed_oids.push(oid);
                }
            }
            keep
        });
        let removed = before - data.rows.len();
        if removed > 0 {
            for oid in removed_oids {
                self.oid_directory.remove(&oid);
            }
            // Compaction shifted the survivors; restore slot invariants.
            for (slot, row) in data.rows.iter().enumerate() {
                if let Some(oid) = row.oid {
                    if let Some(entry) = self.oid_directory.get_mut(&oid) {
                        entry.slot = slot;
                    }
                }
            }
        }
        removed
    }

    pub fn row_count(&self, table: &Ident) -> usize {
        self.tables.get(table).map(|d| d.rows.len()).unwrap_or(0)
    }

    /// Total rows across all tables (for fragmentation experiments, E8).
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|d| d.rows.len()).sum()
    }

    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Number of live entries in the OID directory (tests and experiments).
    pub fn oid_directory_len(&self) -> usize {
        self.oid_directory.len()
    }

    /// Check every directory entry against the heap it points into: the
    /// slot must exist and hold the row carrying that OID, and every row
    /// OID must appear in the directory. Used by invariant tests; O(total
    /// rows).
    pub fn check_oid_directory(&self) -> Result<(), String> {
        for (oid, entry) in &self.oid_directory {
            let data = self
                .tables
                .get(&entry.table)
                .ok_or_else(|| format!("{oid} points at dropped table {}", entry.table))?;
            let row = data
                .rows
                .get(entry.slot)
                .ok_or_else(|| format!("{oid} points at stale slot {}", entry.slot))?;
            if row.oid != Some(*oid) {
                return Err(format!(
                    "{oid} slot {} holds {:?} instead",
                    entry.slot, row.oid
                ));
            }
        }
        let live_rows: usize = self
            .tables
            .values()
            .map(|d| d.rows.iter().filter(|r| r.oid.is_some()).count())
            .sum();
        if live_rows != self.oid_directory.len() {
            return Err(format!(
                "{} rows carry OIDs but the directory has {} entries",
                live_rows,
                self.oid_directory.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(s: &str) -> Ident {
        Ident::new(s).unwrap()
    }

    #[test]
    fn insert_and_lookup_with_oids() {
        let mut st = Storage::new();
        st.create_table(id("Tab"));
        let oid = st.insert_row(&id("Tab"), vec![Value::str("x")], true).unwrap().unwrap();
        let (table, row) = st.resolve_oid(oid).unwrap();
        assert!(table.eq_str("Tab"));
        assert_eq!(row.values[0], Value::str("x"));
    }

    #[test]
    fn oids_are_unique_and_monotonic() {
        let mut st = Storage::new();
        st.create_table(id("T"));
        let a = st.insert_row(&id("T"), vec![], true).unwrap().unwrap();
        let b = st.insert_row(&id("T"), vec![], true).unwrap().unwrap();
        assert!(b > a);
    }

    #[test]
    fn relational_rows_have_no_oid() {
        let mut st = Storage::new();
        st.create_table(id("T"));
        let oid = st.insert_row(&id("T"), vec![Value::Null], false).unwrap();
        assert!(oid.is_none());
    }

    #[test]
    fn insert_into_missing_table_fails() {
        let mut st = Storage::new();
        assert!(st.insert_row(&id("Nope"), vec![], false).is_err());
    }

    #[test]
    fn delete_cleans_oid_directory() {
        let mut st = Storage::new();
        st.create_table(id("T"));
        let oid = st.insert_row(&id("T"), vec![Value::Num(1.0)], true).unwrap().unwrap();
        let removed = st.delete_rows(&id("T"), |r| r.values[0] == Value::Num(1.0));
        assert_eq!(removed, 1);
        assert!(st.resolve_oid(oid).is_none());
        assert_eq!(st.row_count(&id("T")), 0);
        st.check_oid_directory().unwrap();
    }

    #[test]
    fn delete_compaction_reslots_survivors() {
        let mut st = Storage::new();
        st.create_table(id("T"));
        let oids: Vec<Oid> = (0..6)
            .map(|i| st.insert_row(&id("T"), vec![Value::Num(i as f64)], true).unwrap().unwrap())
            .collect();
        // Remove the even-valued rows; surviving rows shift down.
        let removed = st.delete_rows(&id("T"), |r| match &r.values[0] {
            Value::Num(n) => (*n as i64) % 2 == 0,
            _ => false,
        });
        assert_eq!(removed, 3);
        st.check_oid_directory().unwrap();
        for (i, oid) in oids.iter().enumerate() {
            let resolved = st.resolve_oid(*oid);
            if i % 2 == 0 {
                assert!(resolved.is_none(), "row {i} was deleted");
            } else {
                let (_, row) = resolved.expect("surviving row resolves");
                assert_eq!(row.values[0], Value::Num(i as f64));
            }
        }
    }

    #[test]
    fn drop_table_cleans_oid_directory() {
        let mut st = Storage::new();
        st.create_table(id("T"));
        let oid = st.insert_row(&id("T"), vec![], true).unwrap().unwrap();
        st.drop_table(&id("T"));
        assert!(st.resolve_oid(oid).is_none());
        assert_eq!(st.table_count(), 0);
        assert_eq!(st.oid_directory_len(), 0);
    }

    #[test]
    fn totals() {
        let mut st = Storage::new();
        st.create_table(id("A"));
        st.create_table(id("B"));
        st.insert_row(&id("A"), vec![], false).unwrap();
        st.insert_row(&id("B"), vec![], false).unwrap();
        st.insert_row(&id("B"), vec![], false).unwrap();
        assert_eq!(st.total_rows(), 3);
        assert_eq!(st.table_count(), 2);
    }
}

//! In-memory row storage with an indexed OID directory for row objects.

use std::collections::{BTreeMap, HashMap};

use crate::error::DbError;
use crate::ident::Ident;
use crate::value::{Oid, Value};

/// One stored row. `values` parallels the table's column list; rows of
/// object tables additionally carry the OID that REFs target (§2.3).
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    pub oid: Option<Oid>,
    pub values: Vec<Value>,
}

/// All rows of one table.
#[derive(Debug, Clone, Default)]
pub struct TableData {
    pub rows: Vec<Row>,
}

/// Where an OID lives: its owning table and the row's current slot in that
/// table's heap. Slots are kept current by [`Storage::delete_rows`]
/// compaction, so [`Storage::resolve_oid`] is a map lookup plus a direct
/// index — never a row scan.
#[derive(Debug, Clone, PartialEq, Eq)]
struct OidEntry {
    table: Ident,
    slot: usize,
}

/// Inverse of one storage mutation. Every mutating method pushes one of
/// these; [`Storage::rollback_to`] pops and applies them in reverse, which
/// restores the heaps, the OID directory, *and* the OID allocator to the
/// pre-mutation state (rollback is byte-identical, not merely equivalent).
#[derive(Debug, Clone)]
enum StorageUndo {
    /// Inverse of [`Storage::insert_row`]: pop the appended row and restore
    /// the OID allocator position.
    Inserted { table: Ident, prev_next_oid: u64 },
    /// Inverse of [`Storage::insert_rows`]: pop the appended block of rows
    /// and restore the OID allocator position. One record brackets the
    /// whole batch, so a batched load writes O(1) undo instead of O(rows).
    BulkInserted { table: Ident, count: usize, prev_next_oid: u64 },
    /// Inverse of [`Storage::delete_rows`]: re-insert the removed rows at
    /// their original slots (ascending order), then re-slot the directory.
    Deleted { table: Ident, removed: Vec<(usize, Row)> },
    /// Inverse of [`Storage::write_row_values`]: restore the old values.
    Wrote { table: Ident, slot: usize, values: Vec<Value> },
    /// Inverse of [`Storage::create_table`]: remove the (empty) heap.
    Created { table: Ident },
    /// Inverse of [`Storage::drop_table`]: restore the heap and re-register
    /// its rows' OIDs.
    Dropped { table: Ident, data: TableData },
}

/// The storage layer: table heaps plus the OID directory.
#[derive(Debug, Clone, Default)]
pub struct Storage {
    tables: BTreeMap<Ident, TableData>,
    /// OID → (table, row slot). Maintained incrementally: inserts append,
    /// deletes re-slot the compacted table, `drop_table` removes the
    /// table's entries wholesale.
    oid_directory: HashMap<Oid, OidEntry>,
    next_oid: u64,
    /// Undo log since the last commit. Truncated by [`Storage::commit`],
    /// replayed backwards by [`Storage::rollback_to`].
    undo: Vec<StorageUndo>,
    /// Monotonic per-table mutation counters. Every path that can change a
    /// table's rows or existence bumps its counter (including undo replay
    /// and `table_mut` handouts), so "version unchanged" proves the table's
    /// rows are bit-identical — the batch unique-index cache relies on
    /// this. Entries are never removed: a dropped-and-recreated table
    /// continues its old counter rather than restarting at a value a stale
    /// reader might still hold.
    versions: HashMap<Ident, u64>,
}

impl Storage {
    pub fn new() -> Self {
        Self::default()
    }

    fn touch(&mut self, table: &Ident) {
        *self.versions.entry(table.clone()).or_insert(0) += 1;
    }

    /// Mutation counter for one table — see the `versions` field.
    pub fn table_version(&self, table: &Ident) -> u64 {
        self.versions.get(table).copied().unwrap_or(0)
    }

    pub fn create_table(&mut self, name: Ident) {
        if !self.tables.contains_key(&name) {
            self.touch(&name);
            self.undo.push(StorageUndo::Created { table: name.clone() });
            self.tables.insert(name, TableData::default());
        }
    }

    pub fn drop_table(&mut self, name: &Ident) {
        if let Some(data) = self.tables.remove(name) {
            for row in &data.rows {
                if let Some(oid) = row.oid {
                    self.oid_directory.remove(&oid);
                }
            }
            self.touch(name);
            self.undo.push(StorageUndo::Dropped { table: name.clone(), data });
        }
    }

    pub fn table(&self, name: &Ident) -> Option<&TableData> {
        self.tables.get(name)
    }

    /// Mutable access to a table's rows, for in-place value updates.
    ///
    /// Callers must not add or remove rows through this handle — row
    /// *slots* back the OID directory; structural changes go through
    /// [`Storage::insert_row`] / [`Storage::delete_rows`], which keep the
    /// directory consistent.
    pub fn table_mut(&mut self, name: &Ident) -> Option<&mut TableData> {
        if self.tables.contains_key(name) {
            // The handle may be used to rewrite values; assume it will be.
            self.touch(name);
        }
        self.tables.get_mut(name)
    }

    /// Append a row; if `with_oid`, allocate a fresh OID for it.
    pub fn insert_row(
        &mut self,
        table: &Ident,
        values: Vec<Value>,
        with_oid: bool,
    ) -> Result<Option<Oid>, DbError> {
        let data = self
            .tables
            .get_mut(table)
            .ok_or_else(|| DbError::UnknownTable(table.as_str().to_string()))?;
        let prev_next_oid = self.next_oid;
        let oid = if with_oid {
            self.next_oid += 1;
            let oid = Oid(self.next_oid);
            self.oid_directory
                .insert(oid, OidEntry { table: table.clone(), slot: data.rows.len() });
            Some(oid)
        } else {
            None
        };
        data.rows.push(Row { oid, values });
        self.touch(table);
        self.undo.push(StorageUndo::Inserted { table: table.clone(), prev_next_oid });
        Ok(oid)
    }

    /// Append a block of rows in one call; if `with_oid`, reserve an OID
    /// block from the allocator and assign OIDs in row order. The result is
    /// byte-identical to calling [`Storage::insert_row`] once per row (same
    /// OIDs, same heap order, same allocator position) but logs a single
    /// undo record for the whole block.
    pub fn insert_rows(
        &mut self,
        table: &Ident,
        rows: Vec<Vec<Value>>,
        with_oid: bool,
    ) -> Result<usize, DbError> {
        let data = self
            .tables
            .get_mut(table)
            .ok_or_else(|| DbError::UnknownTable(table.as_str().to_string()))?;
        let count = rows.len();
        if count == 0 {
            return Ok(0);
        }
        let prev_next_oid = self.next_oid;
        let base_slot = data.rows.len();
        for (i, values) in rows.into_iter().enumerate() {
            let oid = if with_oid {
                self.next_oid += 1;
                let oid = Oid(self.next_oid);
                self.oid_directory
                    .insert(oid, OidEntry { table: table.clone(), slot: base_slot + i });
                Some(oid)
            } else {
                None
            };
            data.rows.push(Row { oid, values });
        }
        self.touch(table);
        self.undo.push(StorageUndo::BulkInserted {
            table: table.clone(),
            count,
            prev_next_oid,
        });
        Ok(count)
    }

    /// Overwrite one row's values in place, logging the old values for
    /// rollback. UPDATE's write phase goes through here rather than
    /// [`Storage::table_mut`] so the mutation is undoable.
    pub fn write_row_values(
        &mut self,
        table: &Ident,
        slot: usize,
        values: Vec<Value>,
    ) -> Result<(), DbError> {
        let data = self
            .tables
            .get_mut(table)
            .ok_or_else(|| DbError::UnknownTable(table.as_str().to_string()))?;
        let row = data.rows.get_mut(slot).ok_or_else(|| {
            DbError::Execution(format!("row slot {slot} out of range for table {table}"))
        })?;
        let old = std::mem::replace(&mut row.values, values);
        self.touch(table);
        self.undo.push(StorageUndo::Wrote { table: table.clone(), slot, values: old });
        Ok(())
    }

    /// Find the row object behind an OID — an O(1) directory lookup plus a
    /// direct slot access (no table scan).
    pub fn resolve_oid(&self, oid: Oid) -> Option<(&Ident, &Row)> {
        let entry = self.oid_directory.get(&oid)?;
        let data = self.tables.get(&entry.table)?;
        let row = data.rows.get(entry.slot)?;
        debug_assert_eq!(row.oid, Some(oid), "OID directory slot out of sync");
        if row.oid != Some(oid) {
            // Defensive fallback: a caller mutated rows structurally through
            // `table_mut` (forbidden, but cheap to survive) — scan once.
            let row = data.rows.iter().find(|r| r.oid == Some(oid))?;
            return Some((&entry.table, row));
        }
        Some((&entry.table, row))
    }

    /// Remove rows matching `pred`; returns how many were removed. The OID
    /// directory is repaired in the same pass: removed OIDs are dropped and
    /// the surviving rows of the compacted table are re-slotted.
    pub fn delete_rows(&mut self, table: &Ident, mut pred: impl FnMut(&Row) -> bool) -> usize {
        let Some(data) = self.tables.get_mut(table) else { return 0 };
        let before = std::mem::take(&mut data.rows);
        let mut removed_rows = Vec::new();
        for (slot, row) in before.into_iter().enumerate() {
            if pred(&row) {
                removed_rows.push((slot, row));
            } else {
                data.rows.push(row);
            }
        }
        let removed = removed_rows.len();
        if removed > 0 {
            for (_, row) in &removed_rows {
                if let Some(oid) = row.oid {
                    self.oid_directory.remove(&oid);
                }
            }
            // Compaction shifted the survivors; restore slot invariants.
            for (slot, row) in data.rows.iter().enumerate() {
                if let Some(oid) = row.oid {
                    if let Some(entry) = self.oid_directory.get_mut(&oid) {
                        entry.slot = slot;
                    }
                }
            }
            self.touch(table);
            self.undo
                .push(StorageUndo::Deleted { table: table.clone(), removed: removed_rows });
        }
        removed
    }

    /// Position in the undo log; pass it back to [`Storage::rollback_to`].
    pub fn undo_len(&self) -> usize {
        self.undo.len()
    }

    /// Make everything since the last commit permanent by discarding the
    /// undo log.
    pub fn commit(&mut self) {
        self.undo.clear();
    }

    /// Undo every mutation logged after `mark` (in reverse order). A mark
    /// at or beyond the current log length — e.g. one taken before an
    /// intervening [`Storage::commit`] — is a no-op.
    pub fn rollback_to(&mut self, mark: usize) {
        while self.undo.len() > mark {
            let op = self.undo.pop().expect("len > mark ≥ 0");
            self.apply_undo(op);
        }
    }

    fn apply_undo(&mut self, op: StorageUndo) {
        match &op {
            StorageUndo::Inserted { table, .. }
            | StorageUndo::BulkInserted { table, .. }
            | StorageUndo::Deleted { table, .. }
            | StorageUndo::Wrote { table, .. }
            | StorageUndo::Created { table }
            | StorageUndo::Dropped { table, .. } => {
                let table = table.clone();
                self.touch(&table);
            }
        }
        match op {
            StorageUndo::Inserted { table, prev_next_oid } => {
                if let Some(data) = self.tables.get_mut(&table) {
                    if let Some(row) = data.rows.pop() {
                        if let Some(oid) = row.oid {
                            self.oid_directory.remove(&oid);
                        }
                    }
                }
                self.next_oid = prev_next_oid;
            }
            StorageUndo::BulkInserted { table, count, prev_next_oid } => {
                if let Some(data) = self.tables.get_mut(&table) {
                    for _ in 0..count {
                        if let Some(row) = data.rows.pop() {
                            if let Some(oid) = row.oid {
                                self.oid_directory.remove(&oid);
                            }
                        }
                    }
                }
                self.next_oid = prev_next_oid;
            }
            StorageUndo::Deleted { table, removed } => {
                if let Some(data) = self.tables.get_mut(&table) {
                    // Ascending original slots: each insert lands exactly
                    // where the row used to live.
                    for (slot, row) in removed {
                        let at = slot.min(data.rows.len());
                        data.rows.insert(at, row);
                    }
                    for (slot, row) in data.rows.iter().enumerate() {
                        if let Some(oid) = row.oid {
                            self.oid_directory
                                .insert(oid, OidEntry { table: table.clone(), slot });
                        }
                    }
                }
            }
            StorageUndo::Wrote { table, slot, values } => {
                if let Some(row) =
                    self.tables.get_mut(&table).and_then(|d| d.rows.get_mut(slot))
                {
                    row.values = values;
                }
            }
            StorageUndo::Created { table } => {
                if let Some(data) = self.tables.remove(&table) {
                    for row in &data.rows {
                        if let Some(oid) = row.oid {
                            self.oid_directory.remove(&oid);
                        }
                    }
                }
            }
            StorageUndo::Dropped { table, data } => {
                for (slot, row) in data.rows.iter().enumerate() {
                    if let Some(oid) = row.oid {
                        self.oid_directory.insert(oid, OidEntry { table: table.clone(), slot });
                    }
                }
                self.tables.insert(table, data);
            }
        }
    }

    /// Deterministic rendering of the full storage state — heaps in table
    /// order, the OID directory sorted by OID, and the allocator position.
    /// Two storages with byte-identical dumps hold identical data; the
    /// fault-injection tests compare rollback results this way.
    pub fn state_dump(&self) -> String {
        let mut oids: Vec<_> = self.oid_directory.iter().collect();
        oids.sort_by_key(|(oid, _)| oid.0);
        format!(
            "tables: {:?}\noids: {:?}\nnext_oid: {}",
            self.tables, oids, self.next_oid
        )
    }

    pub fn row_count(&self, table: &Ident) -> usize {
        self.tables.get(table).map(|d| d.rows.len()).unwrap_or(0)
    }

    /// Total rows across all tables (for fragmentation experiments, E8).
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|d| d.rows.len()).sum()
    }

    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Number of live entries in the OID directory (tests and experiments).
    pub fn oid_directory_len(&self) -> usize {
        self.oid_directory.len()
    }

    /// Check every directory entry against the heap it points into: the
    /// slot must exist and hold the row carrying that OID, and every row
    /// OID must appear in the directory. Used by invariant tests; O(total
    /// rows).
    pub fn check_oid_directory(&self) -> Result<(), String> {
        for (oid, entry) in &self.oid_directory {
            let data = self
                .tables
                .get(&entry.table)
                .ok_or_else(|| format!("{oid} points at dropped table {}", entry.table))?;
            let row = data
                .rows
                .get(entry.slot)
                .ok_or_else(|| format!("{oid} points at stale slot {}", entry.slot))?;
            if row.oid != Some(*oid) {
                return Err(format!(
                    "{oid} slot {} holds {:?} instead",
                    entry.slot, row.oid
                ));
            }
        }
        let live_rows: usize = self
            .tables
            .values()
            .map(|d| d.rows.iter().filter(|r| r.oid.is_some()).count())
            .sum();
        if live_rows != self.oid_directory.len() {
            return Err(format!(
                "{} rows carry OIDs but the directory has {} entries",
                live_rows,
                self.oid_directory.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(s: &str) -> Ident {
        Ident::new(s).unwrap()
    }

    #[test]
    fn insert_and_lookup_with_oids() {
        let mut st = Storage::new();
        st.create_table(id("Tab"));
        let oid = st.insert_row(&id("Tab"), vec![Value::str("x")], true).unwrap().unwrap();
        let (table, row) = st.resolve_oid(oid).unwrap();
        assert!(table.eq_str("Tab"));
        assert_eq!(row.values[0], Value::str("x"));
    }

    #[test]
    fn oids_are_unique_and_monotonic() {
        let mut st = Storage::new();
        st.create_table(id("T"));
        let a = st.insert_row(&id("T"), vec![], true).unwrap().unwrap();
        let b = st.insert_row(&id("T"), vec![], true).unwrap().unwrap();
        assert!(b > a);
    }

    #[test]
    fn relational_rows_have_no_oid() {
        let mut st = Storage::new();
        st.create_table(id("T"));
        let oid = st.insert_row(&id("T"), vec![Value::Null], false).unwrap();
        assert!(oid.is_none());
    }

    #[test]
    fn insert_into_missing_table_fails() {
        let mut st = Storage::new();
        assert!(st.insert_row(&id("Nope"), vec![], false).is_err());
    }

    #[test]
    fn delete_cleans_oid_directory() {
        let mut st = Storage::new();
        st.create_table(id("T"));
        let oid = st.insert_row(&id("T"), vec![Value::Num(1.0)], true).unwrap().unwrap();
        let removed = st.delete_rows(&id("T"), |r| r.values[0] == Value::Num(1.0));
        assert_eq!(removed, 1);
        assert!(st.resolve_oid(oid).is_none());
        assert_eq!(st.row_count(&id("T")), 0);
        st.check_oid_directory().unwrap();
    }

    #[test]
    fn delete_compaction_reslots_survivors() {
        let mut st = Storage::new();
        st.create_table(id("T"));
        let oids: Vec<Oid> = (0..6)
            .map(|i| st.insert_row(&id("T"), vec![Value::Num(i as f64)], true).unwrap().unwrap())
            .collect();
        // Remove the even-valued rows; surviving rows shift down.
        let removed = st.delete_rows(&id("T"), |r| match &r.values[0] {
            Value::Num(n) => (*n as i64) % 2 == 0,
            _ => false,
        });
        assert_eq!(removed, 3);
        st.check_oid_directory().unwrap();
        for (i, oid) in oids.iter().enumerate() {
            let resolved = st.resolve_oid(*oid);
            if i % 2 == 0 {
                assert!(resolved.is_none(), "row {i} was deleted");
            } else {
                let (_, row) = resolved.expect("surviving row resolves");
                assert_eq!(row.values[0], Value::Num(i as f64));
            }
        }
    }

    #[test]
    fn drop_table_cleans_oid_directory() {
        let mut st = Storage::new();
        st.create_table(id("T"));
        let oid = st.insert_row(&id("T"), vec![], true).unwrap().unwrap();
        st.drop_table(&id("T"));
        assert!(st.resolve_oid(oid).is_none());
        assert_eq!(st.table_count(), 0);
        assert_eq!(st.oid_directory_len(), 0);
    }

    #[test]
    fn rollback_of_insert_restores_allocator_and_directory() {
        let mut st = Storage::new();
        st.create_table(id("T"));
        st.commit();
        let dump = st.state_dump();
        let mark = st.undo_len();
        let oid = st.insert_row(&id("T"), vec![Value::Num(1.0)], true).unwrap().unwrap();
        st.rollback_to(mark);
        assert!(st.resolve_oid(oid).is_none());
        assert_eq!(st.state_dump(), dump, "rollback is byte-identical");
        st.check_oid_directory().unwrap();
        // The allocator was rewound, so the next insert reuses the OID.
        let again = st.insert_row(&id("T"), vec![Value::Num(2.0)], true).unwrap().unwrap();
        assert_eq!(again, oid);
    }

    #[test]
    fn rollback_of_delete_restores_original_slots() {
        let mut st = Storage::new();
        st.create_table(id("T"));
        let oids: Vec<Oid> = (0..6)
            .map(|i| st.insert_row(&id("T"), vec![Value::Num(i as f64)], true).unwrap().unwrap())
            .collect();
        st.commit();
        let dump = st.state_dump();
        let mark = st.undo_len();
        st.delete_rows(&id("T"), |r| matches!(&r.values[0], Value::Num(n) if (*n as i64) % 2 == 0));
        st.check_oid_directory().unwrap();
        st.rollback_to(mark);
        assert_eq!(st.state_dump(), dump);
        st.check_oid_directory().unwrap();
        for (i, oid) in oids.iter().enumerate() {
            let (_, row) = st.resolve_oid(*oid).expect("revived row resolves");
            assert_eq!(row.values[0], Value::Num(i as f64));
        }
    }

    #[test]
    fn rollback_of_drop_and_write_restores_everything() {
        let mut st = Storage::new();
        st.create_table(id("T"));
        st.insert_row(&id("T"), vec![Value::str("old")], true).unwrap();
        st.commit();
        let dump = st.state_dump();
        let mark = st.undo_len();
        st.write_row_values(&id("T"), 0, vec![Value::str("new")]).unwrap();
        st.drop_table(&id("T"));
        st.create_table(id("T"));
        st.rollback_to(mark);
        assert_eq!(st.state_dump(), dump);
        st.check_oid_directory().unwrap();
    }

    #[test]
    fn bulk_insert_matches_sequential_inserts_byte_for_byte() {
        let rows = || vec![vec![Value::Num(1.0)], vec![Value::str("a")], vec![Value::Null]];
        let mut seq = Storage::new();
        seq.create_table(id("T"));
        for values in rows() {
            seq.insert_row(&id("T"), values, true).unwrap();
        }
        let mut bulk = Storage::new();
        bulk.create_table(id("T"));
        assert_eq!(bulk.insert_rows(&id("T"), rows(), true).unwrap(), 3);
        assert_eq!(bulk.state_dump(), seq.state_dump());
        bulk.check_oid_directory().unwrap();
        // One undo record brackets the whole block…
        assert_eq!(bulk.undo_len(), seq.undo_len() - 2);
        // …and rolling it back restores the pre-batch state exactly.
        let mut st = Storage::new();
        st.create_table(id("T"));
        st.commit();
        let dump = st.state_dump();
        let mark = st.undo_len();
        st.insert_rows(&id("T"), rows(), true).unwrap();
        st.rollback_to(mark);
        assert_eq!(st.state_dump(), dump);
        st.check_oid_directory().unwrap();
        // Empty batches are free: no rows, no undo record.
        assert_eq!(st.insert_rows(&id("T"), Vec::new(), true).unwrap(), 0);
        assert_eq!(st.undo_len(), mark);
    }

    #[test]
    fn totals() {
        let mut st = Storage::new();
        st.create_table(id("A"));
        st.create_table(id("B"));
        st.insert_row(&id("A"), vec![], false).unwrap();
        st.insert_row(&id("B"), vec![], false).unwrap();
        st.insert_row(&id("B"), vec![], false).unwrap();
        assert_eq!(st.total_rows(), 3);
        assert_eq!(st.table_count(), 2);
    }
}

//! In-memory row storage with OID management for row objects.

use std::collections::BTreeMap;

use crate::error::DbError;
use crate::ident::Ident;
use crate::value::{Oid, Value};

/// One stored row. `values` parallels the table's column list; rows of
/// object tables additionally carry the OID that REFs target (§2.3).
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    pub oid: Option<Oid>,
    pub values: Vec<Value>,
}

/// All rows of one table.
#[derive(Debug, Clone, Default)]
pub struct TableData {
    pub rows: Vec<Row>,
}

/// The storage layer: table heaps plus the OID directory.
#[derive(Debug, Clone, Default)]
pub struct Storage {
    tables: BTreeMap<Ident, TableData>,
    /// OID → owning table (rows embed their own OIDs; lookup scans the
    /// table, which is fine at simulation scale and stays correct across
    /// deletes).
    oid_directory: BTreeMap<Oid, Ident>,
    next_oid: u64,
}

impl Storage {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn create_table(&mut self, name: Ident) {
        self.tables.entry(name).or_default();
    }

    pub fn drop_table(&mut self, name: &Ident) {
        if let Some(data) = self.tables.remove(name) {
            for row in &data.rows {
                if let Some(oid) = row.oid {
                    self.oid_directory.remove(&oid);
                }
            }
        }
    }

    pub fn table(&self, name: &Ident) -> Option<&TableData> {
        self.tables.get(name)
    }

    pub fn table_mut(&mut self, name: &Ident) -> Option<&mut TableData> {
        self.tables.get_mut(name)
    }

    /// Append a row; if `with_oid`, allocate a fresh OID for it.
    pub fn insert_row(
        &mut self,
        table: &Ident,
        values: Vec<Value>,
        with_oid: bool,
    ) -> Result<Option<Oid>, DbError> {
        let oid = if with_oid {
            self.next_oid += 1;
            let oid = Oid(self.next_oid);
            self.oid_directory.insert(oid, table.clone());
            Some(oid)
        } else {
            None
        };
        let data = self
            .tables
            .get_mut(table)
            .ok_or_else(|| DbError::UnknownTable(table.as_str().to_string()))?;
        data.rows.push(Row { oid, values });
        Ok(oid)
    }

    /// Find the row object behind an OID.
    pub fn resolve_oid(&self, oid: Oid) -> Option<(&Ident, &Row)> {
        let table = self.oid_directory.get(&oid)?;
        let data = self.tables.get(table)?;
        let row = data.rows.iter().find(|r| r.oid == Some(oid))?;
        Some((table, row))
    }

    /// Remove rows matching `pred`; returns how many were removed.
    pub fn delete_rows(&mut self, table: &Ident, mut pred: impl FnMut(&Row) -> bool) -> usize {
        let Some(data) = self.tables.get_mut(table) else { return 0 };
        let mut removed_oids = Vec::new();
        let before = data.rows.len();
        data.rows.retain(|row| {
            let keep = !pred(row);
            if !keep {
                if let Some(oid) = row.oid {
                    removed_oids.push(oid);
                }
            }
            keep
        });
        for oid in removed_oids {
            self.oid_directory.remove(&oid);
        }
        before - data.rows.len()
    }

    pub fn row_count(&self, table: &Ident) -> usize {
        self.tables.get(table).map(|d| d.rows.len()).unwrap_or(0)
    }

    /// Total rows across all tables (for fragmentation experiments, E8).
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|d| d.rows.len()).sum()
    }

    pub fn table_count(&self) -> usize {
        self.tables.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(s: &str) -> Ident {
        Ident::new(s).unwrap()
    }

    #[test]
    fn insert_and_lookup_with_oids() {
        let mut st = Storage::new();
        st.create_table(id("Tab"));
        let oid = st.insert_row(&id("Tab"), vec![Value::str("x")], true).unwrap().unwrap();
        let (table, row) = st.resolve_oid(oid).unwrap();
        assert!(table.eq_str("Tab"));
        assert_eq!(row.values[0], Value::str("x"));
    }

    #[test]
    fn oids_are_unique_and_monotonic() {
        let mut st = Storage::new();
        st.create_table(id("T"));
        let a = st.insert_row(&id("T"), vec![], true).unwrap().unwrap();
        let b = st.insert_row(&id("T"), vec![], true).unwrap().unwrap();
        assert!(b > a);
    }

    #[test]
    fn relational_rows_have_no_oid() {
        let mut st = Storage::new();
        st.create_table(id("T"));
        let oid = st.insert_row(&id("T"), vec![Value::Null], false).unwrap();
        assert!(oid.is_none());
    }

    #[test]
    fn insert_into_missing_table_fails() {
        let mut st = Storage::new();
        assert!(st.insert_row(&id("Nope"), vec![], false).is_err());
    }

    #[test]
    fn delete_cleans_oid_directory() {
        let mut st = Storage::new();
        st.create_table(id("T"));
        let oid = st.insert_row(&id("T"), vec![Value::Num(1.0)], true).unwrap().unwrap();
        let removed = st.delete_rows(&id("T"), |r| r.values[0] == Value::Num(1.0));
        assert_eq!(removed, 1);
        assert!(st.resolve_oid(oid).is_none());
        assert_eq!(st.row_count(&id("T")), 0);
    }

    #[test]
    fn drop_table_cleans_oid_directory() {
        let mut st = Storage::new();
        st.create_table(id("T"));
        let oid = st.insert_row(&id("T"), vec![], true).unwrap().unwrap();
        st.drop_table(&id("T"));
        assert!(st.resolve_oid(oid).is_none());
        assert_eq!(st.table_count(), 0);
    }

    #[test]
    fn totals() {
        let mut st = Storage::new();
        st.create_table(id("A"));
        st.create_table(id("B"));
        st.insert_row(&id("A"), vec![], false).unwrap();
        st.insert_row(&id("B"), vec![], false).unwrap();
        st.insert_row(&id("B"), vec![], false).unwrap();
        assert_eq!(st.total_rows(), 3);
        assert_eq!(st.table_count(), 2);
    }
}

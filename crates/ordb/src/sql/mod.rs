//! The SQL dialect: lexer, AST and parser.
//!
//! Covers the Oracle-flavoured subset the paper's generated scripts use —
//! see the crate docs for the full statement inventory.

pub mod ast;
pub mod lexer;
pub mod param;
pub mod parser;
pub mod printer;
pub mod span;

pub use ast::{Expr, FromItem, SelectItem, SelectStmt, Stmt};
pub use parser::{parse_script, parse_script_spanned, parse_statement};
pub use printer::{print_expr, print_select, print_stmt};
pub use span::{Span, SpannedStmt};

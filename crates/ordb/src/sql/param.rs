//! Literal parameterization of INSERT texts for the plan cache.
//!
//! Loaders emit thousands of INSERTs that differ only in literal values
//! (the §6.3 "large number of relational insert operations"). Caching by
//! verbatim text would miss every one of them, so the plan cache instead
//! normalizes INSERT texts into a *shape key* — the token stream with every
//! string/number literal replaced by a placeholder — and caches one parsed
//! template per shape. A hit clones the template and rebinds the literal
//! slots with the new text's literals (Oracle's `CURSOR_SHARING=FORCE`
//! auto-binding, in miniature).
//!
//! Soundness: the shape key preserves every non-literal token, and the
//! parser's behaviour depends only on token kinds, so two texts with the
//! same key parse to ASTs of identical shape whose literal slots appear in
//! the same lexical order. [`slots_match`] verifies once, at template
//! creation, that the AST walk visits exactly the lexed literals in order
//! (this catches the one folding the parser does: `-5` becomes the literal
//! `-5.0`, which no longer equals the `5.0` token). Shapes that fail the
//! check are never templated — the cache falls back to verbatim-text
//! entries for them.

use super::ast::{Expr, FromItem, SelectStmt, Stmt};
use super::lexer::{tokenize, Token};
use crate::value::Value;

/// A literal extracted from a SQL text, in lexical order.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    Str(String),
    Num(f64),
}

/// A mutable literal slot found while walking an AST in source order.
enum Slot<'a> {
    Str(&'a mut String),
    Num(&'a mut f64),
}

/// Normalize an INSERT text into (shape key, literals). Returns `None` for
/// non-INSERT texts and texts that do not lex — those take the verbatim
/// cache path (and the parser reports lex errors with full context).
pub fn parameterize(sql: &str) -> Option<(String, Vec<Lit>)> {
    let trimmed = sql.trim_start();
    if !trimmed.get(..6)?.eq_ignore_ascii_case("INSERT") {
        return None;
    }
    let tokens = tokenize(sql).ok()?;
    let mut key = String::with_capacity(sql.len());
    let mut lits = Vec::new();
    for spanned in &tokens {
        match &spanned.token {
            Token::StringLit(s) => {
                lits.push(Lit::Str(s.clone()));
                key.push_str("?s");
            }
            Token::NumberLit(n) => {
                lits.push(Lit::Num(*n));
                key.push_str("?n");
            }
            // Quoting identifiers keeps the key unambiguous: `"a b"` (one
            // identifier) and `a b` (two) must not normalize alike.
            Token::Ident(name) => {
                key.push('"');
                key.push_str(name);
                key.push('"');
            }
            other => key.push_str(symbol(other)),
        }
        key.push(' ');
    }
    Some((key, lits))
}

fn symbol(token: &Token) -> &'static str {
    match token {
        Token::LParen => "(",
        Token::RParen => ")",
        Token::Comma => ",",
        Token::Dot => ".",
        Token::Semicolon => ";",
        Token::Star => "*",
        Token::Eq => "=",
        Token::Ne => "<>",
        Token::Lt => "<",
        Token::Le => "<=",
        Token::Gt => ">",
        Token::Ge => ">=",
        Token::Concat => "||",
        Token::Percent => "%",
        Token::Minus => "-",
        Token::Ident(_) | Token::StringLit(_) | Token::NumberLit(_) => {
            unreachable!("handled by the caller")
        }
    }
}

/// Verify the template invariant: walking `stmts` visits literal slots
/// whose kinds *and values* are exactly `lits`, in order. Value equality is
/// bitwise for numbers so `-0` (parsed as `-0.0` from the `0.0` token) does
/// not slip through. When this holds for one parse of a shape it holds for
/// every text of that shape, making [`rebind`] sound.
pub fn slots_match(stmts: &mut [Stmt], lits: &[Lit]) -> bool {
    let mut next = 0usize;
    let ok = stmts.iter_mut().all(|stmt| {
        walk_stmt(stmt, &mut |slot| {
            let lit = lits.get(next);
            next += 1;
            match (slot, lit) {
                (Slot::Str(s), Some(Lit::Str(v))) => *s == *v,
                (Slot::Num(n), Some(Lit::Num(v))) => n.to_bits() == v.to_bits(),
                _ => false,
            }
        })
    });
    ok && next == lits.len()
}

/// Replace the literal slots of a cloned template with a new text's
/// literals. Returns `false` on any arity or kind mismatch (callers then
/// re-parse; with a verified template this does not happen).
pub fn rebind(stmts: &mut [Stmt], lits: &[Lit]) -> bool {
    let mut next = 0usize;
    let ok = stmts.iter_mut().all(|stmt| {
        walk_stmt(stmt, &mut |slot| {
            let lit = lits.get(next);
            next += 1;
            match (slot, lit) {
                (Slot::Str(s), Some(Lit::Str(v))) => {
                    *s = v.clone();
                    true
                }
                (Slot::Num(n), Some(Lit::Num(v))) => {
                    *n = *v;
                    true
                }
                _ => false,
            }
        })
    });
    ok && next == lits.len()
}

/// Replace the literal slots of a cloned template with arbitrary values —
/// the prepared-statement variant of [`rebind`]
/// ([`crate::Database::execute_prepared`]). Unlike `rebind`, a slot is
/// replaced wholesale rather than edited in place, so a string slot may be
/// bound to NULL, a number, or a date. `LIKE` patterns are the one
/// exception (the AST stores them as plain strings): they only accept
/// string parameters. Returns `false` on an arity mismatch, a non-string
/// pattern binding, or an untemplatable statement kind.
pub fn bind_values(stmts: &mut [Stmt], params: &[Value]) -> bool {
    let mut next = 0usize;
    let ok = stmts.iter_mut().all(|stmt| {
        walk_stmt_values(stmt, &mut |slot| {
            let param = params.get(next);
            next += 1;
            match (slot, param) {
                (ValueSlot::Whole(v), Some(p)) => {
                    *v = p.clone();
                    true
                }
                (ValueSlot::Pattern(s), Some(Value::Str(p))) => {
                    *s = p.clone();
                    true
                }
                _ => false,
            }
        })
    });
    ok && next == params.len()
}

/// A mutable parameter slot for [`bind_values`].
enum ValueSlot<'a> {
    /// An `Expr::Literal` whose whole value is replaced.
    Whole(&'a mut Value),
    /// A `LIKE` pattern (stored as a plain string in the AST).
    Pattern(&'a mut String),
}

/// [`walk_stmt`] with whole-value slots; visits exactly the same positions
/// in the same order, so a [`slots_match`]-verified template binds soundly
/// through either walker.
fn walk_stmt_values(stmt: &mut Stmt, f: &mut impl FnMut(ValueSlot) -> bool) -> bool {
    match stmt {
        Stmt::Insert { values, .. } => values.iter_mut().all(|v| walk_expr_values(v, f)),
        _ => false,
    }
}

fn walk_expr_values(expr: &mut Expr, f: &mut impl FnMut(ValueSlot) -> bool) -> bool {
    match expr {
        Expr::Literal(value) => match value {
            Value::Str(_) | Value::Num(_) => f(ValueSlot::Whole(value)),
            // NULL comes from the keyword, not a literal token — not a slot.
            _ => true,
        },
        Expr::Path(_) | Expr::CountStar | Expr::RefOf(_) => true,
        Expr::Call { args, .. } => args.iter_mut().all(|a| walk_expr_values(a, f)),
        Expr::Binary { lhs, rhs, .. } => walk_expr_values(lhs, f) && walk_expr_values(rhs, f),
        Expr::Not(inner) | Expr::Deref(inner) => walk_expr_values(inner, f),
        Expr::IsNull { expr, .. } => walk_expr_values(expr, f),
        Expr::Like { expr, pattern, .. } => {
            walk_expr_values(expr, f) && f(ValueSlot::Pattern(pattern))
        }
        Expr::Subquery(q) | Expr::Exists(q) => walk_select_values(q, f),
        Expr::CastMultiset { query, .. } => walk_select_values(query, f),
    }
}

fn walk_select_values(select: &mut SelectStmt, f: &mut impl FnMut(ValueSlot) -> bool) -> bool {
    select.items.iter_mut().all(|item| walk_expr_values(&mut item.expr, f))
        && select.from.iter_mut().all(|item| match item {
            FromItem::Table { .. } => true,
            FromItem::CollectionTable { expr, .. } => walk_expr_values(expr, f),
        })
        && select.where_clause.as_mut().is_none_or(|w| walk_expr_values(w, f))
        && select.order_by.iter_mut().all(|(e, _)| walk_expr_values(e, f))
}

/// Walk one statement's literal slots in source order. Only INSERT is
/// templated; any other statement kind aborts the walk, which marks the
/// whole shape untemplatable.
fn walk_stmt(stmt: &mut Stmt, f: &mut impl FnMut(Slot) -> bool) -> bool {
    match stmt {
        Stmt::Insert { values, .. } => values.iter_mut().all(|v| walk_expr(v, f)),
        _ => false,
    }
}

fn walk_expr(expr: &mut Expr, f: &mut impl FnMut(Slot) -> bool) -> bool {
    match expr {
        Expr::Literal(Value::Str(s)) => f(Slot::Str(s)),
        Expr::Literal(Value::Num(n)) => f(Slot::Num(n)),
        // NULL comes from the keyword, not a literal token.
        Expr::Literal(_) => true,
        Expr::Path(_) | Expr::CountStar | Expr::RefOf(_) => true,
        Expr::Call { args, .. } => args.iter_mut().all(|a| walk_expr(a, f)),
        Expr::Binary { lhs, rhs, .. } => walk_expr(lhs, f) && walk_expr(rhs, f),
        Expr::Not(inner) | Expr::Deref(inner) => walk_expr(inner, f),
        Expr::IsNull { expr, .. } => walk_expr(expr, f),
        // The pattern follows LIKE in the source, after the tested expr.
        Expr::Like { expr, pattern, .. } => walk_expr(expr, f) && f(Slot::Str(pattern)),
        Expr::Subquery(q) | Expr::Exists(q) => walk_select(q, f),
        Expr::CastMultiset { query, .. } => walk_select(query, f),
    }
}

/// Clause order mirrors the grammar: select list, FROM, WHERE, ORDER BY.
fn walk_select(select: &mut SelectStmt, f: &mut impl FnMut(Slot) -> bool) -> bool {
    select.items.iter_mut().all(|item| walk_expr(&mut item.expr, f))
        && select.from.iter_mut().all(|item| match item {
            FromItem::Table { .. } => true,
            FromItem::CollectionTable { expr, .. } => walk_expr(expr, f),
        })
        && select.where_clause.as_mut().is_none_or(|w| walk_expr(w, f))
        && select.order_by.iter_mut().all(|(e, _)| walk_expr(e, f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parser::parse_script;

    #[test]
    fn same_shape_different_literals_share_a_key() {
        let (k1, l1) = parameterize("INSERT INTO T VALUES (1, 'a')").unwrap();
        let (k2, l2) = parameterize("INSERT INTO T VALUES (42, 'zz')").unwrap();
        assert_eq!(k1, k2);
        assert_eq!(l1, vec![Lit::Num(1.0), Lit::Str("a".into())]);
        assert_eq!(l2, vec![Lit::Num(42.0), Lit::Str("zz".into())]);
    }

    #[test]
    fn non_insert_texts_are_not_parameterized() {
        assert!(parameterize("SELECT x FROM T").is_none());
        assert!(parameterize("CREATE TABLE T (a NUMBER)").is_none());
        assert!(parameterize("INS").is_none());
    }

    #[test]
    fn null_keyword_stays_in_the_key() {
        let (k_null, l_null) = parameterize("INSERT INTO T VALUES (NULL)").unwrap();
        let (k_lit, l_lit) = parameterize("INSERT INTO T VALUES ('x')").unwrap();
        assert_ne!(k_null, k_lit);
        assert!(l_null.is_empty());
        assert_eq!(l_lit.len(), 1);
    }

    #[test]
    fn rebind_replays_a_template_with_new_literals() {
        let first = "INSERT INTO T VALUES (Ty('a', 1), 'b')";
        let (_, lits) = parameterize(first).unwrap();
        let mut template = parse_script(first).unwrap();
        assert!(slots_match(&mut template, &lits));

        let second = "INSERT INTO T VALUES (Ty('x', 9), 'y')";
        let (_, new_lits) = parameterize(second).unwrap();
        assert!(rebind(&mut template, &new_lits));
        assert_eq!(template, parse_script(second).unwrap());
    }

    #[test]
    fn folded_negative_numbers_fail_verification() {
        let sql = "INSERT INTO T VALUES (-5)";
        let (_, lits) = parameterize(sql).unwrap();
        let mut parsed = parse_script(sql).unwrap();
        // The parser folds `-` into the literal (`-5.0`), so the slot no
        // longer equals the lexed `5.0` — the shape must not be templated.
        assert!(!slots_match(&mut parsed, &lits));
    }

    #[test]
    fn subquery_literals_are_slots_too() {
        let first = "INSERT INTO C VALUES (Ty('db', (SELECT REF(p) FROM P p WHERE p.name = 'Kudrass')))";
        let (_, lits) = parameterize(first).unwrap();
        let mut template = parse_script(first).unwrap();
        assert!(slots_match(&mut template, &lits));

        let second = "INSERT INTO C VALUES (Ty('cad', (SELECT REF(p) FROM P p WHERE p.name = 'Jaeger')))";
        let (_, new_lits) = parameterize(second).unwrap();
        assert!(rebind(&mut template, &new_lits));
        assert_eq!(template, parse_script(second).unwrap());
    }

    #[test]
    fn bind_values_replaces_slots_wholesale() {
        let sql = "INSERT INTO T VALUES (Ty('a', 1), 'b')";
        let (_, lits) = parameterize(sql).unwrap();
        let mut template = parse_script(sql).unwrap();
        assert!(slots_match(&mut template, &lits));

        let params = [Value::Null, Value::Num(9.0), Value::str("y")];
        assert!(bind_values(&mut template, &params));
        assert_eq!(
            template,
            parse_script("INSERT INTO T VALUES (Ty(NULL, 9), 'y')").unwrap()
        );
        // Arity mismatches are rejected.
        assert!(!bind_values(&mut template, &[Value::Num(1.0)]));
    }

    #[test]
    fn quoted_identifiers_do_not_collide_with_split_idents() {
        let (k1, _) = parameterize("INSERT INTO \"a b\" VALUES (1)").unwrap();
        let (k2, _) = parameterize("INSERT INTO a b VALUES (1)").unwrap();
        assert_ne!(k1, k2);
    }

    #[test]
    fn scripts_with_non_insert_statements_fail_verification() {
        let sql = "INSERT INTO T VALUES (1); SELECT COUNT(*) FROM T;";
        let (_, lits) = parameterize(sql).unwrap();
        let mut parsed = parse_script(sql).unwrap();
        assert!(!slots_match(&mut parsed, &lits));
    }
}

//! SQL lexer.
//!
//! Produces a token stream with byte offsets for error reporting. Keywords
//! are recognized case-insensitively; identifiers keep their spelling.

use crate::error::DbError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Unquoted identifier or keyword (`TabProfessor`, `SELECT`).
    Ident(String),
    /// `'...'` string literal, quotes removed, `''` unescaped.
    StringLit(String),
    /// Numeric literal.
    NumberLit(f64),
    LParen,
    RParen,
    Comma,
    Dot,
    Semicolon,
    Star,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Concat,
    Percent,
    Minus,
}

impl Token {
    /// Is this an identifier equal (case-insensitively) to `kw`?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// A token plus its character offsets in the source (`offset..end`, half
/// open). Offsets are char indices — the lexer walks `char`s, and
/// [`crate::sql::span`] converts them to line/column the same way.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    pub token: Token,
    pub offset: usize,
    /// One past the last character of the token.
    pub end: usize,
}

impl SpannedToken {
    pub fn span(&self) -> crate::sql::span::Span {
        crate::sql::span::Span::new(self.offset, self.end)
    }
}

/// Tokenize a complete SQL text (possibly multiple statements).
pub fn tokenize(input: &str) -> Result<Vec<SpannedToken>, DbError> {
    let bytes: Vec<char> = input.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let ch = bytes[i];
        // Whitespace.
        if ch.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments: -- to end of line, /* ... */.
        if ch == '-' && bytes.get(i + 1) == Some(&'-') {
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if ch == '-' {
            out.push(SpannedToken { token: Token::Minus, offset: i, end: i + 1 });
            i += 1;
            continue;
        }
        if ch == '/' && bytes.get(i + 1) == Some(&'*') {
            i += 2;
            while i + 1 < bytes.len() && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                i += 1;
            }
            if i + 1 >= bytes.len() {
                return Err(DbError::Syntax {
                    message: "unterminated block comment".into(),
                    position: i,
                });
            }
            i += 2;
            continue;
        }
        let start = i;
        // String literal.
        if ch == '\'' {
            i += 1;
            let mut lit = String::new();
            loop {
                match bytes.get(i) {
                    None => {
                        return Err(DbError::Syntax {
                            message: "unterminated string literal".into(),
                            position: start,
                        })
                    }
                    Some('\'') if bytes.get(i + 1) == Some(&'\'') => {
                        lit.push('\'');
                        i += 2;
                    }
                    Some('\'') => {
                        i += 1;
                        break;
                    }
                    Some(c) => {
                        lit.push(*c);
                        i += 1;
                    }
                }
            }
            out.push(SpannedToken { token: Token::StringLit(lit), offset: start, end: i });
            continue;
        }
        // Number literal.
        if ch.is_ascii_digit()
            || (ch == '.' && bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit()))
        {
            let mut text = String::new();
            let mut saw_dot = false;
            while let Some(&c) = bytes.get(i) {
                if c.is_ascii_digit() {
                    text.push(c);
                    i += 1;
                } else if c == '.' && !saw_dot && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                    saw_dot = true;
                    text.push(c);
                    i += 1;
                } else {
                    break;
                }
            }
            let value: f64 = text.parse().map_err(|_| DbError::Syntax {
                message: format!("invalid number '{text}'"),
                position: start,
            })?;
            out.push(SpannedToken { token: Token::NumberLit(value), offset: start, end: i });
            continue;
        }
        // Identifier / keyword. `#` appears in no identifier; `_`, `$` do.
        if ch.is_alphabetic() || ch == '_' || ch == '"' {
            if ch == '"' {
                // Quoted identifier.
                i += 1;
                let mut name = String::new();
                while let Some(&c) = bytes.get(i) {
                    if c == '"' {
                        break;
                    }
                    name.push(c);
                    i += 1;
                }
                if bytes.get(i) != Some(&'"') {
                    return Err(DbError::Syntax {
                        message: "unterminated quoted identifier".into(),
                        position: start,
                    });
                }
                i += 1;
                out.push(SpannedToken { token: Token::Ident(name), offset: start, end: i });
                continue;
            }
            let mut name = String::new();
            while let Some(&c) = bytes.get(i) {
                if c.is_alphanumeric() || c == '_' || c == '$' || c == '#' {
                    name.push(c);
                    i += 1;
                } else {
                    break;
                }
            }
            out.push(SpannedToken { token: Token::Ident(name), offset: start, end: i });
            continue;
        }
        // Operators and punctuation.
        let (token, len) = match ch {
            '(' => (Token::LParen, 1),
            ')' => (Token::RParen, 1),
            ',' => (Token::Comma, 1),
            '.' => (Token::Dot, 1),
            ';' => (Token::Semicolon, 1),
            '*' => (Token::Star, 1),
            '%' => (Token::Percent, 1),
            '=' => (Token::Eq, 1),
            '<' => match bytes.get(i + 1) {
                Some('=') => (Token::Le, 2),
                Some('>') => (Token::Ne, 2),
                _ => (Token::Lt, 1),
            },
            '>' => match bytes.get(i + 1) {
                Some('=') => (Token::Ge, 2),
                _ => (Token::Gt, 1),
            },
            '!' => match bytes.get(i + 1) {
                Some('=') => (Token::Ne, 2),
                _ => {
                    return Err(DbError::Syntax {
                        message: "unexpected '!'".into(),
                        position: i,
                    })
                }
            },
            '|' => match bytes.get(i + 1) {
                Some('|') => (Token::Concat, 2),
                _ => {
                    return Err(DbError::Syntax {
                        message: "unexpected '|'".into(),
                        position: i,
                    })
                }
            },
            other => {
                return Err(DbError::Syntax {
                    message: format!("unexpected character '{other}'"),
                    position: i,
                })
            }
        };
        out.push(SpannedToken { token, offset: start, end: start + len });
        i += len;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(input: &str) -> Vec<Token> {
        tokenize(input).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn lexes_a_create_type_statement() {
        let t = toks("CREATE TYPE Type_Professor AS OBJECT(PName VARCHAR(80));");
        assert_eq!(t[0], Token::Ident("CREATE".into()));
        assert_eq!(t[2], Token::Ident("Type_Professor".into()));
        assert!(t.contains(&Token::Semicolon));
        assert!(t.contains(&Token::NumberLit(80.0)));
    }

    #[test]
    fn string_literals_unescape_doubled_quotes() {
        assert_eq!(toks("'O''Hara'"), vec![Token::StringLit("O'Hara".into())]);
        assert_eq!(toks("''"), vec![Token::StringLit(String::new())]);
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn numbers_with_decimals() {
        assert_eq!(toks("3.5"), vec![Token::NumberLit(3.5)]);
        // A trailing dot is a Dot token (path syntax), not part of the number.
        assert_eq!(toks("3.x"), vec![
            Token::NumberLit(3.0),
            Token::Dot,
            Token::Ident("x".into())
        ]);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(toks("= <> != < <= > >="), vec![
            Token::Eq,
            Token::Ne,
            Token::Ne,
            Token::Lt,
            Token::Le,
            Token::Gt,
            Token::Ge
        ]);
    }

    #[test]
    fn comments_are_skipped() {
        let t = toks("SELECT -- line comment\n 1 /* block\ncomment */ FROM dual");
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn unterminated_block_comment_is_error() {
        assert!(tokenize("/* never ends").is_err());
    }

    #[test]
    fn dot_paths_lex_as_ident_dot_ident() {
        let t = toks("S.attrStudent.attrCourse");
        assert_eq!(t.len(), 5);
        assert_eq!(t[1], Token::Dot);
    }

    #[test]
    fn quoted_identifiers() {
        assert_eq!(toks("\"Order\""), vec![Token::Ident("Order".into())]);
    }

    #[test]
    fn keyword_check_is_case_insensitive() {
        let t = toks("select");
        assert!(t[0].is_kw("SELECT"));
        assert!(!t[0].is_kw("INSERT"));
    }

    #[test]
    fn offsets_point_into_source() {
        let spanned = tokenize("AB 'x'").unwrap();
        assert_eq!(spanned[0].offset, 0);
        assert_eq!(spanned[0].end, 2);
        assert_eq!(spanned[1].offset, 3);
        assert_eq!(spanned[1].end, 6); // includes both quotes
    }

    #[test]
    fn end_offsets_cover_the_token_text() {
        let spanned = tokenize("CREATE <= 3.25 \"Q\"").unwrap();
        let slices: Vec<(usize, usize)> =
            spanned.iter().map(|t| (t.offset, t.end)).collect();
        assert_eq!(slices, vec![(0, 6), (7, 9), (10, 14), (15, 18)]);
        assert_eq!(spanned[2].span().len(), 4);
    }

    #[test]
    fn concat_operator() {
        assert_eq!(toks("a || b"), vec![
            Token::Ident("a".into()),
            Token::Concat,
            Token::Ident("b".into())
        ]);
    }
}

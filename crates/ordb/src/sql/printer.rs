//! SQL AST → text rendering.
//!
//! The inverse of the parser: every statement prints to a form the parser
//! accepts again (checked by property tests). Used for debugging, script
//! re-emission and the `EXPLAIN`-style output of examples.

use crate::catalog::Constraint;
use crate::error::DbError;
use crate::sql::ast::{BinOp, Expr, FromItem, SelectStmt, Stmt};
use crate::sql::parser::parse_statement;
use crate::types::SqlType;
use crate::value::Value;

/// Verify that `stmt` survives print → re-parse unchanged. Returns a typed
/// error (instead of panicking) when the printed text fails to parse or
/// parses to a different statement — which can happen for ASTs built
/// programmatically from identifiers the grammar cannot read back.
pub fn check_round_trip(stmt: &Stmt) -> Result<(), DbError> {
    let printed = print_stmt(stmt);
    let reparsed = parse_statement(&printed).map_err(|e| {
        DbError::Execution(format!("printed SQL failed to re-parse: {e} (printed: {printed})"))
    })?;
    if reparsed != *stmt {
        return Err(DbError::Execution(format!(
            "printed SQL re-parsed to a different statement (printed: {printed})"
        )));
    }
    Ok(())
}

/// Render a statement as SQL text (no trailing semicolon).
pub fn print_stmt(stmt: &Stmt) -> String {
    match stmt {
        Stmt::CreateTypeForward { name } => format!("CREATE TYPE {name}"),
        Stmt::CreateObjectType { name, attrs } => {
            let cols: Vec<String> =
                attrs.iter().map(|(n, t)| format!("{n} {}", print_type(t))).collect();
            format!("CREATE TYPE {name} AS OBJECT ({})", cols.join(", "))
        }
        Stmt::CreateVarrayType { name, max, elem } => {
            format!("CREATE TYPE {name} AS VARRAY({max}) OF {}", print_type(elem))
        }
        Stmt::CreateNestedTableType { name, elem } => {
            format!("CREATE TYPE {name} AS TABLE OF {}", print_type(elem))
        }
        Stmt::CreateObjectTable { name, of_type, constraints } => {
            if constraints.is_empty() {
                format!("CREATE TABLE {name} OF {of_type}")
            } else {
                let parts: Vec<String> = constraints.iter().map(print_constraint).collect();
                format!("CREATE TABLE {name} OF {of_type} ({})", parts.join(", "))
            }
        }
        Stmt::CreateRelationalTable { name, columns, constraints, nested_table_stores } => {
            let mut parts: Vec<String> = columns
                .iter()
                .map(|c| {
                    let mut s = format!("{} {}", c.name, print_type(&c.sql_type));
                    if c.primary_key {
                        s.push_str(" PRIMARY KEY");
                    } else if c.not_null {
                        s.push_str(" NOT NULL");
                    }
                    s
                })
                .collect();
            parts.extend(constraints.iter().map(print_constraint));
            let mut out = format!("CREATE TABLE {name} ({})", parts.join(", "));
            for (col, store) in nested_table_stores {
                out.push_str(&format!(" NESTED TABLE {col} STORE AS {store}"));
            }
            out
        }
        Stmt::CreateView { name, query, or_replace } => {
            let replace = if *or_replace { "OR REPLACE " } else { "" };
            format!("CREATE {replace}VIEW {name} AS {}", print_select(query))
        }
        Stmt::CreateIndex { name, table, columns, unique } => {
            let uniq = if *unique { "UNIQUE " } else { "" };
            let cols: Vec<String> = columns.iter().map(|c| c.to_string()).collect();
            format!("CREATE {uniq}INDEX {name} ON {table} ({})", cols.join(", "))
        }
        Stmt::DropIndex { name } => format!("DROP INDEX {name}"),
        Stmt::AnalyzeTable { table } => format!("ANALYZE TABLE {table} COMPUTE STATISTICS"),
        Stmt::DropType { name, force } => {
            format!("DROP TYPE {name}{}", if *force { " FORCE" } else { "" })
        }
        Stmt::DropTable { name } => format!("DROP TABLE {name}"),
        Stmt::DropView { name } => format!("DROP VIEW {name}"),
        Stmt::Insert { table, columns, values } => {
            let cols = match columns {
                Some(cols) => format!(
                    " ({})",
                    cols.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(", ")
                ),
                None => String::new(),
            };
            let vals: Vec<String> = values.iter().map(print_expr).collect();
            format!("INSERT INTO {table}{cols} VALUES ({})", vals.join(", "))
        }
        Stmt::Select(query) => print_select(query),
        Stmt::Delete { table, where_clause } => {
            let mut out = format!("DELETE FROM {table}");
            if let Some(pred) = where_clause {
                out.push_str(&format!(" WHERE {}", print_expr(pred)));
            }
            out
        }
        Stmt::Update { table, sets, where_clause } => {
            let assignments: Vec<String> = sets
                .iter()
                .map(|(path, value)| {
                    let lhs: Vec<String> = path.iter().map(|p| p.to_string()).collect();
                    format!("{} = {}", lhs.join("."), print_expr(value))
                })
                .collect();
            let mut out = format!("UPDATE {table} SET {}", assignments.join(", "));
            if let Some(pred) = where_clause {
                out.push_str(&format!(" WHERE {}", print_expr(pred)));
            }
            out
        }
        Stmt::Commit => "COMMIT".to_string(),
        Stmt::Rollback { to: None } => "ROLLBACK".to_string(),
        Stmt::Rollback { to: Some(name) } => format!("ROLLBACK TO {name}"),
        Stmt::Savepoint { name } => format!("SAVEPOINT {name}"),
        Stmt::Explain(inner) => format!("EXPLAIN {}", print_stmt(inner)),
    }
}

/// Render a SELECT statement.
pub fn print_select(query: &SelectStmt) -> String {
    let mut out = String::from("SELECT ");
    if query.distinct {
        out.push_str("DISTINCT ");
    }
    if query.star {
        out.push('*');
    } else {
        let items: Vec<String> = query
            .items
            .iter()
            .map(|item| match &item.alias {
                Some(alias) => format!("{} AS {alias}", print_expr(&item.expr)),
                None => print_expr(&item.expr),
            })
            .collect();
        out.push_str(&items.join(", "));
    }
    out.push_str(" FROM ");
    let from: Vec<String> = query
        .from
        .iter()
        .map(|item| match item {
            FromItem::Table { name, alias } => match alias {
                Some(alias) => format!("{name} {alias}"),
                None => name.to_string(),
            },
            FromItem::CollectionTable { expr, alias } => match alias {
                Some(alias) => format!("TABLE({}) {alias}", print_expr(expr)),
                None => format!("TABLE({})", print_expr(expr)),
            },
        })
        .collect();
    out.push_str(&from.join(", "));
    if let Some(pred) = &query.where_clause {
        out.push_str(&format!(" WHERE {}", print_expr(pred)));
    }
    if !query.order_by.is_empty() {
        let keys: Vec<String> = query
            .order_by
            .iter()
            .map(|(expr, asc)| {
                format!("{}{}", print_expr(expr), if *asc { "" } else { " DESC" })
            })
            .collect();
        out.push_str(&format!(" ORDER BY {}", keys.join(", ")));
    }
    out
}

/// Render an expression (fully parenthesized where precedence matters).
pub fn print_expr(expr: &Expr) -> String {
    match expr {
        Expr::Literal(v) => v.to_sql_literal(),
        Expr::Path(parts) => {
            parts.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(".")
        }
        Expr::Call { name, args } => {
            let inner: Vec<String> = args.iter().map(print_expr).collect();
            format!("{name}({})", inner.join(", "))
        }
        Expr::CountStar => "COUNT(*)".to_string(),
        Expr::Binary { op, lhs, rhs } => {
            let op_text = match op {
                BinOp::Eq => "=",
                BinOp::Ne => "<>",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::And => "AND",
                BinOp::Or => "OR",
                BinOp::Concat => "||",
            };
            format!("({} {op_text} {})", print_expr(lhs), print_expr(rhs))
        }
        Expr::Not(inner) => format!("(NOT {})", print_expr(inner)),
        Expr::IsNull { expr, negated } => format!(
            "({} IS {}NULL)",
            print_expr(expr),
            if *negated { "NOT " } else { "" }
        ),
        Expr::Like { expr, pattern, negated } => format!(
            "({} {}LIKE '{}')",
            print_expr(expr),
            if *negated { "NOT " } else { "" },
            pattern.replace('\'', "''")
        ),
        Expr::RefOf(alias) => format!("REF({alias})"),
        Expr::Deref(inner) => format!("DEREF({})", print_expr(inner)),
        Expr::Subquery(query) => format!("({})", print_select(query)),
        Expr::CastMultiset { query, target } => {
            format!("CAST(MULTISET({}) AS {target})", print_select(query))
        }
        Expr::Exists(query) => format!("EXISTS ({})", print_select(query)),
    }
}

fn print_constraint(constraint: &Constraint) -> String {
    match constraint {
        Constraint::PrimaryKey(cols) if cols.len() == 1 => format!("{} PRIMARY KEY", cols[0]),
        Constraint::PrimaryKey(cols) => format!(
            "PRIMARY KEY ({})",
            cols.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(", ")
        ),
        Constraint::NotNull(col) => format!("{col} NOT NULL"),
        Constraint::Check(expr) => format!("CHECK ({})", print_expr(expr)),
        Constraint::Unique(cols) => format!(
            "UNIQUE ({})",
            cols.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(", ")
        ),
    }
}

fn print_type(t: &SqlType) -> String {
    t.to_string()
}

/// `Value::Date` prints as `DATE '…'`, which the expression grammar does not
/// read back; SQL scripts should carry dates as strings. `Num(NaN)` prints
/// as `NULL` (there is no NaN literal), so it re-parses to a different —
/// albeit SQL-equivalent — value. (Helper retained for literal round-trip
/// tests.)
pub fn literal_round_trips(v: &Value) -> bool {
    match v {
        Value::Date(_) | Value::Obj { .. } | Value::Coll { .. } | Value::Ref(_) => false,
        Value::Num(n) => !n.is_nan(),
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parser::parse_statement;

    /// print(parse(text)) must re-parse to the same AST.
    fn round_trip(text: &str) {
        let ast = parse_statement(text).unwrap();
        check_round_trip(&ast).unwrap_or_else(|e| panic!("{text}: {e}"));
    }

    #[test]
    fn check_round_trip_reports_unprintable_statements() {
        // An identifier with a space prints into text the grammar cannot
        // read back — the check must surface that as an error, not a panic.
        let stmt = Stmt::Delete {
            table: crate::ident::Ident::internal("two words"),
            where_clause: None,
        };
        let err = check_round_trip(&stmt).unwrap_err();
        assert!(matches!(err, DbError::Execution(_)));
        assert!(err.to_string().contains("re-parse"), "{err}");
    }

    #[test]
    fn ddl_round_trips() {
        round_trip("CREATE TYPE T AS OBJECT (a VARCHAR(10), b NUMBER, r REF T)");
        round_trip("CREATE TYPE V AS VARRAY(5) OF VARCHAR(100)");
        round_trip("CREATE TYPE NT AS TABLE OF REF T");
        round_trip("CREATE TABLE Tab OF T (a PRIMARY KEY, b NOT NULL)");
        round_trip("CREATE TABLE R (x NUMBER PRIMARY KEY, y VARCHAR(5) NOT NULL, CHECK (x > 0))");
        round_trip("DROP TYPE T FORCE");
        round_trip("CREATE TYPE T");
    }

    #[test]
    fn dml_round_trips() {
        round_trip("INSERT INTO T VALUES (A('x', B('y', NULL)), 3.5)");
        round_trip("INSERT INTO T (a, b) VALUES (1, 'two')");
        round_trip("DELETE FROM T WHERE a = 1 AND b IS NOT NULL");
        round_trip("UPDATE T SET a.b = (SELECT REF(x) FROM P x WHERE x.n = 'k') WHERE id = '1'");
    }

    #[test]
    fn query_round_trips() {
        round_trip("SELECT DISTINCT s.a AS name FROM T s, TABLE(s.kids) k WHERE k.x LIKE 'J%' ORDER BY s.a DESC, k.x");
        round_trip("SELECT COUNT(*) FROM T");
        round_trip("SELECT * FROM T");
        round_trip(
            "SELECT Type_P(p.a, CAST(MULTISET(SELECT s.v FROM S s WHERE s.id = p.id) AS VA)) FROM P p",
        );
        round_trip("SELECT x FROM T WHERE EXISTS (SELECT y FROM U u WHERE u.y = x)");
        round_trip("SELECT DEREF(c.r) FROM C c WHERE NOT c.x = 1 OR c.y <> 2");
    }

    #[test]
    fn transaction_control_round_trips() {
        round_trip("COMMIT");
        round_trip("COMMIT WORK");
        round_trip("ROLLBACK");
        round_trip("ROLLBACK WORK");
        round_trip("SAVEPOINT before_load");
        round_trip("ROLLBACK TO before_load");
        round_trip("ROLLBACK TO SAVEPOINT before_load");
    }

    #[test]
    fn explain_round_trips() {
        round_trip("EXPLAIN SELECT s.a FROM T s");
        round_trip("EXPLAIN SELECT COUNT(*) FROM T t, U u WHERE t.id = u.id");
        round_trip("EXPLAIN INSERT INTO T VALUES (1, 'x')");
        round_trip("EXPLAIN DELETE FROM T WHERE a = 1");
        round_trip("EXPLAIN CREATE TABLE Tab OF T");
        // The Oracle spelling normalizes to the bare form.
        let ast = parse_statement("EXPLAIN PLAN FOR SELECT * FROM T").unwrap();
        assert_eq!(print_stmt(&ast), "EXPLAIN SELECT * FROM T");
        check_round_trip(&ast).unwrap();
    }

    #[test]
    fn non_finite_literals_print_to_parseable_text() {
        for v in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            let printed = Value::Num(v).to_sql_literal();
            let stmt = parse_statement(&format!("SELECT x FROM T WHERE x = {printed}"))
                .unwrap_or_else(|e| panic!("literal {printed:?} does not re-parse: {e}"));
            assert!(matches!(stmt, Stmt::Select(_)));
        }
        assert!(!literal_round_trips(&Value::Num(f64::NAN)));
        assert!(literal_round_trips(&Value::Num(f64::INFINITY)));
    }

    #[test]
    fn index_and_analyze_round_trips() {
        round_trip("CREATE INDEX Idx_Name ON TabStudent (SName)");
        round_trip("CREATE UNIQUE INDEX Idx_Id ON TabStudent (StudId)");
        round_trip("CREATE INDEX Idx_Edge ON TabEdge (Target, Name)");
        round_trip("DROP INDEX Idx_Name");
        round_trip("ANALYZE TABLE TabStudent COMPUTE STATISTICS");
        // The bare form normalizes to the COMPUTE STATISTICS spelling.
        let ast = parse_statement("ANALYZE TABLE TabStudent").unwrap();
        assert_eq!(print_stmt(&ast), "ANALYZE TABLE TabStudent COMPUTE STATISTICS");
        check_round_trip(&ast).unwrap();
    }

    #[test]
    fn view_round_trips() {
        round_trip("CREATE VIEW V AS SELECT t.a FROM T t");
        round_trip("CREATE OR REPLACE VIEW V AS SELECT t.a || t.b AS ab FROM T t");
    }
}

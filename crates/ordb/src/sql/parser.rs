//! Recursive-descent SQL parser.
//!
//! Accepts the statement inventory listed in the crate docs. The grammar is
//! driven by the scripts `xml2ordb` generates (paper §4–§6) plus what the
//! examples and baselines need; it is deliberately permissive where Oracle
//! is (keywords are not reserved unless positionally required).

use crate::catalog::Constraint;
use crate::error::DbError;
use crate::ident::Ident;
use crate::sql::ast::{
    BinOp, ColumnSpec, Expr, FromItem, SelectItem, SelectStmt, Stmt,
};
use crate::sql::lexer::{tokenize, SpannedToken, Token};
use crate::sql::span::{Span, SpannedStmt};
use crate::types::SqlType;
use crate::value::Value;

/// Parse a script of one or more `;`-separated statements.
pub fn parse_script(input: &str) -> Result<Vec<Stmt>, DbError> {
    Ok(parse_script_spanned(input)?.into_iter().map(|s| s.stmt).collect())
}

/// Parse a script, keeping the character span of every statement — the
/// entry point for [`crate::analyze`] diagnostics.
pub fn parse_script_spanned(input: &str) -> Result<Vec<SpannedStmt>, DbError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut stmts = Vec::new();
    loop {
        while parser.eat_token(&Token::Semicolon) {}
        if parser.at_end() {
            break;
        }
        let start = parser.offset();
        let stmt = parser.statement()?;
        stmts.push(SpannedStmt { stmt, span: Span::new(start, parser.prev_end()) });
    }
    Ok(stmts)
}

/// Parse exactly one statement (trailing `;` allowed).
pub fn parse_statement(input: &str) -> Result<Stmt, DbError> {
    let mut stmts = parse_script(input)?;
    match stmts.len() {
        1 => Ok(stmts.remove(0)),
        n => Err(DbError::Syntax {
            message: format!("expected exactly one statement, found {n}"),
            position: 0,
        }),
    }
}

/// Keywords that terminate an expression/alias position.
const CLAUSE_KEYWORDS: &[&str] = &[
    "FROM", "WHERE", "ORDER", "GROUP", "HAVING", "UNION", "MINUS", "INTERSECT", "NESTED", "STORE",
    "ON", "AND", "OR", "NOT", "IS", "LIKE", "AS", "ASC", "DESC", "VALUES",
];

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
}

impl Parser {
    // -- token plumbing -----------------------------------------------------

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn peek_nth(&self, n: usize) -> Option<&Token> {
        self.tokens.get(self.pos + n).map(|t| &t.token)
    }

    fn offset(&self) -> usize {
        self.tokens.get(self.pos).map(|t| t.offset).unwrap_or(usize::MAX)
    }

    /// End offset of the most recently consumed token (0 before any).
    fn prev_end(&self) -> usize {
        if self.pos == 0 {
            0
        } else {
            self.tokens[self.pos - 1].end
        }
    }

    /// Span of the token at the cursor (zero-length at end of input).
    fn current_span(&self) -> Span {
        self.tokens
            .get(self.pos)
            .map(|t| t.span())
            .unwrap_or_else(|| Span::at(self.prev_end()))
    }

    fn bump(&mut self) -> Option<&Token> {
        let tok = self.tokens.get(self.pos).map(|t| &t.token);
        if tok.is_some() {
            self.pos += 1;
        }
        tok
    }

    fn error(&self, message: impl Into<String>) -> DbError {
        DbError::Syntax { message: message.into(), position: self.offset().min(1_000_000_000) }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_kw(kw))
    }

    fn peek_nth_kw(&self, n: usize, kw: &str) -> bool {
        self.peek_nth(n).is_some_and(|t| t.is_kw(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), DbError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected keyword {kw}")))
        }
    }

    fn eat_token(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_token(&mut self, tok: &Token, what: &str) -> Result<(), DbError> {
        if self.eat_token(tok) {
            Ok(())
        } else {
            Err(self.error(format!("expected {what}")))
        }
    }

    fn ident(&mut self) -> Result<Ident, DbError> {
        match self.bump() {
            Some(Token::Ident(name)) => {
                let name = name.clone();
                Ident::new(&name)
            }
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error("expected identifier"))
            }
        }
    }

    /// Parse a column/attribute type.
    fn sql_type(&mut self) -> Result<SqlType, DbError> {
        if self.peek_kw("REF") {
            self.bump();
            let name = self.ident()?;
            return Ok(SqlType::Ref(name));
        }
        let name = self.ident()?;
        match name.key() {
            "VARCHAR" | "VARCHAR2" => {
                self.expect_token(&Token::LParen, "'(' after VARCHAR")?;
                let n = self.number_literal()? as u32;
                self.expect_token(&Token::RParen, "')' after VARCHAR size")?;
                Ok(SqlType::Varchar(n))
            }
            "CHAR" => {
                self.expect_token(&Token::LParen, "'(' after CHAR")?;
                let n = self.number_literal()? as u32;
                self.expect_token(&Token::RParen, "')' after CHAR size")?;
                Ok(SqlType::Char(n))
            }
            "NUMBER" => {
                // Optional precision/scale, accepted and ignored.
                if self.eat_token(&Token::LParen) {
                    let _ = self.number_literal()?;
                    if self.eat_token(&Token::Comma) {
                        let _ = self.number_literal()?;
                    }
                    self.expect_token(&Token::RParen, "')' after NUMBER precision")?;
                }
                Ok(SqlType::Number)
            }
            "INTEGER" | "INT" => Ok(SqlType::Integer),
            "DATE" => Ok(SqlType::Date),
            "CLOB" => Ok(SqlType::Clob),
            // A user-defined type name; whether it denotes an object or a
            // collection type is resolved against the catalog at DDL time.
            _ => Ok(SqlType::Object(name)),
        }
    }

    fn number_literal(&mut self) -> Result<f64, DbError> {
        match self.bump() {
            Some(Token::NumberLit(n)) => Ok(*n),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error("expected number literal"))
            }
        }
    }

    // -- statements -----------------------------------------------------------

    fn statement(&mut self) -> Result<Stmt, DbError> {
        if self.eat_kw("EXPLAIN") {
            // Accept the Oracle spelling `EXPLAIN PLAN FOR stmt` too.
            if self.eat_kw("PLAN") {
                self.expect_kw("FOR")?;
            }
            return Ok(Stmt::Explain(Box::new(self.statement()?)));
        }
        if self.peek_kw("CREATE") {
            return self.create_statement();
        }
        if self.peek_kw("DROP") {
            return self.drop_statement();
        }
        if self.peek_kw("INSERT") {
            return self.insert_statement();
        }
        if self.peek_kw("SELECT") {
            return Ok(Stmt::Select(self.select_statement()?));
        }
        if self.peek_kw("DELETE") {
            return self.delete_statement();
        }
        if self.peek_kw("UPDATE") {
            return self.update_statement();
        }
        if self.eat_kw("COMMIT") {
            self.eat_kw("WORK");
            return Ok(Stmt::Commit);
        }
        if self.eat_kw("ROLLBACK") {
            self.eat_kw("WORK");
            let to = if self.eat_kw("TO") {
                self.eat_kw("SAVEPOINT");
                Some(self.ident()?)
            } else {
                None
            };
            return Ok(Stmt::Rollback { to });
        }
        if self.eat_kw("SAVEPOINT") {
            let name = self.ident()?;
            return Ok(Stmt::Savepoint { name });
        }
        if self.eat_kw("ANALYZE") {
            self.expect_kw("TABLE")?;
            let table = self.ident()?;
            // Oracle spelling: `ANALYZE TABLE t COMPUTE STATISTICS`.
            if self.eat_kw("COMPUTE") {
                self.expect_kw("STATISTICS")?;
            }
            return Ok(Stmt::AnalyzeTable { table });
        }
        Err(self.error(
            "expected EXPLAIN, CREATE, DROP, INSERT, SELECT, DELETE, UPDATE, ANALYZE, COMMIT, ROLLBACK or SAVEPOINT",
        ))
    }

    fn create_statement(&mut self) -> Result<Stmt, DbError> {
        self.expect_kw("CREATE")?;
        let or_replace = if self.eat_kw("OR") {
            self.expect_kw("REPLACE")?;
            true
        } else {
            false
        };
        if self.eat_kw("TYPE") {
            return self.create_type(or_replace);
        }
        if self.eat_kw("TABLE") {
            return self.create_table();
        }
        if self.eat_kw("VIEW") {
            let name = self.ident()?;
            self.expect_kw("AS")?;
            let query = self.select_statement()?;
            return Ok(Stmt::CreateView { name, query, or_replace });
        }
        let unique = self.eat_kw("UNIQUE");
        if self.eat_kw("INDEX") {
            let name = self.ident()?;
            self.expect_kw("ON")?;
            let table = self.ident()?;
            self.expect_token(&Token::LParen, "'(' before index column list")?;
            let columns = self.ident_list()?;
            self.expect_token(&Token::RParen, "')' closing index column list")?;
            return Ok(Stmt::CreateIndex { name, table, columns, unique });
        }
        Err(self.error("expected TYPE, TABLE, VIEW or INDEX after CREATE"))
    }

    fn create_type(&mut self, _or_replace: bool) -> Result<Stmt, DbError> {
        let name = self.ident()?;
        // Forward declaration: `CREATE TYPE name;`
        if self.peek() == Some(&Token::Semicolon) || self.at_end() {
            return Ok(Stmt::CreateTypeForward { name });
        }
        self.expect_kw("AS")?;
        if self.eat_kw("OBJECT") {
            self.expect_token(&Token::LParen, "'(' after AS OBJECT")?;
            let mut attrs = Vec::new();
            loop {
                let attr_name = self.ident()?;
                let attr_type = self.sql_type()?;
                attrs.push((attr_name, attr_type));
                if self.eat_token(&Token::Comma) {
                    continue;
                }
                self.expect_token(&Token::RParen, "')' closing attribute list")?;
                break;
            }
            return Ok(Stmt::CreateObjectType { name, attrs });
        }
        if self.eat_kw("VARRAY") {
            self.expect_token(&Token::LParen, "'(' after VARRAY")?;
            let max = match self.bump() {
                Some(Token::NumberLit(n)) => *n as u32,
                _ => return Err(self.error("expected VARRAY size")),
            };
            self.expect_token(&Token::RParen, "')' after VARRAY size")?;
            self.expect_kw("OF")?;
            let elem = self.sql_type()?;
            return Ok(Stmt::CreateVarrayType { name, max, elem });
        }
        if self.eat_kw("TABLE") {
            self.expect_kw("OF")?;
            let elem = self.sql_type()?;
            return Ok(Stmt::CreateNestedTableType { name, elem });
        }
        Err(self.error("expected OBJECT, VARRAY or TABLE after AS"))
    }

    fn create_table(&mut self) -> Result<Stmt, DbError> {
        let name = self.ident()?;
        if self.eat_kw("OF") {
            // Object table.
            let of_type = self.ident()?;
            let mut constraints = Vec::new();
            if self.eat_token(&Token::LParen) {
                constraints = self.constraint_list()?;
                self.expect_token(&Token::RParen, "')' closing constraint list")?;
            }
            return Ok(Stmt::CreateObjectTable { name, of_type, constraints });
        }
        // Relational table.
        self.expect_token(&Token::LParen, "'(' opening column list")?;
        let mut columns = Vec::new();
        let mut constraints = Vec::new();
        loop {
            if self.peek_kw("CHECK") || self.peek_kw("PRIMARY") || self.peek_kw("UNIQUE") {
                constraints.extend(self.table_constraint()?);
            } else {
                let col_name = self.ident()?;
                let sql_type = self.sql_type()?;
                let mut not_null = false;
                let mut primary_key = false;
                loop {
                    if self.eat_kw("NOT") {
                        self.expect_kw("NULL")?;
                        not_null = true;
                    } else if self.eat_kw("PRIMARY") {
                        self.expect_kw("KEY")?;
                        primary_key = true;
                    } else {
                        break;
                    }
                }
                columns.push(ColumnSpec { name: col_name, sql_type, not_null, primary_key });
            }
            if self.eat_token(&Token::Comma) {
                continue;
            }
            self.expect_token(&Token::RParen, "')' closing column list")?;
            break;
        }
        // NESTED TABLE col STORE AS name (repeatable).
        let mut nested_table_stores = Vec::new();
        while self.eat_kw("NESTED") {
            self.expect_kw("TABLE")?;
            let col = self.ident()?;
            self.expect_kw("STORE")?;
            self.expect_kw("AS")?;
            let store = self.ident()?;
            nested_table_stores.push((col, store));
        }
        Ok(Stmt::CreateRelationalTable { name, columns, constraints, nested_table_stores })
    }

    /// Constraints inside `CREATE TABLE t OF type (...)`: the paper uses
    /// `PName PRIMARY KEY`, `attrName NOT NULL`, `CHECK (...)`.
    fn constraint_list(&mut self) -> Result<Vec<Constraint>, DbError> {
        let mut out = Vec::new();
        loop {
            out.extend(self.table_constraint()?);
            if self.eat_token(&Token::Comma) {
                continue;
            }
            break;
        }
        Ok(out)
    }

    fn table_constraint(&mut self) -> Result<Vec<Constraint>, DbError> {
        if self.eat_kw("CHECK") {
            self.expect_token(&Token::LParen, "'(' after CHECK")?;
            let expr = self.expr()?;
            self.expect_token(&Token::RParen, "')' closing CHECK")?;
            return Ok(vec![Constraint::Check(expr)]);
        }
        if self.eat_kw("PRIMARY") {
            self.expect_kw("KEY")?;
            self.expect_token(&Token::LParen, "'(' after PRIMARY KEY")?;
            let cols = self.ident_list()?;
            self.expect_token(&Token::RParen, "')' closing PRIMARY KEY")?;
            return Ok(vec![Constraint::PrimaryKey(cols)]);
        }
        if self.eat_kw("UNIQUE") {
            self.expect_token(&Token::LParen, "'(' after UNIQUE")?;
            let cols = self.ident_list()?;
            self.expect_token(&Token::RParen, "')' closing UNIQUE")?;
            return Ok(vec![Constraint::Unique(cols)]);
        }
        // `col PRIMARY KEY` / `col NOT NULL` / `col PRIMARY KEY NOT NULL`.
        let col = self.ident()?;
        let mut out = Vec::new();
        loop {
            if self.eat_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                out.push(Constraint::PrimaryKey(vec![col.clone()]));
            } else if self.eat_kw("NOT") {
                self.expect_kw("NULL")?;
                out.push(Constraint::NotNull(col.clone()));
            } else {
                break;
            }
        }
        if out.is_empty() {
            return Err(self.error("expected PRIMARY KEY or NOT NULL after column name"));
        }
        Ok(out)
    }

    fn ident_list(&mut self) -> Result<Vec<Ident>, DbError> {
        let mut out = vec![self.ident()?];
        while self.eat_token(&Token::Comma) {
            out.push(self.ident()?);
        }
        Ok(out)
    }

    fn drop_statement(&mut self) -> Result<Stmt, DbError> {
        self.expect_kw("DROP")?;
        if self.eat_kw("TYPE") {
            let name = self.ident()?;
            let force = self.eat_kw("FORCE");
            return Ok(Stmt::DropType { name, force });
        }
        if self.eat_kw("TABLE") {
            let name = self.ident()?;
            return Ok(Stmt::DropTable { name });
        }
        if self.eat_kw("VIEW") {
            let name = self.ident()?;
            return Ok(Stmt::DropView { name });
        }
        if self.eat_kw("INDEX") {
            let name = self.ident()?;
            return Ok(Stmt::DropIndex { name });
        }
        Err(self.error("expected TYPE, TABLE, VIEW or INDEX after DROP"))
    }

    fn insert_statement(&mut self) -> Result<Stmt, DbError> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let columns = if self.peek() == Some(&Token::LParen) && !self.peek_nth_kw(1, "SELECT") {
            // Could be a column list or — for INSERT INTO t VALUES — nothing.
            self.expect_token(&Token::LParen, "'('")?;
            let cols = self.ident_list()?;
            self.expect_token(&Token::RParen, "')'")?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("VALUES")?;
        self.expect_token(&Token::LParen, "'(' opening VALUES")?;
        let mut values = vec![self.expr()?];
        while self.eat_token(&Token::Comma) {
            values.push(self.expr()?);
        }
        self.expect_token(&Token::RParen, "')' closing VALUES")?;
        Ok(Stmt::Insert { table, columns, values })
    }

    fn update_statement(&mut self) -> Result<Stmt, DbError> {
        self.expect_kw("UPDATE")?;
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let mut path = vec![self.ident()?];
            while self.eat_token(&Token::Dot) {
                path.push(self.ident()?);
            }
            self.expect_token(&Token::Eq, "'=' in SET clause")?;
            let value = self.expr()?;
            sets.push((path, value));
            if self.eat_token(&Token::Comma) {
                continue;
            }
            break;
        }
        let where_clause = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        Ok(Stmt::Update { table, sets, where_clause })
    }

    fn delete_statement(&mut self) -> Result<Stmt, DbError> {
        self.expect_kw("DELETE")?;
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let where_clause = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        Ok(Stmt::Delete { table, where_clause })
    }

    // -- SELECT ---------------------------------------------------------------

    fn select_statement(&mut self) -> Result<SelectStmt, DbError> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut items = Vec::new();
        let mut star = false;
        if self.eat_token(&Token::Star) {
            star = true;
        } else {
            loop {
                let expr = self.expr()?;
                let alias = self.optional_alias()?;
                items.push(SelectItem { expr, alias });
                if self.eat_token(&Token::Comma) {
                    continue;
                }
                break;
            }
        }
        self.expect_kw("FROM")?;
        let mut from = vec![self.parse_from_item()?];
        while self.eat_token(&Token::Comma) {
            from.push(self.parse_from_item()?);
        }
        let where_clause = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let asc = if self.eat_kw("DESC") {
                    false
                } else {
                    self.eat_kw("ASC");
                    true
                };
                order_by.push((expr, asc));
                if self.eat_token(&Token::Comma) {
                    continue;
                }
                break;
            }
        }
        Ok(SelectStmt { distinct, items, star, from, where_clause, order_by })
    }

    fn optional_alias(&mut self) -> Result<Option<Ident>, DbError> {
        if self.eat_kw("AS") {
            return Ok(Some(self.ident()?));
        }
        match self.peek() {
            Some(Token::Ident(name))
                if !CLAUSE_KEYWORDS.iter().any(|kw| name.eq_ignore_ascii_case(kw)) =>
            {
                Ok(Some(self.ident()?))
            }
            _ => Ok(None),
        }
    }

    fn parse_from_item(&mut self) -> Result<FromItem, DbError> {
        if self.peek_kw("TABLE") && self.peek_nth(1) == Some(&Token::LParen) {
            self.expect_kw("TABLE")?;
            self.expect_token(&Token::LParen, "'(' after TABLE")?;
            let expr = self.expr()?;
            self.expect_token(&Token::RParen, "')' closing TABLE()")?;
            let alias = self.optional_alias()?;
            return Ok(FromItem::CollectionTable { expr, alias });
        }
        let name = self.ident()?;
        let alias = self.optional_alias()?;
        Ok(FromItem::Table { name, alias })
    }

    // -- expressions ------------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, DbError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, DbError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary { op: BinOp::Or, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, DbError> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("AND") {
            let rhs = self.not_expr()?;
            lhs = Expr::Binary { op: BinOp::And, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, DbError> {
        if self.eat_kw("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, DbError> {
        let lhs = self.concat_expr()?;
        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull { expr: Box::new(lhs), negated });
        }
        // [NOT] LIKE 'pattern'
        let negated_like = if self.peek_kw("NOT") && self.peek_nth_kw(1, "LIKE") {
            self.expect_kw("NOT")?;
            true
        } else {
            false
        };
        if self.eat_kw("LIKE") {
            let pattern = match self.bump() {
                Some(Token::StringLit(s)) => s.clone(),
                _ => return Err(self.error("expected string literal after LIKE")),
            };
            return Ok(Expr::Like { expr: Box::new(lhs), pattern, negated: negated_like });
        }
        if negated_like {
            return Err(self.error("expected LIKE after NOT"));
        }
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::Ne) => Some(BinOp::Ne),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::Le) => Some(BinOp::Le),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.concat_expr()?;
            return Ok(Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) });
        }
        Ok(lhs)
    }

    fn concat_expr(&mut self) -> Result<Expr, DbError> {
        let mut lhs = self.primary()?;
        while self.eat_token(&Token::Concat) {
            let rhs = self.primary()?;
            lhs = Expr::Binary { op: BinOp::Concat, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn primary(&mut self) -> Result<Expr, DbError> {
        match self.peek() {
            // Negative number literal.
            Some(Token::Minus) => {
                self.bump();
                match self.bump() {
                    Some(Token::NumberLit(n)) => Ok(Expr::Literal(Value::Num(-*n))),
                    _ => {
                        self.pos = self.pos.saturating_sub(1);
                        Err(self.error("expected number after '-'"))
                    }
                }
            }
            // The peek just matched, so bump returns the same token — but
            // rather than assert that with `unreachable!()`, surface any
            // disagreement as a typed, span-carrying parse error.
            Some(Token::StringLit(_)) => {
                let span = self.current_span();
                match self.bump() {
                    Some(Token::StringLit(s)) => Ok(Expr::Literal(Value::Str(s.clone()))),
                    _ => Err(DbError::Parse {
                        message: "expected string literal".into(),
                        span,
                    }),
                }
            }
            Some(Token::NumberLit(_)) => {
                let span = self.current_span();
                match self.bump() {
                    Some(Token::NumberLit(n)) => Ok(Expr::Literal(Value::Num(*n))),
                    _ => Err(DbError::Parse {
                        message: "expected number literal".into(),
                        span,
                    }),
                }
            }
            Some(Token::LParen) => {
                self.bump();
                if self.peek_kw("SELECT") {
                    let sub = self.select_statement()?;
                    self.expect_token(&Token::RParen, "')' closing subquery")?;
                    return Ok(Expr::Subquery(Box::new(sub)));
                }
                let inner = self.expr()?;
                self.expect_token(&Token::RParen, "')' closing parenthesized expression")?;
                Ok(inner)
            }
            Some(Token::Ident(_)) => self.ident_led_expr(),
            _ => Err(self.error("expected expression")),
        }
    }

    fn ident_led_expr(&mut self) -> Result<Expr, DbError> {
        // NULL literal.
        if self.peek_kw("NULL") {
            self.bump();
            return Ok(Expr::Literal(Value::Null));
        }
        // CAST(MULTISET(select) AS type)
        if self.peek_kw("CAST") && self.peek_nth(1) == Some(&Token::LParen) {
            self.bump();
            self.expect_token(&Token::LParen, "'(' after CAST")?;
            self.expect_kw("MULTISET")?;
            self.expect_token(&Token::LParen, "'(' after MULTISET")?;
            let query = self.select_statement()?;
            self.expect_token(&Token::RParen, "')' closing MULTISET")?;
            self.expect_kw("AS")?;
            let target = self.ident()?;
            self.expect_token(&Token::RParen, "')' closing CAST")?;
            return Ok(Expr::CastMultiset { query: Box::new(query), target });
        }
        // EXISTS (select)
        if self.peek_kw("EXISTS") && self.peek_nth(1) == Some(&Token::LParen) {
            self.bump();
            self.expect_token(&Token::LParen, "'(' after EXISTS")?;
            let sub = self.select_statement()?;
            self.expect_token(&Token::RParen, "')' closing EXISTS")?;
            return Ok(Expr::Exists(Box::new(sub)));
        }
        // REF(alias)
        if self.peek_kw("REF") && self.peek_nth(1) == Some(&Token::LParen) {
            self.bump();
            self.expect_token(&Token::LParen, "'(' after REF")?;
            let alias = self.ident()?;
            self.expect_token(&Token::RParen, "')' closing REF")?;
            return Ok(Expr::RefOf(alias));
        }
        // DEREF(expr)
        if self.peek_kw("DEREF") && self.peek_nth(1) == Some(&Token::LParen) {
            self.bump();
            self.expect_token(&Token::LParen, "'(' after DEREF")?;
            let inner = self.expr()?;
            self.expect_token(&Token::RParen, "')' closing DEREF")?;
            return Ok(Expr::Deref(Box::new(inner)));
        }
        let name = self.ident()?;
        // Call: constructor or function.
        if self.peek() == Some(&Token::LParen) {
            self.bump();
            if name.eq_str("COUNT") && self.eat_token(&Token::Star) {
                self.expect_token(&Token::RParen, "')' closing COUNT(*)")?;
                return Ok(Expr::CountStar);
            }
            let mut args = Vec::new();
            if !self.eat_token(&Token::RParen) {
                loop {
                    args.push(self.expr()?);
                    if self.eat_token(&Token::Comma) {
                        continue;
                    }
                    self.expect_token(&Token::RParen, "')' closing argument list")?;
                    break;
                }
            }
            return Ok(Expr::Call { name, args });
        }
        // Path: name(.name)*
        let mut parts = vec![name];
        while self.peek() == Some(&Token::Dot) {
            self.bump();
            parts.push(self.ident()?);
        }
        Ok(Expr::Path(parts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(input: &str) -> Stmt {
        parse_statement(input).unwrap()
    }

    #[test]
    fn parses_paper_section_2_1_create_type() {
        let stmt = one(
            "CREATE TYPE Type_Professor AS OBJECT( PName VARCHAR(80), Subject VARCHAR(120));",
        );
        match stmt {
            Stmt::CreateObjectType { name, attrs } => {
                assert!(name.eq_str("Type_Professor"));
                assert_eq!(attrs.len(), 2);
                assert_eq!(attrs[0].1, SqlType::Varchar(80));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_nested_object_type_domains() {
        let stmt = one(
            "CREATE TYPE Type_Course AS OBJECT( Name VARCHAR(100), Professor Type_Professor)",
        );
        match stmt {
            Stmt::CreateObjectType { attrs, .. } => {
                assert!(matches!(attrs[1].1, SqlType::Object(ref n) if n.eq_str("Type_Professor")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_varray_and_nested_table_types() {
        let v = one("CREATE TYPE TypeVA_Subject AS VARRAY(5) OF VARCHAR(200)");
        assert!(matches!(v, Stmt::CreateVarrayType { max: 5, elem: SqlType::Varchar(200), .. }));
        let nt = one("CREATE TYPE Type_TabSubject AS TABLE OF VARCHAR(200)");
        assert!(matches!(nt, Stmt::CreateNestedTableType { elem: SqlType::Varchar(200), .. }));
        let rt = one("CREATE TYPE TabRefProfessor AS TABLE OF REF Type_Professor");
        assert!(matches!(
            rt,
            Stmt::CreateNestedTableType { elem: SqlType::Ref(ref n), .. } if n.eq_str("Type_Professor")
        ));
    }

    #[test]
    fn parses_forward_type_declaration() {
        assert!(matches!(one("CREATE TYPE Type_Professor;"), Stmt::CreateTypeForward { .. }));
    }

    #[test]
    fn parses_object_table_with_pk_constraint() {
        let stmt = one("CREATE TABLE TabProfessor OF Type_Professor( PName PRIMARY KEY)");
        match stmt {
            Stmt::CreateObjectTable { name, of_type, constraints } => {
                assert!(name.eq_str("TabProfessor"));
                assert!(of_type.eq_str("Type_Professor"));
                assert!(matches!(constraints[0], Constraint::PrimaryKey(ref cols) if cols.len() == 1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_object_table_with_not_null_and_check() {
        let stmt = one(
            "CREATE TABLE TabCourse OF Type_Course( attrName NOT NULL, \
             CHECK (attrAddress.attrStreet IS NOT NULL))",
        );
        match stmt {
            Stmt::CreateObjectTable { constraints, .. } => {
                assert_eq!(constraints.len(), 2);
                assert!(matches!(constraints[0], Constraint::NotNull(_)));
                assert!(matches!(constraints[1], Constraint::Check(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_relational_table_with_nested_table_store() {
        let stmt = one(
            "CREATE TABLE TabProfessor ( Name VARCHAR(80), Subject Type_TabSubject) \
             NESTED TABLE Subject STORE AS TabSubject_List",
        );
        match stmt {
            Stmt::CreateRelationalTable { columns, nested_table_stores, .. } => {
                assert_eq!(columns.len(), 2);
                assert_eq!(nested_table_stores.len(), 1);
                assert!(nested_table_stores[0].1.eq_str("TabSubject_List"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_insert_with_nested_constructors() {
        let stmt = one(
            "INSERT INTO Course_Offering VALUES ('CS', Type_Course ('CAD Intro', \
             Type_Professor ('Jaeger','CAD')))",
        );
        match stmt {
            Stmt::Insert { values, .. } => {
                assert_eq!(values.len(), 2);
                assert!(matches!(values[1], Expr::Call { ref name, ref args }
                    if name.eq_str("Type_Course") && args.len() == 2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_the_paper_dot_notation_query() {
        let stmt = one(
            "SELECT S.attrLName FROM TabUniversity S \
             WHERE S.attrStudent.attrCourse.attrProfessor.attrPName = 'Jaeger'",
        );
        match stmt {
            Stmt::Select(sel) => {
                assert_eq!(sel.items.len(), 1);
                assert!(matches!(sel.items[0].expr, Expr::Path(ref p) if p.len() == 2));
                match sel.where_clause.as_ref().unwrap() {
                    Expr::Binary { lhs, .. } => {
                        assert!(matches!(**lhs, Expr::Path(ref p) if p.len() == 5));
                    }
                    other => panic!("unexpected where {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_table_collection_unnesting() {
        let stmt =
            one("SELECT s.COLUMN_VALUE FROM TabProfessor p, TABLE(p.attrSubject) s");
        match stmt {
            Stmt::Select(sel) => {
                assert_eq!(sel.from.len(), 2);
                assert!(matches!(sel.from[1], FromItem::CollectionTable { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_cast_multiset() {
        let stmt = one(
            "SELECT Type_Professor(p.attrPName, CAST (MULTISET (SELECT s.attrSubject \
             FROM tabSubject s WHERE p.IDProfessor = s.IDProfessor) AS TypeVA_Subject), \
             p.attrDept) FROM tabProfessor p",
        );
        match stmt {
            Stmt::Select(sel) => {
                let Expr::Call { args, .. } = &sel.items[0].expr else {
                    panic!("expected constructor call")
                };
                assert!(matches!(args[1], Expr::CastMultiset { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_ref_and_deref() {
        let stmt = one(
            "INSERT INTO T VALUES ((SELECT REF(p) FROM TabProfessor p WHERE p.PName = 'K'))",
        );
        match stmt {
            Stmt::Insert { values, .. } => {
                assert!(matches!(values[0], Expr::Subquery(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
        let q = one("SELECT DEREF(c.Prof_Ref) FROM TabCourse c");
        match q {
            Stmt::Select(sel) => assert!(matches!(sel.items[0].expr, Expr::Deref(_))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_create_view_with_object_constructors() {
        let stmt = one(
            "CREATE VIEW OView_University AS SELECT Type_University(u.attrStudyCourse) \
             AS University FROM tabUniversity u",
        );
        match stmt {
            Stmt::CreateView { name, query, or_replace } => {
                assert!(name.eq_str("OView_University"));
                assert!(!or_replace);
                assert_eq!(query.items[0].alias.as_ref().unwrap().as_str(), "University");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_drop_statements() {
        assert!(matches!(one("DROP TYPE T FORCE"), Stmt::DropType { force: true, .. }));
        assert!(matches!(one("DROP TYPE T"), Stmt::DropType { force: false, .. }));
        assert!(matches!(one("DROP TABLE T"), Stmt::DropTable { .. }));
        assert!(matches!(one("DROP VIEW V"), Stmt::DropView { .. }));
    }

    #[test]
    fn parses_update_with_nested_set_path() {
        let stmt = one("UPDATE Tab SET attrList.attrBoss = (SELECT REF(x) FROM T x), a = 1 WHERE ID = 'p2'");
        match stmt {
            Stmt::Update { sets, where_clause, .. } => {
                assert_eq!(sets.len(), 2);
                assert_eq!(sets[0].0.len(), 2);
                assert!(matches!(sets[0].1, Expr::Subquery(_)));
                assert!(where_clause.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_delete_with_where() {
        let stmt = one("DELETE FROM T WHERE x = 1");
        assert!(matches!(stmt, Stmt::Delete { where_clause: Some(_), .. }));
    }

    #[test]
    fn parses_logical_operators_with_precedence() {
        let stmt = one("SELECT x FROM t WHERE a = 1 OR b = 2 AND NOT c = 3");
        let Stmt::Select(sel) = stmt else { panic!() };
        // OR must be the top node (AND binds tighter).
        match sel.where_clause.unwrap() {
            Expr::Binary { op: BinOp::Or, rhs, .. } => {
                assert!(matches!(*rhs, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_is_null_and_like() {
        let stmt = one("SELECT x FROM t WHERE a IS NOT NULL AND b LIKE 'J%' AND c NOT LIKE '%x'");
        assert!(matches!(stmt, Stmt::Select(_)));
    }

    #[test]
    fn parses_order_by() {
        let stmt = one("SELECT x FROM t ORDER BY x DESC, y");
        let Stmt::Select(sel) = stmt else { panic!() };
        assert_eq!(sel.order_by.len(), 2);
        assert!(!sel.order_by[0].1); // DESC
        assert!(sel.order_by[1].1); // implicit ASC
    }

    #[test]
    fn parses_count_star() {
        let stmt = one("SELECT COUNT(*) FROM t");
        let Stmt::Select(sel) = stmt else { panic!() };
        assert!(matches!(sel.items[0].expr, Expr::CountStar));
    }

    #[test]
    fn parses_select_star() {
        let stmt = one("SELECT * FROM t");
        let Stmt::Select(sel) = stmt else { panic!() };
        assert!(sel.star);
    }

    #[test]
    fn multi_statement_script() {
        let stmts = parse_script(
            "CREATE TYPE A AS OBJECT(x VARCHAR(10)); \
             CREATE TABLE T OF A; \
             INSERT INTO T VALUES (A('1'));",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn syntax_errors_have_positions() {
        let err = parse_script("SELECT FROM").unwrap_err();
        assert!(matches!(err, DbError::Syntax { .. }));
    }

    #[test]
    fn statement_spans_cover_the_statement_text() {
        let src = "CREATE TABLE T OF A;\n  INSERT INTO T VALUES (1);";
        let spanned = parse_script_spanned(src).unwrap();
        assert_eq!(spanned.len(), 2);
        let text = |s: &crate::sql::span::Span| -> String {
            src.chars().skip(s.start).take(s.len()).collect()
        };
        assert_eq!(text(&spanned[0].span), "CREATE TABLE T OF A");
        assert_eq!(text(&spanned[1].span), "INSERT INTO T VALUES (1)");
        assert_eq!(spanned[1].span.line_col(src), (2, 3));
    }

    #[test]
    fn identifier_length_enforced_at_parse_time() {
        let long = "X".repeat(31);
        let err = parse_script(&format!("DROP TABLE {long}")).unwrap_err();
        assert!(matches!(err, DbError::IdentifierTooLong(_)));
    }

    fn sql_type_of(stmt: &str) -> SqlType {
        match one(stmt) {
            Stmt::CreateObjectType { attrs, .. } => attrs[0].1.clone(),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_all_scalar_types() {
        assert_eq!(sql_type_of("CREATE TYPE T AS OBJECT(x VARCHAR2(99))"), SqlType::Varchar(99));
        assert_eq!(sql_type_of("CREATE TYPE T AS OBJECT(x CHAR(3))"), SqlType::Char(3));
        assert_eq!(sql_type_of("CREATE TYPE T AS OBJECT(x NUMBER)"), SqlType::Number);
        assert_eq!(sql_type_of("CREATE TYPE T AS OBJECT(x INTEGER)"), SqlType::Integer);
        assert_eq!(sql_type_of("CREATE TYPE T AS OBJECT(x DATE)"), SqlType::Date);
        assert_eq!(sql_type_of("CREATE TYPE T AS OBJECT(x CLOB)"), SqlType::Clob);
    }
}

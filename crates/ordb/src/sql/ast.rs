//! Abstract syntax of the SQL dialect.

use crate::catalog::Constraint;
use crate::ident::Ident;
use crate::types::SqlType;
use crate::value::Value;

/// A binary operator in expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Concat,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// String/number/NULL literal.
    Literal(Value),
    /// Dot-notation path: `alias.attr.sub.subsub` — §4.1: "The object
    /// structure can be traversed using the dot notation without executing
    /// join operations."
    Path(Vec<Ident>),
    /// Constructor or built-in function call: `Type_Course('CAD', …)`,
    /// `UPPER(x)`, `COUNT(*)`.
    Call { name: Ident, args: Vec<Expr> },
    /// `COUNT(*)` (the only star-argument call).
    CountStar,
    Binary { op: BinOp, lhs: Box<Expr>, rhs: Box<Expr> },
    Not(Box<Expr>),
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull { expr: Box<Expr>, negated: bool },
    /// `expr LIKE 'pattern'`.
    Like { expr: Box<Expr>, pattern: String, negated: bool },
    /// `REF(alias)` — the OID of the row object bound to `alias` (§2.3).
    RefOf(Ident),
    /// `DEREF(expr)` — follow a REF to its row object.
    Deref(Box<Expr>),
    /// Scalar subquery `(SELECT …)` — used by the Oracle 8 REF workaround.
    Subquery(Box<SelectStmt>),
    /// `CAST(MULTISET(SELECT …) AS collection_type)` (§6.3).
    CastMultiset { query: Box<SelectStmt>, target: Ident },
    /// `EXISTS (SELECT …)`.
    Exists(Box<SelectStmt>),
}

impl Expr {
    pub fn str_lit(s: &str) -> Expr {
        Expr::Literal(Value::Str(s.to_string()))
    }

    pub fn path(parts: &[&str]) -> Expr {
        Expr::Path(parts.iter().map(|p| Ident::internal(p)).collect())
    }

    pub fn eq(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary { op: BinOp::Eq, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }
}

/// One item of a SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    pub expr: Expr,
    pub alias: Option<Ident>,
}

/// One item of a FROM clause.
#[derive(Debug, Clone, PartialEq)]
pub enum FromItem {
    /// `Table alias` — a table, object table or view.
    Table { name: Ident, alias: Option<Ident> },
    /// `TABLE(path) alias` — collection un-nesting.
    CollectionTable { expr: Expr, alias: Option<Ident> },
}

impl FromItem {
    /// The binding name rows are visible under.
    pub fn binding(&self) -> Ident {
        match self {
            FromItem::Table { name, alias } => alias.clone().unwrap_or_else(|| name.clone()),
            FromItem::CollectionTable { alias, .. } => {
                alias.clone().unwrap_or_else(|| Ident::internal("COLLECTION"))
            }
        }
    }
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    /// `SELECT *` when items is empty and star is true.
    pub star: bool,
    pub from: Vec<FromItem>,
    pub where_clause: Option<Expr>,
    pub order_by: Vec<(Expr, bool)>, // (expr, ascending)
}

/// A column definition in DDL.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSpec {
    pub name: Ident,
    pub sql_type: SqlType,
    pub not_null: bool,
    pub primary_key: bool,
}

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `CREATE TYPE name;` — incomplete/forward declaration (§6.2).
    CreateTypeForward { name: Ident },
    /// `CREATE TYPE name AS OBJECT (…)`.
    CreateObjectType { name: Ident, attrs: Vec<(Ident, SqlType)> },
    /// `CREATE TYPE name AS VARRAY(max) OF elem`.
    CreateVarrayType { name: Ident, max: u32, elem: SqlType },
    /// `CREATE TYPE name AS TABLE OF elem`.
    CreateNestedTableType { name: Ident, elem: SqlType },
    /// `CREATE TABLE name OF type (constraints…)`.
    CreateObjectTable { name: Ident, of_type: Ident, constraints: Vec<Constraint> },
    /// `CREATE TABLE name (col type …, constraints…) [NESTED TABLE … STORE AS …]`.
    CreateRelationalTable {
        name: Ident,
        columns: Vec<ColumnSpec>,
        constraints: Vec<Constraint>,
        nested_table_stores: Vec<(Ident, Ident)>,
    },
    /// `CREATE [OR REPLACE] VIEW name AS select`.
    CreateView { name: Ident, query: SelectStmt, or_replace: bool },
    /// `CREATE [UNIQUE] INDEX name ON table (col, …)` — a persistent
    /// secondary index maintained through every mutation and undo replay.
    CreateIndex { name: Ident, table: Ident, columns: Vec<Ident>, unique: bool },
    /// `DROP INDEX name`.
    DropIndex { name: Ident },
    /// `ANALYZE TABLE name [COMPUTE STATISTICS]` — collect row-count and
    /// per-column cardinality statistics for the cost-based planner.
    AnalyzeTable { table: Ident },
    DropType { name: Ident, force: bool },
    DropTable { name: Ident },
    DropView { name: Ident },
    Insert { table: Ident, columns: Option<Vec<Ident>>, values: Vec<Expr> },
    Select(SelectStmt),
    Delete { table: Ident, where_clause: Option<Expr> },
    /// `UPDATE table SET path = expr, … [WHERE pred]`. SET paths may
    /// navigate into embedded object attributes (`attrList.attrBoss`).
    Update { table: Ident, sets: Vec<(Vec<Ident>, Expr)>, where_clause: Option<Expr> },
    /// `COMMIT [WORK]` — make all changes since the last commit permanent
    /// and discard the undo log.
    Commit,
    /// `ROLLBACK [WORK]` (undo everything since the last commit) or
    /// `ROLLBACK [WORK] TO [SAVEPOINT] name` (undo back to a savepoint,
    /// which stays usable — Oracle semantics).
    Rollback { to: Option<Ident> },
    /// `SAVEPOINT name` — mark the current undo position; re-using a name
    /// moves the savepoint.
    Savepoint { name: Ident },
    /// `EXPLAIN [PLAN FOR] stmt` — render the execution plan of `stmt`
    /// without running it.
    Explain(Box<Stmt>),
}

impl Stmt {
    /// Short tag for statistics and error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Stmt::CreateTypeForward { .. }
            | Stmt::CreateObjectType { .. }
            | Stmt::CreateVarrayType { .. }
            | Stmt::CreateNestedTableType { .. } => "CREATE TYPE",
            Stmt::CreateObjectTable { .. } | Stmt::CreateRelationalTable { .. } => "CREATE TABLE",
            Stmt::CreateView { .. } => "CREATE VIEW",
            Stmt::CreateIndex { .. } => "CREATE INDEX",
            Stmt::DropIndex { .. } => "DROP INDEX",
            Stmt::AnalyzeTable { .. } => "ANALYZE",
            Stmt::DropType { .. } => "DROP TYPE",
            Stmt::DropTable { .. } => "DROP TABLE",
            Stmt::DropView { .. } => "DROP VIEW",
            Stmt::Insert { .. } => "INSERT",
            Stmt::Select(_) => "SELECT",
            Stmt::Delete { .. } => "DELETE",
            Stmt::Update { .. } => "UPDATE",
            Stmt::Commit => "COMMIT",
            Stmt::Rollback { .. } => "ROLLBACK",
            Stmt::Savepoint { .. } => "SAVEPOINT",
            Stmt::Explain(_) => "EXPLAIN",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_helpers_build_expected_shapes() {
        let e = Expr::eq(Expr::path(&["s", "attrLName"]), Expr::str_lit("Conrad"));
        match e {
            Expr::Binary { op: BinOp::Eq, lhs, rhs } => {
                assert!(matches!(*lhs, Expr::Path(ref p) if p.len() == 2));
                assert!(matches!(*rhs, Expr::Literal(Value::Str(ref s)) if s == "Conrad"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn from_item_binding_prefers_alias() {
        let with_alias = FromItem::Table {
            name: Ident::internal("TabUniversity"),
            alias: Some(Ident::internal("u")),
        };
        assert_eq!(with_alias.binding().as_str(), "u");
        let without = FromItem::Table { name: Ident::internal("TabUniversity"), alias: None };
        assert_eq!(without.binding().as_str(), "TabUniversity");
    }

    #[test]
    fn stmt_kinds() {
        assert_eq!(Stmt::DropType { name: Ident::internal("T"), force: true }.kind(), "DROP TYPE");
    }
}

//! Source spans and line/column arithmetic for diagnostics.
//!
//! Offsets are **character** indices into the SQL text (the lexer iterates
//! `char`s, not bytes), so line/column conversion counts characters too —
//! a multi-byte character advances the column by one, like an editor does.

/// A half-open `[start, end)` character range in some SQL source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end: end.max(start) }
    }

    /// A zero-length span at `offset`.
    pub fn at(offset: usize) -> Span {
        Span { start: offset, end: offset }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// 1-based (line, column) of the span start within `source`.
    pub fn line_col(&self, source: &str) -> (usize, usize) {
        line_col(source, self.start)
    }
}

/// 1-based (line, column) of character offset `offset` within `source`.
/// Offsets past the end report the position just after the last character.
pub fn line_col(source: &str, offset: usize) -> (usize, usize) {
    let mut line = 1usize;
    let mut col = 1usize;
    for (i, ch) in source.chars().enumerate() {
        if i >= offset {
            break;
        }
        if ch == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

/// The full text of the line (1-based) containing character offset `start`.
pub fn source_line(source: &str, line: usize) -> &str {
    source.split('\n').nth(line.saturating_sub(1)).unwrap_or("").trim_end_matches('\r')
}

/// A statement plus the span it occupies in the script it was parsed from.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedStmt {
    pub stmt: crate::sql::ast::Stmt,
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_counts_chars_not_bytes() {
        // 'ä' is two bytes but one character: column arithmetic is char-based.
        let src = "SELECT ä FROM t\nWHERE x = 1";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 9), (1, 10)); // after "SELECT ä "
        assert_eq!(line_col(src, 16), (2, 1)); // first char of line 2
        assert_eq!(line_col(src, 22), (2, 7));
    }

    #[test]
    fn line_col_past_end_saturates() {
        assert_eq!(line_col("ab", 99), (1, 3));
    }

    #[test]
    fn source_line_extracts_the_right_line() {
        let src = "one\ntwo\r\nthree";
        assert_eq!(source_line(src, 1), "one");
        assert_eq!(source_line(src, 2), "two");
        assert_eq!(source_line(src, 3), "three");
        assert_eq!(source_line(src, 9), "");
    }

    #[test]
    fn span_basics() {
        let s = Span::new(3, 7);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert!(Span::at(5).is_empty());
        // end < start is clamped rather than panicking.
        assert_eq!(Span::new(7, 3).len(), 0);
    }
}

//! Source spans and line/column arithmetic for diagnostics.
//!
//! The span vocabulary lives in the shared `xmlord-diag` crate so the DTD
//! and mapping linters report over the same types; this module re-exports
//! it (preserving the historical `ordb::sql::span` paths) and adds the
//! SQL-specific [`SpannedStmt`].
//!
//! Offsets are **character** indices into the SQL text (the lexer iterates
//! `char`s, not bytes), so line/column conversion counts characters too —
//! a multi-byte character advances the column by one, like an editor does.

pub use xmlord_diag::{line_col, source_line, Span};

/// A statement plus the span it occupies in the script it was parsed from.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedStmt {
    pub stmt: crate::sql::ast::Stmt,
    pub span: Span,
}

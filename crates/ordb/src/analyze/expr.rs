//! Static expression analysis.
//!
//! The central question for every check is *eagerness*: does the executor
//! run the corresponding check unconditionally when the statement executes
//! (→ a definite failure may be reported as `Severity::Error`), or only
//! per-row / behind a short-circuit (→ at most a `Warning`)? The `eager`
//! flag threaded through [`analyze_expr`] answers it per expression
//! position, mirroring `exec::eval` exactly:
//!
//! * `AND`/`OR` short-circuit, so only the left operand inherits eagerness;
//! * comparison, `CONCAT`, `NOT`, `IS NULL`, `LIKE` always evaluate their
//!   operands;
//! * `CAST(MULTISET …)` validates its target type *before* running the
//!   query; `EXISTS`/scalar subqueries run their query when evaluated.

use crate::analyze::StmtCx;
use crate::catalog::{Catalog, TypeDef};
use crate::ident::Ident;
use crate::sql::ast::{BinOp, Expr};
use crate::sql::span::Span;
use crate::types::SqlType;
use crate::value::Value;

/// Static type of an expression — only shapes the analyzer can be *certain*
/// about. `Lit` carries the literal's concrete value so scalar coercion
/// outcomes can be replicated exactly; everything data-dependent (paths,
/// subqueries, built-in results) is `Unknown`, which makes no claims.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum STy {
    Unknown,
    Lit(Value),
    /// Result of a successful object constructor: definitely `Obj` of this
    /// type (or the statement was already rejected by the constructor).
    Object(Ident),
    /// Result of a collection constructor or `CAST(MULTISET …)`.
    Collection(Ident),
}

/// One binding visible to path resolution — the static mirror of
/// `exec::Frame`.
#[derive(Debug, Clone)]
pub(crate) struct ScopeFrame {
    pub binding: Ident,
    /// `None` = wildcard: the column set is statically unknown (views,
    /// collections of unknown element type). Wildcard frames suppress all
    /// resolution claims.
    pub columns: Option<Vec<(Ident, SqlType)>>,
    pub object_type: Option<Ident>,
    /// Rows carry OIDs (object tables), so `REF(alias)` works.
    pub has_oid: bool,
}

impl ScopeFrame {
    pub fn wildcard(binding: Ident) -> ScopeFrame {
        ScopeFrame { binding, columns: None, object_type: None, has_oid: true }
    }
}

/// A lexical scope chain, innermost frames first — the static mirror of
/// `exec::Env` (subqueries see their own FROM bindings, then the outer
/// statement's).
pub(crate) struct Scopes<'a> {
    pub frames: &'a [ScopeFrame],
    pub parent: Option<&'a Scopes<'a>>,
}

impl<'a> Scopes<'a> {
    pub const EMPTY: Scopes<'static> = Scopes { frames: &[], parent: None };

    pub fn frame(&self, name: &Ident) -> Option<&ScopeFrame> {
        self.frames
            .iter()
            .find(|f| &f.binding == name)
            .or_else(|| self.parent.and_then(|p| p.frame(name)))
    }

    pub fn frame_with_column(&self, col: &Ident) -> Option<&ScopeFrame> {
        self.frames
            .iter()
            .find(|f| f.columns.as_ref().is_some_and(|cs| cs.iter().any(|(c, _)| c == col)))
            .or_else(|| self.parent.and_then(|p| p.frame_with_column(col)))
    }

    /// Any wildcard frame anywhere in the chain? (If so, unresolved names
    /// might still resolve at runtime — make no claims.)
    pub fn any_wildcard(&self) -> bool {
        self.frames.iter().any(|f| f.columns.is_none())
            || self.parent.is_some_and(|p| p.any_wildcard())
    }

    /// No frames at all in the whole chain — the executor's `Env::EMPTY`
    /// (INSERT VALUES position), where *any* path fails unconditionally.
    pub fn is_empty_chain(&self) -> bool {
        self.frames.is_empty() && self.parent.is_none_or(|p| p.is_empty_chain())
    }
}

/// Analyze one expression, emitting diagnostics, and return its static type.
pub(crate) fn analyze_expr(cx: &mut StmtCx, scopes: &Scopes, eager: bool, expr: &Expr) -> STy {
    match expr {
        Expr::Literal(v) => STy::Lit(v.clone()),
        Expr::Path(parts) => {
            analyze_path(cx, scopes, eager, parts);
            // Declared-typed values may still be NULL at runtime (and NULL
            // coerces to anything), so paths never support coercion claims.
            STy::Unknown
        }
        Expr::Call { name, args } => analyze_call(cx, scopes, eager, name, args),
        Expr::CountStar => {
            cx.report(
                eager,
                "countstar-position",
                "COUNT(*) is only valid as a top-level select item".into(),
                cx.span,
            );
            STy::Unknown
        }
        Expr::Binary { op, lhs, rhs } => {
            match op {
                // Short-circuit: the right operand may never be evaluated.
                BinOp::And | BinOp::Or => {
                    analyze_expr(cx, scopes, eager, lhs);
                    analyze_expr(cx, scopes, false, rhs);
                }
                _ => {
                    analyze_expr(cx, scopes, eager, lhs);
                    analyze_expr(cx, scopes, eager, rhs);
                }
            }
            STy::Unknown
        }
        Expr::Not(inner) => {
            analyze_expr(cx, scopes, eager, inner);
            STy::Unknown
        }
        Expr::IsNull { expr, .. } => {
            analyze_expr(cx, scopes, eager, expr);
            STy::Unknown
        }
        Expr::Like { expr, .. } => {
            let sty = analyze_expr(cx, scopes, eager, expr);
            if matches!(sty, STy::Object(_) | STy::Collection(_)) {
                cx.report(
                    eager,
                    "type-mismatch",
                    "LIKE requires a string, found an object/collection value".into(),
                    cx.span,
                );
            }
            STy::Unknown
        }
        Expr::RefOf(alias) => {
            if scopes.is_empty_chain() {
                // Executor: `env.frame(alias)` fails unconditionally.
                cx.report(
                    eager,
                    "unknown-column",
                    format!("REF({alias}): no row binding '{alias}' in this context"),
                    cx.span,
                );
            } else {
                match scopes.frame(alias) {
                    Some(f) if !f.has_oid => cx.warn(
                        "ref-non-object",
                        format!("REF({alias}): '{alias}' is not a row of an object table"),
                        cx.span,
                    ),
                    Some(_) => {}
                    None if scopes.any_wildcard() => {}
                    None => cx.warn(
                        "unknown-column",
                        format!("REF({alias}): no FROM binding named '{alias}'"),
                        cx.span,
                    ),
                }
            }
            STy::Unknown
        }
        Expr::Deref(inner) => {
            let sty = analyze_expr(cx, scopes, eager, inner);
            let non_ref = match &sty {
                STy::Lit(v) => !v.is_null(),
                STy::Object(_) | STy::Collection(_) => true,
                STy::Unknown => false,
            };
            if non_ref {
                cx.report(
                    eager,
                    "deref-non-ref",
                    "DEREF applied to an expression that is never a REF".into(),
                    cx.span,
                );
            }
            STy::Unknown
        }
        Expr::Subquery(query) => {
            crate::analyze::select::analyze_select(cx, Some(scopes), query, eager);
            STy::Unknown
        }
        Expr::Exists(query) => {
            crate::analyze::select::analyze_select(cx, Some(scopes), query, eager);
            STy::Unknown
        }
        Expr::CastMultiset { query, target } => {
            // The executor validates the target type before running the
            // query — this check is as eager as the expression position.
            let span = cx.anchor_ident(target);
            let result = match cx.catalog.get_type(target) {
                None => {
                    cx.report(
                        eager,
                        "unknown-type",
                        format!("CAST target type '{target}' does not exist"),
                        span,
                    );
                    STy::Unknown
                }
                Some(def) if def.element_type().is_none() => {
                    cx.report(
                        eager,
                        "cast-target-not-collection",
                        format!("CAST(MULTISET …) target '{target}' is not a collection type"),
                        span,
                    );
                    STy::Unknown
                }
                Some(_) => STy::Collection(target.clone()),
            };
            crate::analyze::select::analyze_select(cx, Some(scopes), query, eager);
            result
        }
    }
}

/// Analyze a constructor or built-in call, mirroring `eval_call`: a name
/// that exists in the catalog is a constructor, otherwise one of the five
/// built-ins, otherwise an unconditional `UnknownType` error.
fn analyze_call(
    cx: &mut StmtCx,
    scopes: &Scopes,
    eager: bool,
    name: &Ident,
    args: &[Expr],
) -> STy {
    let stys: Vec<STy> = args.iter().map(|a| analyze_expr(cx, scopes, eager, a)).collect();
    let span = cx.anchor_ident(name);
    if let Some(def) = cx.catalog.get_type(name) {
        let def = def.clone();
        match def {
            TypeDef::Object { name, attrs, incomplete } => {
                if incomplete {
                    cx.report(
                        eager,
                        "incomplete-type",
                        format!("constructor {name}(…): type is an incomplete forward declaration"),
                        span,
                    );
                    return STy::Object(name);
                }
                if stys.len() != attrs.len() {
                    cx.report(
                        eager,
                        "constructor-arity",
                        format!(
                            "constructor {name}(…): expected {} arguments, got {}",
                            attrs.len(),
                            stys.len()
                        ),
                        span,
                    );
                    return STy::Object(name);
                }
                for (sty, (attr_name, attr_type)) in stys.iter().zip(&attrs) {
                    if let Some(msg) = static_coerce_error(sty, attr_type) {
                        cx.report(
                            eager,
                            "type-mismatch",
                            format!("constructor {name}(…), attribute '{attr_name}': {msg}"),
                            span,
                        );
                    }
                }
                STy::Object(name)
            }
            TypeDef::Varray { name, elem, max } => {
                if stys.len() > max as usize {
                    cx.report(
                        eager,
                        "varray-limit",
                        format!(
                            "VARRAY '{name}' limit exceeded: {} elements, maximum {max}",
                            stys.len()
                        ),
                        span,
                    );
                }
                check_elements(cx, eager, &name, &stys, &elem, span);
                STy::Collection(name)
            }
            TypeDef::NestedTable { name, elem } => {
                check_elements(cx, eager, &name, &stys, &elem, span);
                STy::Collection(name)
            }
        }
    } else {
        match name.key() {
            "UPPER" | "LOWER" | "LENGTH" | "TO_NUMBER" | "TO_CHAR" => {
                if args.len() != 1 {
                    cx.report(
                        eager,
                        "call-arity",
                        format!("{name} takes one argument"),
                        span,
                    );
                    return STy::Unknown;
                }
                let definite_mismatch = match name.key() {
                    "UPPER" | "LOWER" | "LENGTH" => match &stys[0] {
                        STy::Lit(Value::Str(_)) | STy::Lit(Value::Null) | STy::Unknown => false,
                        STy::Lit(_) | STy::Object(_) | STy::Collection(_) => true,
                    },
                    "TO_NUMBER" => match &stys[0] {
                        STy::Lit(Value::Null) | STy::Unknown => false,
                        STy::Lit(v) => v.as_num().is_none(),
                        STy::Object(_) | STy::Collection(_) => true,
                    },
                    _ => false, // TO_CHAR stringifies anything
                };
                if definite_mismatch {
                    cx.report(
                        eager,
                        "type-mismatch",
                        format!("{name}: argument can never have the required type"),
                        span,
                    );
                }
                STy::Unknown
            }
            _ => {
                cx.report(
                    eager,
                    "unknown-function",
                    format!("'{name}' is neither a type in the catalog nor a built-in function"),
                    span,
                );
                STy::Unknown
            }
        }
    }
}

fn check_elements(
    cx: &mut StmtCx,
    eager: bool,
    coll_name: &Ident,
    stys: &[STy],
    elem: &SqlType,
    span: Span,
) {
    for (i, sty) in stys.iter().enumerate() {
        if let Some(msg) = static_coerce_error(sty, elem) {
            cx.report(
                eager,
                "type-mismatch",
                format!("constructor {coll_name}(…), element {}: {msg}", i + 1),
                span,
            );
        }
    }
}

/// Analyze a dot path for name-resolution problems. All path evaluation is
/// per-row in the executor — except against the empty environment, where
/// resolution fails unconditionally.
pub(crate) fn analyze_path(cx: &mut StmtCx, scopes: &Scopes, eager: bool, parts: &[Ident]) {
    let full = || parts.iter().map(|p| p.as_str()).collect::<Vec<_>>().join(".");
    if scopes.is_empty_chain() {
        cx.report(
            eager,
            "unknown-column",
            format!("column or path '{}' cannot be resolved here (no row context)", full()),
            cx.span,
        );
        return;
    }
    let span = cx.anchor_ident(&parts[0]);
    if let Some(frame) = scopes.frame(&parts[0]) {
        if parts.len() == 1 {
            return;
        }
        let Some(columns) = &frame.columns else { return };
        match columns.iter().find(|(c, _)| c == &parts[1]) {
            None => cx.warn(
                "unknown-column",
                format!("'{}' has no column '{}' (in path '{}')", parts[0], parts[1], full()),
                span,
            ),
            Some((_, col_type)) => {
                walk_attrs(cx, col_type.clone(), &parts[2..], &full());
            }
        }
        return;
    }
    // Unqualified: the first part must be a column of some frame.
    if let Some(frame) = scopes.frame_with_column(&parts[0]) {
        let columns = frame.columns.as_ref().expect("frame_with_column implies known columns");
        let (_, col_type) =
            columns.iter().find(|(c, _)| c == &parts[0]).expect("frame_with_column found it");
        walk_attrs(cx, col_type.clone(), &parts[1..], &full());
        return;
    }
    if !scopes.any_wildcard() {
        cx.warn("unknown-column", format!("column or path '{}' does not exist", full()), span);
    }
}

/// Walk the remaining path segments through declared attribute types,
/// warning on statically-impossible navigation. NULLs make every deeper
/// step data-dependent, so these never rise above `Warning`.
pub(crate) fn walk_attrs(cx: &mut StmtCx, start: SqlType, parts: &[Ident], full: &str) {
    let mut current = start;
    for part in parts {
        let span = cx.anchor_ident(part);
        let type_name = match &current {
            SqlType::Object(t) | SqlType::Ref(t) => t.clone(),
            SqlType::Varray(_) | SqlType::NestedTable(_) => {
                cx.warn(
                    "navigate-collection",
                    format!(
                        "cannot navigate '{part}' into a collection (in path '{full}'); \
                         un-nest it with TABLE(…) first"
                    ),
                    span,
                );
                return;
            }
            other => {
                cx.warn(
                    "navigate-scalar",
                    format!("cannot navigate '{part}' into scalar type {other} (in path '{full}')"),
                    span,
                );
                return;
            }
        };
        // Collection-typed names or missing types: no claim.
        let Some(TypeDef::Object { attrs, .. }) = cx.catalog.get_type(&type_name) else { return };
        match attrs.iter().find(|(n, _)| n == part) {
            Some((_, next)) => current = next.clone(),
            None => {
                cx.warn(
                    "unknown-column",
                    format!("type '{type_name}' has no attribute '{part}' (in path '{full}')"),
                    span,
                );
                return;
            }
        }
    }
}

/// Declared leaf type of a path, if it resolves statically (no diagnostics).
/// Used to derive the element scope of `TABLE(path)` FROM items.
pub(crate) fn path_declared_type(
    catalog: &Catalog,
    scopes: &Scopes,
    parts: &[Ident],
) -> Option<SqlType> {
    let (mut current, rest): (SqlType, &[Ident]) = if let Some(frame) = scopes.frame(&parts[0]) {
        if parts.len() == 1 {
            return frame.object_type.clone().map(SqlType::Object);
        }
        let columns = frame.columns.as_ref()?;
        let (_, t) = columns.iter().find(|(c, _)| c == &parts[1])?;
        (t.clone(), &parts[2..])
    } else {
        let frame = scopes.frame_with_column(&parts[0])?;
        let columns = frame.columns.as_ref()?;
        let (_, t) = columns.iter().find(|(c, _)| c == &parts[0])?;
        (t.clone(), &parts[1..])
    };
    for part in rest {
        let name = match &current {
            SqlType::Object(t) | SqlType::Ref(t) => t.clone(),
            _ => return None,
        };
        let TypeDef::Object { attrs, .. } = catalog.get_type(&name)? else { return None };
        current = attrs.iter().find(|(n, _)| n == part)?.1.clone();
    }
    Some(current)
}

/// Would `exec::eval::coerce` *definitely* fail coercing a value of static
/// type `sty` to `target`? Returns the failure message, or `None` when the
/// coercion might succeed (including for `Unknown` and NULL literals —
/// NULL coerces to anything). Scalar rules replicate `coerce` exactly,
/// including numeric `Display` via [`Value::Num`].
pub(crate) fn static_coerce_error(sty: &STy, target: &SqlType) -> Option<String> {
    let mismatch = |found: &str| Some(format!("expected {target}, found {found}"));
    match sty {
        STy::Unknown => None,
        STy::Object(t) => match target {
            SqlType::Object(e) if e == t => None,
            _ => mismatch(&format!("object of type {t}")),
        },
        STy::Collection(t) => match target {
            SqlType::Varray(e) | SqlType::NestedTable(e) if e == t => None,
            _ => mismatch(&format!("collection of type {t}")),
        },
        STy::Lit(v) => {
            if v.is_null() {
                return None;
            }
            match target {
                SqlType::Varchar(max) | SqlType::Char(max) => {
                    let text = match v {
                        Value::Str(s) => s.clone(),
                        Value::Num(n) => Value::Num(*n).to_string(),
                        Value::Date(s) => s.clone(),
                        _ => return mismatch("non-text value"),
                    };
                    let actual = text.chars().count();
                    if actual > *max as usize {
                        Some(format!("value of length {actual} exceeds {target}"))
                    } else {
                        None
                    }
                }
                SqlType::Clob => match v {
                    Value::Str(_) | Value::Num(_) => None,
                    _ => mismatch("non-text value"),
                },
                SqlType::Number | SqlType::Integer => match v.as_num() {
                    Some(_) => None,
                    None => mismatch("non-numeric value"),
                },
                SqlType::Date => match v {
                    Value::Str(_) | Value::Date(_) => None,
                    _ => mismatch("non-date value"),
                },
                SqlType::Object(_)
                | SqlType::Varray(_)
                | SqlType::NestedTable(_)
                | SqlType::Ref(_) => mismatch("scalar literal"),
            }
        }
    }
}
